#include "lint/callgraph.hpp"

#include <set>

#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

// Identifiers that look like calls lexically but never are (control-flow
// heads, cast/query operators), or that we refuse to treat as project
// calls (macro invocations are ALL_CAPS by repo convention).
bool call_keyword(const std::string& w) {
  static const std::set<std::string> kw = {
      "if",          "for",        "while",        "switch",
      "return",      "co_return",  "co_await",     "co_yield",
      "sizeof",      "alignof",    "decltype",     "noexcept",
      "catch",       "new",        "delete",       "throw",
      "static_assert", "assert",   "defined",      "requires",
      "typeid",      "operator",   "goto",         "case",
      "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast"};
  return kw.count(w) != 0;
}

// Statement keywords that may directly precede a call expression without
// turning `word name(` into a declaration: `return make();`, `throw err();`.
bool stmt_keyword(const std::string& w) {
  static const std::set<std::string> kw = {"return", "co_return", "co_await",
                                           "co_yield", "else",     "do",
                                           "throw",    "case"};
  return kw.count(w) != 0;
}

bool macro_like(const std::string& w) {
  bool has_alpha = false;
  for (char c : w) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

// Member names owned by std synchronization/container vocabulary: a member
// call spelled `x.wait(...)` is std machinery, never a project function
// that happens to share the name. Explicit `Class::wait(...)` calls still
// resolve.
bool std_member(const std::string& w) {
  static const std::set<std::string> kw = {
      "wait",     "wait_for",   "wait_until", "lock",
      "unlock",   "try_lock",   "notify_one", "notify_all"};
  return kw.count(w) != 0;
}

bool graph_scope(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

struct RawSite {
  std::string callee;
  std::string qualifier;  // explicit `Qual::callee(` qualifier; "" otherwise
  bool qualified = false;
  std::size_t node = 0;
  std::size_t line = 0;
  bool member = false;
  bool deferred = false;
};

// Extracts every call-shaped identifier from one compacted node text.
// Positions inside @p lambdas are marked deferred.
void scan_node(const std::string& text, std::size_t node, std::size_t line,
               const std::vector<std::pair<std::size_t, std::size_t>>& lambdas,
               std::vector<RawSite>& out) {
  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_ident_char(text[i]) || (text[i] >= '0' && text[i] <= '9')) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < text.size() && is_ident_char(text[e])) ++e;
    std::size_t q = e;
    while (q < text.size() && text[q] == ' ') ++q;
    if (q >= text.size() || text[q] != '(') {
      i = e;
      continue;
    }
    const std::string name = text.substr(i, e - i);
    if (call_keyword(name) || macro_like(name)) {
      i = e;
      continue;
    }

    RawSite site;
    site.callee = name;
    site.node = node;
    site.line = line;
    for (const auto& [lb, le] : lambdas) {
      if (i >= lb && i < le) {
        site.deferred = true;
        break;
      }
    }

    bool skip = false;
    std::size_t b = i;
    while (b > 0 && text[b - 1] == ' ') --b;
    if (b > 0) {
      const char c = text[b - 1];
      if (c == '.' || (c == '>' && b > 1 && text[b - 2] == '-')) {
        site.member = true;
      } else if (c == ':' && b > 1 && text[b - 2] == ':') {
        site.qualified = true;
        const std::size_t qe = b - 2;
        std::size_t qb = qe;
        while (qb > 0 && is_ident_char(text[qb - 1])) --qb;
        site.qualifier = text.substr(qb, qe - qb);
        // std-owned qualifiers are never project calls; neither are the
        // chrono clock statics (steady_clock::now and friends).
        if (site.qualifier == "std" || site.qualifier == "chrono" ||
            ends_with(site.qualifier, "_clock")) {
          skip = true;
        }
      } else if (is_ident_char(c)) {
        // `Type name(` is a declaration unless the preceding word is a
        // statement keyword (`return helper()` is a call).
        std::size_t wb = b;
        while (wb > 0 && is_ident_char(text[wb - 1])) --wb;
        if (!stmt_keyword(text.substr(wb, b - wb))) skip = true;
      } else if (c == '>' || c == '~') {
        // `vector<int> name(` declaration / destructor call.
        skip = true;
      }
    }
    if (!skip) out.push_back(site);
    i = e;
  }
}

// Iterative Tarjan; emits components callees-first (the natural Tarjan
// completion order).
struct TarjanState {
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<std::size_t> index, low;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  std::size_t counter = 0;
  std::vector<std::vector<std::size_t>> sccs;

  explicit TarjanState(const std::vector<std::vector<std::size_t>>& a)
      : adj(a),
        index(a.size(), kCfgNone),
        low(a.size(), 0),
        on_stack(a.size(), false) {}

  void run(std::size_t root) {
    struct Frame {
      std::size_t v;
      std::size_t next_edge = 0;
    };
    std::vector<Frame> frames;
    frames.push_back({root});
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.next_edge++];
        if (index[w] == kCfgNone) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w] && index[w] < low[f.v]) {
          low[f.v] = index[w];
        }
      } else {
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty() && low[v] < low[frames.back().v]) {
          low[frames.back().v] = low[v];
        }
        if (low[v] == index[v]) {
          std::vector<std::size_t> scc;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
      }
    }
  }
};

}  // namespace

std::vector<LambdaInfo> lambdas_in(const std::string& text) {
  std::vector<LambdaInfo> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '[') {
      ++i;
      continue;
    }
    if (i + 1 < text.size() && text[i + 1] == '[') {  // [[attribute]]
      const std::size_t close = text.find("]]", i + 2);
      if (close == std::string::npos) break;
      i = close + 2;
      continue;
    }
    // Expression position? A subscript's '[' follows an identifier, ')'
    // or ']'; a lambda-introducer's follows an operator, a delimiter, the
    // start of the statement, or a statement keyword like `return`.
    std::size_t p = i;
    while (p > 0 && text[p - 1] == ' ') --p;
    bool expr = (p == 0);
    if (!expr) {
      const char c = text[p - 1];
      if (c == '(' || c == ',' || c == '=' || c == '{' || c == ';' ||
          c == '&' || c == '|' || c == '!' || c == '<' || c == '?' ||
          c == ':' || c == '+' || c == '-' || c == '*') {
        expr = true;
      } else if (is_ident_char(c)) {
        std::size_t wb = p;
        while (wb > 0 && is_ident_char(text[wb - 1])) --wb;
        expr = stmt_keyword(text.substr(wb, p - wb));
      }
    }
    if (!expr) {
      ++i;
      continue;
    }
    // Capture list.
    std::size_t close = i + 1;
    int depth = 1;
    while (close < text.size() && depth > 0) {
      if (text[close] == '[') ++depth;
      if (text[close] == ']') --depth;
      ++close;
    }
    if (depth != 0) break;
    std::size_t q = close;
    while (q < text.size() && text[q] == ' ') ++q;
    if (q < text.size() && text[q] == '(') {  // parameter list
      int pd = 1;
      ++q;
      while (q < text.size() && pd > 0) {
        if (text[q] == '(') ++pd;
        if (text[q] == ')') --pd;
        ++q;
      }
      if (pd != 0) break;
    }
    // Specifiers / trailing return type up to the body brace.
    bool ok = true;
    while (q < text.size() && text[q] != '{') {
      const char c = text[q];
      if (is_ident_char(c) || c == ' ' || c == '-' || c == '>' || c == ':' ||
          c == '<' || c == ',' || c == '*' || c == '&' || c == '(' ||
          c == ')') {
        ++q;
      } else {
        ok = false;
        break;
      }
    }
    if (!ok || q >= text.size()) {
      i = close;
      continue;
    }
    std::size_t b = q + 1;
    int bd = 1;
    while (b < text.size() && bd > 0) {
      if (text[b] == '{') ++bd;
      if (text[b] == '}') --bd;
      ++b;
    }
    LambdaInfo info;
    info.cap_begin = i + 1;
    info.cap_end = close - 1;
    info.body_begin = q + 1;
    if (bd != 0) {  // truncated text: treat the tail as body
      info.body_end = text.size();
      out.push_back(info);
      break;
    }
    info.body_end = b - 1;
    out.push_back(info);
    i = b;
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> lambda_body_ranges(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const LambdaInfo& l : lambdas_in(text)) {
    out.emplace_back(l.body_begin, l.body_end);
  }
  return out;
}

CallGraph build_call_graph(const ProjectModel& model) {
  CallGraph cg;

  // 1. Every function definition in scope, deterministic order (files in
  //    path order, functions in definition order).
  std::vector<std::vector<RawSite>> raw_sites;
  for (const auto& [path, entry] : model.files) {
    if (!graph_scope(path)) continue;
    for (FunctionCfg& cfg : build_cfgs(entry.cleaned)) {
      CgFunction fn;
      fn.path = path;
      fn.display = cfg.qualifier.empty() ? cfg.name
                                         : cfg.qualifier + "::" + cfg.name;
      fn.cfg = std::move(cfg);
      std::vector<RawSite> sites;
      for (std::size_t n = 0; n < fn.cfg.nodes.size(); ++n) {
        const CfgNode& node = fn.cfg.nodes[n];
        if (node.kind == CfgNode::Kind::kEntry ||
            node.kind == CfgNode::Kind::kExit) {
          continue;
        }
        scan_node(node.text, n, node.line, lambda_body_ranges(node.text),
                  sites);
      }
      raw_sites.push_back(std::move(sites));
      cg.functions.push_back(std::move(fn));
    }
  }

  std::set<std::string> known_classes;
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    cg.by_name[cg.functions[f].cfg.name].push_back(f);
    if (!cg.functions[f].cfg.qualifier.empty()) {
      known_classes.insert(cg.functions[f].cfg.qualifier);
    }
  }

  // 2. Resolve.
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    CgFunction& fn = cg.functions[f];
    for (const RawSite& raw : raw_sites[f]) {
      CallSite site;
      site.callee = raw.callee;
      site.node = raw.node;
      site.line = raw.line;
      site.member = raw.member;
      site.deferred = raw.deferred;
      const auto it = cg.by_name.find(raw.callee);
      if (it != cg.by_name.end()) {
        for (const std::size_t t : it->second) {
          const CgFunction& cand = cg.functions[t];
          if (cand.cfg.is_destructor) continue;
          bool match = false;
          if (raw.qualified) {
            // `Qual::f(...)`: members of that class when it is a known
            // class; otherwise (namespace qualifier, or bare `::`) any
            // free function of the name.
            if (!raw.qualifier.empty() &&
                known_classes.count(raw.qualifier) != 0) {
              match = cand.cfg.qualifier == raw.qualifier;
            } else {
              match = cand.cfg.qualifier.empty();
            }
          } else if (raw.member) {
            // `x.f(...)`: any member function, unless the name belongs to
            // the std synchronization vocabulary.
            match = !cand.cfg.qualifier.empty() && !std_member(raw.callee);
          } else {
            // `f(...)`: free functions, plus members of the caller's own
            // class (the unqualified-member idiom).
            match = cand.cfg.qualifier.empty() ||
                    (!fn.cfg.qualifier.empty() &&
                     cand.cfg.qualifier == fn.cfg.qualifier);
          }
          if (match) site.targets.push_back(t);
        }
      }
      cg.resolved_edges += site.targets.size();
      fn.calls.push_back(std::move(site));
    }
  }

  // 3. SCCs over the synchronous (non-deferred) edges: summary
  //    propagation only follows those.
  std::vector<std::vector<std::size_t>> adj(cg.functions.size());
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    for (const CallSite& site : cg.functions[f].calls) {
      if (site.deferred) continue;
      for (const std::size_t t : site.targets) adj[f].push_back(t);
    }
  }
  TarjanState tarjan(adj);
  for (std::size_t f = 0; f < cg.functions.size(); ++f) {
    if (tarjan.index[f] == kCfgNone) tarjan.run(f);
  }
  cg.sccs = std::move(tarjan.sccs);
  return cg;
}

}  // namespace xh::lint
