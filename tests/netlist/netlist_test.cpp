#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

Netlist small_sequential() {
  Netlist nl("small");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId ff = nl.add_dff_placeholder("ff");
  const GateId g1 = nl.add_gate(GateType::kAnd, {a, b}, "g1");
  const GateId g2 = nl.add_gate(GateType::kXor, {g1, ff}, "g2");
  nl.connect_dff(ff, g2);
  nl.mark_output(g2);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = small_sequential();
  EXPECT_EQ(nl.gate_count(), 5u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, FindByName) {
  const Netlist nl = small_sequential();
  EXPECT_NE(nl.find("g2"), kNoGate);
  EXPECT_EQ(nl.gate(nl.find("g2")).type, GateType::kXor);
  EXPECT_EQ(nl.find("nope"), kNoGate);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, ArityEnforced) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kMux, {a, a}), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_gate(GateType::kAnd, {a, a, a}));
}

TEST(Netlist, DanglingFaninRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, {7}), std::invalid_argument);
}

TEST(Netlist, UnconnectedDffFailsFinalize) {
  Netlist nl;
  nl.add_input("a");
  nl.add_dff_placeholder("ff");
  EXPECT_THROW(nl.finalize(), std::invalid_argument);
}

TEST(Netlist, DoubleConnectDffThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId ff = nl.add_dff_placeholder("ff");
  nl.connect_dff(ff, a);
  EXPECT_THROW(nl.connect_dff(ff, a), std::invalid_argument);
}

TEST(Netlist, ImmutableAfterFinalize) {
  Netlist nl = small_sequential();
  EXPECT_THROW(nl.add_input("z"), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(0), std::invalid_argument);
}

TEST(Netlist, BusRequiresTristateDrivers) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  nl.add_gate(GateType::kBus, {a, b}, "badbus");
  EXPECT_THROW(nl.finalize(), std::invalid_argument);
}

TEST(Netlist, BusWithTristateDriversFinalizes) {
  Netlist nl;
  const GateId en = nl.add_input("en");
  const GateId d = nl.add_input("d");
  const GateId t1 = nl.add_gate(GateType::kTristate, {en, d}, "t1");
  const GateId t2 = nl.add_gate(GateType::kTristate, {d, en}, "t2");
  const GateId bus = nl.add_gate(GateType::kBus, {t1, t2}, "bus");
  nl.mark_output(bus);
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, LevelsAndDepth) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kAnd, {a, b}, "g1");
  const GateId g2 = nl.add_gate(GateType::kOr, {g1, a}, "g2");
  const GateId g3 = nl.add_gate(GateType::kNot, {g2}, "g3");
  nl.mark_output(g3);
  nl.finalize();
  EXPECT_EQ(nl.level(a), 0u);
  EXPECT_EQ(nl.level(g1), 1u);
  EXPECT_EQ(nl.level(g2), 2u);
  EXPECT_EQ(nl.level(g3), 3u);
  EXPECT_EQ(nl.depth(), 3u);
}

TEST(Netlist, TopoOrderRespectsFanin) {
  const Netlist nl = small_sequential();
  std::vector<std::size_t> position(nl.gate_count());
  const auto& topo = nl.topo_order();
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kDff) continue;  // sequential edges may go back
    for (const GateId f : g.fanin) {
      EXPECT_LT(position[f], position[id]);
    }
  }
}

TEST(Netlist, FanoutEdges) {
  const Netlist nl = small_sequential();
  const GateId a = nl.find("a");
  const GateId g1 = nl.find("g1");
  const auto& fo = nl.fanout(a);
  EXPECT_NE(std::find(fo.begin(), fo.end(), g1), fo.end());
}

TEST(Netlist, FanoutConeStopsAtDff) {
  const Netlist nl = small_sequential();
  const GateId g1 = nl.find("g1");
  const auto cone = nl.fanout_cone(g1);
  // g1 → g2 → ff (ff included as an observation point, not crossed).
  EXPECT_EQ(cone.size(), 2u);
}

TEST(Netlist, ScanPartition) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_dff(a, "s0", /*scanned=*/true);
  const GateId x0 = nl.add_dff(a, "x0", /*scanned=*/false);
  nl.set_scanned(x0, false);
  nl.mark_output(a);
  nl.finalize();
  EXPECT_EQ(nl.scan_dffs().size(), 1u);
  EXPECT_EQ(nl.nonscan_dffs().size(), 1u);
}

TEST(Netlist, StatsCounts) {
  Netlist nl;
  const GateId en = nl.add_input("en");
  const GateId d = nl.add_input("d");
  const GateId t1 = nl.add_gate(GateType::kTristate, {en, d}, "t1");
  const GateId bus = nl.add_gate(GateType::kBus, {t1}, "bus");
  nl.add_dff(bus, "ff", true);
  nl.add_dff(bus, "xff", false);
  nl.mark_output(bus);
  nl.finalize();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.dffs, 2u);
  EXPECT_EQ(s.nonscan_dffs, 1u);
  EXPECT_EQ(s.tristate_drivers, 1u);
  EXPECT_EQ(s.buses, 1u);
}

TEST(Netlist, AnonymousNamesAreUnique) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kNot, {a});
  const GateId g2 = nl.add_gate(GateType::kNot, {a});
  EXPECT_NE(nl.gate(g1).name, nl.gate(g2).name);
}

}  // namespace
}  // namespace xh
