#include "core/api.hpp"
#include "core/api.hpp"

namespace fixture {

int twice() { return make_thing() + make_thing(); }

}  // namespace fixture
