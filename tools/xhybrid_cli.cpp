// xhybrid command-line front end.
//
//   xhybrid_cli example
//       Run the paper's Section 4 worked example and print the full trace.
//
//   xhybrid_cli analyze --chains N --length L --patterns P --density D
//                       [--clustered F] [--misr M] [--q Q] [--seed S]
//                       [--save file.xm]
//       Generate a synthetic workload and print the hybrid analysis report;
//       optionally save the X matrix for later runs.
//
//   xhybrid_cli analyze --load file.xm [--misr M] [--q Q]
//       Analyze a previously saved (or externally produced) X matrix.
//
//   xhybrid_cli circuit <netlist.bench> [--chains N] [--patterns P]
//                       [--misr M] [--q Q] [--seed S]
//       Read a .bench netlist (with NDFF/TRISTATE/BUS X-source extensions),
//       run ATPG, capture responses, and print the hybrid analysis +
//       verified coverage result.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "response/io.hpp"
#include "scan/test_application.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s example\n"
      "  %s analyze --chains N --length L --patterns P --density D\n"
      "             [--clustered F] [--misr M] [--q Q] [--seed S]\n"
      "  %s circuit <netlist.bench> [--chains N] [--patterns P]\n"
      "             [--misr M] [--q Q] [--seed S]\n",
      argv0, argv0, argv0);
  std::exit(2);
}

struct Options {
  std::size_t chains = 8;
  std::size_t length = 32;
  std::size_t patterns = 200;
  double density = 0.02;
  double clustered = 0.5;
  std::size_t misr = 32;
  std::size_t q = 7;
  std::uint64_t seed = 1;
  std::string positional;
  std::string save_path;
  std::string load_path;
};

Options parse(int argc, char** argv, int from) {
  Options opt;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--chains") {
      opt.chains = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--length") {
      opt.length = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--patterns") {
      opt.patterns = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--density") {
      opt.density = std::atof(next());
    } else if (arg == "--clustered") {
      opt.clustered = std::atof(next());
    } else if (arg == "--misr") {
      opt.misr = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--q") {
      opt.q = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--save") {
      opt.save_path = next();
    } else if (arg == "--load") {
      opt.load_path = next();
    } else if (!arg.empty() && arg[0] != '-' && opt.positional.empty()) {
      opt.positional = arg;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

void print_report(const HybridReport& rep) {
  TextTable t({"metric", "value"});
  t.add_row({"cells x patterns",
             std::to_string(rep.num_chains * rep.chain_length) + " x " +
                 std::to_string(rep.num_patterns)});
  t.add_row({"total X (density)",
             std::to_string(rep.total_x) + " (" +
                 TextTable::num(100.0 * rep.x_density, 3) + "%)"});
  t.add_row({"partitions",
             std::to_string(rep.partitioning.num_partitions())});
  t.add_row({"masked / leaked X",
             std::to_string(rep.partitioning.masked_x) + " / " +
                 std::to_string(rep.partitioning.leaked_x)});
  t.add_row({"X-masking only bits [5]",
             std::to_string(rep.masking_only_bits)});
  t.add_row({"X-canceling only bits [12]",
             TextTable::num(rep.canceling_only_bits, 1)});
  t.add_row({"proposed hybrid bits",
             TextTable::num(rep.proposed_bits, 1)});
  t.add_row({"improvement over [5]",
             TextTable::num(rep.improvement_over_masking, 2) + "x"});
  t.add_row({"improvement over [12]",
             TextTable::num(rep.improvement_over_canceling, 2) + "x"});
  t.add_row({"test time [12] -> proposed",
             TextTable::num(rep.test_time_canceling_only, 3) + " -> " +
                 TextTable::num(rep.test_time_proposed, 3) + " (" +
                 TextTable::num(rep.test_time_improvement, 2) + "x)"});
  std::printf("%s", t.render().c_str());
}

int cmd_example() {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const XMatrix xm = paper_example_x_matrix();
  const PartitionResult r = partition_patterns(xm, cfg);
  std::printf("Section 4 worked example (m=10, q=2):\n");
  for (const auto& h : r.history) {
    std::printf("  round %zu: %zu partitions, masked %llu, bits %.1f%s\n",
                h.round, h.num_partitions,
                static_cast<unsigned long long>(h.masked_x), h.total_bits,
                h.accepted ? "" : "  (rejected)");
  }
  HybridConfig hcfg;
  hcfg.partitioner = cfg;
  print_report(run_hybrid_analysis(xm, hcfg));
  return 0;
}

int cmd_analyze(const Options& opt) {
  HybridConfig cfg;
  cfg.partitioner.misr = {opt.misr, opt.q};
  if (!opt.load_path.empty()) {
    std::ifstream in(opt.load_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opt.load_path.c_str());
      return 1;
    }
    print_report(run_hybrid_analysis(read_x_matrix(in), cfg));
    return 0;
  }
  WorkloadProfile profile;
  profile.name = "cli";
  profile.geometry = {opt.chains, opt.length};
  profile.num_patterns = opt.patterns;
  profile.x_density = opt.density;
  profile.clustered_fraction = opt.clustered;
  profile.cluster_cells_mean =
      std::max<std::size_t>(2, opt.chains * opt.length / 40);
  profile.cluster_patterns_mean = std::max<std::size_t>(2, opt.patterns / 5);
  profile.seed = opt.seed;

  const XMatrix xm = generate_workload(profile);
  if (!opt.save_path.empty()) {
    std::ofstream out(opt.save_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.save_path.c_str());
      return 1;
    }
    write_x_matrix(xm, out);
    std::printf("saved X matrix to %s\n", opt.save_path.c_str());
  }
  print_report(run_hybrid_analysis(xm, cfg));
  return 0;
}

int cmd_circuit(const Options& opt, const char* argv0) {
  if (opt.positional.empty()) usage(argv0);
  std::ifstream in(opt.positional);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.positional.c_str());
    return 1;
  }
  const Netlist nl = read_bench(in, opt.positional);
  const ScanPlan plan = ScanPlan::build(nl, opt.chains);
  std::printf("netlist %s: %zu gates, %zu scanned / %zu unscanned flops\n",
              nl.name().c_str(), nl.gate_count(), nl.scan_dffs().size(),
              nl.nonscan_dffs().size());

  AtpgConfig acfg;
  acfg.random_patterns = std::min<std::size_t>(opt.patterns, 256);
  acfg.seed = opt.seed;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  std::printf("ATPG: %zu patterns, coverage %.2f%%\n", atpg.patterns.size(),
              100.0 * atpg.coverage());

  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(atpg.patterns);
  HybridConfig cfg;
  cfg.partitioner.misr = {opt.misr, opt.q};
  const HybridSimulation sim = run_hybrid_simulation(response, cfg);
  print_report(sim.report);

  FaultSimulator fsim(nl, plan);
  const FaultSimResult ideal =
      fsim.run(atpg.patterns, atpg.faults, observe_all());
  const FaultSimResult masked = fsim.run(
      atpg.patterns, atpg.faults,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  std::printf("coverage under hybrid masks: %.2f%% (ideal %.2f%%) -> %s\n",
              100.0 * masked.coverage(), 100.0 * ideal.coverage(),
              masked.num_detected == ideal.num_detected ? "no loss"
                                                        : "LOSS");
  return masked.num_detected == ideal.num_detected ? 0 : 1;
}

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  if (argc < 2) xh::usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "example") return xh::cmd_example();
    const xh::Options opt = xh::parse(argc, argv, 2);
    if (cmd == "analyze") return xh::cmd_analyze(opt);
    if (cmd == "circuit") return xh::cmd_circuit(opt, argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  xh::usage(argv[0]);
}
