#include "lint/dataflow.hpp"

#include <algorithm>
#include <cctype>
#include <deque>

namespace xh::lint {
namespace {

bool text_declares_guard(const std::string& text) {
  for (const char* kind : {"lock_guard", "scoped_lock", "unique_lock"}) {
    const std::size_t p = find_ident(text, kind);
    if (p == std::string::npos) continue;
    if (text.find('(', p) != std::string::npos ||
        text.find('{', p) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool acquires(const CfgNode& node) {
  return has_member_call(node.text, "lock") ||
         text_declares_guard(node.text);
}

bool releases(const CfgNode& node) {
  return has_member_call(node.text, "unlock");
}

}  // namespace

GuardState join(GuardState a, GuardState b) {
  if (a == GuardState::kBottom) return b;
  if (b == GuardState::kBottom) return a;
  if (a == b) return a;
  return GuardState::kBoth;
}

GuardAnalysis analyze_guards(const FunctionCfg& cfg) {
  GuardAnalysis ga;
  for (const char* kind : {"lock_guard", "scoped_lock", "unique_lock"}) {
    if (has_ident(cfg.params, kind)) ga.param_locked = true;
  }
  ga.in.assign(cfg.nodes.size(), GuardState::kBottom);
  ga.out.assign(cfg.nodes.size(), GuardState::kBottom);

  const auto transfer = [&](std::size_t n, GuardState in) {
    const CfgNode& node = cfg.nodes[n];
    if (n == FunctionCfg::kEntry) {
      return ga.param_locked ? GuardState::kLocked : GuardState::kUnlocked;
    }
    // Release wins over acquire within one statement: the only same-node
    // combination in practice is `cv.wait(lock)`-style code, which ends
    // held, so check acquire first — but an explicit unlock as the LAST
    // lock-ish token is a release. Per-statement granularity: classify by
    // whichever member call appears last.
    const bool acq = acquires(node);
    const bool rel = releases(node);
    if (acq && rel) {
      std::size_t last_lock = std::string::npos;
      std::size_t last_unlock = std::string::npos;
      for (std::size_t p = find_ident(node.text, "lock");
           p != std::string::npos; p = find_ident(node.text, "lock", p + 1)) {
        last_lock = p;
      }
      for (std::size_t p = find_ident(node.text, "unlock");
           p != std::string::npos;
           p = find_ident(node.text, "unlock", p + 1)) {
        last_unlock = p;
      }
      if (last_unlock != std::string::npos &&
          (last_lock == std::string::npos || last_unlock > last_lock)) {
        return GuardState::kUnlocked;
      }
      return GuardState::kLocked;
    }
    if (rel) return GuardState::kUnlocked;
    if (acq) return GuardState::kLocked;
    // Outside every guard scope (and with no lock parameter) any manual
    // state has died with its scope.
    if (node.scope_locks == 0 && !ga.param_locked) {
      return GuardState::kUnlocked;
    }
    return in;
  };

  std::deque<std::size_t> work = {FunctionCfg::kEntry};
  std::vector<bool> queued(cfg.nodes.size(), false);
  queued[FunctionCfg::kEntry] = true;
  while (!work.empty()) {
    const std::size_t n = work.front();
    work.pop_front();
    queued[n] = false;
    const GuardState out = transfer(n, ga.in[n]);
    if (out == ga.out[n] && ga.out[n] != GuardState::kBottom) continue;
    ga.out[n] = out;
    for (const std::size_t s : cfg.nodes[n].succ) {
      const GuardState merged = join(ga.in[s], out);
      if (merged != ga.in[s] || ga.out[s] == GuardState::kBottom) {
        ga.in[s] = merged;
        if (!queued[s]) {
          queued[s] = true;
          work.push_back(s);
        }
      }
    }
  }
  return ga;
}

GuardState state_at(const GuardAnalysis& ga, const FunctionCfg& cfg,
                    std::size_t n) {
  if (acquires(cfg.nodes[n])) return GuardState::kLocked;
  // Same scope-death rule as the transfer function: a locked in-state from
  // inside a guard scope does not survive past the scope's closing brace.
  if (cfg.nodes[n].scope_locks == 0 && !ga.param_locked &&
      !releases(cfg.nodes[n])) {
    return GuardState::kUnlocked;
  }
  return ga.in[n];
}

std::vector<std::vector<std::size_t>> predecessors(const FunctionCfg& cfg) {
  std::vector<std::vector<std::size_t>> pred(cfg.nodes.size());
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    for (const std::size_t s : cfg.nodes[n].succ) pred[s].push_back(n);
  }
  return pred;
}

std::vector<std::size_t> cycle_nodes(const FunctionCfg& cfg,
                                     std::size_t head) {
  const std::vector<std::size_t> fwd = reachable_from(cfg, head);
  // Backward reachability to head over the predecessor graph.
  const auto pred = predecessors(cfg);
  std::vector<bool> back(cfg.nodes.size(), false);
  std::vector<std::size_t> stack = {head};
  back[head] = true;
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    for (const std::size_t p : pred[n]) {
      if (!back[p]) {
        back[p] = true;
        stack.push_back(p);
      }
    }
  }
  std::vector<std::size_t> out;
  for (const std::size_t n : fwd) {
    if (back[n]) out.push_back(n);
  }
  // A head with no cycle back to itself (e.g. a degenerate loop whose body
  // always breaks) reports empty rather than {head}.
  bool head_on_cycle = false;
  for (const std::size_t s : cfg.nodes[head].succ) {
    if (back[s]) head_on_cycle = true;
  }
  if (!head_on_cycle) return {};
  return out;
}

bool exists_path(const FunctionCfg& cfg, std::size_t from,
                 const std::function<bool(std::size_t)>& is_target,
                 const std::function<bool(std::size_t)>& is_blocked) {
  std::vector<bool> seen(cfg.nodes.size(), false);
  std::vector<std::size_t> stack(cfg.nodes[from].succ.begin(),
                                 cfg.nodes[from].succ.end());
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = true;
    if (is_target(n)) return true;
    if (is_blocked(n)) continue;
    for (const std::size_t s : cfg.nodes[n].succ) stack.push_back(s);
  }
  return false;
}

bool may_reach_exit(const FunctionCfg& cfg, std::size_t from,
                    const std::function<bool(std::size_t)>& blocked) {
  return exists_path(
      cfg, from, [](std::size_t n) { return n == FunctionCfg::kExit; },
      blocked);
}

// ---- textual def/use classification ------------------------------------

bool member_of_other(const std::string& text, std::size_t p) {
  std::size_t b = p;
  while (b > 0 && text[b - 1] == ' ') --b;
  if (b == 0) return false;
  if (text[b - 1] == '.') return true;
  return b >= 2 && text[b - 2] == '-' && text[b - 1] == '>';
}

bool is_use(const std::string& text, const std::string& name) {
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (!member_of_other(text, p)) return true;
  }
  return false;
}

namespace {

bool keyword_before_def(const std::string& word) {
  return word == "return" || word == "throw" || word == "delete" ||
         word == "co_return" || word == "case" || word == "new";
}

/// Classifies the occurrence of @p name at @p p in @p text.
enum class Occurrence { kPlain, kAssign, kDecl };

Occurrence classify(const std::string& text, const std::string& name,
                    std::size_t p) {
  // Look forward for `name =` (not ==, and not compound ops which read).
  std::size_t q = p + name.size();
  while (q < text.size() && text[q] == ' ') ++q;
  const bool assigned = q < text.size() && text[q] == '=' &&
                        (q + 1 >= text.size() || text[q + 1] != '=');
  // Look backward for a preceding type-ish token: identifier, `>`, `&`,
  // `*` — `Diagnostics diags`, `auto& d`, `Status* s`.
  std::size_t b = p;
  while (b > 0 && text[b - 1] == ' ') --b;
  bool decl = false;
  if (b > 0) {
    const char c = text[b - 1];
    if (c == '&' && b >= 2 && text[b - 2] == '&') {
      // `cond && name` — logical-and, not an rvalue-reference declaration.
      // (Misreading a rare `T&& name` local as plain only loses a decl
      // classification; misreading `&& name` as a decl invents defs.)
      decl = false;
    } else if (c == '>' || c == '&' || c == '*') {
      decl = true;
    } else if (is_ident_char(c)) {
      std::size_t wb = b;
      while (wb > 0 && is_ident_char(text[wb - 1])) --wb;
      decl = !keyword_before_def(text.substr(wb, b - wb));
    }
  }
  if (decl) return Occurrence::kDecl;
  if (assigned) return Occurrence::kAssign;
  return Occurrence::kPlain;
}

}  // namespace

bool is_def(const std::string& text, const std::string& name) {
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (member_of_other(text, p)) continue;
    if (classify(text, name, p) != Occurrence::kPlain) return true;
  }
  return false;
}

bool is_decl(const std::string& text, const std::string& name) {
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (member_of_other(text, p)) continue;
    if (classify(text, name, p) == Occurrence::kDecl) return true;
  }
  return false;
}

bool has_member_call(const std::string& text, const std::string& name) {
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (p == 0) continue;
    const char before = text[p - 1];
    const bool member =
        before == '.' || (p >= 2 && text[p - 2] == '-' && before == '>');
    if (!member) continue;
    std::size_t q = p + name.size();
    while (q < text.size() && text[q] == ' ') ++q;
    if (q < text.size() && text[q] == '(') return true;
  }
  return false;
}

bool status_type(const std::string& word) {
  return word == "Diagnostics" || ends_with(word, "Status") ||
         ends_with(word, "Outcome") || ends_with(word, "Result") ||
         ends_with(word, "Errc");
}

bool blocking_text(const std::string& text) {
  static const char* const kBlocking[] = {
      "sleep_ns",  "sleep_for", "sleep_until", "wait",
      "wait_for",  "wait_until", "usleep",     "nanosleep"};
  for (const char* fn : kBlocking) {
    if (has_ident(text, fn)) return true;
  }
  return false;
}

std::vector<std::string> token_names(const FunctionCfg& cfg) {
  std::vector<std::string> names;
  const auto harvest = [&](const std::string& text) {
    for (std::size_t p = find_ident(text, "CancelToken");
         p != std::string::npos;
         p = find_ident(text, "CancelToken", p + 1)) {
      std::size_t q = p + 11;  // strlen("CancelToken")
      while (q < text.size() &&
             (text[q] == ' ' || text[q] == '&' || text[q] == '*')) {
        ++q;
      }
      std::size_t e = q;
      while (e < text.size() && is_ident_char(text[e])) ++e;
      if (e == q) continue;
      const std::string name = text.substr(q, e - q);
      if (name == "const") continue;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  };
  harvest(cfg.params);
  for (const CfgNode& node : cfg.nodes) harvest(node.text);
  return names;
}

std::string type_word_before(const std::string& text, std::size_t p) {
  std::size_t b = p;
  const auto skip_back_ws = [&] {
    while (b > 0 && text[b - 1] == ' ') --b;
  };
  skip_back_ws();
  while (b > 0 && (text[b - 1] == '&' || text[b - 1] == '*')) {
    --b;
    skip_back_ws();
  }
  if (b > 0 && text[b - 1] == '>') {
    int depth = 0;
    while (b > 0) {
      if (text[b - 1] == '>') ++depth;
      if (text[b - 1] == '<' && --depth == 0) {
        --b;
        break;
      }
      --b;
    }
    skip_back_ws();
  }
  std::size_t wb = b;
  while (wb > 0 && is_ident_char(text[wb - 1])) --wb;
  return text.substr(wb, b - wb);
}

}  // namespace xh::lint
