#include "scan/test_application.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "sim/comb_sim.hpp"

namespace xh {
namespace {

TEST(TestApplication, CapturesCombinationalFunction) {
  // q captures XOR(a, s0): fully deterministic circuit.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\ns0 = DFF(d)\nd = XOR(a, s0)\nq = BUF(d)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TestApplicator app(nl, plan);

  std::vector<TestPattern> patterns;
  for (const bool a : {false, true}) {
    for (const bool s : {false, true}) {
      TestPattern p;
      p.pi = {a ? Lv::k1 : Lv::k0};
      p.scan_in = {s ? Lv::k1 : Lv::k0};
      patterns.push_back(p);
    }
  }
  const ResponseMatrix r = app.capture(patterns);
  EXPECT_EQ(r.get(0, 0), Lv::k0);  // 0^0
  EXPECT_EQ(r.get(1, 0), Lv::k1);  // 0^1
  EXPECT_EQ(r.get(2, 0), Lv::k1);  // 1^0
  EXPECT_EQ(r.get(3, 0), Lv::k0);  // 1^1
  EXPECT_EQ(r.total_x(), 0u);
}

TEST(TestApplication, UnscannedFlopPollutesCapture) {
  // The scanned flop captures XOR(a, unscanned) = X always.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nu = NDFF(a)\nq = DFF(d)\nd = XOR(a, u)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TestApplicator app(nl, plan);
  TestPattern p;
  p.pi = {Lv::k1};
  p.scan_in = {Lv::k0};
  const ResponseMatrix r = app.capture({p});
  EXPECT_EQ(r.get(0, 0), Lv::kX);
}

TEST(TestApplication, XSourceOnlyPollutesItsCone) {
  // Two scanned flops: one captures clean logic, one captures X-source data.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q1)\nOUTPUT(q2)\n"
      "u = NDFF(a)\n"
      "clean = AND(a, b)\nq1 = DFF(clean)\n"
      "dirty = OR(u, b)\nq2 = DFF(dirty)\n");
  const ScanPlan plan = ScanPlan::build(nl, 2);
  TestApplicator app(nl, plan);
  TestPattern p;
  p.pi = {Lv::k1, Lv::k0};  // b = 0 so OR(u, 0) = X
  p.scan_in.assign(plan.geometry().num_cells(), Lv::k0);
  const ResponseMatrix r = app.capture({p});
  const std::size_t clean_cell = plan.cell_of(nl.find("q1"));
  const std::size_t dirty_cell = plan.cell_of(nl.find("q2"));
  EXPECT_EQ(r.get(0, clean_cell), Lv::k0);
  EXPECT_EQ(r.get(0, dirty_cell), Lv::kX);
  // With b = 1 the OR is controlled and the X is blocked.
  p.pi = {Lv::k1, Lv::k1};
  const ResponseMatrix r2 = app.capture({p});
  EXPECT_EQ(r2.get(0, dirty_cell), Lv::k1);
}

TEST(TestApplication, FaultChangesCapture) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TestApplicator app(nl, plan);
  TestPattern p;
  p.pi = {Lv::k1, Lv::k1};
  p.scan_in = {Lv::k0};
  const ResponseMatrix good = app.capture({p});
  const ResponseMatrix bad = app.capture_faulty({p}, nl.find("g"), false);
  EXPECT_EQ(good.get(0, 0), Lv::k1);
  EXPECT_EQ(bad.get(0, 0), Lv::k0);
}

TEST(TestApplication, MatchesScalarSimulatorOnRandomCircuit) {
  GeneratorConfig gcfg;
  gcfg.seed = 9;
  gcfg.num_gates = 120;
  gcfg.num_dffs = 10;
  gcfg.nonscan_fraction = 0.2;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  TestApplicator app(nl, plan);

  Rng rng(4);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 70; ++i) {  // spans two 64-lane blocks
    patterns.push_back(random_pattern(nl, plan, rng));
  }
  const ResponseMatrix r = app.capture(patterns);

  CombSim ref(nl);
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    ref.set_inputs(patterns[pi].pi);
    ref.set_all_state(Lv::kX);
    for (std::size_t cell = 0; cell < plan.geometry().num_cells(); ++cell) {
      const GateId dff = plan.dff_at(cell);
      if (dff != kNoGate) ref.set_state(dff, patterns[pi].scan_in[cell]);
    }
    ref.evaluate();
    for (std::size_t cell = 0; cell < plan.geometry().num_cells(); ++cell) {
      const GateId dff = plan.dff_at(cell);
      if (dff == kNoGate) continue;
      ASSERT_EQ(r.get(pi, cell), ref.next_state(dff))
          << "pattern " << pi << " cell " << cell;
    }
  }
}

TEST(TestApplication, RandomPatternShapes) {
  GeneratorConfig gcfg;
  gcfg.num_dffs = 7;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 3);
  Rng rng(1);
  const TestPattern p = random_pattern(nl, plan, rng);
  EXPECT_EQ(p.pi.size(), nl.inputs().size());
  EXPECT_EQ(p.scan_in.size(), plan.geometry().num_cells());
  for (const Lv v : p.pi) EXPECT_TRUE(is_definite(v));
}

}  // namespace
}  // namespace xh
