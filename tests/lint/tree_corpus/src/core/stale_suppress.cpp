namespace fixture {

int answer() {
  // xh-lint: allow(XH-DET-001)
  return 42;
}

}  // namespace fixture
