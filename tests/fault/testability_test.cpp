#include "fault/testability.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace xh {
namespace {

TEST(Scoap, InputsAndScannedFlopsCostOne) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.cc0[nl.find("a")], 1u);
  EXPECT_EQ(t.cc1[nl.find("a")], 1u);
  EXPECT_EQ(t.cc0[nl.find("q")], 1u);
}

TEST(Scoap, UnscannedFlopIsUncontrollable) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nu = NDFF(a)\nq = DFF(u)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.cc0[nl.find("u")], kScoapInf);
  EXPECT_EQ(t.cc1[nl.find("u")], kScoapInf);
}

TEST(Scoap, AndGateAsymmetry) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(q)\n"
      "g = AND(a, b, c)\nq = DFF(g)\n");
  const Testability t = compute_scoap(nl);
  const GateId g = nl.find("g");
  EXPECT_EQ(t.cc1[g], 4u) << "all three inputs to 1, +1";
  EXPECT_EQ(t.cc0[g], 2u) << "any single input to 0, +1";
}

TEST(Scoap, NotInvertsControllability) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\ng0 = AND(a, a)\nn = NOT(g0)\nq = DFF(n)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.cc0[nl.find("n")], t.cc1[nl.find("g0")] + 1);
  EXPECT_EQ(t.cc1[nl.find("n")], t.cc0[nl.find("g0")] + 1);
}

TEST(Scoap, XorCosts) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = XOR(a, b)\nq = DFF(g)\n");
  const Testability t = compute_scoap(nl);
  const GateId g = nl.find("g");
  EXPECT_EQ(t.cc1[g], 3u);  // one input 0, other 1, +1
  EXPECT_EQ(t.cc0[g], 3u);
}

TEST(Scoap, ObservationPointIsScanDInput) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.co[nl.find("g")], 0u) << "feeds a scanned flop";
  // a observable through the AND: needs b=1 plus the gate depth.
  EXPECT_EQ(t.co[nl.find("a")], 0u + 1u + 1u);
}

TEST(Scoap, PrimaryOutputsNotObserved) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(n)\nn = NOT(a)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.co[nl.find("n")], kScoapInf) << "POs are not observation points";
  EXPECT_EQ(t.co[nl.find("a")], kScoapInf);
}

TEST(Scoap, ObservabilityThroughXSourceIsInfinite) {
  // Only observation path XORs with an unscanned flop: the side input has
  // infinite controllability, so CO saturates.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nu = NDFF(a)\nd = XOR(a, u)\nq = DFF(d)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_EQ(t.co[nl.find("a")], kScoapInf);
}

TEST(Scoap, MuxSelectAndDataCosts) {
  const Netlist nl = read_bench_string(
      "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
      "m = MUX(s, a, b)\nq = DFF(m)\n");
  const Testability t = compute_scoap(nl);
  const GateId m = nl.find("m");
  EXPECT_EQ(t.cc1[m], 3u);  // s=0 and a=1 (or s=1 and b=1), +1
  // Data input a observable when s = 0.
  EXPECT_EQ(t.co[nl.find("a")], 0u + 1u + 1u);
}

TEST(Scoap, TristateNeedsEnable) {
  const Netlist nl = read_bench_string(
      "INPUT(en)\nINPUT(d)\nOUTPUT(q)\n"
      "t = TRISTATE(en, d)\nb = BUS(t)\nq = DFF(b)\n");
  const Testability t = compute_scoap(nl);
  const GateId tg = nl.find("t");
  EXPECT_EQ(t.cc1[tg], 1u + 1u + 1u);  // en=1, d=1, +1
  // d observable only with en = 1.
  EXPECT_EQ(t.co[nl.find("d")], 0u + 1u /*bus*/ + 1u + 1u /*en*/);
}

TEST(Scoap, DeeperLogicCostsMore) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
      "g1 = AND(a, b)\ng2 = AND(g1, a)\ng3 = AND(g2, b)\nq = DFF(g3)\n");
  const Testability t = compute_scoap(nl);
  EXPECT_LT(t.cc1[nl.find("g1")], t.cc1[nl.find("g2")]);
  EXPECT_LT(t.cc1[nl.find("g2")], t.cc1[nl.find("g3")]);
}

}  // namespace
}  // namespace xh
