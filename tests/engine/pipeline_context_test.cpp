// PipelineContext routing: diagnostics precedence (the be_lenient-after-
// adopt_collector regression), trace plumbing, and config access.
#include "engine/pipeline_context.hpp"

#include <gtest/gtest.h>

namespace xh {
namespace {

TEST(PipelineContext, StrictByDefault) {
  PipelineContext ctx;
  EXPECT_EQ(ctx.collector(), nullptr);
}

TEST(PipelineContext, BeLenientSelectsOwnedCollector) {
  PipelineContext ctx;
  ctx.be_lenient();
  ASSERT_NE(ctx.collector(), nullptr);
  EXPECT_EQ(ctx.collector(), &ctx.diagnostics());
}

TEST(PipelineContext, AdoptCollectorRoutesToCaller) {
  Diagnostics diags;
  PipelineContext ctx;
  ctx.adopt_collector(&diags);
  EXPECT_EQ(ctx.collector(), &diags);
}

// Regression: be_lenient() after adopt_collector() used to silently
// re-target the sink to the owned collector, so every later record vanished
// from the caller's Diagnostics. The adopted collector must keep precedence
// and the bad call itself must be diagnosed into it.
TEST(PipelineContext, BeLenientAfterAdoptKeepsAdoptedCollector) {
  Diagnostics diags;
  PipelineContext ctx;
  ctx.adopt_collector(&diags);
  ctx.be_lenient();
  EXPECT_EQ(ctx.collector(), &diags);
  EXPECT_EQ(diags.count(DiagKind::kBadArgument), 1u);
  EXPECT_TRUE(diags.has_warnings());
  // Later records still reach the caller's collector.
  ctx.collector()->warn(DiagKind::kMissingX, "pattern 0 cell 0", "resolved");
  EXPECT_EQ(diags.count(DiagKind::kMissingX), 1u);
  // The owned collector saw none of it.
  EXPECT_TRUE(ctx.diagnostics().empty());
}

TEST(PipelineContext, AdoptNullReleasesAndReturnsToStrict) {
  Diagnostics diags;
  PipelineContext ctx;
  ctx.adopt_collector(&diags);
  ctx.adopt_collector(nullptr);
  EXPECT_EQ(ctx.collector(), nullptr);
  // After the release, be_lenient() works normally again (no warning).
  ctx.be_lenient();
  EXPECT_EQ(ctx.collector(), &ctx.diagnostics());
  EXPECT_TRUE(diags.empty());
}

TEST(PipelineContext, BeLenientTwiceIsIdempotent) {
  PipelineContext ctx;
  ctx.be_lenient();
  ctx.be_lenient();
  EXPECT_EQ(ctx.collector(), &ctx.diagnostics());
  EXPECT_TRUE(ctx.diagnostics().empty());
}

TEST(PipelineContext, TraceOffByDefaultAndSettable) {
  PipelineContext ctx;
  EXPECT_EQ(ctx.trace(), nullptr);
  Trace trace;
  ctx.set_trace(&trace);
  EXPECT_EQ(ctx.trace(), &trace);
  ctx.set_trace(nullptr);
  EXPECT_EQ(ctx.trace(), nullptr);
}

TEST(PipelineContext, ConfigCtorSeedsMisrAndRng) {
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  PipelineContext ctx(cfg);
  EXPECT_EQ(ctx.misr().size, 16u);
  EXPECT_EQ(ctx.misr().q, 4u);
}

}  // namespace
}  // namespace xh
