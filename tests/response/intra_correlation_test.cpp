#include <gtest/gtest.h>

#include "response/x_stats.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(IntraCorrelation, EmptyMatrix) {
  const XMatrix xm({2, 5}, 4);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 0u);
  EXPECT_EQ(ic.longest_run, 0u);
  EXPECT_DOUBLE_EQ(ic.mean_run_length, 0.0);
  EXPECT_DOUBLE_EQ(ic.adjacency_fraction, 0.0);
}

TEST(IntraCorrelation, SingleIsolatedX) {
  XMatrix xm({1, 5}, 3);
  xm.add_x(2, 1);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 1u);
  EXPECT_EQ(ic.longest_run, 1u);
  EXPECT_DOUBLE_EQ(ic.mean_run_length, 1.0);
  EXPECT_DOUBLE_EQ(ic.adjacency_fraction, 0.0);
}

TEST(IntraCorrelation, ContiguousBlockIsOneRun) {
  XMatrix xm({1, 6}, 2);
  for (const std::size_t cell : {1u, 2u, 3u}) xm.add_x(cell, 0);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 1u);
  EXPECT_EQ(ic.longest_run, 3u);
  EXPECT_DOUBLE_EQ(ic.mean_run_length, 3.0);
  EXPECT_DOUBLE_EQ(ic.adjacency_fraction, 1.0);
}

TEST(IntraCorrelation, RunsDoNotCrossChains) {
  // Cells 2 and 3 are adjacent indices but belong to different chains
  // (chain length 3: cells 0-2 chain 0, cells 3-5 chain 1).
  XMatrix xm({2, 3}, 1);
  xm.add_x(2, 0);
  xm.add_x(3, 0);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 2u);
  EXPECT_EQ(ic.longest_run, 1u);
  EXPECT_DOUBLE_EQ(ic.adjacency_fraction, 0.0);
}

TEST(IntraCorrelation, SeparateRunsInOnePattern) {
  XMatrix xm({1, 8}, 1);
  xm.add_x(0, 0);
  xm.add_x(1, 0);
  xm.add_x(4, 0);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 2u);
  EXPECT_EQ(ic.longest_run, 2u);
  EXPECT_DOUBLE_EQ(ic.mean_run_length, 1.5);
  EXPECT_NEAR(ic.adjacency_fraction, 2.0 / 3.0, 1e-12);
}

TEST(IntraCorrelation, RunsCountedPerPattern) {
  XMatrix xm({1, 4}, 3);
  // Pattern 0: run of 2; pattern 2: isolated X at the same place.
  xm.add_x(1, 0);
  xm.add_x(2, 0);
  xm.add_x(1, 2);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.total_runs, 2u);
  EXPECT_EQ(ic.longest_run, 2u);
  EXPECT_DOUBLE_EQ(ic.mean_run_length, 1.5);
}

TEST(IntraCorrelation, FullChainRun) {
  XMatrix xm({1, 5}, 2);
  for (std::size_t cell = 0; cell < 5; ++cell) xm.add_x(cell, 1);
  const IntraCorrelation ic = analyze_intra_correlation(xm);
  EXPECT_EQ(ic.longest_run, 5u);
  EXPECT_EQ(ic.total_runs, 1u);
  EXPECT_DOUBLE_EQ(ic.adjacency_fraction, 1.0);
}

TEST(IntraCorrelation, MatchesBruteForceOnRandomMatrix) {
  Rng rng(31);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t chains = 1 + rng.below(4);
    const std::size_t len = 2 + rng.below(10);
    const std::size_t patterns = 1 + rng.below(6);
    XMatrix xm({chains, len}, patterns);
    for (std::size_t c = 0; c < chains * len; ++c) {
      for (std::size_t p = 0; p < patterns; ++p) {
        if (rng.chance(0.3)) xm.add_x(c, p);
      }
    }
    // Brute force reference.
    std::size_t runs = 0;
    std::size_t longest = 0;
    std::size_t total = 0;
    std::size_t adjacent = 0;
    for (std::size_t p = 0; p < patterns; ++p) {
      for (std::size_t chain = 0; chain < chains; ++chain) {
        std::size_t run = 0;
        for (std::size_t pos = 0; pos <= len; ++pos) {
          const bool is_x =
              pos < len && xm.is_x(chain * len + pos, p);
          if (is_x) {
            ++run;
          } else if (run > 0) {
            ++runs;
            longest = std::max(longest, run);
            total += run;
            if (run > 1) adjacent += run;
            run = 0;
          }
        }
      }
    }
    const IntraCorrelation ic = analyze_intra_correlation(xm);
    EXPECT_EQ(ic.total_runs, runs);
    EXPECT_EQ(ic.longest_run, longest);
    if (runs > 0) {
      EXPECT_DOUBLE_EQ(ic.mean_run_length,
                       static_cast<double>(total) / static_cast<double>(runs));
    }
    if (total > 0) {
      EXPECT_DOUBLE_EQ(
          ic.adjacency_fraction,
          static_cast<double>(adjacent) / static_cast<double>(total));
    }
  }
}

}  // namespace
}  // namespace xh
