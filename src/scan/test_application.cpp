#include "scan/test_application.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {

TestPattern random_pattern(const Netlist& nl, const ScanPlan& plan,
                           Rng& rng) {
  TestPattern p;
  p.pi.reserve(nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    p.pi.push_back(rng.chance(0.5) ? Lv::k1 : Lv::k0);
  }
  p.scan_in.assign(plan.geometry().num_cells(), Lv::k0);
  for (std::size_t cell = 0; cell < p.scan_in.size(); ++cell) {
    if (plan.dff_at(cell) != kNoGate) {
      p.scan_in[cell] = rng.chance(0.5) ? Lv::k1 : Lv::k0;
    }
  }
  return p;
}

TestApplicator::TestApplicator(const Netlist& nl, const ScanPlan& plan)
    : nl_(&nl), plan_(&plan) {
  XH_REQUIRE(nl.finalized(), "test application requires a finalized netlist");
}

ResponseMatrix TestApplicator::capture(
    const std::vector<TestPattern>& patterns) const {
  return run(patterns, std::nullopt);
}

ResponseMatrix TestApplicator::capture_faulty(
    const std::vector<TestPattern>& patterns, GateId fault_gate,
    bool stuck_at_one) const {
  return run(patterns,
             ParallelSim::Fault{fault_gate,
                                stuck_at_one ? Lv::k1 : Lv::k0});
}

ResponseMatrix TestApplicator::run(
    const std::vector<TestPattern>& patterns,
    std::optional<ParallelSim::Fault> fault) const {
  XH_REQUIRE(!patterns.empty(), "need at least one pattern");
  ResponseMatrix response(plan_->geometry(), patterns.size());

  ParallelSim sim(*nl_);
  sim.inject(fault);

  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, patterns.size() - base);

    // Primary inputs.
    for (std::size_t i = 0; i < nl_->inputs().size(); ++i) {
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        const TestPattern& p = patterns[base + s];
        XH_REQUIRE(p.pi.size() == nl_->inputs().size(),
                   "pattern PI width mismatch");
        plane.set(s, p.pi[i]);
      }
      sim.set_input(nl_->inputs()[i], plane);
    }

    // State: scanned flops get their scan-in data, unscanned flops are X.
    sim.set_all_state(Lv::kX);
    for (std::size_t cell = 0; cell < plan_->geometry().num_cells(); ++cell) {
      const GateId dff = plan_->dff_at(cell);
      if (dff == kNoGate) continue;
      LvPlane plane;
      for (std::size_t s = 0; s < lanes; ++s) {
        const TestPattern& p = patterns[base + s];
        XH_REQUIRE(p.scan_in.size() == plan_->geometry().num_cells(),
                   "pattern scan width mismatch");
        plane.set(s, p.scan_in[cell]);
      }
      sim.set_state(dff, plane);
    }

    sim.evaluate();

    // Capture.
    for (std::size_t cell = 0; cell < plan_->geometry().num_cells(); ++cell) {
      const GateId dff = plan_->dff_at(cell);
      if (dff == kNoGate) continue;  // padding cells stay deterministic 0
      const LvPlane& next = sim.next_state_plane(dff);
      for (std::size_t s = 0; s < lanes; ++s) {
        response.set(base + s, cell, next.get(s));
      }
    }
  }

  // A stuck-at on a scanned flop's Q pin corrupts the value shifted out of
  // that cell regardless of what was captured (the scan path reads Q).
  if (fault && nl_->gate(fault->gate).type == GateType::kDff &&
      nl_->gate(fault->gate).scanned) {
    const std::size_t cell = plan_->cell_of(fault->gate);
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      response.set(p, cell, fault->value);
    }
  }
  return response;
}

}  // namespace xh
