#include "masking/mask_encoding.hpp"

#include <gtest/gtest.h>

#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(MaskEncoding, EmptyMaskRoundTrip) {
  const BitVec mask(100);
  const EncodedMask enc = encode_mask(mask);
  EXPECT_TRUE(decode_mask(enc) == mask);
  EXPECT_LE(enc.bits(), 3u) << "empty mask is flag + one tiny codeword";
}

TEST(MaskEncoding, SingleBitRoundTrip) {
  for (const std::size_t pos : {0u, 1u, 63u, 64u, 99u}) {
    BitVec mask(100);
    mask.set(pos);
    const EncodedMask enc = encode_mask(mask);
    EXPECT_TRUE(decode_mask(enc) == mask) << "pos " << pos;
  }
}

TEST(MaskEncoding, DenseMaskRoundTrip) {
  BitVec mask(64, true);
  const EncodedMask enc = encode_mask(mask);
  EXPECT_TRUE(decode_mask(enc) == mask);
}

TEST(MaskEncoding, SparseMasksCompress) {
  // 3 set bits in half a million cells must land far below raw size.
  BitVec mask(505050);
  mask.set(100);
  mask.set(250000);
  mask.set(505049);
  EXPECT_LT(encoded_mask_bits(mask), 150u);
  EXPECT_TRUE(decode_mask(encode_mask(mask)) == mask);
}

TEST(MaskEncoding, SizeShortcutMatchesPayload) {
  Rng rng(5);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 1 + rng.below(3000);
    BitVec mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.02)) mask.set(i);
    }
    const EncodedMask enc = encode_mask(mask);
    EXPECT_EQ(enc.bits(), encoded_mask_bits(mask));
  }
}

TEST(MaskEncodingProperty, RandomRoundTrip) {
  Rng rng(17);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(5000);
    const double density = rng.uniform() * 0.2;
    BitVec mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(density)) mask.set(i);
    }
    const EncodedMask enc = encode_mask(mask);
    EXPECT_TRUE(decode_mask(enc) == mask)
        << "n=" << n << " bits=" << mask.count();
  }
}

TEST(MaskEncoding, CorruptStreamsRejected) {
  BitVec mask(50);
  mask.set(10);
  mask.set(20);
  EncodedMask enc = encode_mask(mask);
  // Truncate the payload.
  EncodedMask truncated = enc;
  truncated.payload.resize(enc.payload.size() - 3);
  EXPECT_THROW(decode_mask(truncated), std::invalid_argument);
  // Wrong decoded width → out-of-range position.
  EncodedMask narrow = enc;
  narrow.mask_size = 15;
  EXPECT_THROW(decode_mask(narrow), std::invalid_argument);
}

TEST(MaskEncoding, PaperExampleMasksShrink) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  for (const BitVec& mask : r.masks) {
    EXPECT_TRUE(decode_mask(encode_mask(mask)) == mask);
  }
}

TEST(MaskEncoding, WorstCaseBoundedByRawPlusFlag) {
  // Alternating bits — pathological for gap coding; the raw escape caps the
  // damage at size + 1.
  BitVec mask(1000);
  for (std::size_t i = 0; i < 1000; i += 2) mask.set(i);
  EXPECT_LE(encoded_mask_bits(mask), 1001u);
  EXPECT_TRUE(decode_mask(encode_mask(mask)) == mask);
}

TEST(MaskEncoding, NeverExceedsRawPlusFlag) {
  Rng rng(23);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 1 + rng.below(600);
    BitVec mask(n);
    const double density = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(density)) mask.set(i);
    }
    EXPECT_LE(encoded_mask_bits(mask), n + 1);
    EXPECT_TRUE(decode_mask(encode_mask(mask)) == mask);
  }
}

}  // namespace
}  // namespace xh
