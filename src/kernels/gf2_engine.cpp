// Dispatched GF(2) elimination: a flat-storage mirror of the constexpr
// reference (gf2_ref::eliminate_reference) plus a Method-of-Four-Russians
// (M4RM) blocked variant. Both are bit-identical to the reference — same
// reduced rows, same combination vectors, same rank — for every ISA.
//
// Layout: each row is stored as value_words words of matrix row followed by
// combo_words words of combination vector, contiguously (stride words
// total), so one dispatched xor_words call advances the row AND its tracked
// combination in a single fused pass — the same pairing the reference
// maintains with two BitVec XORs. Row swaps permute an index array instead
// of moving data.
//
// Why M4RM stays bit-identical to full Gauss-Jordan (DESIGN.md §14): within
// one block, the pivot rows are kept mutually reduced exactly as the
// reference keeps them (each new pivot is cleared out of the earlier ones
// immediately), and candidate rows are reduced lazily against exactly those
// pivots before their pivot-column bit is tested — so pivot selection and
// row swaps match the reference step for step. For every other row the
// block's table lookup XORs in the unique element of span(block pivots)
// that zeroes the row's block-pivot columns; the reference's row-at-a-time
// eliminations compute an element of the same coset with the same zeros,
// and that element is unique because the mutually-reduced pivots restrict
// to an identity on their own columns. Equal cosets with equal constraints
// mean equal rows, and the fused layout carries the combination vectors
// through the same XORs.
#include <algorithm>
#include <bit>

#include "gf2/matrix.hpp"
#include "kernels/kernels.hpp"
#include "util/bitvec.hpp"
#include "util/check.hpp"

namespace xh::kernels {
namespace {

/// Flat [value|combination] row storage with O(1) logical row swaps.
class FlatGf2 {
 public:
  explicit FlatGf2(const Gf2Matrix& m)
      : rows_(m.rows()),
        cols_(m.cols()),
        value_words_((cols_ + 63) / 64),
        combo_words_((rows_ + 63) / 64),
        stride_(value_words_ + combo_words_),
        data_(rows_ * stride_, 0),
        perm_(rows_) {
    for (std::size_t r = 0; r < rows_; ++r) {
      perm_[r] = r;
      std::uint64_t* row = data_.data() + r * stride_;
      for (std::size_t w = 0; w < value_words_; ++w) row[w] = m.row(r).word(w);
      row[value_words_ + r / 64] = 1ULL << (r % 64);  // identity combination
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }

  std::uint64_t* row(std::size_t logical) {
    return data_.data() + perm_[logical] * stride_;
  }
  const std::uint64_t* row(std::size_t logical) const {
    return data_.data() + perm_[logical] * stride_;
  }

  bool bit(std::size_t logical, std::size_t col) const {
    return (row(logical)[col / 64] >> (col % 64)) & 1ULL;
  }

  void swap_rows(std::size_t a, std::size_t b) {
    std::swap(perm_[a], perm_[b]);
  }

  /// Materializes the Elimination result. All word tails are zero by
  /// invariant (loaded from BitVecs, then only XORed pairwise), so
  /// set_word's tail re-mask is a no-op.
  Elimination to_elimination(std::size_t rank) const {
    Elimination out;
    out.reduced = Gf2Matrix(rows_, cols_);
    out.combination.reserve(rows_);
    out.rank = rank;
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::uint64_t* src = row(r);
      BitVec& value = out.reduced.row(r);
      for (std::size_t w = 0; w < value_words_; ++w) {
        value.set_word(w, src[w]);
      }
      BitVec combo(rows_);
      for (std::size_t w = 0; w < combo_words_; ++w) {
        combo.set_word(w, src[value_words_ + w]);
      }
      out.combination.push_back(std::move(combo));
    }
    return out;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t value_words_;
  std::size_t combo_words_;
  std::size_t stride_;
  std::vector<std::uint64_t> data_;
  std::vector<std::size_t> perm_;
};

/// Straight mirror of gf2_ref::eliminate_reference on the flat layout.
std::size_t eliminate_naive(FlatGf2& flat, const Kernels& k) {
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < flat.cols() && pivot_row < flat.rows();
       ++col) {
    std::size_t sel = pivot_row;
    while (sel < flat.rows() && !flat.bit(sel, col)) ++sel;
    if (sel == flat.rows()) continue;
    flat.swap_rows(pivot_row, sel);
    for (std::size_t r = 0; r < flat.rows(); ++r) {
      if (r != pivot_row && flat.bit(r, col)) {
        k.xor_words(flat.row(r), flat.row(pivot_row), flat.stride());
      }
    }
    ++pivot_row;
  }
  return pivot_row;
}

/// M4RM block size: the usual ~log2(rows) heuristic, clamped so the
/// 2^k-entry table stays small relative to the rows it will serve.
std::size_t m4rm_block_bits(std::size_t rows) {
  const std::size_t lg = static_cast<std::size_t>(std::bit_width(rows)) - 1;
  return std::clamp<std::size_t>(lg > 2 ? lg - 2 : 1, 1, 8);
}

std::size_t eliminate_m4rm(FlatGf2& flat, const Kernels& k) {
  const std::size_t rows = flat.rows();
  if (rows == 0) return 0;
  const std::size_t stride = flat.stride();
  const std::size_t block_bits = m4rm_block_bits(rows);

  // Per-row count of current-block pivots already applied (lazy reduction).
  std::vector<std::size_t> reduced_upto(rows, 0);
  std::vector<std::size_t> pivot_cols;
  std::vector<std::uint64_t> table;

  std::size_t pivot_row = 0;
  std::size_t col = 0;
  while (col < flat.cols() && pivot_row < rows) {
    const std::size_t block_start = pivot_row;
    pivot_cols.clear();
    std::fill(reduced_upto.begin(), reduced_upto.end(), 0);

    // Reduce logical row @p r by the block pivots found since its last
    // reduction. Single pass suffices: mutually-reduced pivots never
    // reintroduce bits in each other's columns.
    const auto lazy_reduce = [&](std::size_t r) {
      for (std::size_t j = reduced_upto[r]; j < pivot_cols.size(); ++j) {
        if (flat.bit(r, pivot_cols[j])) {
          k.xor_words(flat.row(r), flat.row(block_start + j), stride);
        }
      }
      reduced_upto[r] = pivot_cols.size();
    };

    // Phase 1: accumulate up to block_bits pivots, scanning candidates in
    // reference order (lazily reduced, so the tested bit matches what full
    // Gauss-Jordan would see).
    while (col < flat.cols() && pivot_row < rows &&
           pivot_cols.size() < block_bits) {
      std::size_t sel = rows;
      for (std::size_t r = pivot_row; r < rows; ++r) {
        lazy_reduce(r);
        if (flat.bit(r, col)) {
          sel = r;
          break;
        }
      }
      if (sel != rows) {
        flat.swap_rows(pivot_row, sel);
        std::swap(reduced_upto[pivot_row], reduced_upto[sel]);
        // Keep the found pivots mutually reduced, as the reference does the
        // moment each pivot is processed.
        for (std::size_t p = block_start; p < pivot_row; ++p) {
          if (flat.bit(p, col)) {
            k.xor_words(flat.row(p), flat.row(pivot_row), stride);
          }
        }
        pivot_cols.push_back(col);
        ++pivot_row;
      }
      ++col;
    }
    if (pivot_cols.empty()) break;  // remaining columns are all zero

    // Phase 2 (the Four-Russians step): precompute every combination of the
    // block's pivot rows, then clear the block columns from all other rows
    // with one table XOR each.
    const std::size_t p = pivot_cols.size();
    const std::size_t entries = static_cast<std::size_t>(1) << p;
    table.assign(entries * stride, 0);
    for (std::size_t mask = 1; mask < entries; ++mask) {
      const std::size_t j =
          static_cast<std::size_t>(std::countr_zero(mask));
      const std::size_t rest = mask & (mask - 1);
      std::uint64_t* dst = table.data() + mask * stride;
      std::copy_n(table.data() + rest * stride, stride, dst);
      k.xor_words(dst, flat.row(block_start + j), stride);
    }
    detail::note_m4rm_table_built();

    for (std::size_t r = 0; r < rows; ++r) {
      if (r >= block_start && r < pivot_row) continue;  // a block pivot
      std::size_t mask = 0;
      for (std::size_t j = 0; j < p; ++j) {
        mask |= static_cast<std::size_t>(flat.bit(r, pivot_cols[j])) << j;
      }
      if (mask != 0) {
        k.xor_words(flat.row(r), table.data() + mask * stride, stride);
      }
    }
  }
  return pivot_row;
}

}  // namespace

namespace detail {

Elimination eliminate_runtime(const Gf2Matrix& m, Gf2Policy policy) {
  const Kernels& k = active();
  FlatGf2 flat(m);
  const bool use_m4rm =
      policy == Gf2Policy::kM4rm ||
      (policy == Gf2Policy::kAuto && m.rows() >= kM4rmAutoMinRows);
  const std::size_t rank =
      use_m4rm ? eliminate_m4rm(flat, k) : eliminate_naive(flat, k);
  return flat.to_elimination(rank);
}

std::vector<BitVec> x_free_combinations_runtime(const Gf2Matrix& m,
                                                Gf2Policy policy) {
  const Elimination e = eliminate_runtime(m, policy);
  std::vector<BitVec> combos;
  for (const std::size_t r : e.null_rows()) {
    combos.push_back(e.combination[r]);
  }
  return combos;
}

std::optional<BitVec> solve_runtime(const Gf2Matrix& m, const BitVec& b,
                                    Gf2Policy policy) {
  XH_REQUIRE(b.size() == m.rows(), "right-hand side height mismatch");
  // Same scheme as gf2_ref::solve_reference (see the free-variable
  // reasoning there), over the dispatched elimination.
  const Elimination e = eliminate_runtime(m, policy);
  BitVec x(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    bool rhs = false;
    for (const std::size_t orig : e.combination[r].set_bits()) {
      rhs ^= b.get(orig);
    }
    const std::size_t pivot = e.reduced.row(r).find_first();
    if (pivot == m.cols()) {
      if (rhs) return std::nullopt;  // 0 = 1: inconsistent
      continue;
    }
    if (rhs) x.set(pivot);
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if ((kernels::and_count(m.row(r), x) % 2 == 1) != b.get(r)) {
      return std::nullopt;
    }
  }
  return x;
}

}  // namespace detail
}  // namespace xh::kernels
