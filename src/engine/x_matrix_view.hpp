// Read-optimized snapshot of an XMatrix for the partition engine.
//
// XMatrix stores one heap-allocated BitVec per X-capturing cell behind an
// unordered_map — ideal for incremental construction, hostile to the
// partitioning hot loop, which scans the pattern sets of many cells per
// round. XMatrixView freezes the matrix into CSR-style contiguous storage:
//
//   cells_   [r]                      cell id of row r (ascending)
//   counts_  [r]                      popcount of row r (precomputed)
//   words_   [r*W .. r*W + W)         row r's pattern-membership words
//
// so a sweep over rows walks one linear array instead of chasing pointers
// through hash buckets, and per-cell X counts cost nothing. The view is an
// immutable value: concurrent readers (the engine's thread-pool fan-out)
// need no synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "response/geometry.hpp"
#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"

namespace xh {

class XMatrixView {
 public:
  /// Snapshots @p xm. O(x_cells × pattern words); the source matrix can be
  /// discarded or mutated afterwards without affecting the view.
  explicit XMatrixView(const XMatrix& xm);

  const ScanGeometry& geometry() const { return geometry_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_cells() const { return geometry_.num_cells(); }
  std::uint64_t total_x() const { return total_x_; }

  /// Rows = X-capturing cells, ascending by cell id.
  std::size_t num_rows() const { return cells_.size(); }
  std::size_t cell_id(std::size_t row) const { return cells_[row]; }
  /// X count of the row across all patterns (precomputed).
  std::size_t x_count(std::size_t row) const { return counts_[row]; }

  std::size_t words_per_row() const { return words_per_row_; }
  const std::uint64_t* row_words(std::size_t row) const {
    return words_.data() + row * words_per_row_;
  }

  /// popcount(row & patterns): the row's X count inside a pattern subset.
  std::size_t count_in(std::size_t row, const BitVec& patterns) const;

  /// FNV-1a hash of (row & patterns) over all pattern words — the group key
  /// the partition analysis buckets cells by (identical to the seed
  /// partitioner's set_hash, so groups match bit for bit).
  std::uint64_t hash_in(std::size_t row, const BitVec& patterns) const;

  /// Materializes (row & patterns) into @p out (resized to num_patterns).
  void intersect_into(std::size_t row, const BitVec& patterns,
                      BitVec* out) const;

 private:
  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_row_ = 0;
  std::uint64_t total_x_ = 0;
  std::vector<std::size_t> cells_;
  std::vector<std::size_t> counts_;
  std::vector<std::uint64_t> words_;
};

}  // namespace xh
