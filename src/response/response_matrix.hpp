// Dense captured-response storage: one four-ish-valued entry per
// (pattern, scan cell), packed as two bit planes (value, is-X).
//
// This is what the scan-capture flow produces and what masking physically
// operates on. For the huge analytic workloads (Table 1 geometries) the
// sparse XMatrix is used instead; ResponseMatrix is for circuit-level flows
// and worked examples where actual values matter.
#pragma once

#include <string>
#include <vector>

#include "response/geometry.hpp"
#include "sim/logic.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// num_patterns × num_cells matrix of {0,1,X}. Z never reaches a scan cell
/// (it is absorbed at the D pin), so two planes suffice.
class ResponseMatrix {
 public:
  ResponseMatrix() = default;
  ResponseMatrix(ScanGeometry geometry, std::size_t num_patterns);

  const ScanGeometry& geometry() const { return geometry_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_cells() const { return geometry_.num_cells(); }

  Lv get(std::size_t pattern, std::size_t cell) const;
  void set(std::size_t pattern, std::size_t cell, Lv value);

  bool is_x(std::size_t pattern, std::size_t cell) const;

  /// Total number of X entries.
  std::size_t total_x() const;

  /// X entries in one pattern.
  std::size_t pattern_x_count(std::size_t pattern) const;

  /// X-density: total_x / (patterns × cells).
  double x_density() const;

  /// The X plane of one pattern (bit set ⇔ cell is X), by value.
  BitVec x_row(std::size_t pattern) const;

  /// The value plane of one pattern (X cells read 0).
  BitVec value_row(std::size_t pattern) const;

  /// Parses rows like {"01X10", "1XX00"} (one string per pattern).
  static ResponseMatrix from_strings(ScanGeometry geometry,
                                     const std::vector<std::string>& rows);

  /// Renders pattern @p pattern as a "01X" string.
  std::string row_string(std::size_t pattern) const;

 private:
  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::vector<BitVec> value_;  // per pattern
  std::vector<BitVec> x_;      // per pattern
};

}  // namespace xh
