// XH-FLOW-001 fixture: the first status is overwritten on the retry path
// before anything reads it, so a failure from load_primary is lost.
namespace xh {

struct LoadStatus {
  bool ok = false;
};

LoadStatus load_primary();
LoadStatus load_fallback();
bool primary_stale();

bool refresh() {
  LoadStatus st = load_primary();
  if (primary_stale()) {
    st = load_fallback();
  }
  return st.ok;
}

}  // namespace xh
