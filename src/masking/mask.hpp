// X-masking: mask-vector generation and application.
//
// A mask is one bit per scan cell; a set bit forces that cell's shifted-out
// value to a constant 0 (the AND-gate architecture of Figure 1) before it
// reaches the compactor. The paper's safety rule is central here:
// a partition's mask may only cover cells that capture X in EVERY pattern of
// that partition, so no observable (non-X) value is ever destroyed and fault
// coverage is preserved by construction.
#pragma once

#include <vector>

#include "obs/trace.hpp"
#include "response/geometry.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"
#include "util/diagnostics.hpp"

namespace xh {

/// The safe mask for a pattern group: bit c set ⇔ cell c is X under every
/// pattern of @p partition. @p partition must be non-empty.
BitVec partition_mask(const XMatrix& xm, const BitVec& partition);

/// X's removed by masking @p partition with its safe mask
/// (= mask.count() × partition.count(), since masked cells are all-X).
std::size_t masked_x_count(const XMatrix& xm, const BitVec& partition);

/// Applies @p mask to every pattern in @p partition: masked cells become
/// deterministic 0. Modifies @p response in place. The optional trace
/// receives masking.* counters (control bits emitted, cells/X masked).
void apply_mask(ResponseMatrix& response, const BitVec& partition,
                const BitVec& mask, Trace* trace = nullptr);

/// True when every (pattern, cell) the masks cover was X — i.e. no
/// observable value is lost. Used as a checked invariant in tests and the
/// hybrid pipeline.
bool masks_preserve_observability(const ResponseMatrix& response,
                                  const std::vector<BitVec>& partitions,
                                  const std::vector<BitVec>& masks);

/// Counts every (pattern, cell) whose mask would hide an observable (non-X)
/// value — the situation that arises when masks were derived from *declared*
/// X locations and silicon resolved some of them to deterministic values.
/// Each violation is reported (capped) into @p diags as kMaskHidesValue; the
/// count is always exact. Never silently absorbs: callers decide whether the
/// coverage loss is acceptable.
std::uint64_t count_mask_violations(const ResponseMatrix& response,
                                    const std::vector<BitVec>& partitions,
                                    const std::vector<BitVec>& masks,
                                    Diagnostics* diags = nullptr,
                                    Trace* trace = nullptr);

/// Conventional X-masking-only baseline [5]: every X cell of every pattern is
/// masked individually (per-cycle control data).
struct XMaskingOnly {
  /// Control bits: one per scan cell per pattern.
  static std::uint64_t control_bits(const ScanGeometry& geometry,
                                    std::size_t num_patterns);

  /// Masks every X in place; the result carries no X at all.
  static void apply(ResponseMatrix& response);
};

}  // namespace xh
