// Scalar reference kernels over raw 64-bit word spans.
//
// This is the semantic ground truth of the kernel layer: every SIMD backend
// in src/kernels/ must be bit-identical to these loops on every input, and
// the randomized differential suite in tests/kernels/ pins that property.
// The functions are constexpr so the constant-evaluation branch of the
// public wrappers in kernels.hpp (and through them the static_assert proofs
// in tests/static/) executes exactly this code — the compiler checks the
// reference semantics on every build.
//
// Deliberately a leaf header (<bit> and the two size headers only): both
// util/ and gf2/ sit above the kernels layer in tools/lint/layers.txt, so
// nothing here may include BitVec or Gf2Matrix.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace xh::kernels::scalar {

/// popcount over @p n words.
constexpr std::size_t popcount_words(const std::uint64_t* w, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

/// popcount(a & b) over @p n words — the fused hot primitive of
/// X-correlation analysis (restricted X counts).
constexpr std::size_t and_count_words(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

/// popcount(a & ~b) over @p n words.
constexpr std::size_t and_not_count_words(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & ~b[i]));
  }
  return total;
}

/// dst ^= src over @p n words.
constexpr void xor_words(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

/// dst = a & b over @p n words (dst may alias a or b).
constexpr void and_words_into(std::uint64_t* dst, const std::uint64_t* a,
                              const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

}  // namespace xh::kernels::scalar
