// xh_lint — project lint CLI. Loads every input into the whole-tree
// project model (DESIGN.md §9), runs the per-file and cross-TU rule
// families, and exits non-zero when any finding survives suppression so CI
// can gate on it.
//
//   xh_lint [--root DIR] [--layers FILE] [--exclude PREFIX]...
//           [--json FILE] [--per-file-only|--tree-only] [--list-rules]
//           PATH...
//
// Paths are reported relative to --root (default: the current directory);
// rule applicability (src/ vs bench/ vs tests/, core/engine) keys off that
// relative path, so run it from the repository root or pass --root
// explicitly. Missing or unreadable inputs are diagnosed on stderr and the
// exit code is 2 — they are never silently skipped.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/project_model.hpp"

namespace {

constexpr const char* kUsage =
    "usage: xh_lint [--root DIR] [--layers FILE] [--exclude PREFIX]...\n"
    "               [--json FILE] [--per-file-only|--tree-only]\n"
    "               [--list-rules] PATH...\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;  // default: <root>/tools/lint/layers.txt
  bool layers_explicit = false;
  std::string json_path;
  std::vector<std::string> excludes;
  std::vector<std::string> inputs;
  xh::lint::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " requires " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      for (const auto& r : xh::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--root") {
      const char* v = next("a directory argument");
      if (v == nullptr) return 2;
      root = v;
      continue;
    }
    if (arg == "--layers") {
      const char* v = next("a file argument");
      if (v == nullptr) return 2;
      layers_path = v;
      layers_explicit = true;
      continue;
    }
    if (arg == "--json") {
      const char* v = next("a file argument");
      if (v == nullptr) return 2;
      json_path = v;
      continue;
    }
    if (arg == "--exclude") {
      const char* v = next("a repo-relative path prefix");
      if (v == nullptr) return 2;
      excludes.emplace_back(v);
      continue;
    }
    if (arg == "--per-file-only") {
      options.tree_rules = false;
      continue;
    }
    if (arg == "--tree-only") {
      options.per_file_rules = false;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  // Layering spec: an explicitly passed file must exist; the default
  // location is optional (XH-INC-002 simply has nothing to check without
  // it).
  xh::lint::LayerSpec spec;
  if (layers_path.empty()) layers_path = root + "/tools/lint/layers.txt";
  {
    std::ifstream in(layers_path, std::ios::binary);
    if (in.good()) {
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::string error;
      if (!xh::lint::parse_layer_spec(text, spec, error)) {
        std::cerr << "error: " << layers_path << ": " << error << "\n";
        return 2;
      }
    } else if (layers_explicit) {
      std::cerr << "error: cannot open layers spec " << layers_path << "\n";
      return 2;
    }
  }

  std::vector<std::string> errors;
  std::vector<xh::lint::SourceFile> files =
      xh::lint::load_tree(root, inputs, excludes, errors);
  if (!errors.empty()) {
    for (const std::string& e : errors) std::cerr << "error: " << e << "\n";
    return 2;
  }

  const xh::lint::ProjectModel model =
      xh::lint::build_project_model(std::move(files), std::move(spec));
  const std::vector<xh::lint::Finding> findings =
      xh::lint::analyze_tree(model, options);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << xh::lint::findings_to_json(findings);
    if (!out.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
  }

  for (const auto& f : findings) {
    std::cout << xh::lint::to_string(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (suppress with // xh-lint: allow(RULE) and a justification)"
              << "\n";
    return 1;
  }
  return 0;
}
