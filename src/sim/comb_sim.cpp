#include "sim/comb_sim.hpp"

#include "sim/gate_eval.hpp"

#include "util/check.hpp"

namespace xh {

CombSim::CombSim(const Netlist& nl) : nl_(&nl) {
  XH_REQUIRE(nl.finalized(), "CombSim requires a finalized netlist");
  values_.assign(nl.gate_count(), Lv::kX);
  state_.assign(nl.gate_count(), Lv::kX);
  next_state_.assign(nl.gate_count(), Lv::kX);
}

void CombSim::set_input(GateId input, Lv value) {
  XH_REQUIRE(nl_->gate(input).type == GateType::kInput,
             "set_input target is not a primary input");
  values_[input] = value;
  evaluated_ = false;
}

void CombSim::set_inputs(const std::vector<Lv>& values) {
  XH_REQUIRE(values.size() == nl_->inputs().size(),
             "input vector size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[nl_->inputs()[i]] = values[i];
  }
  evaluated_ = false;
}

void CombSim::set_state(GateId dff, Lv value) {
  XH_REQUIRE(nl_->gate(dff).type == GateType::kDff,
             "set_state target is not a DFF");
  state_[dff] = value;
  evaluated_ = false;
}

void CombSim::set_all_state(Lv value) {
  for (const GateId dff : nl_->dffs()) state_[dff] = value;
  evaluated_ = false;
}

Lv CombSim::eval_gate(GateId id) const {
  const Gate& g = nl_->gate(id);
  if (g.type == GateType::kInput) return values_[id];
  if (g.type == GateType::kDff) return state_[id];
  return evaluate_combinational(*nl_, id, values_);
}

void CombSim::evaluate() {
  for (const GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    Lv v = (g.type == GateType::kDff) ? state_[id] : eval_gate(id);
    if (fault_ && fault_->gate == id) v = fault_->value;
    values_[id] = v;
  }
  for (const GateId dff : nl_->dffs()) {
    next_state_[dff] = absorb_z(values_[nl_->gate(dff).fanin[0]]);
  }
  evaluated_ = true;
}

Lv CombSim::value(GateId id) const {
  XH_REQUIRE(evaluated_, "call evaluate() before reading values");
  XH_REQUIRE(id < nl_->gate_count(), "gate id out of range");
  return values_[id];
}

Lv CombSim::next_state(GateId dff) const {
  XH_REQUIRE(evaluated_, "call evaluate() before reading next state");
  XH_REQUIRE(nl_->gate(dff).type == GateType::kDff, "not a DFF");
  return next_state_[dff];
}

void CombSim::clock() {
  XH_REQUIRE(evaluated_, "call evaluate() before clock()");
  for (const GateId dff : nl_->dffs()) state_[dff] = next_state_[dff];
  evaluated_ = false;
}

void CombSim::inject(std::optional<Fault> fault) {
  if (fault) {
    XH_REQUIRE(fault->gate < nl_->gate_count(), "fault gate out of range");
    XH_REQUIRE(is_definite(fault->value), "stuck-at value must be 0 or 1");
  }
  fault_ = fault;
  evaluated_ = false;
}

}  // namespace xh
