// Plain-text serialization for response data, so X-location matrices and
// captured responses can move between tools (and into/out of the CLI).
//
// XMatrix format (sparse; one line per X-capturing cell):
//   xmatrix v1 <num_chains> <chain_length> <num_patterns>
//   <cell> <pattern> <pattern> ...
//   ...
//
// ResponseMatrix format (dense; one row string per pattern, chars 0/1/X):
//   response v1 <num_chains> <chain_length> <num_patterns>
//   01X10...
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"

namespace xh {

void write_x_matrix(const XMatrix& xm, std::ostream& out);
XMatrix read_x_matrix(std::istream& in);

void write_response(const ResponseMatrix& rm, std::ostream& out);
ResponseMatrix read_response(std::istream& in);

/// String conveniences (used by tests and the CLI).
std::string x_matrix_to_string(const XMatrix& xm);
XMatrix x_matrix_from_string(const std::string& text);
std::string response_to_string(const ResponseMatrix& rm);
ResponseMatrix response_from_string(const std::string& text);

}  // namespace xh
