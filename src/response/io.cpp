#include "response/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace xh {
namespace {

/// Records a structured diagnostic (when a collector is attached), then
/// throws — serialized-input damage is always a hard parse failure; the
/// collector adds the machine-readable kind and location for callers that
/// need to classify it.
[[noreturn]] void format_error(Diagnostics* diags, DiagKind kind,
                               const std::string& what) {
  diag_report(diags, DiagSeverity::kError, kind, "response io", what);
  throw std::invalid_argument("response io: " + what);
}

ScanGeometry read_header(std::istream& in, const char* magic,
                         std::size_t& num_patterns, Diagnostics* diags) {
  std::string word;
  std::string version;
  ScanGeometry geo;
  if (!(in >> word >> version >> geo.num_chains >> geo.chain_length >>
        num_patterns)) {
    if (in.bad()) {
      format_error(diags, DiagKind::kStreamFailure,
                   "stream I/O failure while reading header (badbit set)");
    }
    format_error(diags, DiagKind::kTruncatedInput, "truncated header");
  }
  if (word != magic) {
    format_error(diags, DiagKind::kGarbledInput,
                 "expected '" + std::string(magic) + "'");
  }
  if (version != "v1") {
    format_error(diags, DiagKind::kGarbledInput,
                 "unsupported version " + version);
  }
  if (geo.num_chains == 0 || geo.chain_length == 0 || num_patterns == 0) {
    format_error(diags, DiagKind::kGarbledInput, "degenerate geometry");
  }
  return geo;
}

/// Clean-EOF / truncation / badbit triage after a failed getline.
[[noreturn]] void missing_data_error(std::istream& in, Diagnostics* diags,
                                     const std::string& what) {
  if (in.bad()) {
    format_error(diags, DiagKind::kStreamFailure,
                 "stream I/O failure (badbit set) — " + what);
  }
  format_error(diags, DiagKind::kTruncatedInput, what);
}

}  // namespace

void write_x_matrix(const XMatrix& xm, std::ostream& out) {
  out << "xmatrix v1 " << xm.geometry().num_chains << ' '
      << xm.geometry().chain_length << ' ' << xm.num_patterns() << '\n';
  for (const std::size_t cell : xm.x_cells()) {
    out << cell;
    for (const std::size_t p : xm.patterns_of(cell).set_bits()) {
      out << ' ' << p;
    }
    out << '\n';
  }
  out << "end " << xm.total_x() << '\n';
}

XMatrix read_x_matrix(std::istream& in, Diagnostics* diags, Trace* trace) {
  std::size_t num_patterns = 0;
  const ScanGeometry geo = read_header(in, "xmatrix", num_patterns, diags);
  XMatrix xm(geo, num_patterns);
  std::string line;
  std::getline(in, line);  // finish the header line
  std::unordered_set<std::size_t> seen_cells;
  bool saw_trailer = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs_count(trace, "response_io.lines_parsed");
    if (saw_trailer) {
      format_error(diags, DiagKind::kTrailingGarbage,
                   "content after 'end' trailer: " + line);
    }
    std::istringstream row(line);
    if (line.compare(0, 4, "end ") == 0 || line == "end") {
      std::string word;
      std::string extra;
      std::uint64_t declared_total = 0;
      row >> word >> declared_total;
      if (row.fail() || (row >> extra)) {
        format_error(diags, DiagKind::kGarbledInput,
                     "malformed trailer: " + line);
      }
      if (declared_total != xm.total_x()) {
        format_error(
            diags, DiagKind::kTruncatedInput,
            "trailer declares " + std::to_string(declared_total) +
                " X's but " + std::to_string(xm.total_x()) +
                " were read — cell records lost or duplicated in transit");
      }
      saw_trailer = true;
      continue;
    }
    std::size_t cell = 0;
    if (!(row >> cell)) {
      format_error(diags, DiagKind::kGarbledInput,
                   "malformed cell line: " + line);
    }
    if (!seen_cells.insert(cell).second) {
      format_error(diags, DiagKind::kDuplicateRecord,
                   "cell " + std::to_string(cell) + " recorded twice");
    }
    obs_count(trace, "response_io.cell_records");
    std::size_t pattern = 0;
    bool any = false;
    while (row >> pattern) {
      try {
        xm.add_x(cell, pattern);  // bounds-checked by XMatrix
      } catch (const std::invalid_argument& e) {
        format_error(diags, DiagKind::kGarbledInput, e.what());
      }
      obs_count(trace, "response_io.x_entries");
      any = true;
    }
    if (!any) {
      format_error(diags, DiagKind::kGarbledInput,
                   "cell with no patterns: " + line);
    }
    if (!row.eof()) {
      format_error(diags, DiagKind::kGarbledInput,
                   "trailing garbage: " + line);
    }
  }
  if (in.bad()) {
    format_error(diags, DiagKind::kStreamFailure,
                 "stream I/O failure while reading cell records "
                 "(badbit set)");
  }
  if (!saw_trailer) {
    format_error(diags, DiagKind::kTruncatedInput,
                 "missing 'end' trailer — input truncated");
  }
  return xm;
}

void write_response(const ResponseMatrix& rm, std::ostream& out) {
  out << "response v1 " << rm.geometry().num_chains << ' '
      << rm.geometry().chain_length << ' ' << rm.num_patterns() << '\n';
  for (std::size_t p = 0; p < rm.num_patterns(); ++p) {
    out << rm.row_string(p) << '\n';
  }
}

ResponseMatrix read_response(std::istream& in, Diagnostics* diags,
                             Trace* trace) {
  std::size_t num_patterns = 0;
  const ScanGeometry geo = read_header(in, "response", num_patterns, diags);
  ResponseMatrix rm(geo, num_patterns);
  std::string line;
  std::getline(in, line);
  for (std::size_t p = 0; p < num_patterns; ++p) {
    if (!std::getline(in, line)) {
      missing_data_error(in, diags,
                         "expected " + std::to_string(num_patterns) +
                             " pattern rows, got " + std::to_string(p));
    }
    obs_count(trace, "response_io.lines_parsed");
    obs_count(trace, "response_io.pattern_rows");
    if (line.size() != geo.num_cells()) {
      format_error(diags, DiagKind::kGarbledInput,
                   "row width mismatch at pattern " + std::to_string(p));
    }
    for (std::size_t c = 0; c < line.size(); ++c) {
      try {
        rm.set(p, c, lv_from_char(line[c]));
      } catch (const std::invalid_argument& e) {
        format_error(diags, DiagKind::kGarbledInput,
                     "pattern " + std::to_string(p) + ": " + e.what());
      }
    }
  }
  // Anything non-empty after the last declared pattern is suspicious:
  // either the header undercounts or rows were duplicated in transit.
  while (std::getline(in, line)) {
    if (!line.empty()) {
      format_error(diags, DiagKind::kTrailingGarbage,
                   "content after the last pattern row: " + line);
    }
  }
  if (in.bad()) {
    format_error(diags, DiagKind::kStreamFailure,
                 "stream I/O failure while reading pattern rows "
                 "(badbit set)");
  }
  return rm;
}

std::string x_matrix_to_string(const XMatrix& xm) {
  std::ostringstream os;
  write_x_matrix(xm, os);
  return os.str();
}

XMatrix x_matrix_from_string(const std::string& text, Diagnostics* diags,
                             Trace* trace) {
  std::istringstream is(text);
  return read_x_matrix(is, diags, trace);
}

std::string response_to_string(const ResponseMatrix& rm) {
  std::ostringstream os;
  write_response(rm, os);
  return os.str();
}

ResponseMatrix response_from_string(const std::string& text,
                                    Diagnostics* diags, Trace* trace) {
  std::istringstream is(text);
  return read_response(is, diags, trace);
}

}  // namespace xh
