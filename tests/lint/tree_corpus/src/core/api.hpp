#pragma once

namespace fixture {

[[nodiscard]] int make_thing();

}  // namespace fixture
