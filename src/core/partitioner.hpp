// Test-pattern partitioning (paper Section 4, Algorithm 1).
//
// Greedy binary partitioning of the pattern set driven by X inter-correlation:
// each round picks, over all current partitions, the largest group of scan
// cells that share the same X count inside one partition (the strongest
// inter-correlation signal), splits that partition on one representative cell
// (patterns where the cell is X vs. is not), and keeps the split only while
// the hybrid control-bit total keeps decreasing:
//
//   bits(i) = L·C·#partitions(i) + m·q·X_leaked(i)/(m−q)
//   continue while bits(i) − bits(i+1) > 0
//
// Masks are derived per partition with the no-observable-loss rule, so the
// trade-off is purely "more masks (more masking control data)" vs. "fewer X's
// into the X-canceling MISR (less canceling control data + fewer halts)".
//
// The configuration and result types live in engine/partition_types.hpp
// (shared with the incremental PartitionEngine) and are re-exported here.
#pragma once

#include "engine/partition_types.hpp"
#include "response/x_matrix.hpp"

namespace xh {

/// Runs Algorithm 1 on an X-location matrix. Since the engine restructuring
/// this is a thin wrapper over PartitionEngine (snapshot the matrix into an
/// XMatrixView, run rounds incrementally); the result is bit-identical to
/// partition_patterns_reference() for every configuration and seed — the
/// equivalence suite in tests/engine/ enforces it.
[[nodiscard]] PartitionResult partition_patterns(const XMatrix& xm,
                                                 const PartitionerConfig& cfg);

/// The seed implementation: re-analyzes every X cell of the whole design on
/// every probe and clones the partition vector per round. O(rounds ×
/// total_x_cells × pattern_words) against the engine's O(rounds ×
/// victim_cells × pattern_words). Retained verbatim as the oracle for the
/// equivalence suite and the baseline bench_partitioner measures against;
/// not for production use.
[[nodiscard]] PartitionResult partition_patterns_reference(
    const XMatrix& xm, const PartitionerConfig& cfg);

}  // namespace xh
