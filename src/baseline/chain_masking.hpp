// Chain-level X-blocking baseline (after Wang et al. [3]'s "unknown
// blocking" idea): instead of one mask bit per scan CELL per pattern, spend
// one mask bit per scan CHAIN per pattern and blank whole chains that carry
// any X. Control data shrinks by a factor of the chain length, but every
// deterministic bit sharing a chain with an X is sacrificed — the same
// observability-for-control-data trade the superset method makes, at a
// coarser granularity. Useful as the "cheap but lossy" corner in ablations.
#pragma once

#include <cstdint>

#include "response/x_matrix.hpp"

namespace xh {

struct ChainMaskingResult {
  /// One bit per chain per pattern.
  std::uint64_t control_bits = 0;
  /// (pattern, chain) pairs masked.
  std::uint64_t masked_chains = 0;
  /// X's removed (every X sits in some masked chain, so this equals the
  /// total X count).
  std::uint64_t masked_x = 0;
  /// Deterministic bits destroyed alongside them.
  std::uint64_t lost_observations = 0;
};

ChainMaskingResult chain_masking(const XMatrix& xm);

}  // namespace xh
