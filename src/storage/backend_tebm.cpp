#include "storage/backend_tebm.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace xh {

TebmStore::TebmStore(const XMatrix& xm)
    : geometry_(xm.geometry()),
      num_patterns_(xm.num_patterns()),
      total_x_(xm.total_x()),
      cells_(xm.x_cells()) {
  words_per_row_ = (num_patterns_ + 63) / 64;
  counts_.reserve(cells_.size());
  row_tags_.reserve(cells_.size());
  row_lits_.reserve(cells_.size());
  for (const std::size_t cell : cells_) {
    const BitVec& pats = xm.patterns_of(cell);
    XH_ASSERT(pats.word_count() == words_per_row_,
              "XMatrix row width disagrees with pattern count");
    counts_.push_back(pats.count());
    row_tags_.push_back(tags_.size());
    row_lits_.push_back(lits_.size());
    for (std::size_t lo = 0; lo < words_per_row_; lo += kChunkWords) {
      encode_node(pats, lo, std::min(lo + kChunkWords, words_per_row_));
    }
  }
}

void TebmStore::encode_node(const BitVec& pats, std::size_t lo,
                            std::size_t hi) {
  bool all_zero = true;
  bool all_ones = true;
  for (std::size_t w = lo; w < hi; ++w) {
    const std::uint64_t word = pats.word(w);
    if (word != 0) all_zero = false;
    if (word != ~0ULL) all_ones = false;
  }
  if (all_zero) {
    tags_.push_back(kZero);
  } else if (all_ones) {
    tags_.push_back(kOnes);
  } else if (hi - lo == 1) {
    tags_.push_back(kLiteral);
    lits_.push_back(pats.word(lo));
  } else {
    tags_.push_back(kSplit);
    const std::size_t mid = lo + (hi - lo) / 2;
    encode_node(pats, lo, mid);
    encode_node(pats, mid, hi);
  }
}

std::size_t TebmStore::count_node(Cursor& cur, std::size_t lo, std::size_t hi,
                                  const BitVec& patterns) const {
  switch (cur.tags[cur.t++]) {
    case kZero:
      return 0;  // nothing to intersect — this is where the win lives
    case kOnes: {
      std::size_t total = 0;
      for (std::size_t w = lo; w < hi; ++w) {
        total += static_cast<std::size_t>(std::popcount(patterns.word(w)));
      }
      return total;
    }
    case kLiteral:
      return static_cast<std::size_t>(
          std::popcount(cur.lits[cur.l++] & patterns.word(lo)));
    default: {
      const std::size_t mid = lo + (hi - lo) / 2;
      const std::size_t left = count_node(cur, lo, mid, patterns);
      return left + count_node(cur, mid, hi, patterns);
    }
  }
}

void TebmStore::hash_node(Cursor& cur, std::size_t lo, std::size_t hi,
                          const BitVec& patterns, std::uint64_t* h) const {
  switch (cur.tags[cur.t++]) {
    case kZero:
      // A zero word XORs nothing but the FNV step still multiplies, or the
      // group key would diverge from the seed partitioner's set_hash.
      for (std::size_t w = lo; w < hi; ++w) *h *= 0x100000001b3ULL;
      return;
    case kOnes:
      for (std::size_t w = lo; w < hi; ++w) {
        *h ^= patterns.word(w);
        *h *= 0x100000001b3ULL;
      }
      return;
    case kLiteral:
      *h ^= cur.lits[cur.l++] & patterns.word(lo);
      *h *= 0x100000001b3ULL;
      return;
    default: {
      const std::size_t mid = lo + (hi - lo) / 2;
      hash_node(cur, lo, mid, patterns, h);
      hash_node(cur, mid, hi, patterns, h);
      return;
    }
  }
}

void TebmStore::intersect_node(Cursor& cur, std::size_t lo, std::size_t hi,
                               const BitVec& patterns, BitVec* out) const {
  switch (cur.tags[cur.t++]) {
    case kZero:
      for (std::size_t w = lo; w < hi; ++w) out->set_word(w, 0);
      return;
    case kOnes:
      for (std::size_t w = lo; w < hi; ++w) {
        out->set_word(w, patterns.word(w));
      }
      return;
    case kLiteral:
      out->set_word(lo, cur.lits[cur.l++] & patterns.word(lo));
      return;
    default: {
      const std::size_t mid = lo + (hi - lo) / 2;
      intersect_node(cur, lo, mid, patterns, out);
      intersect_node(cur, mid, hi, patterns, out);
      return;
    }
  }
}

std::size_t TebmStore::count_in(std::size_t row, const BitVec& patterns) const {
  note_count_in();
  Cursor cur = cursor_for(row);
  std::size_t total = 0;
  for (std::size_t lo = 0; lo < words_per_row_; lo += kChunkWords) {
    total +=
        count_node(cur, lo, std::min(lo + kChunkWords, words_per_row_),
                   patterns);
  }
  return total;
}

std::uint64_t TebmStore::hash_in(std::size_t row,
                                 const BitVec& patterns) const {
  note_hash_in();
  Cursor cur = cursor_for(row);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t lo = 0; lo < words_per_row_; lo += kChunkWords) {
    hash_node(cur, lo, std::min(lo + kChunkWords, words_per_row_), patterns,
              &h);
  }
  return h;
}

void TebmStore::intersect_into(std::size_t row, const BitVec& patterns,
                               BitVec* out) const {
  note_intersect();
  Cursor cur = cursor_for(row);
  out->resize(num_patterns_);
  for (std::size_t lo = 0; lo < words_per_row_; lo += kChunkWords) {
    intersect_node(cur, lo, std::min(lo + kChunkWords, words_per_row_),
                   patterns, out);
  }
}

std::uint64_t TebmStore::resident_bytes() const {
  return static_cast<std::uint64_t>(cells_.size()) * sizeof(std::size_t) +
         static_cast<std::uint64_t>(counts_.size()) * sizeof(std::size_t) +
         static_cast<std::uint64_t>(row_tags_.size()) * sizeof(std::uint64_t) +
         static_cast<std::uint64_t>(row_lits_.size()) * sizeof(std::uint64_t) +
         encoded_bytes();
}

}  // namespace xh
