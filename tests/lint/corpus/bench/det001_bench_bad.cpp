// corpus: host-entropy PRNGs stay banned even in bench/ — benchmarks must
// be reproducible run to run; only *timing* queries are exempt.
#include <cstdlib>

int jitter() { return std::rand(); }
