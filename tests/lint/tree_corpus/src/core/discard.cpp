#include "core/api.hpp"

namespace fixture {

void fire_and_forget() {
  make_thing();
}

}  // namespace fixture
