#include "lint/lint_core.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdio>
#include <map>

#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

struct RuleContext {
  const SourceFile* file = nullptr;
  const Cleaned* cleaned = nullptr;
  std::vector<std::string> unordered_names;
  bool is_header = false;
  bool in_bench = false;
  bool in_engine_or_core = false;
  std::vector<Finding>* out = nullptr;
};

void report(const RuleContext& ctx, std::size_t line_idx,
            const std::string& rule, const std::string& message) {
  ctx.out->push_back(
      {ctx.file->path, line_idx + 1, rule, message});
}

// ---- XH-DET-001: nondeterminism sources --------------------------------

void rule_det001(const RuleContext& ctx) {
  static const std::array<const char*, 7> kRandom = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random"};
  static const std::array<const char*, 4> kTime = {"time", "clock",
                                                   "gettimeofday",
                                                   "clock_gettime"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    for (const char* fn : kRandom) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-DET-001",
               std::string("call to '") + fn +
                   "' — use the seeded xh::Rng so runs are reproducible");
      }
    }
    if (has_ident(line, "random_device")) {
      report(ctx, i, "XH-DET-001",
             "std::random_device draws entropy from the host — seed xh::Rng "
             "explicitly instead");
    }
    if (ctx.in_bench) continue;  // timing is the whole point of bench/
    for (const char* fn : kTime) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-DET-001",
               std::string("call to '") + fn +
                   "' — wall-clock queries are banned outside bench/");
      }
    }
    if (has_call(line, "now")) {
      report(ctx, i, "XH-DET-001",
             "std::chrono ...::now() is banned outside bench/ — results must "
             "not depend on when they are computed");
    }
  }
}

// ---- XH-DET-002: unordered-container iteration -------------------------

void rule_det002(const RuleContext& ctx) {
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    for (const std::string& name : ctx.unordered_names) {
      // Range-for over the container: `for (... : name)`.
      const std::size_t for_pos = find_ident(line, "for");
      const std::size_t colon =
          for_pos == std::string::npos
              ? std::string::npos
              : find_range_colon(line, for_pos);
      if (for_pos != std::string::npos && colon != std::string::npos &&
          find_ident(line, name, colon) != std::string::npos) {
        report(ctx, i, "XH-DET-002",
               "iteration over unordered container '" + name +
                   "' — hash order is nondeterministic across libc++/libstdc++ "
                   "and load factors; sort before emitting");
        continue;
      }
      // Iterator walk: name.begin() / name.cbegin().
      for (const char* b : {".begin", ".cbegin"}) {
        const std::size_t p = find_ident(line, name);
        if (p != std::string::npos &&
            line.compare(p + name.size(), std::string(b).size(), b) == 0) {
          report(ctx, i, "XH-DET-002",
                 "iterator over unordered container '" + name +
                     "' — hash order is nondeterministic; sort before "
                     "emitting");
        }
      }
    }
  }
}

// ---- XH-ERR-001: diagnostics routing in engine/core --------------------

void rule_err001(const RuleContext& ctx) {
  if (!ctx.in_engine_or_core) return;
  static const std::array<const char*, 5> kAborts = {
      "abort", "exit", "_Exit", "quick_exit", "terminate"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    if (has_ident(line, "throw")) {
      report(ctx, i, "XH-ERR-001",
             "bare throw in src/core//src/engine/ — route through "
             "XH_REQUIRE/XH_ASSERT or the xh::Diagnostics collector");
    }
    for (const char* fn : kAborts) {
      if (has_call(line, fn)) {
        report(ctx, i, "XH-ERR-001",
               std::string("call to '") + fn +
                   "' — engine/core must degrade through xh::Diagnostics, "
                   "never kill the process");
      }
    }
  }
}

// ---- XH-PARSE-001: raw numeric parsing ---------------------------------

void rule_parse001(const RuleContext& ctx) {
  static const std::array<const char*, 16> kParsers = {
      "atoi", "atol", "atoll", "atof", "strtol", "strtoul", "strtoll",
      "strtoull", "strtod", "strtof", "stoi", "stol", "stoll", "stoul",
      "stoull", "stod"};
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    for (const char* fn : kParsers) {
      if (has_call(ctx.cleaned->lines[i], fn)) {
        report(ctx, i, "XH-PARSE-001",
               std::string("call to '") + fn +
                   "' silently accepts junk/overflow — use "
                   "xh::parse_u64/parse_size/parse_f64");
      }
    }
  }
}

// ---- XH-HDR-001 / XH-HDR-002: header hygiene ---------------------------

void rule_headers(const RuleContext& ctx) {
  if (!ctx.is_header) return;
  bool pragma_seen = false;
  bool code_before_pragma = false;
  std::size_t first_code_line = 0;
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    const std::size_t nb = line.find_first_not_of(" \t");
    if (nb == std::string::npos) continue;
    if (line.compare(nb, 12, "#pragma once") == 0) {
      pragma_seen = true;
      break;
    }
    if (!code_before_pragma) {
      code_before_pragma = true;
      first_code_line = i;
    }
  }
  if (!pragma_seen || code_before_pragma) {
    report(ctx, first_code_line, "XH-HDR-001",
           pragma_seen
               ? "#pragma once must precede all code in a header"
               : "header is missing #pragma once");
  }
  for (std::size_t i = 0; i < ctx.cleaned->lines.size(); ++i) {
    const std::string& line = ctx.cleaned->lines[i];
    const std::size_t u = find_ident(line, "using");
    if (u != std::string::npos &&
        find_ident(line, "namespace", u) != std::string::npos) {
      report(ctx, i, "XH-HDR-002",
             "using namespace in a header leaks into every includer");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"XH-DET-001",
       "nondeterminism source (rand/random_device/time/chrono-now) in "
       "library code"},
      {"XH-DET-002",
       "iteration over an unordered container (hash order leaks into "
       "output)"},
      {"XH-ERR-001",
       "bare throw/abort/exit in src/core/ or src/engine/ (xh::Diagnostics "
       "routing is mandated)"},
      {"XH-PARSE-001",
       "raw atoi/strtol/stoul-style parsing instead of util/parse strict "
       "helpers"},
      {"XH-HDR-001", "header missing #pragma once before any code"},
      {"XH-HDR-002", "using namespace at header scope"},
      {"XH-INC-001", "include cycle between project files"},
      {"XH-INC-002",
       "layering violation against the tools/lint/layers.txt spec"},
      {"XH-INC-003",
       "unused direct include, or a symbol satisfied only through another "
       "header's transitive includes (IWYU-lite)"},
      {"XH-API-001",
       "call discards the result of a [[nodiscard]] project function"},
      {"XH-API-002",
       "use of a [[deprecated]]-only API outside its exempt files"},
      {"XH-OBS-001",
       "telemetry instrument name absent from the canonical xh-telemetry/1 "
       "schema list (obs/telemetry_json.cpp)"},
      {"XH-SUP-001",
       "stale xh-lint suppression: the allow() no longer suppresses any "
       "finding anywhere in the tree"},
      {"XH-FLOW-001",
       "a Diagnostics/Status-bearing value is discarded or overwritten on "
       "at least one path before being checked"},
      {"XH-FLOW-002",
       "a loop path that can block (sleep/wait or unbounded) never consults "
       "the in-scope CancelToken"},
      {"XH-FLOW-003",
       "relaxed-atomic RMW outside the src/storage/ note_* accounting seam, "
       "or a mutex-guarded field touched on an unguarded path"},
      {"XH-FLOW-004",
       "use-after-move of a BitVec/store handle or other moved-from local"},
      {"XH-IPA-001",
       "bare-statement call whose every resolved target returns a "
       "Diagnostics/Status-bearing type: the outcome is discarded "
       "transitively"},
      {"XH-IPA-002",
       "callable posted to the thread pool can block (directly or through "
       "a resolved callee) but never consults the in-scope CancelToken"},
      {"XH-RACE-001",
       "posted callable captures a local by reference and some path "
       "reaches the end of its scope without a drain/join barrier"},
      {"XH-RACE-002",
       "lock-order inversion between two functions' nested acquisitions, "
       "or a callable posted under a lock its own work re-acquires"},
  };
  return kRules;
}

std::string registry_version() {
  // Changes whenever a rule is added, removed, or re-described: analysis
  // caches keyed on this string invalidate on any registry change even
  // when the scanned sources are untouched.
  std::string v = "xh-lint-registry/";
  v += std::to_string(rules().size());
  std::size_t hash = 1469598103934665603ull;  // FNV-1a, as in cache_key

  for (const RuleInfo& r : rules()) {
    for (const char c : r.id + "\x1f" + r.summary + "\x1e") {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016zx", hash);
  v += "/";
  v += buf;
  return v;
}

std::vector<Finding> per_file_findings(
    const SourceFile& file, const Cleaned& cleaned,
    const std::vector<std::string>& extra_unordered_names) {
  RuleContext ctx;
  ctx.file = &file;
  ctx.cleaned = &cleaned;
  ctx.is_header = ends_with(file.path, ".hpp") || ends_with(file.path, ".h");
  ctx.in_bench = starts_with(file.path, "bench/");
  ctx.in_engine_or_core = starts_with(file.path, "src/core/") ||
                          starts_with(file.path, "src/engine/");
  ctx.unordered_names = harvest_unordered_names(cleaned.lines);
  if (!extra_unordered_names.empty()) {
    ctx.unordered_names.insert(ctx.unordered_names.end(),
                               extra_unordered_names.begin(),
                               extra_unordered_names.end());
    std::sort(ctx.unordered_names.begin(), ctx.unordered_names.end());
    ctx.unordered_names.erase(
        std::unique(ctx.unordered_names.begin(), ctx.unordered_names.end()),
        ctx.unordered_names.end());
  }

  std::vector<Finding> raw;
  ctx.out = &raw;
  rule_det001(ctx);
  rule_det002(ctx);
  rule_err001(ctx);
  rule_parse001(ctx);
  rule_headers(ctx);
  return raw;
}

std::vector<Finding> apply_suppressions(const Cleaned& cleaned,
                                        std::vector<Finding> raw) {
  std::vector<Finding> out;
  for (Finding& f : raw) {
    const auto allowed = [&](const std::vector<std::string>& ids) {
      return std::find(ids.begin(), ids.end(), f.rule) != ids.end();
    };
    if (allowed(cleaned.allow_file)) continue;
    if (f.line - 1 < cleaned.allow.size() &&
        allowed(cleaned.allow[f.line - 1])) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> scan_file(const SourceFile& file,
                               const std::string* sibling_header) {
  const Cleaned cleaned = clean(file.content);
  std::vector<std::string> extra;
  if (sibling_header != nullptr) {
    const Cleaned sib = clean(*sibling_header);
    extra = harvest_unordered_names(sib.lines);
  }
  std::vector<Finding> raw = per_file_findings(file, cleaned, extra);
  std::vector<Finding> flow = flow_findings(file, cleaned);
  raw.insert(raw.end(), flow.begin(), flow.end());
  return apply_suppressions(cleaned, std::move(raw));
}

std::string to_string(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string findings_to_json(const std::vector<Finding>& findings) {
  // Keys are emitted in sorted order at every level so the document is
  // byte-stable for diffing (the CI baseline check relies on this).
  std::map<std::string, std::size_t> by_rule;
  for (const Finding& f : findings) ++by_rule[f.rule];
  std::string out = "{\n  \"by_rule\": {";
  std::size_t i = 0;
  for (const auto& [rule, count] : by_rule) {
    out += i++ == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(rule) + "\": " + std::to_string(count);
  }
  out += by_rule.empty() ? "},\n" : "\n  },\n";
  out += "  \"count\": " + std::to_string(findings.size()) +
         ",\n  \"findings\": [";
  for (std::size_t j = 0; j < findings.size(); ++j) {
    const Finding& f = findings[j];
    out += j == 0 ? "\n" : ",\n";
    out += "    {\"line\": " + std::to_string(f.line) + ", \"message\": \"" +
           json_escape(f.message) + "\", \"path\": \"" +
           json_escape(f.path) + "\", \"rule\": \"" + json_escape(f.rule) +
           "\"}";
  }
  out += findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"schema\": \"xh-lint-findings/1\"\n}\n";
  return out;
}

std::string findings_to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"xh_lint\",\n";
  out += "          \"informationUri\": "
         "\"https://github.com/xhybrid/xhybrid\",\n";
  out += "          \"version\": \"" + json_escape(registry_version()) +
         "\",\n";
  out += "          \"rules\": [";
  const auto& reg = rules();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + json_escape(reg[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(reg[i].summary) + "\"}}";
  }
  out += reg.empty() ? "]\n" : "\n          ]\n";
  out += "        }\n      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"warning\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.path) +
           "\"}, \"region\": {\"startLine\": " +
           std::to_string(f.line == 0 ? 1 : f.line) + "}}}]}";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

}  // namespace xh::lint
