#include "util/clock.hpp"

#include <chrono>
#include <thread>

namespace xh {
namespace {

class WallClock final : public ClockSource {
 public:
  /// XH-DET-001 proof of output-independence: this is the library's only
  /// real-clock read outside obs/trace.cpp. Its value flows exclusively
  /// into control decisions of the service layer — deadline expiry, retry
  /// pacing, watchdog heartbeats — which select how many partition rounds
  /// run, never what any round computes. The engine's prefix property
  /// (any accepted-round prefix is a valid partition, DESIGN.md §5) plus
  /// the checkpoint/resume bit-identity tests guarantee no emitted bit
  /// depends on this reading.
  std::uint64_t now_ns() override {
    // xh-lint: allow(XH-DET-001)
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
  }

  void sleep_ns(std::uint64_t ns) override {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
};

}  // namespace

ClockSource& wall_clock() {
  static WallClock clock;
  return clock;
}

}  // namespace xh
