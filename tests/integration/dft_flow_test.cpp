// The complete compressed-test loop the paper's introduction frames:
// ATPG with don't-cares → LFSR-reseeding stimulus compression → expansion →
// scan application → X-polluted responses → pattern-partitioned hybrid
// X-handling → verified detection of the targeted faults.
#include <gtest/gtest.h>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/generator.hpp"
#include "scan/test_application.hpp"
#include "stimulus/decompressor.hpp"

namespace xh {
namespace {

TEST(DftFlow, CompressedStimulusPreservesTargetedDetections) {
  GeneratorConfig gcfg;
  gcfg.seed = 77;
  gcfg.num_gates = 400;
  gcfg.num_dffs = 200;  // compression needs cells >> seed bits
  gcfg.nonscan_fraction = 0.1;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 4);

  // Deterministic-only ATPG keeping don't-cares.
  AtpgConfig acfg;
  acfg.random_patterns = 0;
  acfg.fill_dont_cares = false;
  acfg.seed = 5;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  ASSERT_FALSE(atpg.patterns.empty());

  // Compress. Seed length must exceed the max care-bit count; 64 is ample
  // for this circuit size.
  const StimulusDecompressor decomp(FeedbackPolynomial::primitive(64),
                                    plan.geometry(), 99);
  const CompressionResult comp = compress_patterns(decomp, atpg.patterns);
  // Encodability: virtually every pattern's care bits fit in a 64-bit seed.
  EXPECT_LE(comp.failed_patterns.size(), atpg.patterns.size() / 5);
  EXPECT_GT(comp.compression_ratio(), 1.5)
      << "200 scan cells per pattern vs 64 seed bits";

  // Expand and re-simulate: every fault detected by the don't-care pattern
  // set must still be detected by the expanded set (expansion only turns X
  // fills into definite values — strictly more detection potential). Only
  // the encodable patterns are compared.
  std::vector<TestPattern> kept;
  std::size_t fail_cursor = 0;
  for (std::size_t i = 0; i < atpg.patterns.size(); ++i) {
    if (fail_cursor < comp.failed_patterns.size() &&
        comp.failed_patterns[fail_cursor] == i) {
      ++fail_cursor;
      continue;
    }
    kept.push_back(atpg.patterns[i]);
  }
  std::vector<TestPattern> expanded;
  for (const auto& cp : comp.seeds) {
    expanded.push_back(decompress_pattern(decomp, cp));
  }
  ASSERT_EQ(kept.size(), expanded.size());
  FaultSimulator fsim(nl, plan);
  const FaultSimResult sparse = fsim.run(kept, atpg.faults);
  const FaultSimResult dense = fsim.run(expanded, atpg.faults);
  for (std::size_t fi = 0; fi < atpg.faults.size(); ++fi) {
    if (sparse.detected[fi]) {
      EXPECT_TRUE(dense.detected[fi])
          << "lost " << fault_name(nl, atpg.faults[fi]);
    }
  }
}

TEST(DftFlow, EndToEndWithHybridResponseSide) {
  GeneratorConfig gcfg;
  gcfg.seed = 88;
  gcfg.num_gates = 200;
  gcfg.num_dffs = 24;
  gcfg.nonscan_fraction = 0.15;
  gcfg.num_buses = 1;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 4);

  AtpgConfig acfg;
  acfg.random_patterns = 0;
  acfg.fill_dont_cares = false;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  ASSERT_FALSE(atpg.patterns.empty());

  const StimulusDecompressor decomp(FeedbackPolynomial::primitive(64),
                                    plan.geometry(), 3);
  const CompressionResult comp = compress_patterns(decomp, atpg.patterns);
  std::vector<TestPattern> expanded;
  for (const auto& cp : comp.seeds) {
    expanded.push_back(decompress_pattern(decomp, cp));
  }
  ASSERT_FALSE(expanded.empty());

  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(expanded);

  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  EXPECT_TRUE(sim.observability_preserved);
  // The hybrid carries an L·C floor for its (at least one) mask; the cost
  // function guarantees it never exceeds the unsplit hybrid.
  EXPECT_LE(sim.report.proposed_bits,
            sim.report.canceling_only_bits +
                static_cast<double>(response.num_cells()) + 1e-9);

  // Coverage under the hybrid's observation filter is identical to ideal.
  FaultSimulator fsim(nl, plan);
  const FaultSimResult ideal = fsim.run(expanded, atpg.faults, observe_all());
  const FaultSimResult masked = fsim.run(
      expanded, atpg.faults,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  EXPECT_EQ(ideal.num_detected, masked.num_detected);
}

}  // namespace
}  // namespace xh
