#include "util/diagnostics.hpp"

#include <gtest/gtest.h>

namespace xh {
namespace {

TEST(Diagnostics, StartsEmpty) {
  Diagnostics d;
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.has_errors());
  EXPECT_FALSE(d.has_warnings());
  EXPECT_EQ(d.total(), 0u);
  EXPECT_TRUE(d.render().empty());
}

TEST(Diagnostics, CountsBySeverityAndKind) {
  Diagnostics d;
  d.error(DiagKind::kUndeclaredX, "pattern 0 cell 1", "x");
  d.error(DiagKind::kUndeclaredX, "pattern 2 cell 3", "x");
  d.warn(DiagKind::kMissingX, "pattern 1 cell 0", "resolved");
  d.info(DiagKind::kExtractionRecovered, "stop 4", "repaid");

  EXPECT_EQ(d.total(), 4u);
  EXPECT_EQ(d.count(DiagKind::kUndeclaredX), 2u);
  EXPECT_EQ(d.count(DiagKind::kMissingX), 1u);
  EXPECT_EQ(d.count(DiagKind::kTruncatedInput), 0u);
  EXPECT_EQ(d.count(DiagSeverity::kError), 2u);
  EXPECT_EQ(d.count(DiagSeverity::kWarning), 1u);
  EXPECT_EQ(d.count(DiagSeverity::kInfo), 1u);
  EXPECT_TRUE(d.has_errors());
  EXPECT_TRUE(d.has_warnings());
}

TEST(Diagnostics, RecordsAreGreppableOneLiners) {
  Diagnostics d;
  d.error(DiagKind::kUndeclaredX, "pattern 3 cell 17", "unexpected X");
  ASSERT_EQ(d.records().size(), 1u);
  const std::string line = d.records()[0].to_string();
  EXPECT_NE(line.find("error"), std::string::npos);
  EXPECT_NE(line.find("undeclared-x"), std::string::npos);
  EXPECT_NE(line.find("pattern 3 cell 17"), std::string::npos);
  EXPECT_NE(line.find("unexpected X"), std::string::npos);
}

TEST(Diagnostics, RetentionCappedPerKindButCountsStayExact) {
  Diagnostics d;
  const std::size_t n = Diagnostics::kMaxRecordsPerKind + 40;
  for (std::size_t i = 0; i < n; ++i) {
    d.warn(DiagKind::kMaskHidesValue, "cell " + std::to_string(i), "hidden");
  }
  d.error(DiagKind::kTruncatedInput, "file", "cut");

  EXPECT_EQ(d.count(DiagKind::kMaskHidesValue), n);
  EXPECT_EQ(d.count(DiagSeverity::kWarning), n);
  // Retained records: capped for the stormy kind, the other kind intact.
  EXPECT_EQ(d.records().size(), Diagnostics::kMaxRecordsPerKind + 1);
  // The render mentions the suppressed remainder.
  EXPECT_NE(d.render().find("40"), std::string::npos);
  EXPECT_NE(d.render().find("mask-hides-value"), std::string::npos);
}

TEST(Diagnostics, ClearResetsEverything) {
  Diagnostics d;
  d.error(DiagKind::kGarbledInput, "f", "junk");
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count(DiagKind::kGarbledInput), 0u);
  EXPECT_TRUE(d.records().empty());
}

TEST(Diagnostics, NullCollectorHelperIsANoOp) {
  EXPECT_NO_THROW(diag_report(nullptr, DiagSeverity::kError,
                              DiagKind::kBadArgument, "loc", "msg"));
}

TEST(Diagnostics, EveryKindHasADistinctName) {
  for (std::size_t a = 0; a < static_cast<std::size_t>(DiagKind::kNumKinds_);
       ++a) {
    const std::string name_a = diag_kind_name(static_cast<DiagKind>(a));
    EXPECT_FALSE(name_a.empty());
    for (std::size_t b = a + 1;
         b < static_cast<std::size_t>(DiagKind::kNumKinds_); ++b) {
      EXPECT_NE(name_a, diag_kind_name(static_cast<DiagKind>(b)));
    }
  }
}

}  // namespace
}  // namespace xh
