// Strict numeric parsing for untrusted text (CLI arguments, file fields).
//
// The std::atoll/atof family silently maps junk to 0 and saturates on
// overflow, which turns a typo like `--chains foo` into a degenerate-but-
// plausible run. These helpers require the whole string to be consumed and
// throw std::invalid_argument with the offending text on any failure.
#pragma once

#include <cstdint>
#include <string>

namespace xh {

/// Parses a non-negative decimal integer. Rejects empty strings, signs,
/// trailing junk and values that do not fit in 64 bits.
std::uint64_t parse_u64(const std::string& text);

/// parse_u64 narrowed to std::size_t (identical on 64-bit platforms).
std::size_t parse_size(const std::string& text);

/// Parses a finite decimal floating-point value (whole string consumed;
/// rejects NaN, infinities and out-of-range magnitudes).
double parse_f64(const std::string& text);

}  // namespace xh
