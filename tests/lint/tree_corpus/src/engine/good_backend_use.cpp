// engine is on the backend_ whitelist: this include is clean.
#include "storage/backend_blob.hpp"

namespace fixture {

int engine_pages() { return BackendBlob{}.pages; }

}  // namespace fixture
