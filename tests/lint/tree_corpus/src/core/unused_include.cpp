#include "core/api.hpp"

namespace fixture {

int standalone() { return 7; }

}  // namespace fixture
