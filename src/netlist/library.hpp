// A small library of structured, hand-designed circuits with known behavior.
//
// The random generator covers breadth; these cover realism: datapath,
// control and bus structures with verifiable function, used by tests,
// examples and the circuit-flow benchmarks. All are full- or partial-scan
// sequential designs; the partial-scan and bus variants carry the X-sources
// the paper targets.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace xh {

/// n-bit synchronous binary counter with enable: q' = q + en.
/// All flops scanned. Output: the n state bits plus a carry-out.
Netlist make_counter(std::size_t bits);

/// Galois LFSR/CRC register of the given width with serial data input and
/// enable. All flops scanned.
Netlist make_crc(std::size_t bits, std::size_t tap_mask = 0xB);

/// Registered ALU: two w-bit operands from input registers, 2-bit opcode
/// selecting among ADD, AND, OR, XOR, result register on the output.
/// All flops scanned.
Netlist make_alu(std::size_t width);

/// w-bit, d-stage register pipeline with XOR/AND mixing between stages.
/// One stage's registers are UNSCANNED (an uninitialized-state X-source
/// polluting everything downstream).
Netlist make_pipeline(std::size_t width, std::size_t stages);

/// Shared tri-state bus fabric: @p masters drivers on a @p width-bit bus,
/// one-hot enables from primary inputs (contention and floating are
/// reachable!), bus values captured into scanned observation registers.
Netlist make_bus_fabric(std::size_t masters, std::size_t width);

/// Registered w×w array multiplier (unsigned): operands latched, 2w-bit
/// product register. All flops scanned. Quadratic gate count — the stress
/// datapath for ATPG/fault-sim scaling.
Netlist make_multiplier(std::size_t width);

/// n-bit Gray-code counter with enable: exactly one output bit toggles per
/// enabled clock. All flops scanned.
Netlist make_gray_counter(std::size_t bits);

}  // namespace xh
