// Coverage for the deprecated compatibility shims: the PR 4 HybridConfig
// overloads and the PR 9 pre-kernel-layer BitVec/gf2 entry points. The
// tree builds with deprecation-warnings-as-errors and no in-tree caller may
// use these spellings anymore; this file is the one sanctioned exception,
// keeping the compatibility shims exercised until their removal.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "gf2/matrix.hpp"
#include "kernels/compat.hpp"
#include "kernels/kernels.hpp"
#include "util/bitvec.hpp"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace xh {
namespace {

HybridConfig paper_cfg() {
  HybridConfig cfg;
  cfg.partitioner.misr = {10, 2};
  return cfg;
}

/// Turns the first deterministic cell of pattern 0 into an X the
/// declaration does not predict.
void inject_undeclared_x(ResponseMatrix& response) {
  for (std::size_t c = 0; c < response.num_cells(); ++c) {
    if (response.get(0, c) != Lv::kX) {
      response.set(0, c, Lv::kX);
      return;
    }
  }
  FAIL() << "no deterministic cell to corrupt";
}

TEST(DeprecatedApi, AnalysisOverloadMatchesContextPath) {
  const XMatrix xm = paper_example_x_matrix();
  const HybridReport legacy = run_hybrid_analysis(xm, paper_cfg());

  PipelineContext ctx(paper_cfg().partitioner);
  const HybridReport modern = run_hybrid_analysis(xm, ctx);

  EXPECT_EQ(legacy.partitioning.partitions.size(),
            modern.partitioning.partitions.size());
  EXPECT_EQ(legacy.partitioning.masked_x, modern.partitioning.masked_x);
  EXPECT_EQ(legacy.partitioning.leaked_x, modern.partitioning.leaked_x);
  EXPECT_DOUBLE_EQ(legacy.proposed_bits, modern.proposed_bits);
}

TEST(DeprecatedApi, TrustingSimulationOverloadMatchesContextPath) {
  const ResponseMatrix response = paper_example_response(5);
  const HybridSimulation legacy = run_hybrid_simulation(response, paper_cfg());

  PipelineContext ctx(paper_cfg().partitioner);
  const HybridSimulation modern = run_hybrid_simulation(response, ctx);

  EXPECT_TRUE(legacy.observability_preserved);
  EXPECT_EQ(legacy.x_entering_misr, modern.x_entering_misr);
  EXPECT_EQ(legacy.cancel.stops, modern.cancel.stops);
  EXPECT_EQ(legacy.cancel.signature.size(), modern.cancel.signature.size());
}

TEST(DeprecatedApi, ValidatingOverloadRoutesDiagnosticsLikeAdoption) {
  ResponseMatrix response = paper_example_response(5);
  const XMatrix declared = XMatrix::from_response(response);
  inject_undeclared_x(response);

  Diagnostics legacy_diags;
  const HybridSimulation legacy =
      run_hybrid_simulation(response, declared, paper_cfg(), &legacy_diags);

  Diagnostics modern_diags;
  PipelineContext ctx(paper_cfg().partitioner);
  ctx.adopt_collector(&modern_diags);
  const HybridSimulation modern =
      run_hybrid_simulation(response, declared, ctx);

  EXPECT_TRUE(legacy.degraded);
  EXPECT_EQ(legacy.validation.undeclared_x, modern.validation.undeclared_x);
  EXPECT_EQ(legacy_diags.count(DiagKind::kUndeclaredX),
            modern_diags.count(DiagKind::kUndeclaredX));
}

TEST(DeprecatedApi, ValidatingOverloadNullDiagsIsStrict) {
  ResponseMatrix response = paper_example_response(5);
  const XMatrix declared = XMatrix::from_response(response);
  inject_undeclared_x(response);
  EXPECT_THROW(
      (void)run_hybrid_simulation(response, declared, paper_cfg(), nullptr),
      std::runtime_error);
}

// ---- PR 9 shims: pre-kernel-layer BitVec / gf2 entry points ---------------
//
// The unqualified and_count / and_not_count / eliminate / solve /
// x_free_combinations spellings are the scalar-only ancestors of the
// dispatched xh::kernels API. These tests pin the shim-vs-kernels
// equivalence the deprecation message promises.

BitVec patterned_vec(std::size_t n, std::uint64_t salt) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (((i * 2654435761u + salt) >> 7) & 1u) v.set(i);
  }
  return v;
}

TEST(DeprecatedApi, FusedCountShimsMatchKernels) {
  for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 300u}) {
    const BitVec a = patterned_vec(n, 11);
    const BitVec b = patterned_vec(n, 97);
    EXPECT_EQ(and_count(a, b), kernels::and_count(a, b));
    EXPECT_EQ(and_not_count(a, b), kernels::and_not_count(a, b));
  }
}

TEST(DeprecatedApi, Gf2ShimsMatchKernels) {
  const Gf2Matrix m = Gf2Matrix::from_strings(
      {"110100", "011010", "101110", "000001", "110100", "111111"});
  const Elimination legacy = eliminate(m);
  const Elimination modern = kernels::eliminate(m);
  EXPECT_EQ(legacy.rank, modern.rank);
  EXPECT_TRUE(legacy.reduced == modern.reduced);
  ASSERT_EQ(legacy.combination.size(), modern.combination.size());
  for (std::size_t i = 0; i < legacy.combination.size(); ++i) {
    EXPECT_TRUE(legacy.combination[i] == modern.combination[i]);
  }

  const auto legacy_basis = x_free_combinations(m);
  const auto modern_basis = kernels::x_free_combinations(m);
  ASSERT_EQ(legacy_basis.size(), modern_basis.size());
  for (std::size_t i = 0; i < legacy_basis.size(); ++i) {
    EXPECT_TRUE(legacy_basis[i] == modern_basis[i]);
  }

  const BitVec b = patterned_vec(m.rows(), 5);
  const auto legacy_x = solve(m, b);
  const auto modern_x = kernels::solve(m, b);
  ASSERT_EQ(legacy_x.has_value(), modern_x.has_value());
  if (legacy_x.has_value()) {
    EXPECT_TRUE(*legacy_x == *modern_x);
  }
}

}  // namespace
}  // namespace xh

#pragma GCC diagnostic pop
