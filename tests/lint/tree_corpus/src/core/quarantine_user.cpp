#include "util/veccount.hpp"
#include "util/veccount_compat.hpp"

namespace fixture {

// The straggler: still calls the retired unqualified spelling.
int straggler(const WordVec& v) { return vec_count(v); }

// The migrated neighbour stays clean: mentioning WordVec and calling the
// qualified live API must not trip the quarantined-shim rule.
int migrated(const WordVec& v) { return fast::vec_count(v); }

}  // namespace fixture
