// Parameterized invariant sweeps: the partitioner and hybrid pipeline must
// hold their guarantees across workload shapes and MISR configurations, not
// just on the worked example.
#include <gtest/gtest.h>

#include <tuple>

#include "core/hybrid.hpp"
#include "masking/mask.hpp"
#include "misr/accounting.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

using SweepParam = std::tuple<double /*density*/, double /*clustered*/,
                              std::size_t /*m*/, std::size_t /*q*/>;

class HybridSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static XMatrix workload(double density, double clustered) {
    WorkloadProfile p;
    p.name = "sweep";
    p.geometry = {12, 40};
    p.num_patterns = 160;
    p.x_density = density;
    p.clustered_fraction = clustered;
    p.cluster_cells_mean = 24;
    p.cluster_patterns_mean = 32;
    p.seed = static_cast<std::uint64_t>(density * 1e6) + 77;
    return generate_workload(p);
  }
};

TEST_P(HybridSweep, InvariantsHold) {
  const auto [density, clustered, m, q] = GetParam();
  const XMatrix xm = workload(density, clustered);
  PipelineContext ctx;
  ctx.partitioner.misr = {m, q};
  const HybridReport rep = run_hybrid_analysis(xm, ctx);
  const PartitionResult& pr = rep.partitioning;

  // 1. Partitions form a disjoint cover.
  BitVec seen(xm.num_patterns());
  for (const auto& part : pr.partitions) {
    ASSERT_TRUE(part.any());
    ASSERT_FALSE(seen.intersects(part));
    seen |= part;
  }
  EXPECT_EQ(seen.count(), xm.num_patterns());

  // 2. Masks are exactly the safe masks and accounting is consistent.
  std::uint64_t masked = 0;
  for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
    EXPECT_TRUE(pr.masks[i] == partition_mask(xm, pr.partitions[i]));
    masked += pr.masks[i].count() * pr.partitions[i].count();
  }
  EXPECT_EQ(masked, pr.masked_x);
  EXPECT_EQ(pr.masked_x + pr.leaked_x, xm.total_x());
  EXPECT_DOUBLE_EQ(
      pr.total_bits,
      hybrid_bits(xm.geometry(), pr.num_partitions(), ctx.misr(),
                  pr.leaked_x));

  // 3. The cost trajectory is strictly decreasing over accepted rounds and
  //    the final state matches its last accepted entry.
  for (std::size_t i = 1; i < pr.history.size(); ++i) {
    if (pr.history[i].accepted) {
      EXPECT_LT(pr.history[i].total_bits, pr.history[i - 1].total_bits);
    }
  }
  const PartitionRound* last_accepted = &pr.history.front();
  for (const auto& h : pr.history) {
    if (h.accepted) last_accepted = &h;
  }
  EXPECT_DOUBLE_EQ(last_accepted->total_bits, pr.total_bits);
  EXPECT_EQ(last_accepted->num_partitions, pr.num_partitions());

  // 4. Report ratios are self-consistent.
  EXPECT_DOUBLE_EQ(rep.proposed_bits, pr.total_bits);
  if (rep.proposed_bits > 0) {
    EXPECT_DOUBLE_EQ(rep.improvement_over_canceling,
                     rep.canceling_only_bits / rep.proposed_bits);
  }
  EXPECT_GE(rep.test_time_canceling_only, rep.test_time_proposed - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    DensityCorrelationMisr, HybridSweep,
    ::testing::Combine(::testing::Values(0.002, 0.02, 0.08),
                       ::testing::Values(0.0, 0.5, 0.9),
                       ::testing::Values<std::size_t>(16, 32),
                       ::testing::Values<std::size_t>(2, 7)));

}  // namespace
}  // namespace xh
