// corpus: header declaring the unordered member iterated in the paired .cpp
// (mirrors XMatrix::cells_, the bug class fixed by hand in PR 2).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

class CellIndex {
 public:
  std::vector<std::size_t> cells() const;

 private:
  std::unordered_map<std::size_t, int> cells_;
};
