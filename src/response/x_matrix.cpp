#include "response/x_matrix.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"

#include "response/response_matrix.hpp"

namespace xh {

XMatrix::XMatrix(ScanGeometry geometry, std::size_t num_patterns)
    : geometry_(geometry),
      num_patterns_(num_patterns),
      empty_(num_patterns) {
  XH_REQUIRE(geometry.num_cells() > 0, "geometry must have cells");
  XH_REQUIRE(num_patterns > 0, "need at least one pattern");
}

void XMatrix::add_x(std::size_t cell, std::size_t pattern) {
  XH_REQUIRE(cell < num_cells(), "cell index out of range");
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  auto [it, inserted] = cells_.try_emplace(cell, BitVec(num_patterns_));
  if (!it->second.get(pattern)) {
    it->second.set(pattern);
    ++total_x_;
  }
}

bool XMatrix::is_x(std::size_t cell, std::size_t pattern) const {
  XH_REQUIRE(pattern < num_patterns_, "pattern index out of range");
  const auto it = cells_.find(cell);
  return it != cells_.end() && it->second.get(pattern);
}

std::vector<std::size_t> XMatrix::x_cells() const {
  std::vector<std::size_t> cells;
  cells.reserve(cells_.size());
  // Hash order never escapes: collected then sorted before returning.
  // xh-lint: allow(XH-DET-002)
  for (const auto& [cell, pats] : cells_) cells.push_back(cell);
  std::sort(cells.begin(), cells.end());
  return cells;
}

const BitVec& XMatrix::patterns_of(std::size_t cell) const {
  XH_REQUIRE(cell < num_cells(), "cell index out of range");
  const auto it = cells_.find(cell);
  return it == cells_.end() ? empty_ : it->second;
}

std::size_t XMatrix::x_count(std::size_t cell) const {
  return patterns_of(cell).count();
}

std::size_t XMatrix::x_count_in(std::size_t cell,
                                const BitVec& patterns) const {
  const BitVec& mine = patterns_of(cell);
  XH_REQUIRE(patterns.size() == num_patterns_,
             "pattern subset width mismatch");
  return kernels::and_count(mine, patterns);
}

double XMatrix::x_density() const {
  return static_cast<double>(total_x_) /
         (static_cast<double>(num_patterns_) *
          static_cast<double>(num_cells()));
}

std::size_t XMatrix::total_x_in(const BitVec& patterns) const {
  XH_REQUIRE(patterns.size() == num_patterns_,
             "pattern subset width mismatch");
  std::size_t total = 0;
  // Order-independent reduction (+ over size_t is commutative/associative),
  // so hash order cannot affect the result. xh-lint: allow(XH-DET-002)
  for (const auto& [cell, pats] : cells_) {
    total += kernels::and_count(pats, patterns);
  }
  return total;
}

XMatrix XMatrix::from_response(const ResponseMatrix& response) {
  XMatrix xm(response.geometry(), response.num_patterns());
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    const BitVec row = response.x_row(p);
    for (std::size_t c = row.find_first(); c < row.size();
         c = row.find_next(c + 1)) {
      xm.add_x(c, p);
    }
  }
  return xm;
}

}  // namespace xh
