// Seeds XH-RACE-001 through a default reference capture: [&] silently
// captures the parameter the body uses, and nothing fences the frame's
// lifetime against the pool.
#include "service/ipa_seam.hpp"

namespace fixture {

void scatter_seed(WorkPool& pool, int seed) {
  pool.post([&] { consume(seed); });
}

}  // namespace fixture
