// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (circuit generation, workload
// synthesis, random-fill ATPG) take an explicit Rng so experiments are
// reproducible from a single seed. The generator is xoshiro256** seeded
// through splitmix64, which is both fast and statistically strong enough
// for workload synthesis.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace xh {

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the full 256-bit state from @p seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) — @p bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive — requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability @p p (clamped to [0,1]).
  bool chance(double p);

  /// Approximately Gaussian sample (sum of uniforms), mean 0, stddev 1.
  double gaussian();

  /// Fisher–Yates shuffle of @p items.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples @p k distinct values from [0, n) in increasing order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Full 256-bit generator state, for checkpoint/resume. A generator
  /// restored via set_state() produces the exact sequence the saved one
  /// would have.
  std::array<std::uint64_t, 4> state() const;

  /// Restores a state captured by state(). Rejects the all-zero state
  /// (xoshiro's sole degenerate fixed point).
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
};

}  // namespace xh
