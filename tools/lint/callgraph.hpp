// Whole-program call graph for the interprocedural lint tier
// (DESIGN.md §13). Built over the project model's files at the same
// token-stream altitude as the rest of xh_lint: every function definition
// in scope (src/, tools/, bench/) contributes its FunctionCfg, every
// call-shaped identifier in its nodes contributes a call site, and name
// resolution is deliberately conservative:
//
//   * a free call `f(...)` resolves to every free function named f plus
//     every member f of the CALLER's own class (the unqualified
//     member-call idiom inside out-of-line definitions);
//   * a member call `x.f(...)` / `x->f(...)` resolves only to member
//     functions named f (non-empty qualifier) — and a short blocklist of
//     std-owned member names (wait, lock, notify_one, ...) never resolves
//     at all, so `done_cv_.wait(...)` cannot alias a project function that
//     happens to be called `wait`;
//   * a call whose identifier sits inside a lambda body in the same
//     statement is marked `deferred`: it runs when the callable runs, not
//     when the statement executes. Summary propagation (summaries.hpp)
//     skips deferred edges; the posted-callable rules consume them.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/project_model.hpp"

namespace xh::lint {

struct CallSite {
  std::string callee;   // unqualified name at the call site
  std::size_t node = 0; // caller CFG node containing the call
  std::size_t line = 0; // 1-based source line of that node
  bool member = false;  // `x.callee(...)` / `x->callee(...)` shape
  bool deferred = false;  // identifier sits inside a lambda body
  std::vector<std::size_t> targets;  // resolved CallGraph::functions indices
};

struct CgFunction {
  std::string path;     // repo-relative defining file
  std::string display;  // "Qualifier::name" or "name"
  FunctionCfg cfg;
  std::vector<CallSite> calls;
};

struct CallGraph {
  std::vector<CgFunction> functions;
  /// Unqualified name -> indices into functions, for resolution and tests.
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// Strongly connected components in callees-first (reverse topological)
  /// order: every non-recursive callee's component precedes its callers'.
  std::vector<std::vector<std::size_t>> sccs;
  /// Total resolved (site, target) edges; the self-scan pins a floor.
  std::size_t resolved_edges = 0;
};

/// Builds the call graph over every function defined in the model's src/,
/// tools/ and bench/ files. Deterministic: files in path order, functions
/// in definition order.
CallGraph build_call_graph(const ProjectModel& model);

/// One lambda expression inside a compacted statement text: a '[' in
/// expression position, optional capture list, optional parameter list and
/// specifiers, then a braced body. Offsets are [begin, end) into the text.
struct LambdaInfo {
  std::size_t cap_begin = 0;   // first char inside the '[...]' introducer
  std::size_t cap_end = 0;
  std::size_t body_begin = 0;  // first char inside the '{...}' body
  std::size_t body_end = 0;
};

/// Every top-level lambda in @p text, left to right (lambdas nested inside
/// another lambda's body are covered by the outer body range).
std::vector<LambdaInfo> lambdas_in(const std::string& text);

/// Just the [body_begin, body_end) ranges of lambdas_in(text).
std::vector<std::pair<std::size_t, std::size_t>> lambda_body_ranges(
    const std::string& text);

}  // namespace xh::lint
