// Per-function control-flow graphs for the flow-sensitive lint tier
// (DESIGN.md §13).
//
// build_cfgs() extracts every function definition from one Cleaned file and
// lowers its body into a small statement-level CFG — no full C++ parse, the
// same pragmatic token altitude as project_model. The extractor recognizes
// `name(params) [specifiers] [: init-list] {` definition heads (free
// functions, out-of-line members, constructors, gtest TEST bodies) and the
// lowering handles if/else, for/while/do loops, switch fallthrough,
// early return/break/continue, throw, try/catch and nested blocks.
//
// Deliberate approximations, chosen so the XH-FLOW rules stay sound enough
// to gate on (tests/lint/cfg_test.cpp pins each one):
//   * a lambda body is ONE statement of the enclosing function — control
//     flow inside it is invisible, but its text (and any lock it takes)
//     stays attached to that node;
//   * `throw` edges go to the function exit, never to an enclosing catch —
//     a may-reach-exit over-approximation (catch handlers are additionally
//     reachable from the start of their try block);
//   * `goto` is not modeled (the tree is goto-free; a goto statement lowers
//     to a plain node and the self-scan connectivity test would catch any
//     future unreachable-label damage).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/text_scan.hpp"

namespace xh::lint {

constexpr std::size_t kCfgNone = static_cast<std::size_t>(-1);

struct CfgNode {
  enum class Kind {
    kEntry,
    kExit,
    kStatement,  // simple statement (declaration, expression, lambda, ...)
    kCondition,  // if/while/for/switch/do-while controlling expression
    kCase,       // case/default label inside a switch
    kReturn,
    kBreak,
    kContinue,
    kThrow,
  };

  Kind kind = Kind::kStatement;
  std::size_t line = 0;       // 1-based first line of the statement
  std::size_t end_line = 0;   // 1-based last line
  std::string text;           // flattened statement/condition text
  std::vector<std::size_t> succ;

  /// Innermost loop this node belongs to: index of the controlling
  /// kCondition node, or kCfgNone outside any loop.
  std::size_t loop_head = kCfgNone;
  /// True for the kCondition node of a loop (for/while/do) as opposed to an
  /// if/switch condition.
  bool is_loop_head = false;
  /// Loop head of an unconditionally-true loop (`for(;;)`, `while(true)`).
  bool loop_unbounded = false;

  /// Lexical count of scope-based lock acquisitions (std::lock_guard,
  /// std::scoped_lock, std::unique_lock declarations) whose scope covers
  /// this node. The guard-state dataflow combines this with flow-sensitive
  /// .lock()/.unlock() transitions.
  int scope_locks = 0;
};

struct FunctionCfg {
  std::string name;       // unqualified function name ("run_next")
  std::string qualifier;  // enclosing-class qualifier for out-of-line
                          // members ("PartitionService"), else ""
  std::size_t line = 0;   // 1-based line of the definition head
  bool is_constructor = false;  // name == qualifier
  bool is_destructor = false;   // ~name
  std::string params;     // raw parameter-list text (between the parens)
  /// Last word of the declared return type, scanned backwards from the
  /// name over `&`/`*` and one `<...>` list: "Diagnostics" for
  /// `xh::Diagnostics f()`, "auto" for `auto f()`, "" for constructors,
  /// destructors and macro-shaped heads. The interprocedural tier keys
  /// status propagation off it.
  std::string return_type;

  /// nodes[0] is always kEntry, nodes[1] always kExit.
  std::vector<CfgNode> nodes;

  static constexpr std::size_t kEntry = 0;
  static constexpr std::size_t kExit = 1;
};

/// Extracts every function definition in @p cleaned and builds its CFG.
/// Functions whose bodies fail to lower (unbalanced tokens from heavy
/// macrology) are skipped rather than guessed at.
std::vector<FunctionCfg> build_cfgs(const Cleaned& cleaned);

/// Node indices reachable from @p from (inclusive) following succ edges.
std::vector<std::size_t> reachable_from(const FunctionCfg& cfg,
                                        std::size_t from);

/// True when every node is reachable from entry and the exit is among
/// them — the self-scan invariant for real-tree functions.
bool cfg_connected(const FunctionCfg& cfg);

/// Debug rendering (one node per line) for test failure messages.
std::string to_string(const FunctionCfg& cfg);

}  // namespace xh::lint
