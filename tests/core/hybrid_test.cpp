#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/paper_example.hpp"
#include "misr/accounting.hpp"

namespace xh {
namespace {

PartitionerConfig paper_cfg() {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  return cfg;
}

TEST(HybridAnalysis, ReportFieldsConsistent) {
  const XMatrix xm = paper_example_x_matrix();
  PipelineContext ctx(paper_cfg());
  const HybridReport rep = run_hybrid_analysis(xm, ctx);
  EXPECT_EQ(rep.num_patterns, 8u);
  EXPECT_EQ(rep.num_chains, 5u);
  EXPECT_EQ(rep.chain_length, 3u);
  EXPECT_EQ(rep.total_x, 28u);
  EXPECT_DOUBLE_EQ(rep.x_density, 28.0 / 120.0);
  EXPECT_EQ(rep.masking_only_bits, 120u);
  EXPECT_DOUBLE_EQ(rep.canceling_only_bits, 10.0 * 2 * 28 / 8);
  EXPECT_DOUBLE_EQ(rep.proposed_bits, 57.5);
  EXPECT_DOUBLE_EQ(rep.improvement_over_masking, 120.0 / 57.5);
  EXPECT_DOUBLE_EQ(rep.improvement_over_canceling, 70.0 / 57.5);
}

TEST(HybridAnalysis, TestTimeUsesLeakedDensity) {
  const XMatrix xm = paper_example_x_matrix();
  PipelineContext ctx(paper_cfg());
  const HybridReport rep = run_hybrid_analysis(xm, ctx);
  const MisrConfig misr{10, 2};
  EXPECT_DOUBLE_EQ(rep.test_time_canceling_only,
                   normalized_test_time(5, 28.0 / 120.0, misr));
  EXPECT_DOUBLE_EQ(rep.test_time_proposed,
                   normalized_test_time(5, 5.0 / 120.0, misr));
  EXPECT_GT(rep.test_time_improvement, 1.0);
}

TEST(HybridSimulation, EndToEndOnPaperExample) {
  const ResponseMatrix response = paper_example_response(21);
  PipelineContext ctx(paper_cfg());
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  EXPECT_TRUE(sim.observability_preserved);
  EXPECT_EQ(sim.masked_response.total_x(), 5u);
  // 5 chains map to 5 distinct MISR stages (m=10 ≥ chains), so no X's merge
  // in the spatial compactor.
  EXPECT_EQ(sim.x_entering_misr, 5u);
  EXPECT_EQ(sim.cancel.shift_cycles, 8u * 3u);
}

TEST(HybridSimulation, MaskedCellsReadZero) {
  const ResponseMatrix response = paper_example_response(4);
  PipelineContext ctx(paper_cfg());
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  const auto& pr = sim.report.partitioning;
  for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
    for (const std::size_t p : pr.partitions[i].set_bits()) {
      for (const std::size_t c : pr.masks[i].set_bits()) {
        EXPECT_EQ(sim.masked_response.get(p, c), Lv::k0);
      }
    }
  }
}

TEST(HybridSimulation, DeterministicValuesUntouched) {
  const ResponseMatrix response = paper_example_response(9);
  PipelineContext ctx(paper_cfg());
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    for (std::size_t c = 0; c < response.num_cells(); ++c) {
      if (!response.is_x(p, c)) {
        EXPECT_EQ(sim.masked_response.get(p, c), response.get(p, c))
            << "pattern " << p << " cell " << c;
      }
    }
  }
}

TEST(HybridSimulation, FewerStopsThanCancelingOnly) {
  const ResponseMatrix response = paper_example_response(13);
  PipelineContext ctx(paper_cfg());
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  const XCancelResult baseline =
      run_x_canceling(response, paper_cfg().misr);
  EXPECT_LT(sim.cancel.stops, baseline.stops)
      << "masking must reduce MISR halts";
  EXPECT_LE(sim.cancel.control_bits(paper_cfg().misr),
            baseline.control_bits(paper_cfg().misr));
}

TEST(HybridSimulation, SignatureBitsAreXFreeAcrossSeeds) {
  // Values at X positions differ per seed; the extracted signature values
  // must not (positions, combinations and values all identical), because
  // deterministic cells are identical across these responses.
  PipelineContext ctx_a(paper_cfg());
  PipelineContext ctx_b(paper_cfg());
  const HybridSimulation a =
      run_hybrid_simulation(paper_example_response(100), ctx_a);
  const HybridSimulation b =
      run_hybrid_simulation(paper_example_response(100), ctx_b);
  ASSERT_EQ(a.cancel.signature.size(), b.cancel.signature.size());
  for (std::size_t i = 0; i < a.cancel.signature.size(); ++i) {
    EXPECT_EQ(a.cancel.signature[i].value, b.cancel.signature[i].value);
  }
}

}  // namespace
}  // namespace xh
