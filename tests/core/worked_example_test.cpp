// Golden reproduction of the paper's Section 4 worked example
// (Figures 4, 5 and 6) and both cost-function walk-throughs.
#include <gtest/gtest.h>

#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "misr/accounting.hpp"

namespace xh {
namespace {

using C = PaperExampleCells;

BitVec pats(std::initializer_list<std::size_t> set) {
  BitVec v(8);
  for (const std::size_t p : set) v.set(p);
  return v;
}

TEST(WorkedExample, Figure4XCountsAreExact) {
  const XMatrix xm = paper_example_x_matrix();
  EXPECT_EQ(xm.total_x(), 28u);
  EXPECT_EQ(xm.x_count(C::sc1_c0), 4u);
  EXPECT_EQ(xm.x_count(C::sc2_c0), 4u);
  EXPECT_EQ(xm.x_count(C::sc3_c0), 4u);
  EXPECT_EQ(xm.x_count(C::sc2_c2), 2u);
  EXPECT_EQ(xm.x_count(C::sc4_c2), 7u);
  EXPECT_EQ(xm.x_count(C::sc5_c1), 6u);
  EXPECT_EQ(xm.x_count(C::sc5_c2), 1u);
  EXPECT_EQ(xm.x_cells().size(), 7u);
}

TEST(WorkedExample, TheFourXCellsShareTheirPatterns) {
  // The inter-correlation the paper highlights: the three 4-X cells capture
  // X under the SAME four patterns P1, P4, P5, P6.
  const XMatrix xm = paper_example_x_matrix();
  const BitVec expected = pats({0, 3, 4, 5});
  EXPECT_TRUE(xm.patterns_of(C::sc1_c0) == expected);
  EXPECT_TRUE(xm.patterns_of(C::sc2_c0) == expected);
  EXPECT_TRUE(xm.patterns_of(C::sc3_c0) == expected);
}

// Full Figure 5 trace with the m=10, q=2 configuration: two rounds accepted,
// final partitions {P2,P3,P7,P8}, {P1,P4,P5}, {P6}.
class Figure5 : public ::testing::Test {
 protected:
  static PartitionResult run() {
    PartitionerConfig cfg;
    cfg.misr = {10, 2};
    return partition_patterns(paper_example_x_matrix(), cfg);
  }
};

TEST_F(Figure5, ProducesThePaperPartitions) {
  const PartitionResult r = run();
  ASSERT_EQ(r.num_partitions(), 3u);
  // Order-independent comparison.
  std::vector<BitVec> expected = {pats({1, 2, 6, 7}), pats({0, 3, 4}),
                                  pats({5})};
  for (const auto& want : expected) {
    bool found = false;
    for (const auto& got : r.partitions) {
      if (got == want) found = true;
    }
    EXPECT_TRUE(found) << "missing partition " << want.to_string();
  }
}

TEST_F(Figure5, PartitionsAreDisjointAndCoverAllPatterns) {
  const PartitionResult r = run();
  BitVec unionv(8);
  std::size_t total = 0;
  for (const auto& p : r.partitions) {
    EXPECT_FALSE(unionv.intersects(p));
    unionv |= p;
    total += p.count();
  }
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(unionv.count(), 8u);
}

TEST_F(Figure5, MasksRemove23AndLeak5) {
  const PartitionResult r = run();
  EXPECT_EQ(r.masked_x, 23u);
  EXPECT_EQ(r.leaked_x, 5u);
}

TEST_F(Figure5, MaskingControlBitsDrop120To45) {
  const PartitionResult r = run();
  // Conventional X-masking: 3 · 5 · 8 = 120 bits. Proposed: 15 per partition.
  EXPECT_DOUBLE_EQ(r.masking_bits, 45.0);
  EXPECT_EQ(x_masking_only_bits(paper_example_geometry(), 8), 120u);
}

TEST_F(Figure5, CostTrajectoryIs85Then60Then57point5) {
  const PartitionResult r = run();
  // history[0] = unsplit, [1] = round 1, [2] = round 2.
  ASSERT_GE(r.history.size(), 3u);
  EXPECT_DOUBLE_EQ(r.history[0].total_bits, 85.0);  // 15 + 20·28/8
  EXPECT_DOUBLE_EQ(r.history[1].total_bits, 60.0);  // 30 + 20·12/8
  EXPECT_DOUBLE_EQ(r.history[2].total_bits, 57.5);  // 45 + 20·5/8
  EXPECT_EQ(round_bits(r.history[2].total_bits), 58u);
  EXPECT_TRUE(r.history[1].accepted);
  EXPECT_TRUE(r.history[2].accepted);
  EXPECT_EQ(r.history[1].masked_x, 16u);
  EXPECT_EQ(r.history[1].leaked_x, 12u);
}

TEST_F(Figure5, StopsBecauseNoGroupRemains) {
  // After round 2 no partition has >= 2 candidate cells with equal X counts,
  // exactly as the paper narrates — the search ends without a rejected probe.
  const PartitionResult r = run();
  EXPECT_EQ(r.history.size(), 3u);
  for (const auto& h : r.history) EXPECT_TRUE(h.accepted);
}

TEST_F(Figure5, Round2SplitsOnSc4Cell3) {
  const PartitionResult r = run();
  // Round 1 splits on one of the three 4-X cells (lowest index = SC1 cell 0);
  // round 2 on SC4 cell 3 — matching the paper's choices.
  EXPECT_EQ(r.history[1].split_cell, C::sc1_c0);
  EXPECT_EQ(r.history[2].split_cell, C::sc4_c2);
}

TEST(WorkedExample, Q1ConfigurationStopsAfterRound1) {
  // Section 4: with m=10, q=1 round 1 costs 43.3 → 44 bits but round 2 would
  // cost 50.5 → 51, so partitioning stops at two partitions.
  PartitionerConfig cfg;
  cfg.misr = {10, 1};
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  EXPECT_EQ(r.num_partitions(), 2u);
  ASSERT_EQ(r.history.size(), 3u);  // round 0, accepted round 1, rejected probe
  EXPECT_NEAR(r.history[1].total_bits, 43.333, 1e-3);
  EXPECT_EQ(round_bits(r.history[1].total_bits), 44u);
  EXPECT_FALSE(r.history[2].accepted);
  EXPECT_NEAR(r.history[2].total_bits, 50.555, 1e-3);
  EXPECT_EQ(round_bits(r.history[2].total_bits), 51u);
  // Round 1 of the paper: masks 16 X's, leaks 12.
  EXPECT_EQ(r.masked_x, 16u);
  EXPECT_EQ(r.leaked_x, 12u);
}

TEST(WorkedExample, Figure6MasksMatchPartitionContents) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  ASSERT_EQ(r.masks.size(), r.partitions.size());
  for (std::size_t i = 0; i < r.partitions.size(); ++i) {
    if (r.partitions[i] == pats({1, 2, 6, 7})) {
      EXPECT_EQ(r.masks[i].set_bits(),
                (std::vector<std::size_t>{C::sc4_c2}));
    } else if (r.partitions[i] == pats({0, 3, 4})) {
      EXPECT_EQ(r.masks[i].set_bits(),
                (std::vector<std::size_t>{C::sc1_c0, C::sc2_c0, C::sc3_c0,
                                          C::sc4_c2, C::sc5_c1}));
    } else {
      EXPECT_TRUE(r.partitions[i] == pats({5}));
      EXPECT_EQ(r.masks[i].set_bits(),
                (std::vector<std::size_t>{C::sc1_c0, C::sc2_c0, C::sc3_c0,
                                          C::sc5_c2}));
    }
  }
}

}  // namespace
}  // namespace xh
