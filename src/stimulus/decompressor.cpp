#include "stimulus/decompressor.hpp"

#include "kernels/kernels.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {

StimulusDecompressor::StimulusDecompressor(FeedbackPolynomial poly,
                                           ScanGeometry geometry,
                                           std::uint64_t phase_seed,
                                           std::size_t taps_per_chain)
    : poly_(std::move(poly)), geometry_(geometry) {
  XH_REQUIRE(geometry.num_cells() > 0, "geometry must have cells");
  XH_REQUIRE(taps_per_chain >= 1 && taps_per_chain <= poly_.degree(),
             "taps_per_chain must be in [1, seed_bits]");

  // Phase shifter: distinct random LFSR stages per chain.
  Rng rng(phase_seed);
  phase_taps_.reserve(geometry.num_chains);
  for (std::size_t chain = 0; chain < geometry.num_chains; ++chain) {
    phase_taps_.push_back(
        rng.sample_without_replacement(poly_.degree(), taps_per_chain));
  }

  // Symbolic LFSR run: dependency of each state bit on the seed, advanced
  // one cycle per scan position; the chain-c pin value at cycle t is the
  // XOR of that chain's taps — recorded as the dependency of cell (c, t).
  const std::size_t m = poly_.degree();
  std::vector<BitVec> state(m, BitVec(m));
  for (std::size_t i = 0; i < m; ++i) state[i].set(i);  // identity = seed

  cell_dep_.assign(geometry.num_cells(), BitVec(m));
  for (std::size_t t = 0; t < geometry.chain_length; ++t) {
    for (std::size_t chain = 0; chain < geometry.num_chains; ++chain) {
      BitVec dep(m);
      for (const std::size_t tap : phase_taps_[chain]) dep ^= state[tap];
      cell_dep_[geometry.cell_index(chain, t)] = std::move(dep);
    }
    // Advance the LFSR symbolically (same structure as Lfsr::next_state).
    std::vector<BitVec> next(m, BitVec(m));
    const BitVec feedback = state[m - 1];
    next[0] = feedback;
    for (std::size_t i = 1; i < m; ++i) next[i] = std::move(state[i - 1]);
    for (const std::size_t tap : poly_.taps()) next[tap] ^= feedback;
    state = std::move(next);
  }
}

BitVec StimulusDecompressor::expand(const BitVec& seed) const {
  XH_REQUIRE(seed.size() == seed_bits(), "seed width mismatch");
  BitVec load(geometry_.num_cells());
  for (std::size_t cell = 0; cell < cell_dep_.size(); ++cell) {
    load.set(cell, (cell_dep_[cell] & seed).count() % 2 != 0);
  }
  return load;
}

const BitVec& StimulusDecompressor::cell_dependency(std::size_t cell) const {
  XH_REQUIRE(cell < cell_dep_.size(), "cell index out of range");
  return cell_dep_[cell];
}

std::optional<BitVec> StimulusDecompressor::solve_seed(
    const BitVec& care_mask, const BitVec& care_values) const {
  XH_REQUIRE(care_mask.size() == geometry_.num_cells(),
             "care mask width mismatch");
  XH_REQUIRE(care_values.size() == geometry_.num_cells(),
             "care values width mismatch");
  Gf2Matrix system;
  BitVec rhs(care_mask.count());
  std::size_t row = 0;
  for (const std::size_t cell : care_mask.set_bits()) {
    system.append_row(cell_dep_[cell]);
    rhs.set(row++, care_values.get(cell));
  }
  if (system.rows() == 0) return BitVec(seed_bits());  // all don't-care
  return kernels::solve(system, rhs);
}

CompressionResult compress_patterns(
    const StimulusDecompressor& decomp,
    const std::vector<TestPattern>& patterns) {
  const ScanGeometry& geo = decomp.geometry();
  CompressionResult result;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const TestPattern& p = patterns[pi];
    XH_REQUIRE(p.scan_in.size() == geo.num_cells(),
               "pattern scan width mismatch");
    BitVec mask(geo.num_cells());
    BitVec values(geo.num_cells());
    for (std::size_t cell = 0; cell < geo.num_cells(); ++cell) {
      if (is_definite(p.scan_in[cell])) {
        mask.set(cell);
        values.set(cell, p.scan_in[cell] == Lv::k1);
      }
    }
    const auto seed = decomp.solve_seed(mask, values);
    if (!seed) {
      result.failed_patterns.push_back(pi);
      continue;
    }
    result.care_bits += mask.count();
    result.raw_scan_bits += geo.num_cells();
    result.seed_data_bits += decomp.seed_bits();
    CompressedPattern cp;
    cp.seed = *seed;
    cp.pi = p.pi;
    for (auto& v : cp.pi) {
      if (!is_definite(v)) v = Lv::k0;  // PI don't-cares ride as 0
    }
    result.seeds.push_back(std::move(cp));
  }
  return result;
}

TestPattern decompress_pattern(const StimulusDecompressor& decomp,
                               const CompressedPattern& compressed) {
  TestPattern p;
  p.pi = compressed.pi;
  const BitVec load = decomp.expand(compressed.seed);
  p.scan_in.reserve(load.size());
  for (std::size_t cell = 0; cell < load.size(); ++cell) {
    p.scan_in.push_back(load.get(cell) ? Lv::k1 : Lv::k0);
  }
  return p;
}

}  // namespace xh
