#include "misr/x_cancel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace xh {
namespace {

std::vector<Lv> lv_slice(const std::string& s) {
  std::vector<Lv> out;
  for (const char c : s) out.push_back(lv_from_char(c));
  return out;
}

TEST(MisrConfig, Validation) {
  EXPECT_THROW((MisrConfig{1, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((MisrConfig{8, 8}).validate(), std::invalid_argument);
  EXPECT_THROW((MisrConfig{8, 0}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((MisrConfig{8, 3}).validate());
}

TEST(XCancelSession, NoXGivesDirectSignatureNoStops) {
  XCancelSession session({8, 3});
  Rng rng(5);
  for (int c = 0; c < 20; ++c) {
    std::vector<Lv> slice(8);
    for (auto& v : slice) v = rng.chance(0.5) ? Lv::k1 : Lv::k0;
    session.shift(slice);
  }
  const XCancelResult& r = session.finish();
  EXPECT_EQ(r.stops, 0u);
  EXPECT_EQ(r.control_bits(session.config()), 0u);
  EXPECT_EQ(r.total_x_seen, 0u);
  EXPECT_EQ(r.signature.size(), 8u) << "full signature read directly";
}

TEST(XCancelSession, StopsWhenXBudgetReached) {
  // m=8, q=3 → stop every m−q = 5 X's.
  XCancelSession session({8, 3});
  std::size_t shifted_x = 0;
  while (shifted_x < 5) {
    session.shift(lv_slice("X0000000"));
    ++shifted_x;
  }
  const XCancelResult& r = session.finish();
  EXPECT_EQ(r.stops, 1u);
  EXPECT_EQ(r.control_bits(session.config()), 8u * 3u);
  EXPECT_EQ(r.total_x_seen, 5u);
}

TEST(XCancelSession, StopCountMatchesClosedFormOnUniformStream) {
  const MisrConfig cfg{16, 4};
  XCancelSession session(cfg);
  Rng rng(7);
  std::size_t total_x = 0;
  for (int c = 0; c < 600; ++c) {
    std::vector<Lv> slice(16, Lv::k0);
    if (c % 2 == 0) {
      slice[rng.below(16)] = Lv::kX;
      ++total_x;
    }
    session.shift(slice);
  }
  const XCancelResult& r = session.finish();
  EXPECT_EQ(r.total_x_seen, total_x);
  EXPECT_EQ(r.stops, total_x / (cfg.size - cfg.q));
}

TEST(XCancelSession, ExtractsQCombinationsPerStop) {
  const MisrConfig cfg{8, 3};
  XCancelSession session(cfg);
  for (int i = 0; i < 5; ++i) session.shift(lv_slice("X0000000"));
  for (int i = 0; i < 4; ++i) session.shift(lv_slice("00000000"));
  const XCancelResult& r = session.finish();
  ASSERT_EQ(r.stops, 1u);
  std::size_t from_stop0 = 0;
  for (const auto& sig : r.signature) {
    if (sig.stop_index == 0) ++from_stop0;
  }
  EXPECT_GE(from_stop0, cfg.q);
}

TEST(XCancelSession, RejectsZAndBadWidth) {
  XCancelSession session({8, 3});
  EXPECT_THROW(session.shift(lv_slice("Z0000000")), std::invalid_argument);
  EXPECT_THROW(session.shift(lv_slice("0000")), std::invalid_argument);
}

TEST(XCancelSession, ShiftAfterFinishThrowsUntilReset) {
  XCancelSession session({8, 3});
  session.shift(lv_slice("00000000"));
  session.finish();
  EXPECT_THROW(session.shift(lv_slice("00000000")), std::invalid_argument);
  session.reset();
  EXPECT_NO_THROW(session.shift(lv_slice("00000000")));
}

// The central soundness property: extracted signature bits are invariant
// under ANY substitution of the X values — they truly canceled out. We replay
// the stream through an independent concrete MISR (same polynomial, same
// segmentation) with the X positions replaced by random concrete bits; every
// extracted combination must evaluate to the same value.
TEST(XCancelProperty, SignatureInvariantUnderXSubstitution) {
  Rng rng(99);
  const MisrConfig cfg{8, 3};
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t cycles = 30 + rng.below(30);
    std::vector<std::string> stream;
    for (std::size_t c = 0; c < cycles; ++c) {
      std::string s;
      for (std::size_t i = 0; i < cfg.size; ++i) {
        const double roll = rng.uniform();
        s.push_back(roll < 0.06 ? 'X' : (roll < 0.55 ? '1' : '0'));
      }
      stream.push_back(s);
    }

    XCancelSession session(cfg);
    for (const auto& s : stream) session.shift(lv_slice(s));
    const XCancelResult ref = session.finish();
    if (ref.stops == 0) continue;  // no combination extracted — nothing to check

    for (std::uint64_t fill_seed : {11ull, 22ull, 33ull}) {
      Rng fill(fill_seed);
      Lfsr concrete(FeedbackPolynomial::primitive(cfg.size));
      concrete.reset();
      std::size_t stop = 0;
      std::size_t sig_index = 0;
      for (std::size_t c = 0; c < stream.size(); ++c) {
        BitVec input(cfg.size);
        for (std::size_t i = 0; i < cfg.size; ++i) {
          const char ch = stream[c][i];
          const bool bit = ch == 'X' ? fill.chance(0.5) : ch == '1';
          input.set(i, bit);
        }
        concrete.step(input);
        if (stop < ref.stop_cycles.size() && c + 1 == ref.stop_cycles[stop]) {
          // Evaluate every combination extracted at this stop.
          while (sig_index < ref.signature.size() &&
                 ref.signature[sig_index].stop_index == stop) {
            bool value = false;
            for (const std::size_t b :
                 ref.signature[sig_index].combination.set_bits()) {
              value ^= concrete.state().get(b);
            }
            EXPECT_EQ(value, ref.signature[sig_index].value)
                << "stop " << stop << " fill seed " << fill_seed;
            ++sig_index;
          }
          concrete.reset();
          ++stop;
        }
      }
    }
  }
}

// An injected single-bit error in a deterministic position must flip at
// least one extracted signature bit (the scheme preserves observability of
// deterministic data that participates in combinations).
TEST(XCancelProperty, DeterministicErrorsAreObservableInCombinations) {
  const MisrConfig cfg{8, 3};
  Rng rng(17);
  int observed = 0;
  int trials = 0;
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<std::vector<Lv>> stream;
    for (int c = 0; c < 40; ++c) {
      std::vector<Lv> s;
      for (std::size_t i = 0; i < cfg.size; ++i) {
        const double roll = rng.uniform();
        s.push_back(roll < 0.05 ? Lv::kX : (roll < 0.5 ? Lv::k1 : Lv::k0));
      }
      stream.push_back(s);
    }
    const auto run = [&](const std::vector<std::vector<Lv>>& st) {
      XCancelSession session(cfg);
      for (const auto& s : st) session.shift(s);
      return session.finish();
    };
    const XCancelResult good = run(stream);

    // Flip one random deterministic bit.
    auto bad_stream = stream;
    for (int guard = 0; guard < 100; ++guard) {
      const std::size_t c = rng.below(bad_stream.size());
      const std::size_t i = rng.below(cfg.size);
      if (bad_stream[c][i] == Lv::kX) continue;
      bad_stream[c][i] =
          bad_stream[c][i] == Lv::k0 ? Lv::k1 : Lv::k0;
      break;
    }
    const XCancelResult bad = run(bad_stream);
    if (good.signature.size() != bad.signature.size()) {
      ++observed;  // structural change — certainly visible
      ++trials;
      continue;
    }
    bool differs = false;
    for (std::size_t i = 0; i < good.signature.size(); ++i) {
      if (good.signature[i].value != bad.signature[i].value ||
          !(good.signature[i].combination == bad.signature[i].combination)) {
        differs = true;
        break;
      }
    }
    observed += differs ? 1 : 0;
    ++trials;
  }
  // q of every m−q X-budget is extracted, so a single error escapes only
  // when it lands entirely outside the extracted combinations. Expect the
  // large majority of injected errors to be observed.
  EXPECT_GE(observed * 10, trials * 6)
      << observed << "/" << trials << " errors observed";
}

}  // namespace
}  // namespace xh
