#include "gf2/lfsr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace xh {
namespace {

TEST(FeedbackPolynomial, RejectsBadDegreesAndTaps) {
  EXPECT_THROW(FeedbackPolynomial(1, {}), std::invalid_argument);
  EXPECT_THROW(FeedbackPolynomial(4, {0}), std::invalid_argument);
  EXPECT_THROW(FeedbackPolynomial(4, {4}), std::invalid_argument);
  EXPECT_THROW(FeedbackPolynomial(4, {2, 2}), std::invalid_argument);
  EXPECT_THROW(FeedbackPolynomial::primitive(1), std::invalid_argument);
  EXPECT_THROW(FeedbackPolynomial::primitive(65), std::invalid_argument);
}

TEST(FeedbackPolynomial, TapsSortedAndInRange) {
  const FeedbackPolynomial p(8, {6, 4, 5});
  EXPECT_EQ(p.taps(), (std::vector<std::size_t>{4, 5, 6}));
  EXPECT_EQ(p.degree(), 8u);
}

TEST(FeedbackPolynomial, TableCoversAllSupportedDegrees) {
  for (std::size_t d = 2; d <= 64; ++d) {
    const auto p = FeedbackPolynomial::primitive(d);
    EXPECT_EQ(p.degree(), d);
    EXPECT_FALSE(p.taps().empty());
  }
}

// Maximality check: a primitive polynomial's autonomous LFSR cycles through
// all 2^d - 1 nonzero states.
class PrimitivePeriod : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimitivePeriod, IsMaximal) {
  const std::size_t d = GetParam();
  Lfsr lfsr(FeedbackPolynomial::primitive(d));
  const std::uint64_t expected = (1ULL << d) - 1;
  EXPECT_EQ(lfsr.measure_period(expected), expected);
}

INSTANTIATE_TEST_SUITE_P(Degrees2To16, PrimitivePeriod,
                         ::testing::Range<std::size_t>(2, 17));

TEST(Lfsr, ZeroStateIsFixedPointAutonomously) {
  Lfsr lfsr(FeedbackPolynomial::primitive(8));
  lfsr.reset();
  lfsr.step();
  EXPECT_TRUE(lfsr.state().none());
}

TEST(Lfsr, StateWidthMismatchThrows) {
  Lfsr lfsr(FeedbackPolynomial::primitive(8));
  EXPECT_THROW(lfsr.set_state(BitVec(7)), std::invalid_argument);
  EXPECT_THROW(lfsr.step(BitVec(9)), std::invalid_argument);
}

TEST(Lfsr, MisrStepInjectsInput) {
  Lfsr lfsr(FeedbackPolynomial::primitive(8));
  lfsr.reset();
  BitVec in(8);
  in.set(3);
  lfsr.step(in);
  EXPECT_EQ(lfsr.state(), in) << "from zero state, one step loads the input";
}

// Superposition: the MISR is a linear machine, so compaction of the XOR of
// two input streams equals the XOR of the separate compactions (from state 0).
TEST(LfsrProperty, MisrIsLinearInInputStream) {
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t m = 4 + static_cast<std::size_t>(rng.below(20));
    const std::size_t cycles = 1 + static_cast<std::size_t>(rng.below(40));
    std::vector<BitVec> sa;
    std::vector<BitVec> sb;
    for (std::size_t c = 0; c < cycles; ++c) {
      BitVec a(m);
      BitVec b(m);
      for (std::size_t i = 0; i < m; ++i) {
        if (rng.chance(0.5)) a.set(i);
        if (rng.chance(0.5)) b.set(i);
      }
      sa.push_back(a);
      sb.push_back(b);
    }
    Lfsr la(FeedbackPolynomial::primitive(m));
    Lfsr lb(FeedbackPolynomial::primitive(m));
    Lfsr lx(FeedbackPolynomial::primitive(m));
    la.reset();
    lb.reset();
    lx.reset();
    for (std::size_t c = 0; c < cycles; ++c) {
      la.step(sa[c]);
      lb.step(sb[c]);
      lx.step(sa[c] ^ sb[c]);
    }
    EXPECT_EQ(la.state() ^ lb.state(), lx.state());
  }
}

TEST(LfsrProperty, DistinctStreamsGiveDistinctSignaturesUsually) {
  // Aliasing is possible but should be rare (~2^-m); with m=16 and 50 pairs,
  // a collision would indicate a broken implementation.
  Rng rng(123);
  const std::size_t m = 16;
  int collisions = 0;
  for (int iter = 0; iter < 50; ++iter) {
    Lfsr a(FeedbackPolynomial::primitive(m));
    Lfsr b(FeedbackPolynomial::primitive(m));
    a.reset();
    b.reset();
    bool differed = false;
    for (int c = 0; c < 20; ++c) {
      BitVec va(m);
      BitVec vb(m);
      for (std::size_t i = 0; i < m; ++i) {
        const bool bit = rng.chance(0.5);
        va.set(i, bit);
        vb.set(i, bit);
      }
      if (c == 10) {
        vb.flip(static_cast<std::size_t>(rng.below(m)));  // inject one error
        differed = true;
      }
      a.step(va);
      b.step(vb);
    }
    ASSERT_TRUE(differed);
    if (a.state() == b.state()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace xh
