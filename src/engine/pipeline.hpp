// Context-routed entry points for the lower pipeline stages.
//
// misr/x_cancel, masking and response IO sit below the engine layer, so
// they cannot take a PipelineContext themselves without inverting the
// dependency graph; their primitive Diagnostics*-taking signatures stay.
// These overloads are the seam the upper layers (hybrid, CLI, benches) use
// instead: one PipelineContext supplies the MISR shape, the diagnostics
// routing (strict / lenient / adopted) and the thread pool to every stage,
// replacing the hand-threaded HybridConfig → PartitionerConfig → MisrConfig
// + raw Diagnostics* plumbing the seed grew.
#pragma once

#include <iosfwd>
#include <string>

#include "engine/pipeline_context.hpp"
#include "masking/mask.hpp"
#include "misr/x_cancel.hpp"
#include "response/io.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// X-canceling MISR session over @p response with the context's MISR shape
/// and diagnostics routing.
[[nodiscard]] XCancelResult run_x_canceling(const ResponseMatrix& response,
                                            PipelineContext& ctx);

/// Mask-violation census with the context's diagnostics routing.
[[nodiscard]] std::uint64_t count_mask_violations(
    const ResponseMatrix& response, const std::vector<BitVec>& partitions,
    const std::vector<BitVec>& masks, PipelineContext& ctx);

/// Deserialization with the context's diagnostics routing (strict contexts
/// keep the legacy throw-on-first-defect contract).
[[nodiscard]] XMatrix read_x_matrix(std::istream& in, PipelineContext& ctx);
[[nodiscard]] ResponseMatrix read_response(std::istream& in,
                                           PipelineContext& ctx);

}  // namespace xh
