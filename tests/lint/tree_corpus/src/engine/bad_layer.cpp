#include "core/api.hpp"

namespace fixture {

int engine_probe() { return make_thing(); }

}  // namespace fixture
