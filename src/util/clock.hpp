// Injectable time source for the service layer.
//
// Deadlines, retry backoff and watchdog heartbeats all need wall-ish time,
// but the library's determinism contract (DESIGN.md §8) bans ambient clock
// reads everywhere outside one audited chokepoint. ClockSource is that
// seam: production code holds a ClockSource* and never touches <chrono>
// directly, tests substitute ManualClock and drive time by hand, and the
// single real-clock read lives in clock.cpp behind the same line-scoped
// XH-DET-001 suppression idiom as obs/trace.cpp.
//
// All times are nanoseconds on an arbitrary monotonic epoch; only
// differences are meaningful. Nothing bit-emitted by the pipeline may
// depend on a ClockSource reading — deadlines change *how much* work is
// done (which rounds run), never the bits produced by the rounds that do
// run, and checkpoint/resume pins that prefix property in tests.
#pragma once

#include <atomic>
#include <cstdint>

namespace xh {

/// Monotonic nanosecond clock with a cooperative sleep. Implementations
/// must be safe to call from multiple threads concurrently.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Current time in nanoseconds since an arbitrary fixed epoch.
  virtual std::uint64_t now_ns() = 0;

  /// Blocks the calling thread for roughly @p ns nanoseconds (test clocks
  /// may instead advance virtual time and return immediately).
  virtual void sleep_ns(std::uint64_t ns) = 0;
};

/// The process-wide steady clock. Singleton; never returns null.
ClockSource& wall_clock();

/// Deterministic virtual clock for tests: time moves only when advanced,
/// and sleep_ns() advances it instead of blocking, so retry/backoff and
/// deadline paths run instantly and reproducibly.
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  std::uint64_t now_ns() override {
    return now_.load(std::memory_order_acquire);
  }
  void sleep_ns(std::uint64_t ns) override { advance(ns); }

  void advance(std::uint64_t ns) {
    now_.fetch_add(ns, std::memory_order_acq_rel);
    slept_.fetch_add(ns, std::memory_order_acq_rel);
  }

  /// Total virtual nanoseconds passed through sleep_ns()/advance() —
  /// lets tests assert exact backoff schedules.
  std::uint64_t total_advanced_ns() const {
    return slept_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> now_;
  std::atomic<std::uint64_t> slept_{0};
};

}  // namespace xh
