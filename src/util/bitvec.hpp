// Packed bit vector used throughout the library for mask vectors, GF(2)
// matrix rows, pattern-membership sets and parallel-pattern simulation planes.
//
// The whole implementation is constexpr (header-only, C++20 constant
// evaluation over std::vector): tests/static/ proves the GF(2) identities the
// X-canceling algebra depends on — XOR self-inverse, popcount fusion,
// subset/intersection duality — as static_asserts, so a regression in these
// kernels is a build failure, not a test failure. XH_REQUIRE stays active in
// constant evaluation too: a violated precondition inside a static_assert
// refuses to compile because the throw path is not a constant expression.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace xh {

/// Fixed-size packed vector of bits with word-level bulk operations.
///
/// Semantics follow a mathematical bit vector rather than std::vector<bool>:
/// out-of-range access is a checked error, and binary operations require equal
/// sizes. Bits beyond size() inside the last word are kept zero at all times
/// so popcount/scan operations never need masking on read.
class BitVec {
 public:
  constexpr BitVec() = default;

  /// Creates a vector of @p size bits, all cleared (or all set if @p value).
  explicit constexpr BitVec(std::size_t size, bool value = false)
      : size_(size), words_(words_for(size), value ? ~0ULL : 0ULL) {
    mask_tail();
  }

  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr bool get(std::size_t i) const {
    XH_REQUIRE(i < size_, "BitVec::get index out of range");
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }

  constexpr void set(std::size_t i, bool value = true) {
    XH_REQUIRE(i < size_, "BitVec::set index out of range");
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  constexpr void clear(std::size_t i) { set(i, false); }

  constexpr void flip(std::size_t i) {
    XH_REQUIRE(i < size_, "BitVec::flip index out of range");
    words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
  }

  /// Sets every bit to @p value.
  constexpr void fill(bool value) {
    for (auto& w : words_) w = value ? ~0ULL : 0ULL;
    mask_tail();
  }

  /// Number of set bits.
  constexpr std::size_t count() const {
    std::size_t total = 0;
    for (const auto w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  constexpr bool any() const {
    for (const auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  constexpr bool none() const { return !any(); }

  /// Index of the first set bit, or size() if none.
  constexpr std::size_t find_first() const { return find_next(0); }

  /// Index of the first set bit at or after @p from, or size() if none.
  constexpr std::size_t find_next(std::size_t from) const {
    if (from >= size_) return size_;
    std::size_t w = from / kWordBits;
    std::uint64_t cur = words_[w] & (~0ULL << (from % kWordBits));
    for (;;) {
      if (cur != 0) {
        const std::size_t bit =
            w * kWordBits + static_cast<std::size_t>(std::countr_zero(cur));
        return bit < size_ ? bit : size_;
      }
      if (++w >= words_.size()) return size_;
      cur = words_[w];
    }
  }

  /// Indices of all set bits, ascending.
  constexpr std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = find_first(); i < size_; i = find_next(i + 1)) {
      out.push_back(i);
    }
    return out;
  }

  /// In-place bulk logic; all require other.size() == size().
  constexpr BitVec& operator^=(const BitVec& other) {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in ^=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] ^= other.words_[w];
    }
    return *this;
  }

  constexpr BitVec& operator&=(const BitVec& other) {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in &=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= other.words_[w];
    }
    return *this;
  }

  constexpr BitVec& operator|=(const BitVec& other) {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in |=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
    return *this;
  }

  /// andnot: this &= ~other.
  constexpr BitVec& and_not(const BitVec& other) {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in and_not");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
    return *this;
  }

  /// True when (*this & other) has at least one set bit.
  constexpr bool intersects(const BitVec& other) const {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in intersects");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  /// True when every set bit of *this is also set in @p other.
  constexpr bool is_subset_of(const BitVec& other) const {
    XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in is_subset_of");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  constexpr bool operator==(const BitVec& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Grows or shrinks to @p size, clearing any newly exposed bits.
  constexpr void resize(std::size_t size) {
    const bool shrinking_within_word = size < size_;
    size_ = size;
    words_.resize(words_for(size), 0ULL);
    if (shrinking_within_word) mask_tail();
  }

  /// "0"/"1" string, index 0 first — handy for tests and dumps.
  constexpr std::string to_string() const {
    std::string out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(get(i) ? '1' : '0');
    return out;
  }

  /// Parses a "01" string (whitespace ignored).
  static constexpr BitVec from_string(const std::string& bits) {
    std::string compact;
    compact.reserve(bits.size());
    for (const char c : bits) {
      if (c == '0' || c == '1') {
        compact.push_back(c);
      } else {
        XH_REQUIRE(c == ' ' || c == '\t' || c == '\n' || c == '_',
                   "BitVec::from_string: invalid character");
      }
    }
    BitVec out(compact.size());
    for (std::size_t i = 0; i < compact.size(); ++i) {
      if (compact[i] == '1') out.set(i);
    }
    return out;
  }

  /// Direct word access for performance-sensitive consumers (simulation).
  constexpr std::size_t word_count() const { return words_.size(); }
  constexpr std::uint64_t word(std::size_t w) const { return words_[w]; }

  constexpr void set_word(std::size_t w, std::uint64_t value) {
    XH_REQUIRE(w < words_.size(), "BitVec::set_word index out of range");
    words_[w] = value;
    if (w + 1 == words_.size()) mask_tail();
  }

  /// Raw word storage (word_count() words; bits above size() in the last
  /// word are zero). The span interface of the kernel layer
  /// (src/kernels/kernels.hpp) — prefer the checked wrappers there.
  constexpr const std::uint64_t* word_data() const { return words_.data(); }

  /// Mutable raw word storage. Contract: writers must preserve the tail
  /// invariant (bits at positions >= size() stay zero). Word-wise XOR/AND/OR
  /// against another vector of the same size preserves it automatically;
  /// anything else should go through set_word(), which re-masks the tail.
  constexpr std::uint64_t* word_data() { return words_.data(); }

 private:
  static constexpr std::size_t kWordBits = 64;

  static constexpr std::size_t words_for(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

  constexpr void mask_tail() {
    const std::size_t rem = size_ % kWordBits;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (1ULL << rem) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Value-returning convenience operators.
constexpr BitVec operator^(BitVec lhs, const BitVec& rhs) { return lhs ^= rhs; }
constexpr BitVec operator&(BitVec lhs, const BitVec& rhs) { return lhs &= rhs; }
constexpr BitVec operator|(BitVec lhs, const BitVec& rhs) { return lhs |= rhs; }

// The fused popcount(a & b) / popcount(a & ~b) helpers that used to live
// here are now the dispatched xh::kernels::and_count / and_not_count
// (src/kernels/kernels.hpp); the deprecated unqualified spellings survive
// in src/kernels/compat.hpp until the external-caller window closes.

}  // namespace xh
