// X-value correlation analysis (paper Section 3).
//
// Quantifies how concentrated and inter-correlated X captures are:
//   * histogram of cells by X count ("177 scan cells have the same number
//     of X's, 406"),
//   * concentration ("90% of X's are captured in 4.9% of the scan cells"),
//   * clusters of cells with *identical* pattern sets (the inter-correlation
//     the partitioning algorithm exploits).
#pragma once

#include <cstddef>
#include <vector>

#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// One histogram bucket: how many cells capture exactly x_count X's.
struct XHistogramBucket {
  std::size_t x_count = 0;
  std::size_t num_cells = 0;
};

/// A maximal group of cells whose X pattern sets are bit-identical.
struct XCluster {
  BitVec patterns;                  // the shared pattern set
  std::vector<std::size_t> cells;   // ascending cell indices
  std::size_t x_count() const { return patterns.count(); }
  /// Total X's the cluster accounts for.
  std::size_t total_x() const { return x_count() * cells.size(); }
};

struct XStatistics {
  std::size_t num_cells = 0;
  std::size_t num_patterns = 0;
  std::size_t total_x = 0;
  std::size_t x_capturing_cells = 0;
  double x_density = 0.0;
  /// Buckets sorted by descending x_count.
  std::vector<XHistogramBucket> histogram;

  /// Smallest fraction of all cells whose X counts sum to at least
  /// @p x_fraction of all X's (cells taken greedily, most-X first).
  double cell_fraction_covering(double x_fraction) const;

  /// The bucket with the most cells (ties → larger x_count); the "largest
  /// number of scan cells having the same number of X's" of Section 4.
  XHistogramBucket largest_bucket() const;

 private:
  friend XStatistics compute_x_statistics(const XMatrix& xm);
  /// Descending per-cell X counts, for concentration queries.
  std::vector<std::size_t> sorted_counts_;
};

[[nodiscard]] XStatistics compute_x_statistics(const XMatrix& xm);

/// Groups X-capturing cells by identical pattern sets; clusters sorted by
/// descending cell count (ties → descending X count, then first cell id).
[[nodiscard]] std::vector<XCluster> find_x_clusters(const XMatrix& xm);

/// Intra-correlation (spatial) statistics — [13,14]'s observation that X's
/// cluster in contiguous scan-chain segments within a single response.
/// A "run" is a maximal block of consecutive X cells in one chain under one
/// pattern.
struct IntraCorrelation {
  std::size_t total_runs = 0;
  std::size_t longest_run = 0;
  double mean_run_length = 0.0;
  /// Fraction of X's that have at least one X neighbour in their chain
  /// (0 for fully scattered X's, → 1 for fully blocked X's).
  double adjacency_fraction = 0.0;
};

[[nodiscard]] IntraCorrelation analyze_intra_correlation(const XMatrix& xm);

}  // namespace xh
