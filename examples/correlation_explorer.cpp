// Explores how X inter-correlation drives the method: generates workloads
// with the same X budget but varying cluster strength and reports what the
// Section 3 analysis sees and what the partitioner earns from it.
//
// Usage: correlation_explorer [x_density_percent] [patterns]
#include <cstdio>
#include <cstdlib>

#include "core/hybrid.hpp"
#include "response/x_stats.hpp"
#include "workload/industrial.hpp"

using namespace xh;

int main(int argc, char** argv) {
  double density_percent = 2.0;
  std::size_t patterns = 600;
  if (argc > 1) density_percent = std::atof(argv[1]);
  if (argc > 2) patterns = static_cast<std::size_t>(std::atoi(argv[2]));
  if (density_percent <= 0.0 || density_percent >= 100.0 || patterns < 8) {
    std::fprintf(stderr,
                 "usage: %s [x_density_percent (0,100)] [patterns >= 8]\n",
                 argv[0]);
    return 1;
  }

  std::printf("density %.2f%%, %zu patterns, 24 chains x 96 cells\n\n",
              density_percent, patterns);
  std::printf("%-14s %-12s %-18s %-12s %-12s %-10s\n", "clustered",
              "capturing", "90% of X in", "partitions", "masked", "impv.");

  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadProfile profile;
    profile.name = "explorer";
    profile.geometry = {24, 96};
    profile.num_patterns = patterns;
    profile.x_density = density_percent / 100.0;
    profile.clustered_fraction = frac;
    profile.cluster_cells_mean = 40;
    profile.cluster_patterns_mean = patterns / 5;
    profile.seed = 99;

    const XMatrix xm = generate_workload(profile);
    const XStatistics stats = compute_x_statistics(xm);

    PipelineContext ctx;
    ctx.partitioner.misr = {32, 7};
    const HybridReport rep = run_hybrid_analysis(xm, ctx);

    char cells_buf[32];
    std::snprintf(cells_buf, sizeof cells_buf, "%zu cells",
                  stats.x_capturing_cells);
    char conc_buf[32];
    std::snprintf(conc_buf, sizeof conc_buf, "%.1f%% of cells",
                  100.0 * stats.cell_fraction_covering(0.9));
    char masked_buf[32];
    std::snprintf(masked_buf, sizeof masked_buf, "%.0f%%",
                  100.0 * static_cast<double>(rep.partitioning.masked_x) /
                      static_cast<double>(rep.total_x == 0 ? 1
                                                           : rep.total_x));
    std::printf("%-14.2f %-12s %-18s %-12zu %-12s %-10.2f\n", frac, cells_buf,
                conc_buf, rep.partitioning.num_partitions(), masked_buf,
                rep.improvement_over_canceling);
  }

  std::printf(
      "\nReading: with no correlation the partitioner keeps one partition\n"
      "(nothing can be masked safely) and the hybrid degenerates to\n"
      "X-canceling-only; as correlation grows, more X's become maskable with\n"
      "shared control bits and the improvement factor climbs.\n");
  return 0;
}
