// corpus: XH_REQUIRE / XH_ASSERT are the sanctioned validation path in
// src/core/ — the throw lives inside util/check.hpp, not at the use site.
#define XH_REQUIRE(cond, msg) \
  do {                        \
  } while (false)

void check(int chains) { XH_REQUIRE(chains > 0, "need at least one chain"); }
