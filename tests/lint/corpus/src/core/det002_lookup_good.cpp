// corpus: point lookups and membership tests on unordered containers are
// fine — only *iteration* leaks hash order.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

bool knows(const std::unordered_map<std::size_t, int>& index,
           const std::unordered_set<std::size_t>& seen, std::size_t key) {
  const auto it = index.find(key);
  return it != index.end() && seen.count(key) != 0;
}
