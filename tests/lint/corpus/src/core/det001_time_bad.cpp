// corpus: XH-DET-001 must fire on wall-clock queries outside bench/.
#include <ctime>

long stamp() { return time(nullptr); }
