#include "lint/cfg.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace xh::lint {
namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Keywords that look like `name(...)` heads but never introduce a
/// function definition.
bool head_keyword(const std::string& word) {
  static const std::array<const char*, 22> kWords = {
      "if",     "for",      "while",    "switch",   "catch",  "return",
      "sizeof", "alignof",  "alignas",  "decltype", "new",    "delete",
      "throw",  "case",     "do",       "else",     "not",    "and",
      "or",     "typeid",   "noexcept", "operator"};
  return std::find_if(kWords.begin(), kWords.end(), [&](const char* w) {
           return word == w;
         }) != kWords.end();
}

/// Flattened file text with newline positions preserved, so offsets map
/// back to 1-based lines.
struct Text {
  std::string data;
  std::vector<std::size_t> line_starts;  // offset of each line's first char

  std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
};

Text flatten(const Cleaned& cleaned) {
  Text t;
  t.line_starts.push_back(0);
  for (const std::string& line : cleaned.lines) {
    t.data += line;
    t.data += '\n';
    t.line_starts.push_back(t.data.size());
  }
  // Preprocessor directives (including continuation lines) are not
  // statements; blank them so #define bodies never masquerade as code.
  std::size_t pos = 0;
  while (pos < t.data.size()) {
    std::size_t nb = pos;
    while (nb < t.data.size() && (t.data[nb] == ' ' || t.data[nb] == '\t')) {
      ++nb;
    }
    std::size_t eol = t.data.find('\n', pos);
    if (eol == std::string::npos) eol = t.data.size();
    if (nb < t.data.size() && t.data[nb] == '#') {
      // Blank this line and every backslash-continued follower.
      for (;;) {
        std::size_t last = eol;
        while (last > pos && is_space(t.data[last - 1])) --last;
        const bool continued = last > pos && t.data[last - 1] == '\\';
        for (std::size_t i = pos; i < eol; ++i) t.data[i] = ' ';
        if (!continued || eol >= t.data.size()) break;
        pos = eol + 1;
        eol = t.data.find('\n', pos);
        if (eol == std::string::npos) eol = t.data.size();
      }
    }
    pos = eol + 1;
  }
  return t;
}

std::size_t skip_ws(const std::string& s, std::size_t p) {
  while (p < s.size() && is_space(s[p])) ++p;
  return p;
}

/// Offset just past the bracket matching s[p] (one of ( [ {), or npos.
std::size_t match_bracket(const std::string& s, std::size_t p) {
  const char open = s[p];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (; p < s.size(); ++p) {
    if (s[p] == open) ++depth;
    if (s[p] == close && --depth == 0) return p + 1;
  }
  return std::string::npos;
}

std::string read_word(const std::string& s, std::size_t p) {
  std::size_t q = p;
  while (q < s.size() && is_ident_char(s[q])) ++q;
  return s.substr(p, q - p);
}

/// Compact statement text: newlines to spaces, runs collapsed.
std::string compact(const std::string& s, std::size_t b, std::size_t e) {
  std::string out;
  bool in_ws = false;
  for (std::size_t i = b; i < e && i < s.size(); ++i) {
    const char c = s[i];
    if (is_space(c)) {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out += ' ';
    in_ws = false;
    out += c;
  }
  return out;
}

// ---- Function head extraction ------------------------------------------

struct Head {
  std::string name;
  std::string qualifier;
  std::string params;
  std::string return_type;
  bool is_destructor = false;
  std::size_t head_offset = 0;  // offset of the name identifier
  std::size_t body_begin = 0;   // offset just past the body '{'
  std::size_t body_end = 0;     // offset of the matching '}'
};

/// Skips trailing function specifiers (const, noexcept(...), override,
/// final, attributes, trailing return type) starting right after the
/// parameter list; returns the offset of the next significant char.
std::size_t skip_specifiers(const std::string& s, std::size_t p) {
  for (;;) {
    p = skip_ws(s, p);
    if (p >= s.size()) return p;
    if (p + 1 < s.size() && s[p] == '[' && s[p + 1] == '[') {
      const std::size_t close = s.find("]]", p + 2);
      if (close == std::string::npos) return s.size();
      p = close + 2;
      continue;
    }
    if (p + 1 < s.size() && s[p] == '-' && s[p + 1] == '>') {
      // Trailing return type: consume everything up to the body/terminator.
      p += 2;
      while (p < s.size() && s[p] != '{' && s[p] != ';' && s[p] != '}') {
        if (s[p] == '(') {
          const std::size_t q = match_bracket(s, p);
          if (q == std::string::npos) return s.size();
          p = q;
        } else {
          ++p;
        }
      }
      continue;
    }
    const std::string word = read_word(s, p);
    if (word == "const" || word == "override" || word == "final" ||
        word == "mutable" || word == "volatile" || word == "&" ||
        word == "try") {
      p += word.size();
      continue;
    }
    if (word == "noexcept") {
      p += word.size();
      const std::size_t q = skip_ws(s, p);
      if (q < s.size() && s[q] == '(') {
        const std::size_t r = match_bracket(s, q);
        if (r == std::string::npos) return s.size();
        p = r;
      }
      continue;
    }
    if (s[p] == '&') {  // ref-qualifier
      ++p;
      if (p < s.size() && s[p] == '&') ++p;
      continue;
    }
    return p;
  }
}

/// Parses a constructor initializer list starting at the ':' at @p p;
/// returns the offset of the body '{', or npos when this is not an
/// initializer list after all.
std::size_t skip_init_list(const std::string& s, std::size_t p) {
  ++p;  // past ':'
  for (;;) {
    p = skip_ws(s, p);
    const std::string member = read_word(s, p);
    if (member.empty()) return std::string::npos;
    p = skip_ws(s, p + member.size());
    if (p >= s.size() || (s[p] != '(' && s[p] != '{')) {
      return std::string::npos;
    }
    const std::size_t q = match_bracket(s, p);
    if (q == std::string::npos) return std::string::npos;
    p = skip_ws(s, q);
    if (p < s.size() && s[p] == ',') {
      ++p;
      continue;
    }
    if (p < s.size() && s[p] == '{') return p;
    return std::string::npos;
  }
}

std::vector<Head> find_heads(const std::string& s) {
  std::vector<Head> heads;
  std::size_t pos = 0;
  while (pos < s.size()) {
    if (!is_ident_char(s[pos]) ||
        (pos > 0 && is_ident_char(s[pos - 1]))) {
      ++pos;
      continue;
    }
    const std::string word = read_word(s, pos);
    const std::size_t word_at = pos;
    pos += word.size();
    if (head_keyword(word) ||
        std::isdigit(static_cast<unsigned char>(word[0])) != 0) {
      continue;
    }
    // Member-access calls are never definitions.
    std::size_t back = word_at;
    while (back > 0 && is_space(s[back - 1])) --back;
    if (back > 0 && (s[back - 1] == '.' ||
                     (back > 1 && s[back - 2] == '-' && s[back - 1] == '>'))) {
      continue;
    }
    const std::size_t paren = skip_ws(s, pos);
    if (paren >= s.size() || s[paren] != '(') continue;
    const std::size_t paren_end = match_bracket(s, paren);
    if (paren_end == std::string::npos) continue;
    std::size_t p = skip_specifiers(s, paren_end);
    if (p < s.size() && s[p] == ':' &&
        (p + 1 >= s.size() || s[p + 1] != ':')) {
      p = skip_init_list(s, p);
      if (p == std::string::npos) continue;
    }
    if (p >= s.size() || s[p] != '{') continue;
    const std::size_t body_end = match_bracket(s, p);
    if (body_end == std::string::npos) continue;

    Head head;
    head.name = word;
    head.head_offset = word_at;
    head.params = compact(s, paren + 1, paren_end - 1);
    head.body_begin = p + 1;
    head.body_end = body_end - 1;
    // Destructor tilde and `Class::` qualifier, scanned backwards.
    std::size_t b = word_at;
    while (b > 0 && is_space(s[b - 1])) --b;
    if (b > 0 && s[b - 1] == '~') {
      head.is_destructor = true;
      --b;
      while (b > 0 && is_space(s[b - 1])) --b;
    }
    if (b > 1 && s[b - 1] == ':' && s[b - 2] == ':') {
      b -= 2;
      if (b > 0 && s[b - 1] == '>') {  // Class<T>::name
        int depth = 0;
        while (b > 0) {
          if (s[b - 1] == '>') ++depth;
          if (s[b - 1] == '<' && --depth == 0) {
            --b;
            break;
          }
          --b;
        }
      }
      std::size_t qb = b;
      while (qb > 0 && is_ident_char(s[qb - 1])) --qb;
      head.qualifier = s.substr(qb, b - qb);
      b = qb;
    }
    // Declared return type: the word before the (qualified) name, scanned
    // backwards over `&`/`*` and one `<...>` template list. Constructors
    // and destructors have none by construction.
    if (!head.is_destructor && head.name != head.qualifier) {
      std::size_t rb = b;
      while (rb > 0 && is_space(s[rb - 1])) --rb;
      while (rb > 0 && (s[rb - 1] == '&' || s[rb - 1] == '*')) {
        --rb;
        while (rb > 0 && is_space(s[rb - 1])) --rb;
      }
      if (rb > 0 && s[rb - 1] == '>' &&
          !(rb > 1 && (s[rb - 2] == '-' || s[rb - 2] == '>'))) {
        int depth = 0;
        while (rb > 0) {
          if (s[rb - 1] == '>') ++depth;
          if (s[rb - 1] == '<' && --depth == 0) {
            --rb;
            break;
          }
          --rb;
        }
        while (rb > 0 && is_space(s[rb - 1])) --rb;
      }
      std::size_t wb = rb;
      while (wb > 0 && is_ident_char(s[wb - 1])) --wb;
      head.return_type = s.substr(wb, rb - wb);
    }
    heads.push_back(std::move(head));
  }
  return heads;
}

// ---- Body lowering ------------------------------------------------------

struct Fragment {
  std::size_t entry = kCfgNone;
  std::vector<std::size_t> exits;  // nodes needing an edge to the successor
};

class Lowerer {
 public:
  Lowerer(const Text& text, FunctionCfg& cfg) : text_(text), cfg_(cfg) {}

  bool lower(std::size_t begin, std::size_t end) {
    const Fragment body = parse_seq(begin, end);
    link(Fragment{FunctionCfg::kEntry, {FunctionCfg::kEntry}}, body.entry);
    if (body.entry == kCfgNone) {
      cfg_.nodes[FunctionCfg::kEntry].succ.push_back(FunctionCfg::kExit);
    } else {
      for (const std::size_t n : body.exits) {
        cfg_.nodes[n].succ.push_back(FunctionCfg::kExit);
      }
    }
    return ok_;
  }

 private:
  const Text& text_;
  FunctionCfg& cfg_;
  bool ok_ = true;
  int scope_locks_ = 0;
  std::size_t loop_head_ = kCfgNone;
  // Innermost break target collector (loop or switch) and continue target.
  std::vector<std::size_t>* breaks_ = nullptr;
  std::size_t continue_target_ = kCfgNone;

  const std::string& s() const { return text_.data; }

  std::size_t make_node(CfgNode::Kind kind, std::size_t b, std::size_t e) {
    CfgNode node;
    node.kind = kind;
    node.line = text_.line_of(b);
    node.end_line = text_.line_of(e > b ? e - 1 : b);
    node.text = compact(s(), b, e);
    node.loop_head = loop_head_;
    node.scope_locks = scope_locks_;
    cfg_.nodes.push_back(std::move(node));
    return cfg_.nodes.size() - 1;
  }

  void edge(std::size_t from, std::size_t to) {
    auto& succ = cfg_.nodes[from].succ;
    if (std::find(succ.begin(), succ.end(), to) == succ.end()) {
      succ.push_back(to);
    }
  }

  /// Connects every exit of @p prev to @p entry (when non-empty).
  void link(const Fragment& prev, std::size_t entry) {
    if (entry == kCfgNone) return;
    for (const std::size_t n : prev.exits) edge(n, entry);
  }

  static Fragment seq(Fragment a, Fragment b, Lowerer& self) {
    if (b.entry == kCfgNone) return a;
    if (a.entry == kCfgNone) return b;
    self.link(a, b.entry);
    a.exits = std::move(b.exits);
    return a;
  }

  /// True when @p stmt declares a scope-based lock.
  static bool declares_scope_lock(const std::string& stmt) {
    for (const char* kind : {"lock_guard", "scoped_lock", "unique_lock"}) {
      const std::size_t p = find_ident(stmt, kind);
      if (p == std::string::npos) continue;
      // A declaration mentions the type then a variable + initializer; a
      // bare mention in a template parameter or comment-stripped string
      // has neither. `std::unique_lock<std::mutex> lock(mu_);`
      if (stmt.find('(', p) != std::string::npos ||
          stmt.find('{', p) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  /// Parses statements in [b, e) into one chained fragment.
  Fragment parse_seq(std::size_t b, std::size_t e) {
    Fragment out;
    const int saved_locks = scope_locks_;
    std::size_t pos = b;
    while (ok_) {
      pos = skip_ws(s(), pos);
      if (pos >= e) break;
      Fragment stmt = parse_stmt(pos, e);
      out = seq(std::move(out), std::move(stmt), *this);
    }
    scope_locks_ = saved_locks;
    return out;
  }

  /// Parses one statement starting at @p pos (advanced past it).
  Fragment parse_stmt(std::size_t& pos, std::size_t end) {
    const std::size_t start = skip_ws(s(), pos);
    if (start >= end) {
      pos = end;
      return {};
    }
    const char c = s()[start];
    if (c == ';') {
      pos = start + 1;
      return {};
    }
    if (c == '{') {
      const std::size_t close = match_bracket(s(), start);
      if (close == std::string::npos || close - 1 > end) {
        ok_ = false;
        pos = end;
        return {};
      }
      pos = close;
      return parse_seq(start + 1, close - 1);
    }
    const std::string word = read_word(s(), start);
    if (word == "if") return parse_if(pos, start, end);
    if (word == "while") return parse_while(pos, start, end);
    if (word == "for") return parse_for(pos, start, end);
    if (word == "do") return parse_do(pos, start, end);
    if (word == "switch") return parse_switch(pos, start, end);
    if (word == "try") return parse_try(pos, start, end);
    if (word == "return" || word == "throw" || word == "co_return") {
      const std::size_t stmt_end = simple_end(start, end);
      const std::size_t n = make_node(word == "throw" ? CfgNode::Kind::kThrow
                                                      : CfgNode::Kind::kReturn,
                                      start, stmt_end);
      edge(n, FunctionCfg::kExit);
      pos = stmt_end;
      return {n, {}};
    }
    if (word == "break") {
      const std::size_t n =
          make_node(CfgNode::Kind::kBreak, start, start + word.size());
      if (breaks_ != nullptr) breaks_->push_back(n);
      pos = simple_end(start, end);
      return {n, {}};
    }
    if (word == "continue") {
      const std::size_t n =
          make_node(CfgNode::Kind::kContinue, start, start + word.size());
      if (continue_target_ != kCfgNone) edge(n, continue_target_);
      pos = simple_end(start, end);
      return {n, {}};
    }
    // Plain goto-style label (`retry:`): skip the label, keep parsing the
    // statement it prefixes.
    if (!word.empty() && word != "case" && word != "default") {
      std::size_t after = skip_ws(s(), start + word.size());
      if (after < end && s()[after] == ':' &&
          (after + 1 >= end || s()[after + 1] != ':')) {
        pos = after + 1;
        return parse_stmt(pos, end);
      }
    }
    // Simple statement.
    const std::size_t stmt_end = simple_end(start, end);
    const std::size_t n =
        make_node(CfgNode::Kind::kStatement, start, stmt_end);
    if (declares_scope_lock(cfg_.nodes[n].text)) {
      ++scope_locks_;
      cfg_.nodes[n].scope_locks = scope_locks_;
    }
    pos = stmt_end;
    return {n, {n}};
  }

  /// Offset just past the ';' ending a simple statement (brackets
  /// balanced), or the enclosing '}' when the statement is unterminated.
  std::size_t simple_end(std::size_t b, std::size_t end) {
    int depth = 0;
    for (std::size_t p = b; p < end; ++p) {
      const char c = s()[p];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) return p;  // ran into the enclosing block's close
        --depth;
      }
      if (c == ';' && depth == 0) return p + 1;
    }
    return end;
  }

  /// Reads `keyword (…)`; returns [cond_begin, cond_end) and advances
  /// @p pos past the closing paren. Fails the lowering on malformed input.
  bool parse_paren(std::size_t& pos, std::size_t kw_at,
                   const std::string& kw, std::size_t end,
                   std::size_t* cond_b, std::size_t* cond_e) {
    std::size_t p = skip_ws(s(), kw_at + kw.size());
    if (p >= end || s()[p] != '(') {
      ok_ = false;
      pos = end;
      return false;
    }
    const std::size_t close = match_bracket(s(), p);
    if (close == std::string::npos || close > end) {
      ok_ = false;
      pos = end;
      return false;
    }
    *cond_b = p + 1;
    *cond_e = close - 1;
    pos = close;
    return true;
  }

  Fragment parse_if(std::size_t& pos, std::size_t start, std::size_t end) {
    std::size_t cond_b = 0;
    std::size_t cond_e = 0;
    // `if constexpr (...)` — the condition parens are after constexpr.
    std::size_t kw_end = start + 2;
    const std::size_t maybe = skip_ws(s(), kw_end);
    if (read_word(s(), maybe) == "constexpr") kw_end = maybe + 9;
    if (!parse_paren(pos, start, s().substr(start, kw_end - start), end,
                     &cond_b, &cond_e)) {
      return {};
    }
    const std::size_t cond =
        make_node(CfgNode::Kind::kCondition, cond_b, cond_e);
    Fragment out{cond, {}};
    Fragment then_frag = parse_stmt(pos, end);
    if (then_frag.entry != kCfgNone) {
      edge(cond, then_frag.entry);
      out.exits = then_frag.exits;
    } else {
      out.exits.push_back(cond);
    }
    const std::size_t after_then = skip_ws(s(), pos);
    if (after_then < end && read_word(s(), after_then) == "else") {
      pos = after_then + 4;
      Fragment else_frag = parse_stmt(pos, end);
      if (else_frag.entry != kCfgNone) {
        edge(cond, else_frag.entry);
        out.exits.insert(out.exits.end(), else_frag.exits.begin(),
                         else_frag.exits.end());
      } else {
        out.exits.push_back(cond);
      }
    } else {
      out.exits.push_back(cond);  // false edge falls through
    }
    return out;
  }

  static bool always_true(const std::string& cond) {
    return cond == "true" || cond == "1";
  }

  /// Shared loop-body plumbing: parses the body with loop context set to
  /// @p head, wires back-edges to @p back_target and collects breaks.
  Fragment parse_loop_body(std::size_t& pos, std::size_t end,
                           std::size_t head, std::size_t back_target,
                           std::vector<std::size_t>* breaks) {
    const std::size_t saved_loop = loop_head_;
    auto* saved_breaks = breaks_;
    const std::size_t saved_continue = continue_target_;
    loop_head_ = head;
    breaks_ = breaks;
    continue_target_ = back_target;
    Fragment body = parse_stmt(pos, end);
    loop_head_ = saved_loop;
    breaks_ = saved_breaks;
    continue_target_ = saved_continue;
    if (body.entry == kCfgNone) {
      // Empty body: the head loops straight back.
      edge(head, back_target);
      body.entry = head;
    }
    for (const std::size_t n : body.exits) edge(n, back_target);
    return body;
  }

  Fragment parse_while(std::size_t& pos, std::size_t start,
                       std::size_t end) {
    std::size_t cond_b = 0;
    std::size_t cond_e = 0;
    if (!parse_paren(pos, start, "while", end, &cond_b, &cond_e)) return {};
    const std::size_t cond =
        make_node(CfgNode::Kind::kCondition, cond_b, cond_e);
    cfg_.nodes[cond].is_loop_head = true;
    cfg_.nodes[cond].loop_unbounded = always_true(cfg_.nodes[cond].text);
    std::vector<std::size_t> breaks;
    Fragment body = parse_loop_body(pos, end, cond, cond, &breaks);
    if (body.entry != cond) edge(cond, body.entry);
    Fragment out{cond, std::move(breaks)};
    if (!cfg_.nodes[cond].loop_unbounded) out.exits.push_back(cond);
    return out;
  }

  Fragment parse_for(std::size_t& pos, std::size_t start, std::size_t end) {
    std::size_t hdr_b = 0;
    std::size_t hdr_e = 0;
    if (!parse_paren(pos, start, "for", end, &hdr_b, &hdr_e)) return {};
    // Split the header at top-level semicolons; a range-for has none.
    std::vector<std::pair<std::size_t, std::size_t>> sections;
    {
      int depth = 0;
      std::size_t sec_b = hdr_b;
      for (std::size_t p = hdr_b; p < hdr_e; ++p) {
        const char c = s()[p];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ';' && depth <= 0) {
          sections.emplace_back(sec_b, p);
          sec_b = p + 1;
        }
      }
      sections.emplace_back(sec_b, hdr_e);
    }

    Fragment out;
    std::size_t cond;
    std::size_t back_target;
    std::size_t incr = kCfgNone;
    if (sections.size() == 3) {
      const bool has_init =
          compact(s(), sections[0].first, sections[0].second).size() > 0;
      std::size_t init = kCfgNone;
      if (has_init) {
        init = make_node(CfgNode::Kind::kStatement, sections[0].first,
                         sections[0].second);
      }
      cond = make_node(CfgNode::Kind::kCondition, sections[1].first,
                       sections[1].second);
      cfg_.nodes[cond].is_loop_head = true;
      const std::string cond_text = cfg_.nodes[cond].text;
      cfg_.nodes[cond].loop_unbounded =
          cond_text.empty() || always_true(cond_text);
      if (compact(s(), sections[2].first, sections[2].second).size() > 0) {
        incr = make_node(CfgNode::Kind::kStatement, sections[2].first,
                         sections[2].second);
        cfg_.nodes[incr].loop_head = cond;
        edge(incr, cond);
      }
      back_target = incr != kCfgNone ? incr : cond;
      if (init != kCfgNone) {
        edge(init, cond);
        out.entry = init;
      } else {
        out.entry = cond;
      }
    } else {
      // Range-for: the whole header is the loop head (the loop variable is
      // (re)defined each iteration).
      cond = make_node(CfgNode::Kind::kCondition, hdr_b, hdr_e);
      cfg_.nodes[cond].is_loop_head = true;
      back_target = cond;
      out.entry = cond;
    }
    std::vector<std::size_t> breaks;
    Fragment body = parse_loop_body(pos, end, cond, back_target, &breaks);
    if (body.entry != cond) edge(cond, body.entry);
    out.exits = std::move(breaks);
    if (!cfg_.nodes[cond].loop_unbounded) out.exits.push_back(cond);
    return out;
  }

  Fragment parse_do(std::size_t& pos, std::size_t start, std::size_t end) {
    pos = start + 2;
    // The condition node is created up front so continue/back edges have a
    // target; its text is filled in after the body is parsed.
    const std::size_t cond = make_node(CfgNode::Kind::kCondition, start,
                                       start + 2);
    cfg_.nodes[cond].is_loop_head = true;
    std::vector<std::size_t> breaks;
    Fragment body = parse_loop_body(pos, end, cond, cond, &breaks);
    const std::size_t while_at = skip_ws(s(), pos);
    std::size_t cond_b = 0;
    std::size_t cond_e = 0;
    if (read_word(s(), while_at) != "while" ||
        !parse_paren(pos, while_at, "while", end, &cond_b, &cond_e)) {
      ok_ = false;
      return {};
    }
    pos = simple_end(pos, end);  // trailing ';'
    cfg_.nodes[cond].text = compact(s(), cond_b, cond_e);
    cfg_.nodes[cond].line = text_.line_of(cond_b);
    cfg_.nodes[cond].end_line = text_.line_of(cond_e > cond_b ? cond_e - 1
                                                              : cond_b);
    cfg_.nodes[cond].loop_unbounded = always_true(cfg_.nodes[cond].text);
    edge(cond, body.entry);
    Fragment out{body.entry == cond ? cond : body.entry, std::move(breaks)};
    if (!cfg_.nodes[cond].loop_unbounded) out.exits.push_back(cond);
    return out;
  }

  Fragment parse_switch(std::size_t& pos, std::size_t start,
                        std::size_t end) {
    std::size_t cond_b = 0;
    std::size_t cond_e = 0;
    if (!parse_paren(pos, start, "switch", end, &cond_b, &cond_e)) return {};
    const std::size_t cond =
        make_node(CfgNode::Kind::kCondition, cond_b, cond_e);
    const std::size_t brace = skip_ws(s(), pos);
    if (brace >= end || s()[brace] != '{') {
      ok_ = false;
      pos = end;
      return {};
    }
    const std::size_t close = match_bracket(s(), brace);
    if (close == std::string::npos) {
      ok_ = false;
      pos = end;
      return {};
    }
    pos = close;

    auto* saved_breaks = breaks_;
    std::vector<std::size_t> breaks;
    breaks_ = &breaks;

    bool has_default = false;
    Fragment pending;  // falls through into the next label/statement
    std::size_t p = brace + 1;
    const std::size_t body_end = close - 1;
    while (ok_) {
      p = skip_ws(s(), p);
      if (p >= body_end) break;
      const std::string word = read_word(s(), p);
      if (word == "case" || word == "default") {
        if (word == "default") has_default = true;
        // Label extends to the ':' (skip over `::` scope qualifiers).
        std::size_t q = p + word.size();
        while (q < body_end) {
          if (s()[q] == ':' && (q + 1 >= body_end || s()[q + 1] != ':')) {
            break;
          }
          if (s()[q] == ':' && q + 1 < body_end && s()[q + 1] == ':') {
            q += 2;
            continue;
          }
          ++q;
        }
        const std::size_t label = make_node(CfgNode::Kind::kCase, p, q);
        edge(cond, label);
        link(pending, label);  // fallthrough from the previous group
        pending = {label, {label}};
        p = q + 1;
        continue;
      }
      Fragment stmt = parse_stmt(p, body_end);
      pending = seq(std::move(pending), std::move(stmt), *this);
    }
    breaks_ = saved_breaks;

    Fragment out{cond, std::move(breaks)};
    out.exits.insert(out.exits.end(), pending.exits.begin(),
                     pending.exits.end());
    if (!has_default) out.exits.push_back(cond);
    return out;
  }

  Fragment parse_try(std::size_t& pos, std::size_t start, std::size_t end) {
    pos = start + 3;
    const std::size_t entry =
        make_node(CfgNode::Kind::kStatement, start, start + 3);
    Fragment body = parse_stmt(pos, end);
    Fragment out{entry, std::move(body.exits)};
    if (body.entry != kCfgNone) edge(entry, body.entry);
    for (;;) {
      const std::size_t at = skip_ws(s(), pos);
      if (at >= end || read_word(s(), at) != "catch") break;
      std::size_t param_b = 0;
      std::size_t param_e = 0;
      if (!parse_paren(pos, at, "catch", end, &param_b, &param_e)) return {};
      const std::size_t handler =
          make_node(CfgNode::Kind::kStatement, param_b, param_e);
      edge(entry, handler);  // the try block may throw at any point
      Fragment hbody = parse_stmt(pos, end);
      if (hbody.entry != kCfgNone) {
        edge(handler, hbody.entry);
        out.exits.insert(out.exits.end(), hbody.exits.begin(),
                         hbody.exits.end());
      } else {
        out.exits.push_back(handler);
      }
    }
    return out;
  }
};

}  // namespace

std::vector<FunctionCfg> build_cfgs(const Cleaned& cleaned) {
  const Text text = flatten(cleaned);
  std::vector<FunctionCfg> out;
  for (const Head& head : find_heads(text.data)) {
    FunctionCfg cfg;
    cfg.name = head.name;
    cfg.qualifier = head.qualifier;
    cfg.line = text.line_of(head.head_offset);
    cfg.is_destructor = head.is_destructor;
    cfg.is_constructor =
        !head.is_destructor && head.name == head.qualifier;
    cfg.params = head.params;
    cfg.return_type = cfg.is_constructor ? "" : head.return_type;
    cfg.nodes.resize(2);
    cfg.nodes[FunctionCfg::kEntry].kind = CfgNode::Kind::kEntry;
    cfg.nodes[FunctionCfg::kEntry].line = cfg.line;
    cfg.nodes[FunctionCfg::kEntry].end_line = cfg.line;
    cfg.nodes[FunctionCfg::kExit].kind = CfgNode::Kind::kExit;
    cfg.nodes[FunctionCfg::kExit].line = text.line_of(head.body_end);
    cfg.nodes[FunctionCfg::kExit].end_line =
        cfg.nodes[FunctionCfg::kExit].line;
    Lowerer lowerer(text, cfg);
    if (lowerer.lower(head.body_begin, head.body_end)) {
      out.push_back(std::move(cfg));
    }
  }
  return out;
}

std::vector<std::size_t> reachable_from(const FunctionCfg& cfg,
                                        std::size_t from) {
  std::vector<bool> seen(cfg.nodes.size(), false);
  std::vector<std::size_t> stack = {from};
  std::vector<std::size_t> out;
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    if (n >= cfg.nodes.size() || seen[n]) continue;
    seen[n] = true;
    out.push_back(n);
    for (const std::size_t next : cfg.nodes[n].succ) stack.push_back(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool cfg_connected(const FunctionCfg& cfg) {
  const std::vector<std::size_t> reach =
      reachable_from(cfg, FunctionCfg::kEntry);
  if (reach.size() != cfg.nodes.size()) return false;
  return std::binary_search(reach.begin(), reach.end(), FunctionCfg::kExit);
}

std::string to_string(const FunctionCfg& cfg) {
  static const char* kKinds[] = {"entry", "exit",  "stmt",     "cond",
                                 "case",  "return", "break",   "continue",
                                 "throw"};
  std::string out = cfg.qualifier.empty()
                        ? cfg.name
                        : cfg.qualifier + "::" + cfg.name;
  out += " @" + std::to_string(cfg.line) + "\n";
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    const CfgNode& n = cfg.nodes[i];
    out += "  [" + std::to_string(i) + "] " +
           kKinds[static_cast<int>(n.kind)] + " L" +
           std::to_string(n.line) + " ->";
    for (const std::size_t t : n.succ) out += " " + std::to_string(t);
    if (n.is_loop_head) out += n.loop_unbounded ? " (loop*)" : " (loop)";
    if (n.scope_locks > 0) {
      out += " locks=" + std::to_string(n.scope_locks);
    }
    if (!n.text.empty()) {
      out += "  `" + n.text.substr(0, 60) + "`";
    }
    out += "\n";
  }
  return out;
}

}  // namespace xh::lint
