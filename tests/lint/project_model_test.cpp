// Whole-tree analyzer tests (DESIGN.md §9): the tree-corpus fixture seeds
// exactly one violation per cross-TU rule family and the analyzer must
// find each of them — and nothing else. The real repository tree, scanned
// with every family enabled, must come back clean; that test is the
// in-process twin of the xh_lint_tree_clean CLI gate.
#include "lint/project_model.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry_json.hpp"

namespace {

using xh::lint::Finding;
using xh::lint::LayerSpec;
using xh::lint::ProjectModel;
using xh::lint::SourceFile;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += xh::lint::to_string(f) + "\n";
  return out;
}

/// Loads a tree rooted at @p root with the layer spec at @p layers_path and
/// runs the full analysis.
std::vector<Finding> analyze(const std::string& root,
                             const std::vector<std::string>& inputs,
                             const std::vector<std::string>& excludes,
                             const std::string& layers_path,
                             ProjectModel* model_out = nullptr) {
  LayerSpec spec;
  std::string error;
  EXPECT_TRUE(xh::lint::parse_layer_spec(read_file(layers_path), spec, error))
      << error;
  std::vector<std::string> errors;
  std::vector<SourceFile> files =
      xh::lint::load_tree(root, inputs, excludes, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_FALSE(files.empty());
  ProjectModel model =
      xh::lint::build_project_model(std::move(files), std::move(spec));
  std::vector<Finding> findings = xh::lint::analyze_tree(model);
  if (model_out != nullptr) *model_out = std::move(model);
  return findings;
}

TEST(TreeCorpus, EverySeededViolationIsDetectedAndNothingElse) {
  const std::string root = XH_LINT_TREE_CORPUS_DIR;
  ProjectModel model;
  const std::vector<Finding> findings =
      analyze(root, {root + "/src"}, {}, root + "/layers.txt", &model);

  std::set<std::pair<std::string, std::string>> got;
  for (const Finding& f : findings) got.emplace(f.path, f.rule);

  const std::set<std::pair<std::string, std::string>> expected = {
      {"src/util/cycle_a.hpp", "XH-INC-001"},
      {"src/engine/bad_layer.cpp", "XH-INC-002"},
      {"src/core/private_reach.cpp", "XH-INC-002"},
      {"src/mystery/thing.hpp", "XH-INC-002"},
      {"src/core/dup_include.cpp", "XH-INC-003"},
      {"src/core/unused_include.cpp", "XH-INC-003"},
      {"src/core/missing_direct.cpp", "XH-INC-003"},
      {"src/core/discard.cpp", "XH-API-001"},
      {"src/service/submit_discard.cpp", "XH-API-001"},
      {"src/core/legacy_user.cpp", "XH-API-002"},
      {"src/core/quarantine_user.cpp", "XH-API-002"},
      {"src/core/telemetry_user.cpp", "XH-OBS-001"},
      {"src/core/stale_suppress.cpp", "XH-SUP-001"},
      {"src/service/ipa001_drop_bad.cpp", "XH-IPA-001"},
      {"src/service/ipa001_member_drop_bad.cpp", "XH-IPA-001"},
      {"src/service/ipa002_block_bad.cpp", "XH-IPA-002"},
      {"src/service/ipa002_chain_block_bad.cpp", "XH-IPA-002"},
      {"src/service/race001_ref_bad.cpp", "XH-RACE-001"},
      {"src/service/race001_default_ref_bad.cpp", "XH-RACE-001"},
      {"src/service/race002_abba_bad.cpp", "XH-RACE-002"},
      {"src/service/race002_post_lock_bad.cpp", "XH-RACE-002"},
  };
  EXPECT_EQ(got, expected) << describe(findings);

  // The private-prefix finding names the directive's whitelist, and the
  // whitelisted engine user stays clean.
  for (const Finding& f : findings) {
    if (f.path == "src/core/private_reach.cpp") {
      EXPECT_NE(f.message.find("private to layers"), std::string::npos)
          << f.message;
    }
    EXPECT_NE(f.path, "src/engine/good_backend_use.cpp") << f.message;
  }

  // The deprecated-API index resolved the fixture exactly: LegacyCfg is the
  // marker type of the deprecated run_thing overload, old_entry has no live
  // replacement, and vec_count — quarantined in a compat header that exports
  // no types — contributes no marker at all.
  ASSERT_EQ(model.symbols.deprecated.size(), 3u);
  for (const auto& api : model.symbols.deprecated) {
    if (api.name == "run_thing") {
      EXPECT_TRUE(api.has_live_overload);
      EXPECT_EQ(api.marker_types, std::set<std::string>{"LegacyCfg"});
    } else if (api.name == "old_entry") {
      EXPECT_FALSE(api.has_live_overload);
      EXPECT_TRUE(api.marker_types.empty());
    } else {
      EXPECT_EQ(api.name, "vec_count");
      EXPECT_EQ(api.declared_in, "src/util/veccount_compat.hpp");
      EXPECT_FALSE(api.has_live_overload);
      EXPECT_TRUE(api.marker_types.empty());
    }
  }

  // Both legacy_user uses are flagged: the marker type and the retired call.
  std::size_t legacy_findings = 0;
  for (const Finding& f : findings) {
    if (f.path == "src/core/legacy_user.cpp") ++legacy_findings;
  }
  EXPECT_EQ(legacy_findings, 2u);

  // The quarantined shim flags exactly the straggler's unqualified call:
  // mentioning WordVec and calling the qualified fast::vec_count replacement
  // in the same file stay clean (the src/kernels/compat.hpp pattern).
  std::size_t quarantine_findings = 0;
  for (const Finding& f : findings) {
    if (f.path == "src/core/quarantine_user.cpp") {
      ++quarantine_findings;
      EXPECT_EQ(f.line, 7u);
      EXPECT_NE(f.message.find("no live replacement overload"),
                std::string::npos)
          << f.message;
    }
  }
  EXPECT_EQ(quarantine_findings, 1u);

  // Both member-chain discards are flagged: `svc.submit_job(1);` and
  // `psvc->poll_job(2);` each resolve to their final [[nodiscard]] name.
  std::size_t chain_discards = 0;
  for (const Finding& f : findings) {
    if (f.path == "src/service/submit_discard.cpp") ++chain_discards;
  }
  EXPECT_EQ(chain_discards, 2u);

  // Telemetry harvest picked up the fixture's marker block.
  EXPECT_EQ(model.telemetry_schema_file, "src/obs/schema.cpp");
  EXPECT_EQ(model.telemetry_names,
            std::set<std::string>{"core.known_metric"});
}

TEST(TreeCorpus, CycleAnchorsAtLexicographicallyFirstMember) {
  const std::string root = XH_LINT_TREE_CORPUS_DIR;
  const std::vector<Finding> findings =
      analyze(root, {root + "/src"}, {}, root + "/layers.txt");
  std::size_t cycle_findings = 0;
  for (const Finding& f : findings) {
    if (f.rule != "XH-INC-001") continue;
    ++cycle_findings;
    EXPECT_EQ(f.path, "src/util/cycle_a.hpp");
    EXPECT_NE(f.message.find("src/util/cycle_b.hpp"), std::string::npos);
  }
  EXPECT_EQ(cycle_findings, 1u) << describe(findings);
}

TEST(RealTree, SelfScanIsCleanWithEveryFamilyEnabled) {
  const std::string root = XH_LINT_SOURCE_DIR;
  const std::vector<Finding> findings = analyze(
      root,
      {root + "/src", root + "/tools", root + "/bench", root + "/tests"},
      {"tests/lint/corpus/", "tests/lint/tree_corpus/"},
      root + "/tools/lint/layers.txt");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(RealTree, TelemetryHarvestMatchesSchemaApi) {
  const std::string root = XH_LINT_SOURCE_DIR;
  std::vector<std::string> errors;
  std::vector<SourceFile> files = xh::lint::load_tree(
      root, {root + "/src"}, {}, errors);
  ASSERT_TRUE(errors.empty());
  const ProjectModel model =
      xh::lint::build_project_model(std::move(files), {});
  // The lint-side harvest of the marker block and the runtime registry must
  // be the same list — otherwise XH-OBS-001 checks against a stale schema.
  const std::set<std::string> from_api(xh::telemetry_schema_names().begin(),
                                       xh::telemetry_schema_names().end());
  EXPECT_EQ(model.telemetry_names, from_api);
  EXPECT_EQ(model.telemetry_schema_file, "src/obs/telemetry_json.cpp");
}

TEST(LayerSpec, ParsesGrammarAndRejectsMalformedLines) {
  LayerSpec spec;
  std::string error;
  EXPECT_TRUE(xh::lint::parse_layer_spec(
      "# comment\n"
      "layer util\n"
      "layer core -> util obs\n"
      "layer tools -> *\n",
      spec, error));
  EXPECT_TRUE(spec.known("util"));
  EXPECT_TRUE(spec.allowed("core", "util"));
  EXPECT_TRUE(spec.allowed("core", "core"));
  EXPECT_FALSE(spec.allowed("util", "core"));
  EXPECT_TRUE(spec.allowed("tools", "core"));

  LayerSpec bad;
  EXPECT_FALSE(xh::lint::parse_layer_spec("stratum util\n", bad, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      xh::lint::parse_layer_spec("layer core util\n", bad, error));
}

TEST(LayerSpec, PrivatePrefixDirectiveRestrictsIncluders) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(xh::lint::parse_layer_spec(
      "layer storage\n"
      "layer engine -> storage\n"
      "layer core -> storage\n"
      "private src/storage/backend_ -> storage engine\n",
      spec, error))
      << error;
  const LayerSpec::PrivateRule* rule =
      spec.private_rule("src/storage/backend_csr.hpp");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->prefix, "src/storage/backend_");
  EXPECT_NE(rule->layers.count("engine"), 0u);
  EXPECT_EQ(rule->layers.count("core"), 0u);
  // Non-matching paths — including the factory next to the backends — are
  // unrestricted.
  EXPECT_EQ(spec.private_rule("src/storage/store_factory.hpp"), nullptr);

  LayerSpec bad;
  EXPECT_FALSE(xh::lint::parse_layer_spec(
      "private src/storage/backend_\n", bad, error));
  EXPECT_NE(error.find("private <prefix> -> <layer>"), std::string::npos);
  EXPECT_FALSE(xh::lint::parse_layer_spec(
      "private src/storage/backend_ storage\n", bad, error));
}

TEST(LayerSpec, DuplicatePrivateDirectivesAreRejected) {
  // Two `private` lines for the same prefix would silently shadow each
  // other (lookup returns the first match); the parser must refuse and
  // name the prefix so the author merges the layer lists.
  LayerSpec bad;
  std::string error;
  EXPECT_FALSE(xh::lint::parse_layer_spec(
      "layer storage\n"
      "layer engine -> storage\n"
      "private src/storage/backend_ -> storage\n"
      "private src/storage/backend_ -> engine\n",
      bad, error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate private directive"), std::string::npos)
      << error;
  EXPECT_NE(error.find("src/storage/backend_"), std::string::npos) << error;

  // Distinct prefixes — even nested ones — are still fine.
  LayerSpec ok;
  EXPECT_TRUE(xh::lint::parse_layer_spec(
      "layer storage\n"
      "layer engine -> storage\n"
      "private src/storage/backend_ -> storage\n"
      "private src/storage/backend_csr_ -> engine\n",
      ok, error))
      << error;
}

TEST(LayerSpec, LayerOfMapsRepoPaths) {
  EXPECT_EQ(xh::lint::layer_of("src/util/rng.hpp"), "util");
  EXPECT_EQ(xh::lint::layer_of("src/xh.hpp"), "xh");
  EXPECT_EQ(xh::lint::layer_of("tools/lint/lint_core.cpp"), "tools");
  EXPECT_EQ(xh::lint::layer_of("bench/bench_partitioner.cpp"), "bench");
  EXPECT_EQ(xh::lint::layer_of("tests/core/hybrid_test.cpp"), "tests");
}

TEST(LoadTree, MissingInputsAreDiagnosedNotSkipped) {
  std::vector<std::string> errors;
  const std::vector<SourceFile> files = xh::lint::load_tree(
      ".", {"definitely/not/a/real/path.cpp"}, {}, errors);
  EXPECT_TRUE(files.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("definitely/not/a/real/path.cpp"),
            std::string::npos);
}

TEST(LoadTree, ExcludePrefixesSkipSubtrees) {
  const std::string root = XH_LINT_TREE_CORPUS_DIR;
  std::vector<std::string> errors;
  const std::vector<SourceFile> all =
      xh::lint::load_tree(root, {root + "/src"}, {}, errors);
  const std::vector<SourceFile> pruned = xh::lint::load_tree(
      root, {root + "/src"}, {"src/core/"}, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_LT(pruned.size(), all.size());
  for (const SourceFile& f : pruned) {
    EXPECT_FALSE(f.path.rfind("src/core/", 0) == 0) << f.path;
  }
}

}  // namespace
