// AVX2 kernel backend: 256-bit tiles, positional-popcount via the classic
// nibble-LUT + psadbw reduction (Muła/Kurz/Lemire, arXiv:1611.07612 layout).
//
// Every function carries __attribute__((target("avx2"))) so this file
// compiles as part of the ordinary x86-64 build (no global -mavx2): the
// vector instructions exist only inside these bodies and the dispatcher in
// kernels.cpp never hands them out unless __builtin_cpu_supports("avx2").
//
// Bit-identity with backend_scalar.hpp is structural, not accidental: AND,
// ANDN, XOR and popcount are exact integer operations, the per-lane sums
// are added into 64-bit accumulators wide enough for any span (4 lanes x
// 255 max per psadbw step), and the tail runs the scalar loop itself.
#include "kernels/backend_simd.hpp"

#if XH_KERNELS_HAVE_X86

#include <immintrin.h>

#include "kernels/backend_scalar.hpp"

namespace xh::kernels::avx2 {
namespace {

constexpr std::size_t kLaneWords = 4;  // 256 bits

/// Per-byte popcount of @p v summed into four 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i popcount_lanes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t horizontal_sum(
    __m256i acc) {
  std::uint64_t lanes[kLaneWords];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) inline __m256i load(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

}  // namespace

__attribute__((target("avx2"))) std::size_t popcount_words(
    const std::uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    acc = _mm256_add_epi64(acc, popcount_lanes(load(w + i)));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::popcount_words(w + i, n - i);
}

__attribute__((target("avx2"))) std::size_t and_count_words(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m256i fused = _mm256_and_si256(load(a + i), load(b + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(fused));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::and_count_words(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) std::size_t and_not_count_words(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    // andnot computes ~first & second, so b goes first.
    const __m256i fused = _mm256_andnot_si256(load(b + i), load(a + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(fused));
  }
  return static_cast<std::size_t>(horizontal_sum(acc)) +
         scalar::and_not_count_words(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void xor_words(std::uint64_t* dst,
                                               const std::uint64_t* src,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(load(dst + i), load(src + i)));
  }
  scalar::xor_words(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void and_words_into(std::uint64_t* dst,
                                                    const std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(load(a + i), load(b + i)));
  }
  scalar::and_words_into(dst + i, a + i, b + i, n - i);
}

}  // namespace xh::kernels::avx2

#endif  // XH_KERNELS_HAVE_X86
