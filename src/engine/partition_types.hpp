// Shared types of the pattern-partitioning search (paper Section 4).
//
// These used to live in core/partitioner.hpp; they moved below the engine
// layer so both the seed-faithful reference implementation (core) and the
// incremental PartitionEngine (engine) speak the same configuration and
// result vocabulary. core/partitioner.hpp re-exports them, so existing
// includers are unaffected.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "misr/x_cancel.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// How the representative split cell is chosen inside the winning same-count
/// group. The paper picks randomly; the default here is deterministic.
enum class SplitCellChoice {
  kLowestIndex,
  kRandom,
};

struct PartitionerConfig {
  MisrConfig misr;
  /// Stop as soon as a round fails to reduce total control bits (the paper's
  /// cost function). Disable to run to exhaustion (ablation studies).
  bool stop_on_cost_increase = true;
  /// Hard cap on accepted rounds (ablation: force exactly k splits).
  std::size_t max_rounds = std::numeric_limits<std::size_t>::max();
  /// Also split on groups of a single cell when no >=2-cell group exists.
  /// Off by default: the paper stops partitioning such partitions.
  bool allow_singleton_groups = false;
  SplitCellChoice cell_choice = SplitCellChoice::kLowestIndex;
  std::uint64_t seed = 1;  // used when cell_choice == kRandom
};

/// One accepted (or rejected-final) round in the search.
struct PartitionRound {
  std::size_t round = 0;            // 0 = before any split
  std::size_t num_partitions = 0;
  std::uint64_t masked_x = 0;
  std::uint64_t leaked_x = 0;
  double total_bits = 0.0;          // hybrid closed form at this state
  std::size_t split_cell = 0;       // cell split to REACH this state (round>0)
  bool accepted = true;             // false only for a final rejected probe
};

struct PartitionResult {
  /// Final disjoint pattern groups covering all patterns.
  std::vector<BitVec> partitions;
  /// Safe mask per partition (same indexing).
  std::vector<BitVec> masks;
  std::uint64_t masked_x = 0;
  std::uint64_t leaked_x = 0;
  /// Hybrid control-bit total for the final state (real-valued).
  double total_bits = 0.0;
  double masking_bits = 0.0;
  double canceling_bits = 0.0;
  /// Cost trajectory: entry 0 is the unsplit state; a trailing entry with
  /// accepted == false records the probe that triggered the stop.
  std::vector<PartitionRound> history;
  /// True when the search was stopped by a cancellation/deadline token
  /// before reaching its natural stop: the result is the best-so-far
  /// prefix — still a valid, coverage-safe partition — not the optimum.
  bool interrupted = false;

  std::size_t num_partitions() const { return partitions.size(); }
};

/// Resumable engine state captured at a round boundary: exactly what is
/// not recomputable from the frozen XMatrixView. The per-partition group
/// analyses are deliberately NOT stored — restore re-derives them with one
/// full sweep per partition, which analyze() makes bit-identical to the
/// incremental path for any candidate superset (rows with no X in the
/// partition contribute nothing). See service/checkpoint.hpp for the
/// serialized form.
struct EngineSnapshot {
  std::size_t round = 0;  // accepted rounds so far
  bool done = false;      // natural stop already reached
  std::array<std::uint64_t, 4> rng_state{};
  /// Pattern set per partition, in engine order (split order matters: the
  /// best-partition scan ties break on position).
  std::vector<BitVec> partitions;
  std::vector<PartitionRound> history;
};

}  // namespace xh
