// Incremental pattern-partitioning engine (paper Section 4, Algorithm 1).
//
// Semantically identical to the seed partitioner retained in
// core/partitioner.cpp (partition_patterns_reference) — same greedy split
// selection, same cost-function stop, bit-identical PartitionResult for any
// configuration and seed — but restructured around the observation that a
// split only changes ONE partition:
//
//   * the X matrix is frozen into an XMatrixStore (storage/ layer; the
//     default CsrStore keeps contiguous words with precomputed popcounts
//     instead of unordered_map lookups);
//   * each partition keeps the list of store rows that have at least one X
//     inside it, so splitting a partition re-analyzes only those rows —
//     O(victim cells), not O(all X cells) as in the seed;
//   * a probe is costed from running totals (no clone of the partition
//     vector); a rejected probe therefore costs zero copies and leaves the
//     engine state untouched;
//   * the per-round cell analysis optionally fans out across a ThreadPool.
//     Chunk results are merged in deterministic chunk order, so the result
//     is bit-identical for any pool size (or none).
//
// Per-round complexity: seed O(total_x_cells × pattern_words) per probe,
// engine O(victim_cells × pattern_words) — the victim shrinks geometrically
// as the search deepens, which is where the production-scale speedup
// comes from (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "engine/partition_types.hpp"
#include "engine/pipeline_context.hpp"
#include "obs/trace.hpp"
#include "storage/x_matrix_store.hpp"
#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"
#include "util/cancel_token.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace xh {

class PartitionEngine {
 public:
  /// Binds the engine to a frozen store (not owned; must outlive the
  /// engine) and analyzes the unsplit root partition. Throws std::invalid_argument
  /// on invalid configuration, like the seed partitioner. The optional
  /// trace receives engine.* counters; nullptr means no instrumentation.
  /// The optional cancel token (not owned) is polled at round boundaries.
  PartitionEngine(const XMatrixStore& store, const PartitionerConfig& cfg,
                  ThreadPool* pool = nullptr, Trace* trace = nullptr,
                  const CancelToken* cancel = nullptr);
  PartitionEngine(const XMatrixStore& store, PipelineContext& ctx)
      : PartitionEngine(store, ctx.partitioner, ctx.pool(), ctx.trace(),
                        ctx.cancel()) {}

  /// Restores an engine from a round-boundary snapshot taken against an
  /// identical store and configuration. Each stored partition is
  /// re-analyzed with one full sweep, which analyze() makes bit-identical
  /// to the incremental state the saved engine held — so stepping the
  /// restored engine reproduces the uninterrupted run exactly. Throws
  /// std::invalid_argument when the snapshot does not describe a disjoint
  /// cover of the store's patterns.
  PartitionEngine(const XMatrixStore& store, const PartitionerConfig& cfg,
                  const EngineSnapshot& snapshot, ThreadPool* pool = nullptr,
                  Trace* trace = nullptr, const CancelToken* cancel = nullptr);

  /// Outcome of one greedy round.
  enum class StepOutcome {
    kSplit,      // probe accepted: one partition replaced by its two halves
    kRejected,   // probe cost >= current cost: recorded, state untouched
    kExhausted,  // no splittable group left, or max_rounds reached
    kCancelled,  // stop token fired before the round ran: state untouched
  };

  /// Runs one round: pick the strongest group, probe the split, accept or
  /// reject. After kRejected or kExhausted the engine is finished and
  /// further calls return kExhausted without consuming randomness.
  /// kCancelled does NOT finish the engine: the round was never attempted,
  /// so a snapshot of this state can resume and complete the search.
  StepOutcome step();

  /// Runs rounds to completion (Algorithm 1) and returns the materialized
  /// result — bit-identical to partition_patterns_reference().
  PartitionResult run();

  /// Materializes the current state (partitions, masks, accounting,
  /// history). Callable at any point; does not mutate the engine.
  PartitionResult materialize() const;

  /// Captures the resumable state at the current round boundary. The
  /// restore constructor round-trips this exactly; serialization lives in
  /// service/checkpoint.hpp.
  EngineSnapshot snapshot() const;

  // Introspection (tests and step-wise drivers).
  std::size_t num_partitions() const { return parts_.size(); }
  const BitVec& partition_patterns_of(std::size_t i) const {
    return parts_[i].patterns;
  }
  std::uint64_t masked_x() const { return masked_total_; }
  const std::vector<PartitionRound>& history() const { return history_; }
  bool finished() const { return done_; }
  /// True once a step() observed the cancel token fired.
  bool interrupted() const { return interrupted_; }

 private:
  /// Working state of one pattern group: the cached analysis of the seed
  /// partitioner's Part, plus the member rows that make re-analysis local.
  struct Part {
    BitVec patterns;
    std::size_t span = 0;          // patterns.count()
    std::size_t masked_cells = 0;  // cells X in every pattern of the group
    // Best candidate group of same-(count, pattern-set) cells:
    std::size_t group_size = 0;
    std::size_t group_xcount = 0;
    std::vector<std::size_t> group_cells;  // cell ids, ascending
    /// Store rows with at least one X inside this partition, ascending.
    /// A child partition's members are always a subset of its parent's.
    std::vector<std::uint32_t> members;

    std::uint64_t masked_x() const {
      return static_cast<std::uint64_t>(masked_cells) * span;
    }
    std::size_t group_score() const { return group_size * group_xcount; }
    bool splittable(bool allow_singletons) const {
      return group_size >= (allow_singletons ? 1u : 2u);
    }
  };

  /// Full analysis of one pattern group, restricted to @p candidates (rows
  /// that could possibly have an X in it). Fans out on the pool when
  /// profitable; serial and parallel paths produce identical Parts.
  Part analyze(BitVec patterns, const std::vector<std::uint32_t>& candidates);

  PartitionRound snapshot_round(std::size_t round, std::size_t num_parts,
                                std::uint64_t masked) const;

  const XMatrixStore& store_;
  PartitionerConfig cfg_;
  ThreadPool* pool_ = nullptr;
  Trace* trace_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  Rng rng_;
  std::vector<Part> parts_;
  std::uint64_t masked_total_ = 0;
  std::vector<PartitionRound> history_;
  std::size_t round_ = 0;  // accepted rounds so far
  bool done_ = false;
  bool interrupted_ = false;  // a step() saw the cancel token fired
};

/// Convenience: snapshot + engine run in one call, routed through a context.
[[nodiscard]] PartitionResult run_partitioning(const XMatrix& xm,
                                               PipelineContext& ctx);

}  // namespace xh
