#include "masking/mask.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"

namespace xh {
namespace {

BitVec patterns_of(std::size_t width, std::initializer_list<std::size_t> set) {
  BitVec v(width);
  for (const std::size_t p : set) v.set(p);
  return v;
}

TEST(PartitionMask, OnlyAllXCellsMasked) {
  const XMatrix xm = paper_example_x_matrix();
  // Partition 2 of the paper = patterns {2,3,7,8} (indices {1,2,6,7}):
  // only SC4 cell 3 is X in all four.
  const BitVec mask = partition_mask(xm, patterns_of(8, {1, 2, 6, 7}));
  EXPECT_EQ(mask.count(), 1u);
  EXPECT_TRUE(mask.get(PaperExampleCells::sc4_c2));
}

TEST(PartitionMask, Partition3MasksFiveCells) {
  const XMatrix xm = paper_example_x_matrix();
  // Partition 3 = paper patterns {1,4,5} (indices {0,3,4}).
  const BitVec mask = partition_mask(xm, patterns_of(8, {0, 3, 4}));
  EXPECT_EQ(mask.count(), 5u);
  EXPECT_TRUE(mask.get(PaperExampleCells::sc1_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc2_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc3_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc4_c2));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc5_c1));
  // The paper's explicit negative example: SC5 cell 2 must NOT be masked in
  // Partition 2 (it would destroy a non-X value).
  EXPECT_FALSE(
      partition_mask(xm, patterns_of(8, {1, 2, 6, 7})).get(
          PaperExampleCells::sc5_c1));
}

TEST(PartitionMask, SingletonPartitionMasksAllItsXs) {
  const XMatrix xm = paper_example_x_matrix();
  // Partition 4 = paper pattern {6} (index {5}).
  const BitVec mask = partition_mask(xm, patterns_of(8, {5}));
  EXPECT_EQ(mask.count(), 4u);
  EXPECT_TRUE(mask.get(PaperExampleCells::sc1_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc2_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc3_c0));
  EXPECT_TRUE(mask.get(PaperExampleCells::sc5_c2));
}

TEST(PartitionMask, EmptyPartitionRejected) {
  const XMatrix xm = paper_example_x_matrix();
  EXPECT_THROW(partition_mask(xm, BitVec(8)), std::invalid_argument);
  EXPECT_THROW(partition_mask(xm, BitVec(5, true)), std::invalid_argument);
}

TEST(MaskedXCount, MatchesPaperNumbers) {
  const XMatrix xm = paper_example_x_matrix();
  EXPECT_EQ(masked_x_count(xm, patterns_of(8, {1, 2, 6, 7})), 4u);
  EXPECT_EQ(masked_x_count(xm, patterns_of(8, {0, 3, 4})), 15u);
  EXPECT_EQ(masked_x_count(xm, patterns_of(8, {5})), 4u);
  // Total masked = 23, leaked = 5 — the Section 4 result.
  EXPECT_EQ(xm.total_x() - 23u, 5u);
}

TEST(ApplyMask, MaskedCellsBecomeZero) {
  ResponseMatrix rm = paper_example_response(7);
  const XMatrix xm = XMatrix::from_response(rm);
  const BitVec partition = patterns_of(8, {0, 3, 4});
  const BitVec mask = partition_mask(xm, partition);
  apply_mask(rm, partition, mask);
  for (const std::size_t p : partition.set_bits()) {
    for (const std::size_t c : mask.set_bits()) {
      EXPECT_EQ(rm.get(p, c), Lv::k0);
    }
  }
  // Untouched patterns keep their X's.
  EXPECT_TRUE(rm.is_x(1, PaperExampleCells::sc4_c2));
}

TEST(ApplyMask, WidthChecked) {
  ResponseMatrix rm = paper_example_response(7);
  EXPECT_THROW(apply_mask(rm, BitVec(9), BitVec(15)), std::invalid_argument);
  EXPECT_THROW(apply_mask(rm, BitVec(8), BitVec(14)), std::invalid_argument);
}

TEST(ObservabilityCheck, AcceptsSafeMasks) {
  const ResponseMatrix rm = paper_example_response(3);
  const XMatrix xm = XMatrix::from_response(rm);
  const std::vector<BitVec> partitions = {patterns_of(8, {0, 3, 4}),
                                          patterns_of(8, {5}),
                                          patterns_of(8, {1, 2, 6, 7})};
  std::vector<BitVec> masks;
  for (const auto& p : partitions) masks.push_back(partition_mask(xm, p));
  EXPECT_TRUE(masks_preserve_observability(rm, partitions, masks));
}

TEST(ObservabilityCheck, RejectsUnsafeMask) {
  const ResponseMatrix rm = paper_example_response(3);
  // Masking SC5 cell 2 across Partition 2 kills a non-X (the paper's own
  // counter-example).
  BitVec mask(15);
  mask.set(PaperExampleCells::sc5_c1);
  EXPECT_FALSE(masks_preserve_observability(
      rm, {patterns_of(8, {1, 2, 6, 7})}, {mask}));
}

TEST(ObservabilityCheck, SizeMismatchRejected) {
  const ResponseMatrix rm = paper_example_response(3);
  EXPECT_THROW(
      masks_preserve_observability(rm, {BitVec(8, true)}, {}),
      std::invalid_argument);
}

TEST(XMaskingOnly, ControlBitsAndFullCleaning) {
  ResponseMatrix rm = paper_example_response(5);
  EXPECT_EQ(XMaskingOnly::control_bits(rm.geometry(), rm.num_patterns()),
            120u);  // 3 · 5 · 8 — the paper's "120 control bits"
  EXPECT_EQ(rm.total_x(), 28u);
  XMaskingOnly::apply(rm);
  EXPECT_EQ(rm.total_x(), 0u);
}

}  // namespace
}  // namespace xh
