#include "core/tester_payload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/paper_example.hpp"

namespace xh {
namespace {

HybridSimulation worked_example_sim() {
  PipelineContext ctx;
  ctx.partitioner.misr = {10, 2};
  return run_hybrid_simulation(paper_example_response(3), ctx);
}

TEST(TesterPayload, SectionsMatchPartitions) {
  const HybridSimulation sim = worked_example_sim();
  const TesterPayload payload = build_tester_payload(sim);
  ASSERT_EQ(payload.partitions.size(),
            sim.report.partitioning.num_partitions());
  for (std::size_t i = 0; i < payload.partitions.size(); ++i) {
    EXPECT_TRUE(payload.partitions[i].patterns ==
                sim.report.partitioning.partitions[i]);
    // Decoding the shipped mask reproduces the planner's mask exactly.
    EXPECT_TRUE(decode_mask(payload.partitions[i].mask) ==
                sim.report.partitioning.masks[i]);
  }
}

TEST(TesterPayload, RawMaskBitsMatchPaperAccounting) {
  const HybridSimulation sim = worked_example_sim();
  const TesterPayload payload = build_tester_payload(sim);
  // 3 partitions × 15 cells = 45 raw mask bits (the paper's number).
  EXPECT_EQ(payload.raw_mask_bits, 45u);
  EXPECT_DOUBLE_EQ(static_cast<double>(payload.raw_mask_bits),
                   sim.report.partitioning.masking_bits);
}

TEST(TesterPayload, PatternOrderIsAPermutationGroupedByPartition) {
  const HybridSimulation sim = worked_example_sim();
  const TesterPayload payload = build_tester_payload(sim);
  ASSERT_EQ(payload.pattern_order.size(), 8u);
  auto sorted = payload.pattern_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sorted[i], i);
  // Grouped: each partition's patterns appear contiguously.
  std::size_t cursor = 0;
  for (const auto& section : payload.partitions) {
    for (const std::size_t p : section.patterns.set_bits()) {
      EXPECT_EQ(payload.pattern_order[cursor++], p);
    }
  }
}

TEST(TesterPayload, CancelVectorsComeFromRealStops) {
  const HybridSimulation sim = worked_example_sim();
  const TesterPayload payload = build_tester_payload(sim);
  // 5 leaked X's, m=10, q=2: one stop → up to 2 vectors of 10 bits.
  EXPECT_EQ(sim.cancel.stops, 1u);
  EXPECT_EQ(payload.cancel_vectors.size(), 2u);
  EXPECT_EQ(payload.cancel_bits, 20u);
  for (const auto& v : payload.cancel_vectors) {
    EXPECT_EQ(v.size(), 10u);
    EXPECT_TRUE(v.any());
  }
}

TEST(TesterPayload, CodedBoundedByRawPlusFlagBits) {
  const HybridSimulation sim = worked_example_sim();
  const TesterPayload payload = build_tester_payload(sim);
  // The raw escape bounds each coded mask at raw + 1 flag bit.
  EXPECT_LE(payload.total_bits_coded(),
            payload.total_bits_raw() + payload.partitions.size());
  EXPECT_EQ(payload.total_bits_raw(),
            payload.raw_mask_bits + payload.cancel_bits);
}

}  // namespace
}  // namespace xh
