#include "netlist/library.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/comb_sim.hpp"

namespace xh {
namespace {

// Helper: run a full sequential clock on a CombSim.
void tick(CombSim& sim) {
  sim.evaluate();
  sim.clock();
}

TEST(CircuitLibrary, CounterCountsThrough16States) {
  const Netlist nl = make_counter(4);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  sim.set_input(nl.find("en"), Lv::k1);

  const GateId q0 = nl.find("q0");
  const GateId q1 = nl.find("q1");
  const GateId q2 = nl.find("q2");
  const GateId q3 = nl.find("q3");
  for (int step = 0; step < 16; ++step) {
    sim.evaluate();
    const int value = (sim.value(q0) == Lv::k1 ? 1 : 0) |
                      (sim.value(q1) == Lv::k1 ? 2 : 0) |
                      (sim.value(q2) == Lv::k1 ? 4 : 0) |
                      (sim.value(q3) == Lv::k1 ? 8 : 0);
    EXPECT_EQ(value, step);
    sim.clock();
  }
  sim.evaluate();
  EXPECT_EQ(sim.value(q0), Lv::k0) << "wraps to zero";
}

TEST(CircuitLibrary, CounterHoldsWhenDisabled) {
  const Netlist nl = make_counter(3);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  sim.set_input(nl.find("en"), Lv::k1);
  tick(sim);
  tick(sim);  // counter = 2
  sim.set_input(nl.find("en"), Lv::k0);
  tick(sim);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("q0")), Lv::k0);
  EXPECT_EQ(sim.value(nl.find("q1")), Lv::k1);
}

TEST(CircuitLibrary, CounterCarryOutFiresAtMax) {
  const Netlist nl = make_counter(2);
  CombSim sim(nl);
  sim.set_all_state(Lv::k1);  // state 3
  sim.set_input(nl.find("en"), Lv::k1);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("carry_out")), Lv::k1);
}

TEST(CircuitLibrary, CrcShiftsAndHolds) {
  const Netlist nl = make_crc(8);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  sim.set_input(nl.find("din"), Lv::k1);
  sim.set_input(nl.find("en"), Lv::k1);
  tick(sim);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("q0")), Lv::k1) << "feedback injects at bit 0";
  // Disable: state must hold.
  const Lv q0_before = sim.value(nl.find("q0"));
  sim.set_input(nl.find("en"), Lv::k0);
  sim.set_input(nl.find("din"), Lv::k0);
  tick(sim);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("q0")), q0_before);
}

TEST(CircuitLibrary, CrcIsLinearInItsInputStream) {
  // CRC(a) ^ CRC(b) == CRC(a^b) from the zero state.
  const auto run = [](const std::vector<bool>& stream) {
    const Netlist nl = make_crc(8);
    CombSim sim(nl);
    sim.set_all_state(Lv::k0);
    sim.set_input(nl.find("en"), Lv::k1);
    for (const bool bit : stream) {
      sim.set_input(nl.find("din"), bit ? Lv::k1 : Lv::k0);
      sim.evaluate();
      sim.clock();
    }
    sim.evaluate();
    std::vector<bool> state;
    for (std::size_t i = 0; i < 8; ++i) {
      state.push_back(sim.value(nl.find("q" + std::to_string(i))) == Lv::k1);
    }
    return state;
  };
  const std::vector<bool> a = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  const std::vector<bool> b = {0, 1, 1, 0, 1, 0, 0, 1, 1, 0};
  std::vector<bool> axb;
  for (std::size_t i = 0; i < a.size(); ++i) axb.push_back(a[i] != b[i]);
  const auto ra = run(a);
  const auto rb = run(b);
  const auto rx = run(axb);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ra[i] != rb[i], rx[i]) << "bit " << i;
  }
}

class AluOps : public ::testing::TestWithParam<int> {};

TEST_P(AluOps, ComputesAllFourFunctions) {
  const int op = GetParam();
  const Netlist nl = make_alu(4);
  CombSim sim(nl);

  const unsigned av = 0b1011;
  const unsigned bv = 0b0110;
  sim.set_input(nl.find("op0"), (op & 1) ? Lv::k1 : Lv::k0);
  sim.set_input(nl.find("op1"), (op & 2) ? Lv::k1 : Lv::k0);
  // Load operands into the input registers (cycle 1), then read the result
  // register (cycle 2).
  for (std::size_t i = 0; i < 4; ++i) {
    sim.set_input(nl.find("a" + std::to_string(i)),
                  ((av >> i) & 1) ? Lv::k1 : Lv::k0);
    sim.set_input(nl.find("b" + std::to_string(i)),
                  ((bv >> i) & 1) ? Lv::k1 : Lv::k0);
  }
  sim.set_all_state(Lv::k0);
  tick(sim);  // operands captured
  tick(sim);  // result captured
  sim.evaluate();

  unsigned expected = 0;
  switch (op) {
    case 0: expected = (av + bv) & 0xF; break;
    case 1: expected = av & bv; break;
    case 2: expected = av | bv; break;
    case 3: expected = av ^ bv; break;
    default: FAIL();
  }
  unsigned got = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (sim.value(nl.find("rr" + std::to_string(i))) == Lv::k1) {
      got |= 1u << i;
    }
  }
  EXPECT_EQ(got, expected) << "op " << op;
  if (op == 0) {
    EXPECT_EQ(sim.value(nl.find("rcarry")),
              ((av + bv) > 0xF) ? Lv::k1 : Lv::k0);
  }
}

INSTANTIATE_TEST_SUITE_P(AddAndOrXor, AluOps, ::testing::Values(0, 1, 2, 3));

TEST(CircuitLibrary, PipelineHasUnscannedStage) {
  const Netlist nl = make_pipeline(8, 4);
  EXPECT_EQ(nl.nonscan_dffs().size(), 8u);
  EXPECT_EQ(nl.scan_dffs().size(), 24u);
}

TEST(CircuitLibrary, PipelineUnknownStatePoisonsOutputs) {
  const Netlist nl = make_pipeline(4, 3);
  CombSim sim(nl);
  // All inputs driven, all state unknown (power-up).
  for (const GateId pi : nl.inputs()) sim.set_input(pi, Lv::k0);
  sim.evaluate();
  std::size_t x_outputs = 0;
  for (const GateId out : nl.outputs()) {
    if (sim.value(out) == Lv::kX) ++x_outputs;
  }
  EXPECT_GT(x_outputs, 0u);
}

TEST(CircuitLibrary, BusFabricSingleMasterDrives) {
  const Netlist nl = make_bus_fabric(3, 2);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  for (const GateId pi : nl.inputs()) sim.set_input(pi, Lv::k0);
  sim.set_input(nl.find("en1"), Lv::k1);
  sim.set_input(nl.find("m1_d0"), Lv::k1);
  sim.set_input(nl.find("m1_d1"), Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("bus0")), Lv::k1);
  EXPECT_EQ(sim.value(nl.find("bus1")), Lv::k0);
}

TEST(CircuitLibrary, BusFabricContentionAndFloatAreX) {
  const Netlist nl = make_bus_fabric(2, 1);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  for (const GateId pi : nl.inputs()) sim.set_input(pi, Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("bus0")), Lv::kX) << "floating bus";
  sim.set_input(nl.find("en0"), Lv::k1);
  sim.set_input(nl.find("en1"), Lv::k1);
  sim.set_input(nl.find("m0_d0"), Lv::k1);
  sim.set_input(nl.find("m1_d0"), Lv::k0);
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("bus0")), Lv::kX) << "contention";
}

class Multiplier : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Multiplier, ComputesProduct) {
  const auto [av, bv] = GetParam();
  const Netlist nl = make_multiplier(4);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  for (std::size_t i = 0; i < 4; ++i) {
    sim.set_input(nl.find("a" + std::to_string(i)),
                  ((static_cast<unsigned>(av) >> i) & 1) ? Lv::k1 : Lv::k0);
    sim.set_input(nl.find("b" + std::to_string(i)),
                  ((static_cast<unsigned>(bv) >> i) & 1) ? Lv::k1 : Lv::k0);
  }
  tick(sim);  // latch operands
  tick(sim);  // latch product
  sim.evaluate();
  unsigned got = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (sim.value(nl.find("p" + std::to_string(i))) == Lv::k1) {
      got |= 1u << i;
    }
  }
  EXPECT_EQ(got, static_cast<unsigned>(av * bv))
      << av << " * " << bv;
}

INSTANTIATE_TEST_SUITE_P(
    Products, Multiplier,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 1}, std::pair{3, 5},
                      std::pair{7, 7}, std::pair{15, 15}, std::pair{12, 9},
                      std::pair{2, 14}));

TEST(CircuitLibrary, GrayCounterTogglesOneBitPerStep) {
  const Netlist nl = make_gray_counter(4);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  sim.set_input(nl.find("en"), Lv::k1);
  unsigned prev = 0;
  for (int step = 0; step < 20; ++step) {
    sim.evaluate();
    unsigned gray = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      if (sim.value(nl.find("g" + std::to_string(i))) == Lv::k1) {
        gray |= 1u << i;
      }
    }
    if (step > 0) {
      const unsigned diff = gray ^ prev;
      EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit changed";
      EXPECT_NE(diff, 0u) << "no bit changed while enabled";
    }
    prev = gray;
    sim.clock();
  }
}

TEST(CircuitLibrary, GrayCounterVisitsAllCodes) {
  const Netlist nl = make_gray_counter(3);
  CombSim sim(nl);
  sim.set_all_state(Lv::k0);
  sim.set_input(nl.find("en"), Lv::k1);
  std::set<unsigned> seen;
  for (int step = 0; step < 8; ++step) {
    sim.evaluate();
    unsigned gray = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      if (sim.value(nl.find("g" + std::to_string(i))) == Lv::k1) {
        gray |= 1u << i;
      }
    }
    seen.insert(gray);
    sim.clock();
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(CircuitLibrary, ParameterValidation) {
  EXPECT_THROW(make_counter(0), std::invalid_argument);
  EXPECT_THROW(make_crc(1), std::invalid_argument);
  EXPECT_THROW(make_alu(40), std::invalid_argument);
  EXPECT_THROW(make_pipeline(1, 4), std::invalid_argument);
  EXPECT_THROW(make_bus_fabric(1, 4), std::invalid_argument);
  EXPECT_THROW(make_multiplier(1), std::invalid_argument);
  EXPECT_THROW(make_gray_counter(1), std::invalid_argument);
}

}  // namespace
}  // namespace xh
