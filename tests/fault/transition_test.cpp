#include "fault/transition.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"

namespace xh {
namespace {

// s0 captures NOT(s0): the flop toggles every functional clock — the
// canonical transition-launch structure (launch frame value != capture
// frame value whenever s0 is loaded).
const char* kToggler =
    "INPUT(a)\nOUTPUT(q)\n"
    "n = NOT(s0)\n"
    "s0 = DFF(n)\n"
    "q = BUF(n)\n";

TEST(TransitionFaults, EnumerationPairsWithStuckUniverse) {
  const Netlist nl = read_bench_string(kToggler);
  const auto tf = enumerate_transition_faults(nl);
  const auto sf = enumerate_faults(nl);
  EXPECT_EQ(tf.size(), sf.size());
  EXPECT_EQ(transition_fault_name(nl, {nl.find("n"), true}), "n/str");
  EXPECT_EQ(transition_fault_name(nl, {nl.find("n"), false}), "n/stf");
}

TEST(TransitionFaults, TogglerDetectsSlowToRiseOnN) {
  const Netlist nl = read_bench_string(kToggler);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TransitionFaultSimulator sim(nl, plan);

  // Load s0 = 1: launch frame has n = 0, functional clock captures 0 into
  // s0, capture frame has n = 1 — a rising transition at n that a
  // slow-to-rise fault holds at 0, captured as 0 instead of 1.
  TestPattern p;
  p.pi = {Lv::k0};
  p.scan_in = {Lv::k1};
  const TransitionSimResult r =
      sim.run({p}, {{nl.find("n"), true}, {nl.find("n"), false}});
  EXPECT_TRUE(r.detected[0]) << "slow-to-rise launched and observed";
  EXPECT_FALSE(r.detected[1]) << "no falling transition was launched at n";
  EXPECT_EQ(r.never_launched, 1u);
}

TEST(TransitionFaults, OppositeLoadLaunchesTheFall) {
  const Netlist nl = read_bench_string(kToggler);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TransitionFaultSimulator sim(nl, plan);
  TestPattern p;
  p.pi = {Lv::k0};
  p.scan_in = {Lv::k0};  // n: 1 in launch, 0 in capture — falling edge
  const TransitionSimResult r =
      sim.run({p}, {{nl.find("n"), true}, {nl.find("n"), false}});
  EXPECT_FALSE(r.detected[0]);
  EXPECT_TRUE(r.detected[1]);
}

TEST(TransitionFaults, BothPatternsCoverBothPolarities) {
  const Netlist nl = read_bench_string(kToggler);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TransitionFaultSimulator sim(nl, plan);
  TestPattern up;
  up.pi = {Lv::k0};
  up.scan_in = {Lv::k1};
  TestPattern down;
  down.pi = {Lv::k0};
  down.scan_in = {Lv::k0};
  const TransitionSimResult r = sim.run(
      {up, down}, {{nl.find("n"), true}, {nl.find("n"), false}});
  EXPECT_EQ(r.num_detected, 2u);
  EXPECT_EQ(r.never_launched, 0u);
}

TEST(TransitionFaults, UnlaunchedFaultIsNotDetected) {
  // Combinational feed-through with constant inputs: no transitions at all.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\ng = BUF(a)\nq = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TransitionFaultSimulator sim(nl, plan);
  TestPattern p;
  p.pi = {Lv::k1};
  p.scan_in = {Lv::k1};
  // g is 1 in both frames: neither polarity launches.
  const TransitionSimResult r =
      sim.run({p}, {{nl.find("g"), true}, {nl.find("g"), false}});
  EXPECT_EQ(r.num_detected, 0u);
  EXPECT_EQ(r.never_launched, 2u);
}

TEST(TransitionFaults, FunctionalClockInitializesUnscannedFlop) {
  // The functional launch clock loads the unscanned flop with definite data
  // (u captures the PI), so the LOC capture frame reads deterministic where
  // the single-frame stuck-at capture reads X. (The converse also happens in
  // general circuits — scanned flops lose their loaded values — so only this
  // targeted structure gives a guaranteed inequality.)
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nu = NDFF(a)\nd = XOR(u, a)\nq = DFF(d)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  TestPattern p;
  p.pi = {Lv::k1};
  p.scan_in = {Lv::k0};

  TestApplicator app(nl, plan);
  const ResponseMatrix stuck_frame = app.capture({p});
  EXPECT_EQ(stuck_frame.total_x(), 1u) << "u is X in the stuck-at frame";

  TransitionFaultSimulator sim(nl, plan);
  const ResponseMatrix loc_frame = sim.capture_frame_response({p});
  EXPECT_EQ(loc_frame.total_x(), 0u)
      << "after the functional clock u == a == 1, so q captures XOR(1,1)=0";
  EXPECT_EQ(loc_frame.get(0, 0), Lv::k0);
}

TEST(TransitionFaults, RandomPatternsAchieveCoverageOnRealCircuit) {
  GeneratorConfig cfg;
  cfg.seed = 71;
  cfg.num_gates = 150;
  cfg.num_dffs = 16;
  const Netlist nl = generate_circuit(cfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  Rng rng(9);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 96; ++i) patterns.push_back(random_pattern(nl, plan, rng));

  TransitionFaultSimulator sim(nl, plan);
  const auto faults = enumerate_transition_faults(nl);
  const TransitionSimResult r = sim.run(patterns, faults);
  EXPECT_GT(r.coverage(), 0.10) << "some TDF coverage from random LOC pairs";
  EXPECT_LT(r.coverage(), 1.0) << "TDF coverage is harder than stuck-at";
  EXPECT_EQ(r.faults.size(), r.detected.size());
}

}  // namespace
}  // namespace xh
