#include "engine/partition_engine.hpp"

#include <limits>
#include <memory>
#include <string>

#include "misr/accounting.hpp"
#include "storage/store_factory.hpp"
#include "util/check.hpp"
#include "util/diagnostics.hpp"

namespace xh {
namespace {

/// Below this many candidate rows the fan-out bookkeeping costs more than
/// the sweep itself.
constexpr std::size_t kParallelGrain = 2048;

/// Cells provably sharing their in-partition X patterns, keyed exactly like
/// the seed partitioner: (restricted count, restricted-pattern-set hash).
/// std::map so group iteration order — and therefore tie-breaking — matches.
using GroupMap =
    std::map<std::pair<std::size_t, std::uint64_t>, std::vector<std::size_t>>;

struct ChunkAccum {
  GroupMap groups;
  std::vector<std::uint32_t> members;
  std::size_t masked_cells = 0;
};

}  // namespace

PartitionEngine::PartitionEngine(const XMatrixStore& store,
                                 const PartitionerConfig& cfg,
                                 ThreadPool* pool, Trace* trace,
                                 const CancelToken* cancel)
    : store_(store),
      cfg_(cfg),
      pool_(pool),
      trace_(trace),
      cancel_(cancel),
      rng_(cfg.seed) {
  cfg_.misr.validate();
  XH_REQUIRE(store_.num_patterns() > 0, "X matrix has no patterns");
  XH_ASSERT(store_.num_rows() <
                std::numeric_limits<std::uint32_t>::max(),
            "row index overflows the member representation");

  std::vector<std::uint32_t> all(store_.num_rows());
  for (std::size_t r = 0; r < all.size(); ++r) {
    all[r] = static_cast<std::uint32_t>(r);
  }
  parts_.push_back(analyze(BitVec(store_.num_patterns(), true), all));
  masked_total_ = parts_.front().masked_x();
  history_.push_back(snapshot_round(0, 1, masked_total_));
}

PartitionEngine::PartitionEngine(const XMatrixStore& store,
                                 const PartitionerConfig& cfg,
                                 const EngineSnapshot& snapshot,
                                 ThreadPool* pool, Trace* trace,
                                 const CancelToken* cancel)
    : store_(store),
      cfg_(cfg),
      pool_(pool),
      trace_(trace),
      cancel_(cancel),
      rng_(cfg.seed) {
  cfg_.misr.validate();
  XH_REQUIRE(store_.num_patterns() > 0, "X matrix has no patterns");
  XH_REQUIRE(!snapshot.partitions.empty(),
             "snapshot must hold at least the root partition");
  XH_REQUIRE(!snapshot.history.empty(),
             "snapshot history must hold at least the round-0 entry");

  // The stored partitions must be a disjoint cover of every pattern:
  // spans sum to num_patterns AND their union saturates, which together
  // rule out both overlap and gaps.
  BitVec cover(store_.num_patterns());
  std::size_t span_sum = 0;
  for (const BitVec& patterns : snapshot.partitions) {
    XH_REQUIRE(patterns.size() == store_.num_patterns(),
               "snapshot partition width != store pattern count");
    span_sum += patterns.count();
    cover |= patterns;
  }
  XH_REQUIRE(span_sum == store_.num_patterns() &&
                 cover.count() == store_.num_patterns(),
             "snapshot partitions must disjointly cover all patterns");

  rng_.set_state(snapshot.rng_state);

  // Re-derive each partition's analysis with a full-row sweep; analyze()
  // skips rows with no X in the partition and merges chunks in ascending
  // order, so the Part is identical to the one built incrementally.
  std::vector<std::uint32_t> all(store_.num_rows());
  for (std::size_t r = 0; r < all.size(); ++r) {
    all[r] = static_cast<std::uint32_t>(r);
  }
  parts_.reserve(snapshot.partitions.size());
  for (const BitVec& patterns : snapshot.partitions) {
    parts_.push_back(analyze(patterns, all));
    masked_total_ += parts_.back().masked_x();
  }
  history_ = snapshot.history;
  round_ = snapshot.round;
  done_ = snapshot.done;
  obs_count(trace_, "engine.snapshot_restores");
}

EngineSnapshot PartitionEngine::snapshot() const {
  EngineSnapshot snap;
  snap.round = round_;
  snap.done = done_;
  snap.rng_state = rng_.state();
  snap.partitions.reserve(parts_.size());
  for (const Part& p : parts_) snap.partitions.push_back(p.patterns);
  snap.history = history_;
  return snap;
}

PartitionEngine::Part PartitionEngine::analyze(
    BitVec patterns, const std::vector<std::uint32_t>& candidates) {
  Part part;
  part.span = patterns.count();
  part.patterns = std::move(patterns);
  XH_ASSERT(part.span > 0, "empty partition");

  // Sweep the candidate rows into (count, set-hash) groups. Chunk results
  // are merged in chunk order below, so the grouped cell lists stay
  // ascending and the outcome is independent of the pool size.
  const std::size_t chunks =
      pool_ != nullptr ? pool_->chunk_count(candidates.size(), kParallelGrain)
                       : (candidates.empty() ? 0 : 1);
  std::vector<ChunkAccum> accums(chunks);
  const auto sweep = [&](std::size_t chunk, std::size_t begin,
                         std::size_t end) {
    ChunkAccum& acc = accums[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t row = candidates[i];
      const std::size_t count = store_.count_in(row, part.patterns);
      if (count == 0) continue;
      acc.members.push_back(row);
      if (count == part.span) {
        ++acc.masked_cells;
      } else {
        acc.groups[{count, store_.hash_in(row, part.patterns)}].push_back(
            store_.cell_id(row));
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_chunks(candidates.size(), kParallelGrain, sweep);
    obs_count(trace_, "engine.pool_tasks", chunks);
  } else if (chunks == 1) {
    sweep(0, 0, candidates.size());
  }
  // Counted here, after the fan-out joins: Trace is not synchronized, so
  // instrumentation lives at the deterministic merge point, never inside
  // the pool lambdas.
  obs_count(trace_, "engine.cell_analyses");
  obs_count(trace_, "engine.rows_examined", candidates.size());

  GroupMap groups;
  std::size_t member_total = 0;
  for (const ChunkAccum& acc : accums) member_total += acc.members.size();
  part.members.reserve(member_total);
  for (ChunkAccum& acc : accums) {
    part.masked_cells += acc.masked_cells;
    part.members.insert(part.members.end(), acc.members.begin(),
                        acc.members.end());
    for (auto& [key, cells] : acc.groups) {
      auto& dst = groups[key];
      if (dst.empty()) {
        dst = std::move(cells);
      } else {
        dst.insert(dst.end(), cells.begin(), cells.end());
      }
    }
  }

  for (auto& [key, cells] : groups) {
    // Rank by maskable X volume; break ties toward more cells, then the
    // higher X count (same rule and same map order as the seed).
    const std::size_t count = key.first;
    const std::size_t score = cells.size() * count;
    const bool better =
        score > part.group_score() ||
        (score == part.group_score() &&
         (cells.size() > part.group_size ||
          (cells.size() == part.group_size && count > part.group_xcount)));
    if (better) {
      part.group_size = cells.size();
      part.group_xcount = count;
      part.group_cells = std::move(cells);
    }
  }
  return part;
}

PartitionRound PartitionEngine::snapshot_round(std::size_t round,
                                               std::size_t num_parts,
                                               std::uint64_t masked) const {
  PartitionRound r;
  r.round = round;
  r.num_partitions = num_parts;
  r.masked_x = masked;
  r.leaked_x = store_.total_x() - masked;
  r.total_bits =
      hybrid_bits(store_.geometry(), num_parts, cfg_.misr, r.leaked_x);
  return r;
}

PartitionEngine::StepOutcome PartitionEngine::step() {
  if (done_ || round_ >= cfg_.max_rounds) {
    done_ = true;
    return StepOutcome::kExhausted;
  }
  // Cooperative stop, polled only here — a round boundary — so every
  // observable state is a valid accepted-round prefix. done_ stays false:
  // the search is paused, not finished, and a snapshot can resume it.
  if (cancel_ != nullptr && cancel_->stop_requested()) {
    interrupted_ = true;
    obs_count(trace_, "engine.rounds_cancelled");
    return StepOutcome::kCancelled;
  }

  // Candidate = partition with the strongest same-count group.
  std::size_t best = parts_.size();
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i].splittable(cfg_.allow_singleton_groups)) continue;
    if (best == parts_.size() ||
        parts_[i].group_score() > parts_[best].group_score()) {
      best = i;
    }
  }
  if (best == parts_.size()) {
    done_ = true;
    return StepOutcome::kExhausted;  // nothing left to split
  }

  const Part& victim = parts_[best];
  const std::size_t pick =
      cfg_.cell_choice == SplitCellChoice::kRandom
          ? static_cast<std::size_t>(rng_.below(victim.group_cells.size()))
          : 0;  // group_cells is ascending
  const std::size_t split_cell = victim.group_cells[pick];

  // Locate the split cell's store row (group_cells holds cell ids; rows are
  // ascending by cell id, so a binary search keeps this O(log n)).
  std::size_t row = 0;
  {
    std::size_t lo = 0;
    std::size_t hi = store_.num_rows();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (store_.cell_id(mid) < split_cell) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    XH_ASSERT(lo < store_.num_rows() && store_.cell_id(lo) == split_cell,
              "split cell missing from the store");
    row = lo;
  }

  BitVec with_x(store_.num_patterns());
  store_.intersect_into(row, victim.patterns, &with_x);
  BitVec without_x = victim.patterns;
  without_x.and_not(with_x);
  XH_ASSERT(with_x.any() && without_x.any(),
            "split cell must divide the partition");

  obs_count(trace_, "engine.probes_attempted");
  obs_record(trace_, "engine.victim_rows", victim.members.size());

  Part a = analyze(std::move(with_x), victim.members);
  Part b = analyze(std::move(without_x), victim.members);

  const std::uint64_t probe_masked =
      masked_total_ - victim.masked_x() + a.masked_x() + b.masked_x();
  PartitionRound probe =
      snapshot_round(round_ + 1, parts_.size() + 1, probe_masked);
  probe.split_cell = split_cell;

  if (cfg_.stop_on_cost_increase &&
      probe.total_bits >= history_.back().total_bits) {
    probe.accepted = false;
    history_.push_back(probe);
    done_ = true;
    // Rejection touches no partition state: the probe was costed from
    // running totals, so this is the zero-copy path.
    obs_count(trace_, "engine.probes_rejected_zero_copy");
    return StepOutcome::kRejected;
  }

  // Accept: splice the victim out, append the two halves (same ordering as
  // the seed's erase + push_back, so future best-partition scans agree).
  parts_.erase(parts_.begin() + static_cast<std::ptrdiff_t>(best));
  parts_.push_back(std::move(a));
  parts_.push_back(std::move(b));
  masked_total_ = probe_masked;
  history_.push_back(probe);
  ++round_;
  obs_count(trace_, "engine.probes_accepted");
  return StepOutcome::kSplit;
}

PartitionResult PartitionEngine::run() {
  while (step() == StepOutcome::kSplit) {
  }
  return materialize();
}

PartitionResult PartitionEngine::materialize() const {
  PartitionResult result;
  result.history = history_;
  result.partitions.reserve(parts_.size());
  result.masks.reserve(parts_.size());
  std::uint64_t masked = 0;
  for (const Part& p : parts_) {
    BitVec mask(store_.num_cells());
    for (const std::uint32_t row : p.members) {
      // Masked ⇔ X under every pattern of the partition.
      if (store_.count_in(row, p.patterns) == p.span) {
        mask.set(store_.cell_id(row));
      }
    }
    XH_ASSERT(mask.count() == p.masked_cells, "mask/analysis disagreement");
    masked += p.masked_x();
    result.partitions.push_back(p.patterns);
    result.masks.push_back(std::move(mask));
  }
  result.masked_x = masked;
  result.leaked_x = store_.total_x() - masked;
  result.masking_bits =
      static_cast<double>(store_.geometry().num_cells()) *
      static_cast<double>(result.partitions.size());
  result.canceling_bits = x_canceling_only_bits(cfg_.misr, result.leaked_x);
  result.total_bits = result.masking_bits + result.canceling_bits;
  result.interrupted = interrupted_;
  return result;
}

PartitionResult run_partitioning(const XMatrix& xm, PipelineContext& ctx) {
  ctx.partitioner.misr.validate();
  XH_REQUIRE(xm.num_patterns() > 0, "X matrix has no patterns");
  const ScopedSpan span(ctx.trace(), "partition");
  const std::unique_ptr<XMatrixStore> store =
      make_store(xm, ctx.xm_backend(), ctx.store_options());
  PartitionEngine engine(*store, ctx);
  PartitionResult result = engine.run();
  export_store_telemetry(*store, ctx.trace());
  if (result.interrupted) {
    // Deadline/cancel degradation: report it, don't fail — the prefix is a
    // valid partition. The gauge is only emitted on the degraded path so
    // clean runs keep their telemetry byte-identical to before.
    obs_gauge(ctx.trace(), "hybrid.degraded", 1.0);
    diag_report(ctx.collector(), DiagSeverity::kWarning,
                DiagKind::kDeadlineExceeded, "partitioning",
                "stopped at round boundary " +
                    std::to_string(result.history.back().round) +
                    " by the cancellation token; best-so-far partition kept");
  }
  return result;
}

}  // namespace xh
