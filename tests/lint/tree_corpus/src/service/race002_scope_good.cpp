// XH-RACE-002 non-firing fixture: the mutating work happens inside the
// locked scope, and the post happens after it closes — the pattern the
// rule's fix message asks for. The deferred callee still re-acquires mu_,
// but nothing is held at the post site.
#include <mutex>

#include "service/ipa_seam.hpp"

namespace fixture {

class Relay {
 public:
  void kick(WorkPool& pool);
  void step();

 private:
  std::mutex mu_;
  int pending_ = 0;
};

void Relay::step() {
  std::lock_guard<std::mutex> g(mu_);
  pending_ = pending_ + 1;
}

void Relay::kick(WorkPool& pool) {
  {
    std::lock_guard<std::mutex> g(mu_);
    pending_ = pending_ + 1;
  }
  pool.post([this] { step(); });
}

}  // namespace fixture
