// Ablation A — the paper's central trade-off, swept explicitly: more
// partitions cost masking control bits (L·C each) but remove X's from the
// X-canceling MISR. This bench forces the partitioner to exactly k rounds for
// k = 0..N and prints the masking/canceling/total curve, marking where the
// paper's cost function would stop. The total must be U-shaped (or
// monotone-then-flat) with the cost-function stop at/near the minimum.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/partitioner.hpp"
#include "util/table.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

const MisrConfig kMisr{32, 7};

void print_sweep() {
  const WorkloadProfile profile = scaled_profile(ckt_b_profile(), 0.4);
  const XMatrix xm = generate_workload(profile);

  // Reference: where does the cost function stop on its own?
  PartitionerConfig auto_cfg;
  auto_cfg.misr = kMisr;
  const PartitionResult auto_r = partition_patterns(xm, auto_cfg);

  std::printf(
      "== Ablation A: partition-count sweep (%s, %zu cells, %zu X's) ==\n",
      profile.name.c_str(), xm.num_cells(), xm.total_x());
  TextTable t({"rounds", "#partitions", "masked X", "leaked X",
               "masking bits", "canceling bits", "total bits", "note"});

  double best = 0.0;
  std::size_t best_rounds = 0;
  const std::size_t sweep_limit = auto_r.history.size() + 12;
  for (std::size_t k = 0; k <= sweep_limit; ++k) {
    PartitionerConfig cfg;
    cfg.misr = kMisr;
    cfg.stop_on_cost_increase = false;
    cfg.max_rounds = k;
    const PartitionResult r = partition_patterns(xm, cfg);
    if (k > 0 && r.num_partitions() < k + 1) {
      break;  // no more splittable groups
    }
    std::string note;
    if (r.num_partitions() == auto_r.num_partitions()) {
      note = "<- cost-function stop";
    }
    if (k == 0 || r.total_bits < best) {
      best = r.total_bits;
      best_rounds = k;
    }
    t.add_row({std::to_string(k), std::to_string(r.num_partitions()),
               std::to_string(r.masked_x), std::to_string(r.leaked_x),
               TextTable::millions(r.masking_bits),
               TextTable::millions(r.canceling_bits),
               TextTable::millions(r.total_bits), note});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "sweep minimum at %zu rounds; cost-function run chose %zu partitions "
      "with %s bits\n\n",
      best_rounds, auto_r.num_partitions(),
      TextTable::millions(auto_r.total_bits).c_str());
}

void BM_PartitioningAtFixedRounds(benchmark::State& state) {
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.25));
  PartitionerConfig cfg;
  cfg.misr = kMisr;
  cfg.stop_on_cost_increase = false;
  cfg.max_rounds = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_patterns(xm, cfg));
  }
}

BENCHMARK(BM_PartitioningAtFixedRounds)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
