#include "gf2/lfsr.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace xh {
namespace {

// Primitive polynomial tap table (degrees 2..64), from the classic LFSR tap
// tables (Xilinx XAPP052). Entry d lists the intermediate exponents of a
// primitive polynomial x^d + sum(x^t) + 1. Degree and constant terms are
// implicit. Index 0/1 unused.
constexpr std::array<std::array<std::uint8_t, 4>, 65> kPrimitiveTaps = {{
    /* 0*/ {0, 0, 0, 0},
    /* 1*/ {0, 0, 0, 0},
    /* 2*/ {1, 0, 0, 0},
    /* 3*/ {2, 0, 0, 0},
    /* 4*/ {3, 0, 0, 0},
    /* 5*/ {3, 0, 0, 0},
    /* 6*/ {5, 0, 0, 0},
    /* 7*/ {6, 0, 0, 0},
    /* 8*/ {6, 5, 4, 0},
    /* 9*/ {5, 0, 0, 0},
    /*10*/ {7, 0, 0, 0},
    /*11*/ {9, 0, 0, 0},
    /*12*/ {6, 4, 1, 0},
    /*13*/ {4, 3, 1, 0},
    /*14*/ {5, 3, 1, 0},
    /*15*/ {14, 0, 0, 0},
    /*16*/ {15, 13, 4, 0},
    /*17*/ {14, 0, 0, 0},
    /*18*/ {11, 0, 0, 0},
    /*19*/ {6, 2, 1, 0},
    /*20*/ {17, 0, 0, 0},
    /*21*/ {19, 0, 0, 0},
    /*22*/ {21, 0, 0, 0},
    /*23*/ {18, 0, 0, 0},
    /*24*/ {23, 22, 17, 0},
    /*25*/ {22, 0, 0, 0},
    /*26*/ {6, 2, 1, 0},
    /*27*/ {5, 2, 1, 0},
    /*28*/ {25, 0, 0, 0},
    /*29*/ {27, 0, 0, 0},
    /*30*/ {6, 4, 1, 0},
    /*31*/ {28, 0, 0, 0},
    /*32*/ {22, 2, 1, 0},
    /*33*/ {20, 0, 0, 0},
    /*34*/ {27, 2, 1, 0},
    /*35*/ {33, 0, 0, 0},
    /*36*/ {25, 0, 0, 0},
    /*37*/ {5, 4, 3, 2},
    /*38*/ {6, 5, 1, 0},
    /*39*/ {35, 0, 0, 0},
    /*40*/ {38, 21, 19, 0},
    /*41*/ {38, 0, 0, 0},
    /*42*/ {41, 20, 19, 0},
    /*43*/ {42, 38, 37, 0},
    /*44*/ {43, 18, 17, 0},
    /*45*/ {44, 42, 41, 0},
    /*46*/ {45, 26, 25, 0},
    /*47*/ {42, 0, 0, 0},
    /*48*/ {47, 21, 20, 0},
    /*49*/ {40, 0, 0, 0},
    /*50*/ {49, 24, 23, 0},
    /*51*/ {50, 36, 35, 0},
    /*52*/ {49, 0, 0, 0},
    /*53*/ {52, 38, 37, 0},
    /*54*/ {53, 18, 17, 0},
    /*55*/ {31, 0, 0, 0},
    /*56*/ {55, 35, 34, 0},
    /*57*/ {50, 0, 0, 0},
    /*58*/ {39, 0, 0, 0},
    /*59*/ {58, 38, 37, 0},
    /*60*/ {59, 0, 0, 0},
    /*61*/ {60, 46, 45, 0},
    /*62*/ {61, 6, 5, 0},
    /*63*/ {62, 0, 0, 0},
    /*64*/ {63, 61, 60, 0},
}};

}  // namespace

FeedbackPolynomial::FeedbackPolynomial(std::size_t degree,
                                       std::vector<std::size_t> taps)
    : degree_(degree), taps_(std::move(taps)) {
  XH_REQUIRE(degree_ >= 2, "feedback polynomial degree must be >= 2");
  for (const auto t : taps_) {
    XH_REQUIRE(t > 0 && t < degree_, "tap exponents must lie in (0, degree)");
  }
  std::sort(taps_.begin(), taps_.end());
  XH_REQUIRE(std::adjacent_find(taps_.begin(), taps_.end()) == taps_.end(),
             "duplicate tap exponent");
}

FeedbackPolynomial FeedbackPolynomial::primitive(std::size_t degree) {
  XH_REQUIRE(degree >= 2 && degree <= 64,
             "primitive polynomial table covers degrees 2..64");
  std::vector<std::size_t> taps;
  for (const auto t : kPrimitiveTaps[degree]) {
    if (t != 0) taps.push_back(t);
  }
  // Degree 37's entry has a fifth tap (x^37+x^5+x^4+x^3+x^2+x+1).
  if (degree == 37) taps.push_back(1);
  return FeedbackPolynomial(degree, std::move(taps));
}

Lfsr::Lfsr(FeedbackPolynomial poly)
    : poly_(std::move(poly)), state_(poly_.degree()) {}

void Lfsr::set_state(const BitVec& state) {
  XH_REQUIRE(state.size() == size(), "LFSR state width mismatch");
  state_ = state;
}

void Lfsr::reset() { state_.fill(false); }

BitVec Lfsr::next_state(const BitVec& in) const {
  // Internal-XOR (Galois) form: stage 0 receives the feedback bit, stage i
  // receives stage i-1, and tap stages additionally XOR the feedback in.
  const std::size_t m = size();
  const bool feedback = in.get(m - 1);
  BitVec next(m);
  next.set(0, feedback);
  for (std::size_t i = 1; i < m; ++i) next.set(i, in.get(i - 1));
  if (feedback) {
    for (const auto t : poly_.taps()) next.flip(t);
  }
  return next;
}

void Lfsr::step() { state_ = next_state(state_); }

void Lfsr::step(const BitVec& input) {
  XH_REQUIRE(input.size() == size(), "MISR input width mismatch");
  state_ = next_state(state_);
  state_ ^= input;
}

std::uint64_t Lfsr::measure_period(std::uint64_t limit) {
  BitVec start(size(), true);
  set_state(start);
  for (std::uint64_t n = 1; n <= limit; ++n) {
    step();
    if (state_ == start) return n;
  }
  return 0;
}

}  // namespace xh
