#include "core/middle.hpp"

namespace fixture {

int total(const MiddleThing& m) {
  UtilThing u;
  return m.depth + u.width;
}

}  // namespace fixture
