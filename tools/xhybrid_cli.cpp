// xhybrid command-line front end.
//
//   xhybrid_cli example
//       Run the paper's Section 4 worked example and print the full trace.
//
//   xhybrid_cli analyze --chains N --length L --patterns P --density D
//                       [--clustered F] [--misr-size M] [--misr-q Q]
//                       [--seed S] [--save-xm file.xm] [--threads T]
//       Generate a synthetic workload and print the hybrid analysis report;
//       optionally save the X matrix for later runs. --threads T fans the
//       partition engine's cell analysis out on T lanes (1 = serial,
//       0 = all hardware threads); results are identical for any T.
//
//   Storage backend (analyze/circuit/serve): --xm-backend B picks the
//   X-matrix store the partition engine reads from — csr (in-memory,
//   the default resolution), tebm (tree-encoded bitmap, compressed),
//   mmap (memory-mapped spill file for out-of-core matrices), or auto
//   (csr unless the estimated CSR footprint exceeds the spill
//   threshold). Every backend is bit-identical; only footprint and
//   access cost differ (DESIGN.md §12).
//
//   xhybrid_cli analyze --load-xm file.xm [--misr-size M] [--misr-q Q]
//       Analyze a previously saved (or externally produced) X matrix.
//
//   xhybrid_cli circuit <netlist.bench> [--chains N] [--patterns P]
//                       [--misr-size M] [--misr-q Q] [--seed S]
//       Read a .bench netlist (with NDFF/TRISTATE/BUS X-source extensions),
//       run ATPG, capture responses, and print the hybrid analysis +
//       verified coverage result.
//
//   xhybrid_cli inject --mode MODE [--count N] [--seed S] [--lenient]
//                      [--chains N] [--length L] [--patterns P]
//                      [--misr-size M] [--misr-q Q]
//       Seeded fault-injection campaign against the pipeline (DESIGN.md §7).
//       Modes: undeclared-x, resolved-x, burst, tamper, truncate-xm,
//       garble-xm, duplicate-xm.
//
//   xhybrid_cli serve --jobs-dir DIR [--workers W] [--max-queue Q]
//                     [--timeout-ms T] [--retries R]
//                     [--checkpoint-dir DIR] [--checkpoint-every K]
//                     [--misr-size M] [--misr-q Q] [--seed S]
//       One-shot service run (DESIGN.md §11): ingest every *.xm in DIR as
//       a partitioning job, run them on W workers behind a Q-deep
//       admission queue, drain, and print a per-job report. --timeout-ms
//       bounds each job (deadline-exceeded jobs return their best-so-far
//       partition as "degraded"); --checkpoint-dir enables crash-safe
//       round-boundary checkpoints that a rerun resumes bit-identically.
//
// Flags follow one kebab-case scheme (all commands): --strict / --lenient
// pick the diagnostics mode, --threads T picks the pool width, and
// --telemetry file.json dumps the run's xh::Trace as an xh-telemetry/1
// document. The pre-consolidation spellings --misr, --q, --save and --load
// survive as hidden deprecated aliases of --misr-size, --misr-q, --save-xm
// and --load-xm.
//
// Robustness flags (all commands): --lenient attaches a structured
// diagnostics collector so data mismatches degrade gracefully and are
// summarized on stderr; --strict (the default) fails fast on the first
// mismatch. --timeout-ms T (analyze/circuit/serve) arms a cooperative
// deadline token the partition engine polls at round boundaries.
// Exit codes: 0 clean, 1 diagnostics errors / runtime failure, 2 usage or
// argument errors, 3 deadline exceeded (a valid best-so-far partition was
// still produced and printed — distinct from hard failure by design).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "engine/partition_types.hpp"
#include "engine/pipeline.hpp"
#include "engine/pipeline_context.hpp"
#include "fault/fault_sim.hpp"
#include "inject/corruptor.hpp"
#include "kernels/kernels.hpp"
#include "misr/x_cancel.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"
#include "response/io.hpp"
#include "response/x_matrix.hpp"
#include "scan/scan_plan.hpp"
#include "scan/test_application.hpp"
#include "service/job_runner.hpp"
#include "sim/logic.hpp"
#include "storage/store_factory.hpp"
#include "util/cancel_token.hpp"
#include "util/clock.hpp"
#include "util/diagnostics.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s example [--telemetry file.json]\n"
      "  %s analyze --chains N --length L --patterns P --density D\n"
      "             [--clustered F] [--misr-size M] [--misr-q Q] [--seed S]\n"
      "             [--save-xm file.xm | --load-xm file.xm]\n"
      "             [--strict | --lenient] [--threads T]\n"
      "             [--xm-backend B] [--isa I] [--telemetry file.json]\n"
      "  %s circuit <netlist.bench> [--chains N] [--patterns P]\n"
      "             [--misr-size M] [--misr-q Q] [--seed S]\n"
      "             [--strict | --lenient] [--threads T]\n"
      "             [--xm-backend B] [--isa I] [--telemetry file.json]\n"
      "  %s inject --mode MODE [--count N] [--seed S]\n"
      "            [--strict | --lenient] [--telemetry file.json]\n"
      "            (modes: undeclared-x resolved-x burst tamper\n"
      "             truncate-xm garble-xm duplicate-xm)\n"
      "  %s serve --jobs-dir DIR [--workers W] [--max-queue Q]\n"
      "           [--timeout-ms T] [--retries R] [--checkpoint-dir DIR]\n"
      "           [--checkpoint-every K] [--misr-size M] [--misr-q Q]\n"
      "           [--seed S] [--xm-backend B] [--isa I]\n"
      "           [--telemetry file.json]\n"
      "--timeout-ms T (analyze/circuit/serve): stop partitioning at the\n"
      "  first round boundary past T ms and keep the best-so-far result.\n"
      "--xm-backend B (analyze/circuit/serve): X-matrix storage backend,\n"
      "  one of auto|csr|tebm|mmap (default auto; all bit-identical).\n"
      "--isa I (analyze/circuit/serve): kernel instruction set, one of\n"
      "  auto|scalar|avx2|avx512 (default auto = best this CPU supports;\n"
      "  all bit-identical). The XH_ISA env variable overrides the flag.\n"
      "exit codes: 0 clean, 1 failure/diagnostic errors, 2 usage,\n"
      "  3 deadline exceeded (degraded best-so-far result produced)\n"
      "deprecated aliases (to be removed): --misr = --misr-size,\n"
      "  --q = --misr-q, --save = --save-xm, --load = --load-xm\n",
      argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

/// Strict numeric argument parsing: a typo exits with a usage error (2)
/// instead of the silent-zero coercion of the atoll/atof family.
std::size_t arg_size(const char* flag, const char* text) {
  try {
    return parse_size(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s: %s\n", flag, e.what());
    std::exit(2);
  }
}

std::uint64_t arg_u64(const char* flag, const char* text) {
  try {
    return parse_u64(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s: %s\n", flag, e.what());
    std::exit(2);
  }
}

double arg_f64(const char* flag, const char* text) {
  try {
    return parse_f64(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s: %s\n", flag, e.what());
    std::exit(2);
  }
}

struct Options {
  std::size_t chains = 8;
  std::size_t length = 32;
  std::size_t patterns = 200;
  double density = 0.02;
  double clustered = 0.5;
  std::size_t misr = 32;
  std::size_t q = 7;
  std::uint64_t seed = 1;
  std::size_t count = 4;
  std::size_t threads = 1;  // pipeline lanes; 0 = hardware concurrency
  XmBackend xm_backend = XmBackend::kAuto;  // X-matrix storage backend
  kernels::Isa isa = kernels::Isa::kAuto;   // kernel dispatch tier
  bool isa_given = false;                   // --isa seen on the command line
  bool lenient = false;
  std::uint64_t timeout_ms = 0;  // 0 = no deadline
  std::size_t workers = 2;       // serve: concurrent job executors
  std::size_t max_queue = 64;    // serve: admission cap
  std::size_t retries = 3;       // serve: attempts per job
  std::size_t checkpoint_every = 8;  // serve: rounds between checkpoints
  std::string jobs_dir;
  std::string checkpoint_dir;
  std::string mode;
  std::string positional;
  std::string save_path;
  std::string load_path;
  std::string telemetry_path;
};

Options parse(int argc, char** argv, int from) {
  Options opt;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--chains") {
      opt.chains = arg_size("--chains", next());
    } else if (arg == "--length") {
      opt.length = arg_size("--length", next());
    } else if (arg == "--patterns") {
      opt.patterns = arg_size("--patterns", next());
    } else if (arg == "--density") {
      opt.density = arg_f64("--density", next());
    } else if (arg == "--clustered") {
      opt.clustered = arg_f64("--clustered", next());
    } else if (arg == "--misr-size" || arg == "--misr") {
      // --misr is a hidden deprecated alias of --misr-size.
      opt.misr = arg_size("--misr-size", next());
    } else if (arg == "--misr-q" || arg == "--q") {
      // --q is a hidden deprecated alias of --misr-q.
      opt.q = arg_size("--misr-q", next());
    } else if (arg == "--seed") {
      opt.seed = arg_u64("--seed", next());
    } else if (arg == "--count") {
      opt.count = arg_size("--count", next());
    } else if (arg == "--threads") {
      opt.threads = arg_size("--threads", next());
    } else if (arg == "--xm-backend") {
      const char* text = next();
      if (!parse_xm_backend(text, &opt.xm_backend)) {
        std::fprintf(stderr,
                     "error: --xm-backend: unknown backend '%s' "
                     "(expected auto|csr|tebm|mmap)\n",
                     text);
        std::exit(2);
      }
    } else if (arg == "--isa") {
      const char* text = next();
      if (!kernels::parse_isa(text, &opt.isa)) {
        std::fprintf(stderr,
                     "error: --isa: unknown instruction set '%s' "
                     "(expected auto|scalar|avx2|avx512)\n",
                     text);
        std::exit(2);
      }
      opt.isa_given = true;
    } else if (arg == "--timeout-ms") {
      opt.timeout_ms = arg_u64("--timeout-ms", next());
    } else if (arg == "--workers") {
      opt.workers = arg_size("--workers", next());
    } else if (arg == "--max-queue") {
      opt.max_queue = arg_size("--max-queue", next());
    } else if (arg == "--retries") {
      opt.retries = arg_size("--retries", next());
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = arg_size("--checkpoint-every", next());
    } else if (arg == "--jobs-dir") {
      opt.jobs_dir = next();
    } else if (arg == "--checkpoint-dir") {
      opt.checkpoint_dir = next();
    } else if (arg == "--mode") {
      opt.mode = next();
    } else if (arg == "--lenient") {
      opt.lenient = true;
    } else if (arg == "--strict") {
      opt.lenient = false;
    } else if (arg == "--save-xm" || arg == "--save") {
      // --save is a hidden deprecated alias of --save-xm.
      opt.save_path = next();
    } else if (arg == "--load-xm" || arg == "--load") {
      // --load is a hidden deprecated alias of --load-xm.
      opt.load_path = next();
    } else if (arg == "--telemetry") {
      opt.telemetry_path = next();
    } else if (!arg.empty() && arg[0] != '-' && opt.positional.empty()) {
      opt.positional = arg;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

/// Installs the kernel dispatch table the run will use. The kernels library
/// already honored XH_ISA at startup but stays silent about problems (it has
/// no diagnostics channel); the CLI re-validates the variable here so typos
/// and unsupported tiers warn instead of silently running on auto. A valid
/// XH_ISA wins over --isa, matching the XH_XM_BACKEND precedent where the
/// environment overrides per-run configuration.
void apply_isa(const Options& opt) {
  const char* env = std::getenv("XH_ISA");
  if (env != nullptr && *env != '\0') {
    kernels::Isa from_env = kernels::Isa::kAuto;
    if (!kernels::parse_isa(env, &from_env)) {
      std::fprintf(stderr,
                   "warning: ignoring XH_ISA='%s' (expected "
                   "auto|scalar|avx2|avx512)\n",
                   env);
    } else if (!kernels::isa_supported(from_env)) {
      std::fprintf(stderr,
                   "warning: ignoring XH_ISA=%s (not supported by this "
                   "CPU)\n",
                   env);
    } else {
      if (opt.isa_given && kernels::table_for(opt.isa).isa !=
                               kernels::table_for(from_env).isa) {
        std::fprintf(stderr, "warning: XH_ISA=%s overrides --isa %s\n", env,
                     kernels::isa_name(opt.isa));
      }
      kernels::select(from_env);
      return;
    }
  }
  if (opt.isa_given) {
    if (!kernels::isa_supported(opt.isa)) {
      std::fprintf(stderr,
                   "error: --isa: %s is not supported by this CPU\n",
                   kernels::isa_name(opt.isa));
      std::exit(2);
    }
    kernels::select(opt.isa);
  }
}

void print_report(const HybridReport& rep) {
  TextTable t({"metric", "value"});
  t.add_row({"cells x patterns",
             std::to_string(rep.num_chains * rep.chain_length) + " x " +
                 std::to_string(rep.num_patterns)});
  t.add_row({"total X (density)",
             std::to_string(rep.total_x) + " (" +
                 TextTable::num(100.0 * rep.x_density, 3) + "%)"});
  t.add_row({"partitions",
             std::to_string(rep.partitioning.num_partitions())});
  t.add_row({"masked / leaked X",
             std::to_string(rep.partitioning.masked_x) + " / " +
                 std::to_string(rep.partitioning.leaked_x)});
  t.add_row({"X-masking only bits [5]",
             std::to_string(rep.masking_only_bits)});
  t.add_row({"X-canceling only bits [12]",
             TextTable::num(rep.canceling_only_bits, 1)});
  t.add_row({"proposed hybrid bits",
             TextTable::num(rep.proposed_bits, 1)});
  t.add_row({"improvement over [5]",
             TextTable::num(rep.improvement_over_masking, 2) + "x"});
  t.add_row({"improvement over [12]",
             TextTable::num(rep.improvement_over_canceling, 2) + "x"});
  t.add_row({"test time [12] -> proposed",
             TextTable::num(rep.test_time_canceling_only, 3) + " -> " +
                 TextTable::num(rep.test_time_proposed, 3) + " (" +
                 TextTable::num(rep.test_time_improvement, 2) + "x)"});
  std::printf("%s", t.render().c_str());
}

/// Dumps collected diagnostics to stderr and converts them to the exit
/// code contract: structured errors → 1, warnings/infos alone → 0.
int finish_with_diagnostics(const Diagnostics& diags) {
  if (!diags.empty()) {
    std::fprintf(stderr, "%s", diags.render().c_str());
    std::fprintf(stderr,
                 "diagnostics: %zu error(s), %zu warning(s), %zu info\n",
                 diags.count(DiagSeverity::kError),
                 diags.count(DiagSeverity::kWarning),
                 diags.count(DiagSeverity::kInfo));
  }
  return diags.has_errors() ? 1 : 0;
}

/// Pool for --threads T: 1 means serial (no pool at all); anything else is
/// handed to ThreadPool, where 0 selects the hardware concurrency.
std::unique_ptr<ThreadPool> make_pool(std::size_t threads) {
  if (threads == 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

/// --timeout-ms plumbing: an armed deadline token, or nullptr when unset.
std::unique_ptr<CancelToken> make_deadline(std::uint64_t timeout_ms) {
  if (timeout_ms == 0) return nullptr;
  return std::make_unique<CancelToken>(
      wall_clock(), wall_clock().now_ns() + timeout_ms * 1'000'000);
}

/// Exit-code contract for a possibly deadline-clipped run: a clean rc
/// becomes 3 when the engine stopped at the deadline, so callers can tell
/// "best-so-far result under --timeout-ms" apart from hard failure (1).
int finish_with_deadline(int rc, const PartitionResult& part) {
  if (!part.interrupted) return rc;
  std::fprintf(stderr,
               "deadline exceeded: kept best-so-far partition "
               "(%zu partitions) — exit 3\n",
               part.num_partitions());
  return rc == 0 ? 3 : rc;
}

int cmd_example(Trace* trace) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const XMatrix xm = paper_example_x_matrix();
  const PartitionResult r = partition_patterns(xm, cfg);
  std::printf("Section 4 worked example (m=10, q=2):\n");
  for (const auto& h : r.history) {
    std::printf("  round %zu: %zu partitions, masked %llu, bits %.1f%s\n",
                h.round, h.num_partitions,
                static_cast<unsigned long long>(h.masked_x), h.total_bits,
                h.accepted ? "" : "  (rejected)");
  }
  PipelineContext ctx(cfg);
  ctx.set_trace(trace);
  print_report(run_hybrid_analysis(xm, ctx));
  return 0;
}

int cmd_analyze(const Options& opt, Trace* trace) {
  const std::unique_ptr<ThreadPool> pool = make_pool(opt.threads);
  const std::unique_ptr<CancelToken> deadline = make_deadline(opt.timeout_ms);
  PartitionerConfig pcfg;
  pcfg.misr = {opt.misr, opt.q};
  PipelineContext ctx(pcfg, pool.get());
  ctx.set_trace(trace);
  ctx.set_cancel(deadline.get());
  ctx.set_xm_backend(opt.xm_backend);
  if (opt.lenient) ctx.be_lenient();
  if (!opt.load_path.empty()) {
    std::ifstream in(opt.load_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opt.load_path.c_str());
      return 1;
    }
    try {
      const HybridReport rep = run_hybrid_analysis(read_x_matrix(in, ctx), ctx);
      print_report(rep);
      return finish_with_deadline(finish_with_diagnostics(ctx.diagnostics()),
                                  rep.partitioning);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      finish_with_diagnostics(ctx.diagnostics());
      return 1;
    }
  }
  WorkloadProfile profile;
  profile.name = "cli";
  profile.geometry = {opt.chains, opt.length};
  profile.num_patterns = opt.patterns;
  profile.x_density = opt.density;
  profile.clustered_fraction = opt.clustered;
  profile.cluster_cells_mean =
      std::max<std::size_t>(2, opt.chains * opt.length / 40);
  profile.cluster_patterns_mean = std::max<std::size_t>(2, opt.patterns / 5);
  profile.seed = opt.seed;

  const XMatrix xm = generate_workload(profile);
  if (!opt.save_path.empty()) {
    std::ofstream out(opt.save_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.save_path.c_str());
      return 1;
    }
    write_x_matrix(xm, out);
    std::printf("saved X matrix to %s\n", opt.save_path.c_str());
  }
  const HybridReport rep = run_hybrid_analysis(xm, ctx);
  print_report(rep);
  return finish_with_deadline(finish_with_diagnostics(ctx.diagnostics()),
                              rep.partitioning);
}

int cmd_circuit(const Options& opt, const char* argv0, Trace* trace) {
  if (opt.positional.empty()) usage(argv0);
  std::ifstream in(opt.positional);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.positional.c_str());
    return 1;
  }
  Diagnostics diags;
  const Netlist nl =
      read_bench(in, opt.positional, opt.lenient ? &diags : nullptr);
  const ScanPlan plan = ScanPlan::build(nl, opt.chains);
  std::printf("netlist %s: %zu gates, %zu scanned / %zu unscanned flops\n",
              nl.name().c_str(), nl.gate_count(), nl.scan_dffs().size(),
              nl.nonscan_dffs().size());

  AtpgConfig acfg;
  acfg.random_patterns = std::min<std::size_t>(opt.patterns, 256);
  acfg.seed = opt.seed;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  std::printf("ATPG: %zu patterns, coverage %.2f%%\n", atpg.patterns.size(),
              100.0 * atpg.coverage());

  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(atpg.patterns);
  const std::unique_ptr<ThreadPool> pool = make_pool(opt.threads);
  const std::unique_ptr<CancelToken> deadline = make_deadline(opt.timeout_ms);
  PartitionerConfig pcfg;
  pcfg.misr = {opt.misr, opt.q};
  PipelineContext ctx(pcfg, pool.get());
  ctx.set_trace(trace);
  ctx.set_cancel(deadline.get());
  ctx.set_xm_backend(opt.xm_backend);
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  print_report(sim.report);

  FaultSimulator fsim(nl, plan);
  const FaultSimResult ideal =
      fsim.run(atpg.patterns, atpg.faults, observe_all());
  const FaultSimResult masked = fsim.run(
      atpg.patterns, atpg.faults,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  std::printf("coverage under hybrid masks: %.2f%% (ideal %.2f%%) -> %s\n",
              100.0 * masked.coverage(), 100.0 * ideal.coverage(),
              masked.num_detected == ideal.num_detected ? "no loss"
                                                        : "LOSS");
  const int rc = masked.num_detected == ideal.num_detected ? 0 : 1;
  return finish_with_deadline(rc, sim.report.partitioning);
}

/// Concrete response realizing @p xm: random values, X where declared.
ResponseMatrix materialize(const XMatrix& xm, std::uint64_t seed) {
  ResponseMatrix r(xm.geometry(), xm.num_patterns());
  Rng rng(seed);
  for (std::size_t p = 0; p < r.num_patterns(); ++p) {
    for (std::size_t c = 0; c < r.num_cells(); ++c) {
      r.set(p, c, rng.chance(0.5) ? Lv::k1 : Lv::k0);
    }
  }
  for (const std::size_t cell : xm.x_cells()) {
    for (const std::size_t p : xm.patterns_of(cell).set_bits()) {
      r.set(p, cell, Lv::kX);
    }
  }
  return r;
}

void print_sim_summary(const HybridSimulation& sim) {
  std::printf("validation: %llu confirmed X, %llu undeclared, %llu missing\n",
              static_cast<unsigned long long>(sim.validation.confirmed_x),
              static_cast<unsigned long long>(sim.validation.undeclared_x),
              static_cast<unsigned long long>(sim.validation.missing_x));
  std::printf(
      "misr: %zu stops, %zu starved, %zu contaminated dropped, deficit %zu\n",
      sim.cancel.stops, sim.cancel.starved_stops,
      sim.cancel.contaminated_dropped, sim.cancel.signature_deficit);
  std::printf("verdict: %s\n",
              sim.degraded ? "degraded (see diagnostics)" : "clean");
}

int cmd_inject(const Options& opt, const char* argv0, Trace* trace) {
  Corruptor corruptor(opt.seed);
  Diagnostics diags;
  Diagnostics* collector = opt.lenient ? &diags : nullptr;
  const MisrConfig misr{opt.misr, opt.q};

  WorkloadProfile profile;
  profile.name = "inject";
  profile.geometry = {opt.chains, opt.length};
  profile.num_patterns = opt.patterns;
  profile.x_density = opt.density;
  profile.clustered_fraction = opt.clustered;
  profile.cluster_cells_mean =
      std::max<std::size_t>(2, opt.chains * opt.length / 40);
  profile.cluster_patterns_mean = std::max<std::size_t>(2, opt.patterns / 5);
  profile.seed = opt.seed;

  if (opt.mode == "undeclared-x" || opt.mode == "resolved-x") {
    const XMatrix declared = generate_workload(profile);
    ResponseMatrix response = materialize(declared, opt.seed + 1);
    const auto injected =
        opt.mode == "undeclared-x"
            ? corruptor.add_undeclared_x(response, opt.count)
            : corruptor.resolve_declared_x(response, opt.count);
    std::printf("injected %zu %s cells (seed %llu)\n", injected.size(),
                opt.mode.c_str(), static_cast<unsigned long long>(opt.seed));
    PipelineContext ctx;
    ctx.partitioner.misr = misr;
    ctx.adopt_collector(collector);
    ctx.set_trace(trace);
    const HybridSimulation sim =
        run_hybrid_simulation(response, declared, ctx);
    print_sim_summary(sim);
    if (!opt.lenient) return sim.degraded ? 1 : 0;
    return finish_with_diagnostics(diags);
  }

  if (opt.mode == "burst") {
    // Starvation is a MISR-level phenomenon: use one chain per MISR stage
    // so a whole slice can be corrupted in a single shift cycle.
    ResponseMatrix response({misr.size, opt.length}, opt.patterns);
    const std::size_t budget = misr.size - misr.q;
    const auto burst = corruptor.x_burst(
        response, misr, std::min(budget + 2, misr.size));
    corruptor.add_undeclared_x(response, opt.count);  // repayment fodder
    std::printf("injected burst of %zu X in one shift slice\n", burst.size());
    const XMatrix declared = XMatrix::from_response(response);
    PipelineContext ctx;
    ctx.partitioner.misr = misr;
    ctx.adopt_collector(collector);
    ctx.set_trace(trace);
    const HybridSimulation sim =
        run_hybrid_simulation(response, declared, ctx);
    print_sim_summary(sim);
    if (!opt.lenient) return sim.degraded ? 1 : 0;
    return finish_with_diagnostics(diags);
  }

  if (opt.mode == "tamper") {
    XCancelSession session(misr, collector, trace);
    session.install_combination_tamper(corruptor.combination_tamper());
    Rng rng(opt.seed + 2);
    for (std::size_t cycle = 0; cycle < 64 * misr.size; ++cycle) {
      std::vector<Lv> slice(misr.size, Lv::k0);
      if (rng.chance(0.1)) {
        slice[static_cast<std::size_t>(rng.below(misr.size))] = Lv::kX;
      }
      session.shift(slice);
    }
    const XCancelResult& tampered = session.finish();
    std::printf("tampered session: %zu contaminated dropped, %zu emitted\n",
                tampered.contaminated_dropped, tampered.signature.size());
    if (!opt.lenient) return tampered.healthy() ? 0 : 1;
    return finish_with_diagnostics(diags);
  }

  if (opt.mode == "truncate-xm" || opt.mode == "garble-xm" ||
      opt.mode == "duplicate-xm") {
    const std::string text = x_matrix_to_string(generate_workload(profile));
    std::string damaged;
    if (opt.mode == "truncate-xm") {
      damaged = corruptor.truncate_text(text, 0.7);
    } else if (opt.mode == "garble-xm") {
      damaged = corruptor.garble_text(text, opt.count);
    } else {
      damaged = corruptor.duplicate_line(text);
    }
    try {
      (void)x_matrix_from_string(damaged, &diags);
      std::printf("damaged file unexpectedly accepted\n");
      return 1;
    } catch (const std::invalid_argument& e) {
      std::printf("rejected damaged input: %s\n", e.what());
      finish_with_diagnostics(diags);
      return diags.has_errors() ? 1 : 0;
    }
  }

  std::fprintf(stderr, "error: unknown inject mode '%s'\n",
               opt.mode.c_str());
  usage(argv0);
}

int cmd_serve(const Options& opt, const char* argv0, Trace* trace) {
  if (opt.jobs_dir.empty()) {
    std::fprintf(stderr, "error: serve requires --jobs-dir\n");
    usage(argv0);
  }
  ServiceConfig scfg;
  scfg.workers = std::max<std::size_t>(1, opt.workers);
  scfg.max_queue_depth = opt.max_queue;
  scfg.partitioner.misr = {opt.misr, opt.q};
  scfg.partitioner.seed = opt.seed;
  scfg.xm_backend = opt.xm_backend;
  scfg.default_deadline_ns = opt.timeout_ms * 1'000'000;
  scfg.checkpoint_dir = opt.checkpoint_dir;
  scfg.checkpoint_every_rounds =
      opt.checkpoint_dir.empty() ? 0 : opt.checkpoint_every;
  scfg.retry.max_attempts = std::max<std::size_t>(1, opt.retries);
  scfg.watchdog_period_ns = 50'000'000;
  PartitionService service(scfg);
  const std::vector<SubmitOutcome> outcomes =
      service.ingest_directory(opt.jobs_dir);
  service.shutdown();

  TextTable t({"job", "state", "attempts", "rounds", "partitions",
               "total bits"});
  bool any_failed = false;
  bool any_degraded = false;
  for (const SubmitOutcome& oc : outcomes) {
    if (!oc.accepted) continue;
    const std::optional<JobResult> res = service.poll(oc.id);
    if (!res) continue;
    any_failed = any_failed || res->state == JobState::kFailed;
    any_degraded = any_degraded || res->state == JobState::kDegraded;
    const bool has_partition = res->state == JobState::kCompleted ||
                               res->state == JobState::kDegraded;
    t.add_row(
        {res->name, job_state_name(res->state),
         std::to_string(res->attempts),
         has_partition ? std::to_string(res->rounds) : "-",
         has_partition ? std::to_string(res->partition.num_partitions())
                       : "-",
         has_partition && !res->partition.history.empty()
             ? TextTable::num(res->partition.history.back().total_bits, 1)
             : "-"});
  }
  std::printf("%s", t.render().c_str());

  const ServiceStats s = service.stats();
  std::printf(
      "jobs: %llu accepted, %llu rejected (overload), %llu completed, "
      "%llu degraded, %llu failed\n",
      static_cast<unsigned long long>(s.jobs_accepted),
      static_cast<unsigned long long>(s.jobs_rejected_overload),
      static_cast<unsigned long long>(s.jobs_completed),
      static_cast<unsigned long long>(s.jobs_degraded),
      static_cast<unsigned long long>(s.jobs_failed));
  std::printf("checkpoints: %llu written, %llu resumed; %llu retries, "
              "queue peak %zu\n",
              static_cast<unsigned long long>(s.checkpoints_written),
              static_cast<unsigned long long>(s.checkpoints_resumed),
              static_cast<unsigned long long>(s.job_retries),
              s.queue_depth_peak);
  service.export_telemetry(trace);

  // Admission rejections are warnings by design — a flood that degrades
  // into rejections is the service doing its job, not a failure.
  const int rc = finish_with_diagnostics(service.diagnostics());
  if (any_failed) return 1;
  if (rc == 0 && any_degraded) return 3;
  return rc;
}

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  if (argc < 2) xh::usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    const xh::Options opt = xh::parse(argc, argv, 2);
    xh::apply_isa(opt);
    xh::Trace trace;
    xh::Trace* tr = opt.telemetry_path.empty() ? nullptr : &trace;
    int rc = 2;
    if (cmd == "example") {
      rc = xh::cmd_example(tr);
    } else if (cmd == "analyze") {
      rc = xh::cmd_analyze(opt, tr);
    } else if (cmd == "circuit") {
      rc = xh::cmd_circuit(opt, argv[0], tr);
    } else if (cmd == "inject") {
      rc = xh::cmd_inject(opt, argv[0], tr);
    } else if (cmd == "serve") {
      rc = xh::cmd_serve(opt, argv[0], tr);
    } else {
      xh::usage(argv[0]);
    }
    if (tr != nullptr) {
      std::ofstream out(opt.telemetry_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n",
                     opt.telemetry_path.c_str());
        return 1;
      }
      xh::kernels::export_kernel_telemetry(&trace);
      xh::TelemetryMeta meta;
      meta.tool = "xhybrid_cli";
      meta.run = {{"command", cmd},
                  {"mode", opt.lenient ? "lenient" : "strict"},
                  {"seed", std::to_string(opt.seed)},
                  {"misr", std::to_string(opt.misr) + "/" +
                               std::to_string(opt.q)},
                  {"isa", xh::kernels::active().name}};
      xh::write_telemetry_json(out, trace, meta);
      std::fprintf(stderr, "telemetry written to %s\n",
                   opt.telemetry_path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
