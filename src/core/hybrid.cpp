#include "core/hybrid.hpp"

#include "masking/mask.hpp"
#include "misr/accounting.hpp"
#include "util/check.hpp"

namespace xh {

HybridReport run_hybrid_analysis(const XMatrix& xm, const HybridConfig& cfg) {
  HybridReport rep;
  rep.num_patterns = xm.num_patterns();
  rep.num_chains = xm.geometry().num_chains;
  rep.chain_length = xm.geometry().chain_length;
  rep.total_x = xm.total_x();
  rep.x_density = xm.x_density();

  rep.partitioning = partition_patterns(xm, cfg.partitioner);

  const MisrConfig& misr = cfg.partitioner.misr;
  rep.masking_only_bits =
      x_masking_only_bits(xm.geometry(), xm.num_patterns());
  rep.canceling_only_bits = x_canceling_only_bits(misr, rep.total_x);
  rep.proposed_bits = rep.partitioning.total_bits;
  if (rep.proposed_bits > 0.0) {
    rep.improvement_over_masking =
        static_cast<double>(rep.masking_only_bits) / rep.proposed_bits;
    rep.improvement_over_canceling =
        rep.canceling_only_bits / rep.proposed_bits;
  }

  const double cells_per_pattern =
      static_cast<double>(xm.geometry().num_cells());
  const double leaked_density =
      static_cast<double>(rep.partitioning.leaked_x) /
      (cells_per_pattern * static_cast<double>(xm.num_patterns()));
  rep.test_time_canceling_only =
      normalized_test_time(rep.num_chains, rep.x_density, misr);
  rep.test_time_proposed =
      normalized_test_time(rep.num_chains, leaked_density, misr);
  if (rep.test_time_proposed > 0.0) {
    rep.test_time_improvement =
        rep.test_time_canceling_only / rep.test_time_proposed;
  }
  return rep;
}

HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const HybridConfig& cfg) {
  const XMatrix xm = XMatrix::from_response(response);

  HybridSimulation sim{run_hybrid_analysis(xm, cfg),
                       response,
                       {},
                       false,
                       0};

  // Apply the per-partition masks and check the no-loss invariant against
  // the ORIGINAL response (a masked cell must have been X).
  const PartitionResult& pr = sim.report.partitioning;
  sim.observability_preserved =
      masks_preserve_observability(response, pr.partitions, pr.masks);
  XH_ASSERT(sim.observability_preserved,
            "partition masks would destroy observable values");
  for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
    apply_mask(sim.masked_response, pr.partitions[i], pr.masks[i]);
  }

  const std::uint64_t remaining_x = sim.masked_response.total_x();
  XH_ASSERT(remaining_x == pr.leaked_x,
            "leaked-X accounting disagrees with masked response");

  sim.cancel = run_x_canceling(sim.masked_response, cfg.partitioner.misr);
  sim.x_entering_misr = sim.cancel.total_x_seen;
  return sim;
}

}  // namespace xh
