// corpus: XH-DET-002 must fire on range-for over a local unordered_map.
#include <cstddef>
#include <unordered_map>
#include <vector>

std::vector<std::size_t> keys(
    const std::unordered_map<std::size_t, int>& histogram) {
  std::vector<std::size_t> out;
  for (const auto& [key, count] : histogram) {
    out.push_back(key);
  }
  return out;
}
