// XH-FLOW-003 fixture: depth_ is mutated under the mutex in bump() but
// read bare in peek() — a racy unguarded touch of a guarded field.
#include <cstddef>
#include <mutex>

namespace xh {

class Gauge {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++depth_;
  }
  std::size_t peek() const { return depth_; }

 private:
  mutable std::mutex mu_;
  std::size_t depth_ = 0;
};

}  // namespace xh
