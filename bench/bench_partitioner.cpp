// Partitioner throughput: seed implementation vs incremental engine.
//
// Times partition_patterns_reference (the retained seed oracle: full X-cell
// re-analysis per round) against the PartitionEngine (victim-only
// re-analysis over an XMatrixView snapshot) on a synthetic Table-1-scale
// workload, serially and across thread-pool sizes, and emits one JSON
// object so CI can parse the numbers:
//
//   bench_partitioner [--cells N] [--patterns P] [--density D]
//                     [--rounds R] [--threads T] [--seed S] [--smoke]
//                     [--xm-backend B] [--telemetry file.json]
//                     [--trajectory file.json]
//
// --smoke runs a reduced-scale workload (< 10 s end to end), cross-checks
// that both implementations produce identical results, asserts the engine
// is at least 3x faster than the seed, and exits non-zero otherwise — the
// CI regression gate for the engine's core performance claim. The smoke
// run also sweeps the engine over every storage backend (csr, tebm, mmap),
// demands bit-identical results from each, and gates on the mmap store's
// resident footprint staying below the CSR snapshot's — the out-of-core
// property that makes the backend worth having.
//
// The kernel layer (src/kernels/) gets the same treatment: the engine is
// swept across every ISA tier this CPU supports (scalar, avx2, avx512) via
// kernels::select() and each result must be bit-identical to the seed; an
// and_count-bound microbench times the dispatched tables against the
// inlined constexpr scalar reference. Smoke gates: the best vectorized
// tier must beat the inline reference by >= 2x (warn-skipped on CPUs with
// no vector tier), and the dispatched scalar table must stay within 5% of
// the inline reference (the price of the function-pointer indirection).
//
// --xm-backend B picks the store for the traced telemetry run (default
// csr), so the CI mmap leg exercises the whole engine through the mapped
// file; the per-backend sweep always covers all three.
//
// --trajectory writes the compact xh-bench-trajectory/1 document: every
// backend's wall time and its speedup against the SAME seed-oracle
// measurement. bench/trajectory.json snapshots one smoke run per growth
// step so the speedup history reads straight out of git log; the CI
// bench-smoke job emits a fresh one as an artifact on every run.
//
// --telemetry writes the canonical xh-telemetry/1 document instead of each
// bench inventing its own JSON: the engine's deterministic counters (from
// one traced, untimed run) plus bench.* gauges for the measured numbers.
// CI diffs the counters section against bench/telemetry_smoke_baseline.json
// — gauges and timers are wall-clock noise and excluded from the diff, as
// is store.pages_touched (deterministic per backend but backend-shaped).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/partitioner.hpp"
#include "engine/partition_engine.hpp"
#include "kernels/kernels.hpp"
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

struct BenchOptions {
  std::size_t cells = 100'000;
  std::size_t patterns = 3'000;
  double density = 0.01;
  std::size_t rounds = 40;
  std::size_t threads = 2;  // pool size for the scaling sample
  std::uint64_t seed = 1;
  bool smoke = false;
  XmBackend xm_backend = XmBackend::kCsr;  // store for the traced run
  std::string telemetry_path;
  std::string trajectory_path;
};

double time_ms(const std::function<void()>& fn, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// Canonical per-backend gauge names. Spelled out as literals (rather than
// concatenated at the call sites) so they stay greppable against the
// schema registry in src/obs/telemetry_json.cpp.
struct BackendGaugeNames {
  const char* ms;
  const char* resident_bytes;
  const char* mapped_bytes;
  const char* peak_rss_kb;
};

BackendGaugeNames backend_gauge_names(const std::string& backend) {
  if (backend == "tebm") {
    return {"bench.store_tebm_ms", "bench.store_tebm_resident_bytes",
            "bench.store_tebm_mapped_bytes", "bench.store_tebm_peak_rss_kb"};
  }
  if (backend == "mmap") {
    return {"bench.store_mmap_ms", "bench.store_mmap_resident_bytes",
            "bench.store_mmap_mapped_bytes", "bench.store_mmap_peak_rss_kb"};
  }
  return {"bench.store_csr_ms", "bench.store_csr_resident_bytes",
          "bench.store_csr_mapped_bytes", "bench.store_csr_peak_rss_kb"};
}

/// and_count-bound kernel microbench: the probe loop the engine spends its
/// time in, reduced to its essence. Spans of 4096 words (32 KiB per
/// operand — L1-resident, so the measurement is compute-bound, not a
/// memory-bandwidth test) hammered through the inlined scalar reference
/// and every dispatched table.
struct KernelBench {
  double ref_ms = 0.0;      // inlined kernels::scalar call, the baseline
  double scalar_ms = 0.0;   // the SAME code through the dispatch table
  double best_ms = 0.0;     // fastest tier this CPU supports
  kernels::Isa best_isa = kernels::Isa::kScalar;
  double speedup = 0.0;          // ref_ms / best_ms
  double scalar_overhead = 0.0;  // scalar_ms / ref_ms (indirection tax)
  bool counts_identical = true;  // every tier returned the same count
  std::vector<std::pair<const char*, double>> per_isa_ms;
};

KernelBench bench_kernels(int reps) {
  constexpr std::size_t kWords = 4096;
  constexpr int kIters = 2000;
  std::vector<std::uint64_t> a(kWords);
  std::vector<std::uint64_t> b(kWords);
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  const auto splitmix = [&s] {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (auto& w : a) w = splitmix();
  for (auto& w : b) w = splitmix();

  const std::uint64_t expected =
      kernels::scalar::and_count_words(a.data(), b.data(), kWords) *
      static_cast<std::uint64_t>(kIters);

  KernelBench kb;
  // The accumulated count feeds the identity check below, so the compiler
  // cannot dead-code the timed loops.
  std::uint64_t acc = 0;
  kb.ref_ms = time_ms(
      [&] {
        acc = 0;
        for (int it = 0; it < kIters; ++it) {
          acc += kernels::scalar::and_count_words(a.data(), b.data(), kWords);
        }
      },
      reps);
  kb.counts_identical = acc == expected;

  kb.best_ms = -1.0;
  for (const kernels::Isa isa :
       {kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (!kernels::isa_supported(isa)) continue;
    const kernels::Kernels& k = kernels::table_for(isa);
    const double ms = time_ms(
        [&] {
          acc = 0;
          for (int it = 0; it < kIters; ++it) {
            acc += k.and_count_words(a.data(), b.data(), kWords);
          }
        },
        reps);
    if (acc != expected) kb.counts_identical = false;
    kb.per_isa_ms.emplace_back(k.name, ms);
    if (isa == kernels::Isa::kScalar) kb.scalar_ms = ms;
    if (kb.best_ms < 0.0 || ms < kb.best_ms) {
      kb.best_ms = ms;
      kb.best_isa = isa;
    }
  }
  kb.speedup = kb.best_ms > 0.0 ? kb.ref_ms / kb.best_ms : 0.0;
  kb.scalar_overhead = kb.ref_ms > 0.0 ? kb.scalar_ms / kb.ref_ms : 0.0;
  return kb;
}

bool results_identical(const PartitionResult& a, const PartitionResult& b) {
  if (a.partitions.size() != b.partitions.size()) return false;
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    if (!(a.partitions[i] == b.partitions[i])) return false;
    if (!(a.masks[i] == b.masks[i])) return false;
  }
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].split_cell != b.history[i].split_cell) return false;
    if (a.history[i].accepted != b.history[i].accepted) return false;
  }
  return a.masked_x == b.masked_x && a.leaked_x == b.leaked_x &&
         a.total_bits == b.total_bits;
}

int run(const BenchOptions& opt) {
  // Geometry: chains x length closest to the requested cell count, with a
  // Table-1-like aspect ratio (hundreds of chains, hundreds of cells each).
  const std::size_t chains = opt.smoke ? 50 : 208;
  const std::size_t length =
      std::max<std::size_t>(1, opt.cells / chains);

  // Strongly inter-correlated X's (the paper's premise): cell clusters
  // share narrow pattern bands, so partitioning isolates bands and the
  // victim's member list shrinks round over round — the regime the
  // incremental engine is built for.
  WorkloadProfile profile;
  profile.name = "bench";
  profile.geometry = {chains, length};
  profile.num_patterns = opt.patterns;
  profile.x_density = opt.density;
  profile.clustered_fraction = 0.95;
  profile.cluster_cells_mean = std::max<std::size_t>(2, chains * length / 50);
  profile.cluster_patterns_mean = std::max<std::size_t>(2, opt.patterns / 25);
  profile.seed = opt.seed;
  const XMatrix xm = generate_workload(profile);

  // Exhaustive splitting with a round cap, so both implementations execute
  // the same number of rounds and the comparison is rounds-for-rounds.
  // Singleton groups keep the split tree deep past the point where the
  // clustered correlation structure is used up — the regime where the
  // per-round cost difference dominates.
  PartitionerConfig cfg;
  cfg.misr = {32, 7};
  cfg.stop_on_cost_increase = false;
  cfg.allow_singleton_groups = true;
  cfg.max_rounds = opt.rounds;
  cfg.seed = opt.seed;

  const int reps = opt.smoke ? 3 : 1;
  PartitionResult ref_result;
  const double ref_ms = time_ms(
      [&] { ref_result = partition_patterns_reference(xm, cfg); }, reps);

  PartitionResult engine_result;
  const double engine_ms = time_ms(
      [&] { engine_result = partition_patterns(xm, cfg); }, reps);

  double pooled_ms = 0.0;
  if (opt.threads > 1) {
    ThreadPool pool(opt.threads);
    pooled_ms = time_ms(
        [&] {
          const std::unique_ptr<XMatrixStore> store =
              make_store(xm, XmBackend::kCsr);
          PartitionEngine engine(*store, cfg, &pool);
          engine_result = engine.run();
        },
        reps);
  }

  // Per-backend sweep: same engine, same bits, different physical store.
  // Resident/mapped bytes come from the store's own accounting (the same
  // store.* gauges the telemetry run exports), peak RSS from the kernel.
  struct BackendSample {
    const char* name = "";
    double ms = 0.0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t mapped_bytes = 0;
    long peak_rss_kb = 0;
    bool identical = false;
  };
  std::vector<BackendSample> backends;
  for (const XmBackend backend :
       {XmBackend::kCsr, XmBackend::kTebm, XmBackend::kMmap}) {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    BackendSample sample;
    sample.name = store->backend_name();
    PartitionResult result;
    sample.ms = time_ms(
        [&] {
          PartitionEngine engine(*store, cfg);
          result = engine.run();
        },
        reps);
    const StoreStats stats = store->stats();
    sample.resident_bytes = stats.resident_bytes;
    sample.mapped_bytes = stats.mapped_bytes;
    sample.peak_rss_kb = peak_rss_kb();
    sample.identical = results_identical(ref_result, result);
    backends.push_back(sample);
  }

  // Per-ISA sweep: same engine, same store, different dispatch table. The
  // entry table is restored afterwards so the traced telemetry run below
  // measures whatever the operator selected (XH_ISA).
  struct IsaSample {
    const char* name = "";
    double ms = 0.0;
    bool identical = false;
  };
  std::vector<IsaSample> isa_samples;
  const kernels::Isa entry_isa = kernels::active().isa;
  {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
    for (const kernels::Isa isa :
         {kernels::Isa::kScalar, kernels::Isa::kAvx2,
          kernels::Isa::kAvx512}) {
      if (!kernels::isa_supported(isa)) continue;
      kernels::select(isa);
      IsaSample sample;
      sample.name = kernels::active().name;
      PartitionResult result;
      sample.ms = time_ms(
          [&] {
            PartitionEngine engine(*store, cfg);
            result = engine.run();
          },
          reps);
      sample.identical = results_identical(ref_result, result);
      isa_samples.push_back(sample);
    }
    kernels::select(entry_isa);
  }

  const KernelBench kb = bench_kernels(opt.smoke ? 5 : 3);

  const bool identical = results_identical(ref_result, engine_result);
  const double speedup = engine_ms > 0.0 ? ref_ms / engine_ms : 0.0;
  const std::size_t rounds_run =
      ref_result.history.empty() ? 0 : ref_result.history.size() - 1;
  const double engine_rounds_per_sec =
      engine_ms > 0.0 ? 1000.0 * static_cast<double>(rounds_run) / engine_ms
                      : 0.0;

  std::printf(
      "{\n"
      "  \"workload\": {\"cells\": %zu, \"patterns\": %zu, \"total_x\": "
      "%llu, \"rounds\": %zu, \"partitions\": %zu},\n"
      "  \"reference_ms\": %.3f,\n"
      "  \"engine_ms\": %.3f,\n"
      "  \"engine_pool%zu_ms\": %.3f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"engine_rounds_per_sec\": %.1f,\n"
      "  \"results_identical\": %s,\n"
      "  \"peak_rss_kb\": %ld,\n"
      "  \"backends\": {\n",
      chains * length, opt.patterns,
      static_cast<unsigned long long>(xm.total_x()), rounds_run,
      engine_result.num_partitions(), ref_ms, engine_ms, opt.threads,
      pooled_ms, speedup, engine_rounds_per_sec,
      identical ? "true" : "false", peak_rss_kb());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const BackendSample& b = backends[i];
    std::printf(
        "    \"%s\": {\"ms\": %.3f, \"resident_bytes\": %llu, "
        "\"mapped_bytes\": %llu, \"peak_rss_kb\": %ld, "
        "\"results_identical\": %s}%s\n",
        b.name, b.ms, static_cast<unsigned long long>(b.resident_bytes),
        static_cast<unsigned long long>(b.mapped_bytes), b.peak_rss_kb,
        b.identical ? "true" : "false",
        i + 1 < backends.size() ? "," : "");
  }
  std::printf("  },\n  \"isas\": {\n");
  for (std::size_t i = 0; i < isa_samples.size(); ++i) {
    const IsaSample& sample = isa_samples[i];
    std::printf(
        "    \"%s\": {\"ms\": %.3f, \"results_identical\": %s}%s\n",
        sample.name, sample.ms, sample.identical ? "true" : "false",
        i + 1 < isa_samples.size() ? "," : "");
  }
  std::printf(
      "  },\n"
      "  \"kernel\": {\"and_count_ref_ms\": %.3f, "
      "\"and_count_scalar_ms\": %.3f, \"and_count_best_ms\": %.3f, "
      "\"best_isa\": \"%s\", \"speedup\": %.2f, \"scalar_overhead\": %.3f, "
      "\"counts_identical\": %s}\n}\n",
      kb.ref_ms, kb.scalar_ms, kb.best_ms, kernels::isa_name(kb.best_isa),
      kb.speedup, kb.scalar_overhead, kb.counts_identical ? "true" : "false");

  if (!opt.trajectory_path.empty()) {
    // Machine-readable speedup trajectory: every backend's wall time
    // normalized against the SAME seed-oracle measurement, so successive
    // documents are comparable run over run (the per-PR trajectory the
    // checked-in bench/trajectory.json snapshots). Keys sorted, like the
    // xh-lint-findings document, so diffs are textual.
    std::ofstream tout(opt.trajectory_path);
    if (!tout) {
      std::fprintf(stderr, "cannot write %s\n", opt.trajectory_path.c_str());
      return 1;
    }
    tout << "{\n  \"backends\": {\n";
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const BackendSample& b = backends[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    \"%s\": {\"ms\": %.3f, \"results_identical\": %s, "
                    "\"speedup_vs_seed\": %.2f}%s\n",
                    b.name, b.ms, b.identical ? "true" : "false",
                    b.ms > 0.0 ? ref_ms / b.ms : 0.0,
                    i + 1 < backends.size() ? "," : "");
      tout << buf;
    }
    char mid[256];
    std::snprintf(mid, sizeof(mid),
                  "  },\n"
                  "  \"engine\": {\"ms\": %.3f, \"speedup_vs_seed\": %.2f},\n"
                  "  \"isas\": {\n",
                  engine_ms, speedup);
    tout << mid;
    for (std::size_t i = 0; i < isa_samples.size(); ++i) {
      const IsaSample& sample = isa_samples[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    \"%s\": {\"ms\": %.3f, \"results_identical\": %s, "
                    "\"speedup_vs_seed\": %.2f}%s\n",
                    sample.name, sample.ms,
                    sample.identical ? "true" : "false",
                    sample.ms > 0.0 ? ref_ms / sample.ms : 0.0,
                    i + 1 < isa_samples.size() ? "," : "");
      tout << buf;
    }
    char tail[768];
    std::snprintf(
        tail, sizeof(tail),
        "  },\n"
        "  \"kernel\": {\"and_count_best_ms\": %.3f, "
        "\"and_count_ref_ms\": %.3f, \"and_count_scalar_ms\": %.3f, "
        "\"best_isa\": \"%s\", \"scalar_overhead\": %.3f, "
        "\"speedup\": %.2f},\n"
        "  \"reference_ms\": %.3f,\n"
        "  \"schema\": \"xh-bench-trajectory/1\",\n"
        "  \"workload\": {\"cells\": %zu, \"patterns\": %zu, \"rounds\": "
        "%zu, \"seed\": %llu, \"total_x\": %llu}\n"
        "}\n",
        kb.best_ms, kb.ref_ms, kb.scalar_ms, kernels::isa_name(kb.best_isa),
        kb.scalar_overhead, kb.speedup, ref_ms, chains * length, opt.patterns,
        rounds_run, static_cast<unsigned long long>(opt.seed),
        static_cast<unsigned long long>(xm.total_x()));
    tout << tail;
    std::fprintf(stderr, "trajectory written to %s\n",
                 opt.trajectory_path.c_str());
  }

  if (!opt.telemetry_path.empty()) {
    // One traced, untimed engine run: the engine.* counters are pure
    // functions of the workload (golden-diffable), while tracing inside the
    // timed reps above would distort the very numbers being measured.
    Trace trace;
    {
      const std::unique_ptr<XMatrixStore> store =
          make_store(xm, opt.xm_backend);
      PartitionEngine engine(*store, cfg, nullptr, &trace);
      const PartitionResult traced = engine.run();
      if (!results_identical(engine_result, traced)) {
        std::fprintf(stderr, "FAIL: traced run differs from untraced run\n");
        return 1;
      }
      // store.probe_* totals are a pure function of the engine's work, so
      // they golden-diff; pages_touched is backend-shaped and excluded.
      export_store_telemetry(*store, &trace);
    }
    obs_count(&trace, "bench.cells", chains * length);
    obs_count(&trace, "bench.patterns", opt.patterns);
    obs_count(&trace, "bench.total_x", xm.total_x());
    obs_count(&trace, "bench.rounds", rounds_run);
    obs_count(&trace, "bench.partitions", engine_result.num_partitions());
    obs_count(&trace, "bench.results_identical", identical ? 1 : 0);
    obs_gauge(&trace, "bench.reference_ms", ref_ms);
    obs_gauge(&trace, "bench.engine_ms", engine_ms);
    obs_gauge(&trace, "bench.engine_pooled_ms", pooled_ms);
    obs_gauge(&trace, "bench.speedup", speedup);
    obs_gauge(&trace, "bench.engine_rounds_per_sec", engine_rounds_per_sec);
    obs_gauge(&trace, "bench.peak_rss_kb",
              static_cast<double>(peak_rss_kb()));
    for (const BackendSample& b : backends) {
      const BackendGaugeNames names = backend_gauge_names(b.name);
      obs_gauge(&trace, names.ms, b.ms);
      obs_gauge(&trace, names.resident_bytes,
                static_cast<double>(b.resident_bytes));
      obs_gauge(&trace, names.mapped_bytes,
                static_cast<double>(b.mapped_bytes));
      obs_gauge(&trace, names.peak_rss_kb,
                static_cast<double>(b.peak_rss_kb));
    }
    // Kernel microbench gauges (wall-clock, excluded from the counter
    // diff); best_isa ships as its numeric enum value since gauges are
    // doubles.
    obs_gauge(&trace, "bench.kernel_and_count_ref_ms", kb.ref_ms);
    obs_gauge(&trace, "bench.kernel_and_count_scalar_ms", kb.scalar_ms);
    obs_gauge(&trace, "bench.kernel_and_count_best_ms", kb.best_ms);
    obs_gauge(&trace, "bench.kernel_best_isa",
              static_cast<double>(static_cast<int>(kb.best_isa)));
    obs_gauge(&trace, "bench.kernel_speedup", kb.speedup);
    obs_gauge(&trace, "bench.kernel_scalar_overhead", kb.scalar_overhead);
    kernels::export_kernel_telemetry(&trace);
    std::ofstream out(opt.telemetry_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.telemetry_path.c_str());
      return 1;
    }
    TelemetryMeta meta;
    meta.tool = "bench_partitioner";
    meta.run = {{"smoke", opt.smoke ? "true" : "false"},
                {"seed", std::to_string(opt.seed)},
                {"threads", std::to_string(opt.threads)}};
    write_telemetry_json(out, trace, meta);
    std::fprintf(stderr, "telemetry written to %s\n",
                 opt.telemetry_path.c_str());
  }

  if (!identical) {
    std::fprintf(stderr, "FAIL: engine result differs from the seed\n");
    return 1;
  }
  for (const BackendSample& b : backends) {
    if (!b.identical) {
      std::fprintf(stderr,
                   "FAIL: %s backend result differs from the seed\n", b.name);
      return 1;
    }
  }
  // Cross-ISA bit-identity is unconditional: a vectorized tier that
  // diverges from the seed result is a correctness bug, not a perf issue.
  for (const IsaSample& sample : isa_samples) {
    if (!sample.identical) {
      std::fprintf(stderr,
                   "FAIL: %s kernel ISA result differs from the seed\n",
                   sample.name);
      return 1;
    }
  }
  if (!kb.counts_identical) {
    std::fprintf(stderr,
                 "FAIL: kernel microbench counts diverge across ISA tiers\n");
    return 1;
  }
  if (opt.smoke && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: smoke speedup %.2fx below the 3x gate\n",
                 speedup);
    return 1;
  }
  if (opt.smoke) {
    const bool has_vector_tier =
        kernels::isa_supported(kernels::Isa::kAvx2) ||
        kernels::isa_supported(kernels::Isa::kAvx512);
    if (!has_vector_tier) {
      std::fprintf(stderr,
                   "warn: no vectorized kernel tier on this CPU; skipping "
                   "the 2x kernel speedup gate\n");
    } else if (kb.speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: best kernel tier (%s) is %.2fx over the inline "
                   "scalar reference, below the 2x gate\n",
                   kernels::isa_name(kb.best_isa), kb.speedup);
      return 1;
    }
    if (kb.scalar_overhead > 1.05) {
      std::fprintf(stderr,
                   "FAIL: dispatched scalar table is %.3fx the inline "
                   "reference, above the 1.05x indirection budget\n",
                   kb.scalar_overhead);
      return 1;
    }
  }
  if (opt.smoke) {
    // The out-of-core gate: the mapped store must keep strictly less of the
    // X-matrix resident than the in-memory CSR snapshot. Both numbers are
    // the stores' own accounting — the same values exported as the
    // store.resident_bytes gauge.
    const BackendSample* csr = nullptr;
    const BackendSample* mmap = nullptr;
    for (const BackendSample& b : backends) {
      if (std::string(b.name) == "csr") csr = &b;
      if (std::string(b.name) == "mmap") mmap = &b;
    }
    if (csr == nullptr || mmap == nullptr) {
      std::fprintf(stderr, "FAIL: backend sweep missing csr or mmap sample\n");
      return 1;
    }
    if (mmap->resident_bytes >= csr->resident_bytes) {
      std::fprintf(stderr,
                   "FAIL: mmap resident footprint %llu B is not below the "
                   "CSR snapshot's %llu B\n",
                   static_cast<unsigned long long>(mmap->resident_bytes),
                   static_cast<unsigned long long>(csr->resident_bytes));
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::BenchOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--cells") {
        opt.cells = xh::parse_size(next());
      } else if (arg == "--patterns") {
        opt.patterns = xh::parse_size(next());
      } else if (arg == "--density") {
        opt.density = xh::parse_f64(next());
      } else if (arg == "--rounds") {
        opt.rounds = xh::parse_size(next());
      } else if (arg == "--threads") {
        opt.threads = xh::parse_size(next());
      } else if (arg == "--seed") {
        opt.seed = xh::parse_u64(next());
      } else if (arg == "--telemetry") {
        opt.telemetry_path = next();
      } else if (arg == "--trajectory") {
        opt.trajectory_path = next();
      } else if (arg == "--xm-backend") {
        const char* text = next();
        if (!xh::parse_xm_backend(text, &opt.xm_backend)) {
          std::fprintf(stderr,
                       "error: --xm-backend: unknown backend '%s' "
                       "(expected auto|csr|tebm|mmap)\n",
                       text);
          return 2;
        }
      } else if (arg == "--smoke") {
        opt.smoke = true;
        opt.cells = 20'000;
        opt.patterns = 1'000;
        opt.density = 0.02;
        opt.rounds = 16;
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return xh::run(opt);
}
