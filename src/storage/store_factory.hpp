// Backend selection for the X-matrix storage layer (DESIGN.md §12).
//
// Consumers outside the engine/service layers (CLI, benches, tests) do not
// include backend headers — xh_lint enforces it — they name a backend with
// XmBackend and let make_store() build it. kAuto picks per workload: the
// CSR snapshot while the estimated footprint fits comfortably in RAM, the
// mmap store beyond auto_mmap_threshold_bytes. (The TEBM store is never
// auto-picked: its win is workload-shape-dependent, so it is an explicit
// opt-in via --xm-backend=tebm.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "response/x_matrix.hpp"
#include "storage/x_matrix_store.hpp"

namespace xh {

enum class XmBackend : std::uint8_t {
  kAuto = 0,  // resolve_xm_backend() picks csr or mmap by footprint
  kCsr,
  kTebm,
  kMmap,
};

/// Canonical spelling: "auto", "csr", "tebm", "mmap". Matches the
/// backend_name() of the store the value resolves to.
const char* xm_backend_name(XmBackend backend);

/// Parses a canonical spelling; returns false (and leaves @p out alone) for
/// anything else.
[[nodiscard]] bool parse_xm_backend(std::string_view name, XmBackend* out);

struct StoreFactoryOptions {
  /// Directory for mmap backing files; empty uses the system temp dir.
  std::string mmap_dir;
  /// kAuto spills to the mmap store once the estimated CSR footprint
  /// crosses this many bytes. Default 1 GiB.
  std::uint64_t auto_mmap_threshold_bytes = 1ULL << 30;
  /// Keep mmap backing files on disk (debugging aid).
  bool keep_mmap_file = false;
};

/// Estimated bytes of the CSR snapshot of @p xm (row payload + metadata) —
/// the footprint kAuto weighs against the threshold.
[[nodiscard]] std::uint64_t estimate_csr_bytes(const XMatrix& xm);

/// The concrete backend kAuto resolves to for @p xm; non-auto values pass
/// through unchanged.
[[nodiscard]] XmBackend resolve_xm_backend(XmBackend requested,
                                           const XMatrix& xm,
                                           const StoreFactoryOptions& options);

/// Builds the chosen store over @p xm. kAuto resolves first, so the
/// returned store's backend_name() is always concrete. The mmap backend
/// does real I/O here and throws std::ios_base::failure when the
/// filesystem refuses.
[[nodiscard]] std::unique_ptr<XMatrixStore> make_store(
    const XMatrix& xm, XmBackend backend = XmBackend::kAuto,
    const StoreFactoryOptions& options = {});

}  // namespace xh
