#pragma once

namespace fixture {

// Private backend header: layers.txt restricts src/storage/backend_ to
// the storage and engine layers.
struct BackendBlob {
  int pages = 0;
};

}  // namespace fixture
