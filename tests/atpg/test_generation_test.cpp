#include "atpg/test_generation.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"

namespace xh {
namespace {

TEST(TestGeneration, FullCoverageOnCleanCircuit) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(q)\n"
      "g1 = AND(a, b)\ng2 = OR(g1, c)\nq = DFF(g2)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  AtpgConfig cfg;
  cfg.random_patterns = 4;
  const AtpgResult r = generate_test_set(nl, plan, cfg);
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
  EXPECT_EQ(r.num_untestable, 0u);
  EXPECT_EQ(r.num_aborted, 0u);
  EXPECT_FALSE(r.patterns.empty());
}

TEST(TestGeneration, CountsRedundantFaults) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nn = NOT(a)\nr = AND(a, n)\n"
      "q = DFF(d)\nd = OR(r, a)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  AtpgConfig cfg;
  cfg.random_patterns = 8;
  const AtpgResult r = generate_test_set(nl, plan, cfg);
  EXPECT_GT(r.num_untestable, 0u) << "r s-a-0 is redundant";
  EXPECT_LT(r.coverage(), 1.0);
  EXPECT_EQ(r.num_detected + r.num_untestable + r.num_aborted,
            r.faults.size());
}

TEST(TestGeneration, DeterministicPhaseImprovesOnRandom) {
  GeneratorConfig gcfg;
  gcfg.seed = 13;
  gcfg.num_gates = 150;
  gcfg.num_dffs = 12;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);

  AtpgConfig random_only;
  random_only.random_patterns = 16;
  random_only.backtrack_limit = 0;  // cripple PODEM: abort instantly
  const AtpgResult ro = generate_test_set(nl, plan, random_only);

  AtpgConfig full;
  full.random_patterns = 16;
  const AtpgResult f = generate_test_set(nl, plan, full);
  EXPECT_GE(f.num_detected, ro.num_detected);
  EXPECT_GT(f.coverage(), 0.5);
}

TEST(TestGeneration, CompactionKeepsCoverage) {
  GeneratorConfig gcfg;
  gcfg.seed = 17;
  gcfg.num_gates = 100;
  gcfg.num_dffs = 8;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);

  AtpgConfig compacted;
  compacted.random_patterns = 64;
  AtpgConfig uncompacted = compacted;
  uncompacted.compact_random_phase = false;

  const AtpgResult a = generate_test_set(nl, plan, compacted);
  const AtpgResult b = generate_test_set(nl, plan, uncompacted);
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_LE(a.patterns.size(), b.patterns.size());
}

TEST(TestGeneration, WorksWithXSources) {
  GeneratorConfig gcfg;
  gcfg.seed = 23;
  gcfg.num_gates = 120;
  gcfg.num_dffs = 12;
  gcfg.nonscan_fraction = 0.25;
  gcfg.num_buses = 2;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 3);
  AtpgConfig cfg;
  cfg.random_patterns = 32;
  const AtpgResult r = generate_test_set(nl, plan, cfg);
  // X-sources cost real coverage (many cones are only observable through
  // X-poisoned paths); the flow must stay functional, detect a meaningful
  // share, and account for every fault.
  EXPECT_GT(r.coverage(), 0.15);
  EXPECT_EQ(r.num_detected + r.num_untestable + r.num_aborted,
            r.faults.size());
}

TEST(TestGeneration, DeterministicForFixedSeed) {
  GeneratorConfig gcfg;
  gcfg.seed = 29;
  gcfg.num_gates = 60;
  const Netlist nl = generate_circuit(gcfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  AtpgConfig cfg;
  cfg.random_patterns = 16;
  cfg.seed = 99;
  const AtpgResult a = generate_test_set(nl, plan, cfg);
  const AtpgResult b = generate_test_set(nl, plan, cfg);
  EXPECT_EQ(a.patterns.size(), b.patterns.size());
  EXPECT_EQ(a.num_detected, b.num_detected);
}

}  // namespace
}  // namespace xh
