#include "obs/trace.hpp"

#include <chrono>

#include "util/check.hpp"

namespace xh {
#ifndef XH_OBS_NOOP
namespace {

/// Steady-clock read for span timing.
///
/// XH-DET-001 proof of output-independence: the value returned here flows
/// only into TraceTimer::{count,total_ns,max_ns}, which are serialized into
/// the telemetry "timers" section and read by nothing else — no branch, no
/// allocation size, no emitted bit anywhere in the library depends on it.
/// Counters, gauges and histograms (the golden-tested sections) never touch
/// this function.
std::uint64_t steady_now_ns() {
  // xh-lint: allow(XH-DET-001)
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

}  // namespace
#endif  // XH_OBS_NOOP

void TraceHistogram::record(std::uint64_t v) {
  std::size_t bucket = 0;
  for (std::uint64_t w = v; w != 0; w >>= 1) ++bucket;
  ++buckets[bucket];
  if (count == 0 || v < min) min = v;
  if (count == 0 || v > max) max = v;
  ++count;
  sum += v;
}

TraceCounter& Trace::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), TraceCounter{}).first->second;
}

TraceGauge& Trace::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), TraceGauge{}).first->second;
}

TraceHistogram& Trace::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), TraceHistogram{})
      .first->second;
}

void Trace::span_enter(std::string_view name) {
  if (span_stack_.empty()) {
    span_stack_.emplace_back(name);
  } else {
    std::string path = span_stack_.back();
    path += '/';
    path += name;
    span_stack_.push_back(std::move(path));
  }
}

void Trace::span_exit(std::uint64_t elapsed_ns) {
  XH_ASSERT(!span_stack_.empty(), "span_exit without a matching span_enter");
  TraceTimer& t = timers_[span_stack_.back()];
  ++t.count;
  t.total_ns += elapsed_ns;
  if (elapsed_ns > t.max_ns) t.max_ns = elapsed_ns;
  span_stack_.pop_back();
}

void Trace::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timers_.clear();
  span_stack_.clear();
}

#ifndef XH_OBS_NOOP
inline namespace obs_live {

ScopedSpan::ScopedSpan(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ == nullptr) return;
  trace_->span_enter(name);
  start_ns_ = steady_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  const std::uint64_t end_ns = steady_now_ns();
  trace_->span_exit(end_ns - start_ns_);
}

}  // namespace obs_live
#endif  // XH_OBS_NOOP

}  // namespace xh
