// corpus: an allow() for a *different* rule must not mask the finding.
#include <cstdlib>

int noise() {
  return std::rand();  // xh-lint: allow(XH-PARSE-001) wrong rule on purpose
}
