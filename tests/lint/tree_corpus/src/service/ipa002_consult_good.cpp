// XH-IPA-002 non-firing fixture: the callable copies the token and checks
// it before the blocking call, so cancellation can interrupt it. The copy
// capture also keeps XH-RACE-001 quiet — nothing outlives the frame.
#include "service/ipa_seam.hpp"

namespace fixture {

void pump_cancellable(WorkPool& pool, const CancelToken& token) {
  pool.post([token] {
    if (token.stop_requested()) return;
    sleep_ns(500);
  });
}

}  // namespace fixture
