#include "misr/spatial_compactor.hpp"
#include "util/check.hpp"

namespace xh {

SpatialCompactor::SpatialCompactor(std::size_t num_chains,
                                   std::size_t misr_size)
    : num_chains_(num_chains), misr_size_(misr_size) {
  XH_REQUIRE(num_chains >= 1, "need at least one chain");
  XH_REQUIRE(misr_size >= 1, "need at least one MISR stage");
}

std::vector<Lv> SpatialCompactor::compact(
    const std::vector<Lv>& chain_values) {
  XH_REQUIRE(chain_values.size() == num_chains_,
             "chain value vector width mismatch");
  std::vector<Lv> out(misr_size_, Lv::k0);
  std::vector<std::size_t> x_per_stage(misr_size_, 0);
  std::vector<std::size_t> def_per_stage(misr_size_, 0);
  for (std::size_t c = 0; c < num_chains_; ++c) {
    const Lv v = chain_values[c];
    XH_REQUIRE(v != Lv::kZ, "chain outputs cannot be Z");
    const std::size_t stage = c % misr_size_;
    out[stage] = lv_xor(out[stage], v);
    if (v == Lv::kX) {
      ++x_in_;
      ++x_per_stage[stage];
    } else {
      ++def_per_stage[stage];
    }
  }
  for (std::size_t s = 0; s < misr_size_; ++s) {
    if (x_per_stage[s] > 0) {
      ++x_out_;
      // Every deterministic bit folded into an X-carrying stage is lost.
      absorbed_ += def_per_stage[s];
    }
  }
  return out;
}

void SpatialCompactor::reset_counters() {
  x_in_ = 0;
  x_out_ = 0;
  absorbed_ = 0;
}

}  // namespace xh
