// XH-FLOW-003 non-firing fixture: every touch of depth_ holds the mutex,
// and ticks_ opts out of the lock by being atomic (self-synchronizing).
#include <atomic>
#include <cstddef>
#include <mutex>

namespace xh {

class Gauge {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++depth_;
    ticks_.store(depth_, std::memory_order_release);
  }
  std::size_t peek() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }
  std::size_t ticks() const { return ticks_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::size_t depth_ = 0;
  std::atomic<std::size_t> ticks_{0};
};

}  // namespace xh
