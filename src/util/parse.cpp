#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace xh {
namespace {

[[noreturn]] void bad_number(const std::string& text, const char* why) {
  throw std::invalid_argument("not a valid number: '" + text + "' (" + why +
                              ")");
}

}  // namespace

std::uint64_t parse_u64(const std::string& text) {
  if (text.empty()) bad_number(text, "empty");
  // from_chars accepts no leading '+', whitespace or locale digits — exactly
  // the strictness we want; '-' is rejected up front for a clearer message.
  if (text[0] == '-' || text[0] == '+') bad_number(text, "sign not allowed");
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec == std::errc::result_out_of_range) bad_number(text, "overflow");
  if (ec != std::errc() || ptr != last) bad_number(text, "not an integer");
  return value;
}

std::size_t parse_size(const std::string& text) {
  const std::uint64_t value = parse_u64(text);
  if (value > std::numeric_limits<std::size_t>::max()) {
    bad_number(text, "overflow");
  }
  return static_cast<std::size_t>(value);
}

double parse_f64(const std::string& text) {
  if (text.empty()) bad_number(text, "empty");
  // strtod skips leading whitespace and accepts hexadecimal floats
  // ("0x10" == 16.0); both violate the strict decimal contract, and neither
  // is caught by the full-consumption check below.
  if (std::isspace(static_cast<unsigned char>(text[0])) != 0) {
    bad_number(text, "leading whitespace");
  }
  for (const char c : text) {
    if (c == 'x' || c == 'X') bad_number(text, "hex not allowed");
  }
  // strtod is used instead of from_chars<double> for toolchain portability;
  // the full-consumption and range checks restore strictness.
  errno = 0;
  char* end = nullptr;
  // This IS the strict wrapper the rule points everyone at; the
  // full-consumption and range checks below restore strictness.
  // xh-lint: allow(XH-PARSE-001)
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    bad_number(text, "not a number");
  }
  if (errno == ERANGE) bad_number(text, "out of range");
  if (!(value == value) ||
      value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    bad_number(text, "not finite");
  }
  return value;
}

}  // namespace xh
