#include "fault/fault_sim.hpp"

#include "util/check.hpp"

namespace xh {

ObservationFilter observe_all() {
  return [](std::size_t, std::size_t) { return true; };
}

ObservationFilter observe_with_partition_masks(
    const std::vector<BitVec>& partitions, const std::vector<BitVec>& masks) {
  XH_REQUIRE(partitions.size() == masks.size(),
             "one mask per partition required");
  // Copy by value into the closure: the filter outlives its arguments.
  return [partitions, masks](std::size_t pattern, std::size_t cell) {
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      if (pattern < partitions[i].size() && partitions[i].get(pattern)) {
        return cell >= masks[i].size() || !masks[i].get(cell);
      }
    }
    return true;  // pattern not covered by any partition — fully observable
  };
}

FaultSimulator::FaultSimulator(const Netlist& nl, const ScanPlan& plan)
    : nl_(&nl), plan_(&plan), applicator_(nl, plan) {}

FaultSimResult FaultSimulator::run(const std::vector<TestPattern>& patterns,
                                   const std::vector<StuckFault>& faults,
                                   const ObservationFilter& observe) const {
  XH_REQUIRE(!patterns.empty(), "need at least one pattern");
  FaultSimResult result;
  result.faults = faults;
  result.detected.assign(faults.size(), false);
  result.first_pattern.assign(faults.size(), 0);

  const ResponseMatrix good = applicator_.capture(patterns);

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const ResponseMatrix bad = applicator_.capture_faulty(
        patterns, faults[fi].gate, faults[fi].stuck_at_one);
    bool found = false;
    for (std::size_t p = 0; !found && p < patterns.size(); ++p) {
      for (std::size_t c = 0; c < good.num_cells(); ++c) {
        const Lv gv = good.get(p, c);
        const Lv bv = bad.get(p, c);
        if (is_definite(gv) && is_definite(bv) && gv != bv &&
            observe(p, c)) {
          result.detected[fi] = true;
          result.first_pattern[fi] = p;
          ++result.num_detected;
          found = true;
          break;
        }
      }
    }
  }
  return result;
}

std::vector<bool> FaultSimulator::detects(
    const std::vector<TestPattern>& patterns, const StuckFault& fault) const {
  const ResponseMatrix good = applicator_.capture(patterns);
  const ResponseMatrix bad =
      applicator_.capture_faulty(patterns, fault.gate, fault.stuck_at_one);
  std::vector<bool> out(patterns.size(), false);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    for (std::size_t c = 0; c < good.num_cells(); ++c) {
      const Lv gv = good.get(p, c);
      const Lv bv = bad.get(p, c);
      if (is_definite(gv) && is_definite(bv) && gv != bv) {
        out[p] = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace xh
