#include "baseline/chain_masking.hpp"

namespace xh {

ChainMaskingResult chain_masking(const XMatrix& xm) {
  const ScanGeometry& geo = xm.geometry();
  ChainMaskingResult result;
  result.control_bits =
      static_cast<std::uint64_t>(geo.num_chains) * xm.num_patterns();
  result.masked_x = xm.total_x();

  // For each chain: union of patterns with any X in the chain, and the
  // per-chain X totals, via pattern-set algebra over the sparse matrix.
  for (std::size_t chain = 0; chain < geo.num_chains; ++chain) {
    BitVec any_x(xm.num_patterns());
    std::uint64_t chain_x = 0;
    for (std::size_t pos = 0; pos < geo.chain_length; ++pos) {
      const BitVec& pats = xm.patterns_of(geo.cell_index(chain, pos));
      any_x |= pats;
      chain_x += pats.count();
    }
    const std::uint64_t masked_patterns = any_x.count();
    result.masked_chains += masked_patterns;
    // Every masked (pattern, chain) blanks chain_length bits; the X's among
    // them were worthless anyway, the rest are lost observations.
    result.lost_observations +=
        masked_patterns * geo.chain_length - chain_x;
  }
  return result;
}

}  // namespace xh
