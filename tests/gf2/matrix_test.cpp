#include "gf2/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(Gf2Matrix, ConstructAndAccess) {
  Gf2Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FALSE(m.get(1, 2));
  m.set(1, 2);
  EXPECT_TRUE(m.get(1, 2));
}

TEST(Gf2Matrix, FromStringsAndToString) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"101", "010"});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.to_string(), "101\n010\n");
}

TEST(Gf2Matrix, MismatchedRowWidthThrows) {
  EXPECT_THROW(Gf2Matrix::from_strings({"101", "01"}), std::invalid_argument);
}

TEST(Gf2Matrix, AppendRowSetsWidth) {
  Gf2Matrix m;
  m.append_row(BitVec::from_string("0110"));
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_THROW(m.append_row(BitVec(3)), std::invalid_argument);
}

TEST(Gf2Matrix, RankOfIdentity) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"100", "010", "001"});
  EXPECT_EQ(m.rank(), 3u);
}

TEST(Gf2Matrix, RankWithDependentRows) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"110", "011", "101"});
  // row0 ^ row1 = row2, so rank 2.
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, RankOfZeroMatrix) {
  EXPECT_EQ(Gf2Matrix(4, 3).rank(), 0u);
}

TEST(Elimination, CombinationReproducesReducedRows) {
  const Gf2Matrix m = Gf2Matrix::from_strings(
      {"1101", "0110", "1011", "0001", "1100"});
  const Elimination e = kernels::eliminate(m);
  ASSERT_EQ(e.combination.size(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    BitVec acc(m.cols());
    for (const std::size_t r : e.combination[i].set_bits()) {
      acc ^= m.row(r);
    }
    EXPECT_EQ(acc, e.reduced.row(i)) << "row " << i;
  }
}

TEST(Elimination, NullRowsAreBelowRank) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"11", "11", "11"});
  const Elimination e = kernels::eliminate(m);
  EXPECT_EQ(e.rank, 1u);
  EXPECT_EQ(e.null_rows().size(), 2u);
}

TEST(XFreeCombinations, EmptyForFullRankSquare) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"10", "01"});
  EXPECT_TRUE(kernels::x_free_combinations(m).empty());
}

TEST(XFreeCombinations, EachCombinationCancelsAllColumns) {
  const Gf2Matrix m = Gf2Matrix::from_strings(
      {"100", "110", "010", "100", "111", "001"});
  const auto combos = kernels::x_free_combinations(m);
  EXPECT_EQ(combos.size(), m.rows() - m.rank());
  for (const auto& combo : combos) {
    BitVec acc(m.cols());
    for (const std::size_t r : combo.set_bits()) acc ^= m.row(r);
    EXPECT_TRUE(acc.none());
    EXPECT_TRUE(combo.any()) << "a combination must select at least one row";
  }
}

// ---- Figure 3 golden test ---------------------------------------------------
// MISR bit X-dependencies from the paper's Figure 2 (columns X1..X4):
//   M1:{X1} M2:{X1,X2,X3} M3:{X3} M4:{X1} M5:{X1,X3} M6:{X3,X4}
// The paper extracts exactly two X-free rows: M1^M3^M5 and M1^M4.
class Figure3 : public ::testing::Test {
 protected:
  const Gf2Matrix m_ = Gf2Matrix::from_strings({
      "1000",  // M1
      "1110",  // M2
      "0010",  // M3
      "1000",  // M4
      "1010",  // M5
      "0011",  // M6
  });
};

TEST_F(Figure3, RankIsFourSoTwoXFreeRowsExist) {
  EXPECT_EQ(m_.rank(), 4u);
  EXPECT_EQ(kernels::x_free_combinations(m_).size(), 2u);
}

TEST_F(Figure3, PaperCombinationsCancel) {
  // M1 ^ M3 ^ M5
  BitVec a = m_.row(0) ^ m_.row(2) ^ m_.row(4);
  EXPECT_TRUE(a.none());
  // M1 ^ M4
  BitVec b = m_.row(0) ^ m_.row(3);
  EXPECT_TRUE(b.none());
}

TEST_F(Figure3, PaperCombinationsLieInExtractedNullSpace) {
  // The returned basis must span {M1^M3^M5, M1^M4}: check by eliminating the
  // basis with each paper combo appended — rank must not grow.
  const auto basis = kernels::x_free_combinations(m_);
  ASSERT_EQ(basis.size(), 2u);
  Gf2Matrix span(basis);
  const std::size_t base_rank = span.rank();
  Gf2Matrix with_a(basis);
  with_a.append_row(BitVec::from_string("101010"));  // rows M1,M3,M5
  Gf2Matrix with_b(basis);
  with_b.append_row(BitVec::from_string("100100"));  // rows M1,M4
  EXPECT_EQ(with_a.rank(), base_rank);
  EXPECT_EQ(with_b.rank(), base_rank);
}

// ---- properties -------------------------------------------------------------

TEST(Gf2Property, NullSpaceDimensionEqualsRowsMinusRank) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t rows = 1 + static_cast<std::size_t>(rng.below(24));
    const std::size_t cols = 1 + static_cast<std::size_t>(rng.below(16));
    Gf2Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.chance(0.4)) m.set(r, c);
      }
    }
    const auto combos = kernels::x_free_combinations(m);
    EXPECT_EQ(combos.size(), rows - m.rank());
    for (const auto& combo : combos) {
      BitVec acc(cols);
      for (const std::size_t r : combo.set_bits()) acc ^= m.row(r);
      EXPECT_TRUE(acc.none());
    }
  }
}

TEST(Gf2Property, RankInvariantUnderRowShuffle) {
  Rng rng(123);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t rows = 2 + static_cast<std::size_t>(rng.below(12));
    const std::size_t cols = 2 + static_cast<std::size_t>(rng.below(12));
    std::vector<BitVec> r(rows, BitVec(cols));
    for (auto& row : r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.chance(0.5)) row.set(c);
      }
    }
    const Gf2Matrix m(r);
    rng.shuffle(r);
    const Gf2Matrix shuffled(r);
    EXPECT_EQ(m.rank(), shuffled.rank());
  }
}

}  // namespace
}  // namespace xh

namespace xh {
namespace {

TEST(Gf2Solve, UniqueSolution) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"110", "011", "001"});
  const BitVec b = BitVec::from_string("101");
  const auto x = kernels::solve(m, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ((m.row(r) & *x).count() % 2 != 0, b.get(r));
  }
}

TEST(Gf2Solve, InconsistentSystem) {
  // Rows 0 and 1 identical but different rhs.
  const Gf2Matrix m = Gf2Matrix::from_strings({"101", "101"});
  EXPECT_FALSE(kernels::solve(m, BitVec::from_string("10")).has_value());
  EXPECT_TRUE(kernels::solve(m, BitVec::from_string("11")).has_value());
}

TEST(Gf2Solve, UnderdeterminedPicksASolution) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"1100"});
  const auto x = kernels::solve(m, BitVec::from_string("1"));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((m.row(0) & *x).count() % 2, 1u);
}

TEST(Gf2Solve, ZeroRhsGivesZeroSolution) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"110", "011"});
  const auto x = kernels::solve(m, BitVec(2));
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(x->none());
}

TEST(Gf2Solve, WidthChecked) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"110"});
  EXPECT_THROW(kernels::solve(m, BitVec(2)), std::invalid_argument);
}

TEST(Gf2SolveProperty, ConsistentSystemsAlwaysSolved) {
  Rng rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t rows = 1 + rng.below(20);
    const std::size_t cols = 1 + rng.below(24);
    Gf2Matrix m(rows, cols);
    BitVec secret(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.chance(0.5)) secret.set(c);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.chance(0.4)) m.set(r, c);
      }
    }
    BitVec b(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      b.set(r, (m.row(r) & secret).count() % 2 != 0);
    }
    const auto x = kernels::solve(m, b);  // constructed consistent
    ASSERT_TRUE(x.has_value()) << "iteration " << iter;
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ((m.row(r) & *x).count() % 2 != 0, b.get(r));
    }
  }
}

}  // namespace
}  // namespace xh
