// Counter exactness: the instrumented pipeline's counters are pure
// functions of the input, so on hand-computable workloads they must equal
// the session/report facts exactly — not merely be plausible.
//
// The 4x4 MISR scenario is small enough to verify on paper: m=4, q=1, one
// pattern over 4 chains of length 4, X's captured on chain 0 at shift
// cycles 0, 1 and 2. The stop threshold is m−q = 3, so the third X triggers
// exactly one mid-stream stop; the Gaussian elimination there runs over the
// m=4 signature rows and emits the q=1 selected combination, whose X-freeness
// re-check touches one row per set selection bit.
#include <cstdint>

#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "engine/pipeline_context.hpp"
#include "misr/x_cancel.hpp"
#include "obs/trace.hpp"

// A whole-tree XH_OBS_NOOP build compiles the pipeline's instrumentation
// out, so there is nothing to measure — the entire suite is live-only.
#ifndef XH_OBS_NOOP

namespace xh {
namespace {

std::uint64_t counter(const Trace& t, const std::string& name) {
  const auto it = t.counters().find(name);
  return it == t.counters().end() ? 0 : it->second.value;
}

TEST(CounterExactness, FourByFourCancelSession) {
  ResponseMatrix rm({4, 4}, 1);
  for (std::size_t c = 0; c < rm.num_cells(); ++c) rm.set(0, c, Lv::k0);
  rm.set(0, 0, Lv::kX);  // chain 0, shift cycle 0
  rm.set(0, 1, Lv::kX);  // chain 0, shift cycle 1
  rm.set(0, 2, Lv::kX);  // chain 0, shift cycle 2 -> hits threshold m-q = 3

  Trace t;
  const XCancelResult r = run_x_canceling(rm, {4, 1}, nullptr, &t);

  // Scenario facts, verifiable by hand.
  EXPECT_EQ(r.shift_cycles, 4u);
  EXPECT_EQ(r.total_x_seen, 3u);
  EXPECT_EQ(r.stops, 1u);
  EXPECT_TRUE(r.healthy());

  // Counters must equal those facts exactly.
  EXPECT_EQ(counter(t, "xcancel.shift_cycles"), 4u);
  EXPECT_EQ(counter(t, "xcancel.x_seen"), 3u);
  EXPECT_EQ(counter(t, "xcancel.stops"), 1u);
  // One mid-stream elimination over all m=4 signature rows, emitting the
  // q=1 combination; its re-check XORs one X-dependency row per set bit.
  EXPECT_EQ(counter(t, "xcancel.eliminations"), 1u);
  EXPECT_EQ(counter(t, "xcancel.elimination_rows"), 4u);
  EXPECT_EQ(counter(t, "xcancel.combinations_emitted"), 1u);
  EXPECT_EQ(counter(t, "xcancel.recheck_rows"), 1u);
  // No recovery path engaged.
  EXPECT_EQ(counter(t, "xcancel.combinations_dropped"), 0u);
  EXPECT_EQ(counter(t, "xcancel.starved_stops"), 0u);
  EXPECT_EQ(counter(t, "xcancel.starvation_repaid"), 0u);

  // The segment-X histogram sampled the one stop's 3 accumulated symbols.
  const auto hist = t.histograms().find("xcancel.segment_x");
  ASSERT_NE(hist, t.histograms().end());
  EXPECT_EQ(hist->second.count, 1u);
  EXPECT_EQ(hist->second.sum, 3u);
}

TEST(CounterExactness, MaskingCountersMatchPartitionResult) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  PipelineContext ctx(cfg);
  Trace t;
  ctx.set_trace(&t);
  const HybridSimulation sim =
      run_hybrid_simulation(paper_example_response(5), ctx);
  const PartitionResult& pr = sim.report.partitioning;
  ASSERT_FALSE(pr.partitions.empty());

  std::uint64_t cells_masked = 0;
  std::uint64_t x_masked = 0;
  for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
    cells_masked += pr.masks[i].count();
    x_masked += pr.masks[i].count() * pr.partitions[i].count();
  }
  EXPECT_EQ(counter(t, "masking.partitions"), pr.partitions.size());
  // L·C control bits per partition: one bit per cell in the mask vector.
  EXPECT_EQ(counter(t, "masking.control_bits"),
            pr.partitions.size() * sim.masked_response.num_cells());
  EXPECT_EQ(counter(t, "masking.cells_masked"), cells_masked);
  EXPECT_EQ(counter(t, "masking.x_masked"), x_masked);
  EXPECT_EQ(x_masked, pr.masked_x);
  // The trusting pipeline never masks observable values.
  EXPECT_EQ(counter(t, "masking.violations"), 0u);
  EXPECT_EQ(t.histograms().at("masking.masked_cells_per_partition").count,
            pr.partitions.size());
}

TEST(CounterExactness, HybridGaugesMirrorTheReport) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  PipelineContext ctx(cfg);
  Trace t;
  ctx.set_trace(&t);
  const HybridReport rep = run_hybrid_analysis(paper_example_x_matrix(), ctx);
  const auto gauge = [&](const char* name) {
    return t.gauges().at(name).value;
  };
  EXPECT_DOUBLE_EQ(gauge("hybrid.partitions"),
                   static_cast<double>(rep.partitioning.partitions.size()));
  EXPECT_DOUBLE_EQ(gauge("hybrid.masked_x"),
                   static_cast<double>(rep.partitioning.masked_x));
  EXPECT_DOUBLE_EQ(gauge("hybrid.leaked_x"),
                   static_cast<double>(rep.partitioning.leaked_x));
  EXPECT_DOUBLE_EQ(gauge("hybrid.masking_bits"),
                   rep.partitioning.masking_bits);
  EXPECT_DOUBLE_EQ(gauge("hybrid.canceling_bits"),
                   rep.partitioning.canceling_bits);
  EXPECT_DOUBLE_EQ(gauge("hybrid.total_bits"), rep.partitioning.total_bits);
}

TEST(CounterExactness, PooledAnalysisCountsAtMergePoints) {
  // Counters accumulate only at deterministic merge points, so a pooled run
  // must report the identical engine counters as a serial run (plus the
  // pool-task counter, which only the pooled branch increments).
  PartitionerConfig cfg;
  cfg.misr = {10, 2};

  Trace serial;
  {
    PipelineContext ctx(cfg);
    ctx.set_trace(&serial);
    (void)run_hybrid_analysis(paper_example_x_matrix(), ctx);
  }
  Trace pooled;
  {
    ThreadPool pool(3);
    PipelineContext ctx(cfg, &pool);
    ctx.set_trace(&pooled);
    (void)run_hybrid_analysis(paper_example_x_matrix(), ctx);
  }
  EXPECT_EQ(counter(serial, "engine.pool_tasks"), 0u);
  EXPECT_GT(counter(pooled, "engine.pool_tasks"), 0u);
  for (const char* name :
       {"engine.cell_analyses", "engine.rows_examined",
        "engine.probes_attempted", "engine.probes_accepted",
        "engine.probes_rejected_zero_copy"}) {
    EXPECT_EQ(counter(serial, name), counter(pooled, name)) << name;
  }
}

}  // namespace
}  // namespace xh

#endif  // XH_OBS_NOOP
