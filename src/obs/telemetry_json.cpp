#include "obs/telemetry_json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace xh {

const char* const kTelemetrySchema = "xh-telemetry/1";

const std::vector<std::string>& telemetry_schema_names() {
  // xh-telemetry-schema-begin — every literal between the markers is part
  // of the canonical xh-telemetry/1 instrument registry; xh_lint rule
  // XH-OBS-001 validates instrument-name literals tree-wide against it.
  static const std::vector<std::string> kNames = {
      // span leaf names (timers)
      "analysis",
      "cancel",
      "mask",
      "partition",
      "simulation",
      "validate",
      // bench.* gauges (bench_partitioner / bench_robustness / bench_table1
      // / bench_service)
      "bench.cells",
      "bench.checkpoint_tax",
      "bench.direct_ms",
      "bench.dispatch_overhead",
      "bench.engine_ms",
      "bench.engine_pooled_ms",
      "bench.engine_rounds_per_sec",
      "bench.flood_cap",
      "bench.jobs",
      "bench.jobs_per_sec",
      "bench.kernel_and_count_best_ms",
      "bench.kernel_and_count_ref_ms",
      "bench.kernel_and_count_scalar_ms",
      "bench.kernel_best_isa",
      "bench.kernel_scalar_overhead",
      "bench.kernel_speedup",
      "bench.partitions",
      "bench.patterns",
      "bench.peak_rss_kb",
      "bench.reference_ms",
      "bench.results_identical",
      "bench.rounds",
      "bench.scaling",
      "bench.service_checkpointed_ms",
      "bench.service_pooled_ms",
      "bench.service_serial_ms",
      "bench.speedup",
      "bench.store_csr_mapped_bytes",
      "bench.store_csr_ms",
      "bench.store_csr_peak_rss_kb",
      "bench.store_csr_resident_bytes",
      "bench.store_mmap_mapped_bytes",
      "bench.store_mmap_ms",
      "bench.store_mmap_peak_rss_kb",
      "bench.store_mmap_resident_bytes",
      "bench.store_tebm_mapped_bytes",
      "bench.store_tebm_ms",
      "bench.store_tebm_peak_rss_kb",
      "bench.store_tebm_resident_bytes",
      "bench.total_x",
      // engine.* counters
      "engine.cell_analyses",
      "engine.pool_tasks",
      "engine.probes_accepted",
      "engine.probes_attempted",
      "engine.probes_rejected_zero_copy",
      "engine.rounds_cancelled",
      "engine.rows_examined",
      "engine.snapshot_restores",
      "engine.victim_rows",
      // hybrid.* result gauges
      "hybrid.canceling_bits",
      "hybrid.degraded",
      "hybrid.leaked_x",
      "hybrid.masked_x",
      "hybrid.masking_bits",
      "hybrid.partitions",
      "hybrid.total_bits",
      // kernel.* dispatch-layer gauges/counters (export_kernel_telemetry)
      "kernel.isa",
      "kernel.m4rm_tables_built",
      // masking.* counters/histograms
      "masking.cells_masked",
      "masking.control_bits",
      "masking.masked_cells_per_partition",
      "masking.partitions",
      "masking.violations",
      "masking.x_masked",
      // response_io.* parse counters
      "response_io.cell_records",
      "response_io.lines_parsed",
      "response_io.pattern_rows",
      "response_io.x_entries",
      // service.* job-runner counters/gauges (PartitionService)
      "service.checkpoints_resumed",
      "service.checkpoints_written",
      "service.heartbeats",
      "service.job_retries",
      "service.jobs_accepted",
      "service.jobs_cancelled",
      "service.jobs_completed",
      "service.jobs_degraded",
      "service.jobs_failed",
      "service.jobs_rejected_overload",
      "service.queue_depth",
      "service.queue_depth_peak",
      "service.watchdog_stalls",
      // store.* counters/gauges (XMatrixStore backends; see
      // src/storage/x_matrix_store.cpp). probe_* and rows_touched are pure
      // functions of the engine's work and golden-diff across backends;
      // pages_touched is deterministic per backend but backend-shaped, so
      // the CI diff (tools/check_telemetry.py) skips it.
      "store.mapped_bytes",
      "store.pages_touched",
      "store.probe_count_in",
      "store.probe_hash_in",
      "store.probe_intersect",
      "store.resident_bytes",
      "store.rows_touched",
      // xcancel.* counters
      "xcancel.combinations_dropped",
      "xcancel.combinations_emitted",
      "xcancel.elimination_rows",
      "xcancel.eliminations",
      "xcancel.recheck_rows",
      "xcancel.segment_x",
      "xcancel.shift_cycles",
      "xcancel.starvation_repaid",
      "xcancel.starved_stops",
      "xcancel.stops",
      "xcancel.x_seen",
  };
  // xh-telemetry-schema-end
  return kNames;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string num(std::uint64_t v) { return std::to_string(v); }

/// Shortest-round-trip-ish double rendering; non-finite values (which only
/// a degenerate workload can produce) degrade to 0 so the document stays
/// valid JSON.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Emits one `"key": value` map section from any ordered map, with
/// @p render turning the mapped value into a JSON fragment.
template <typename Map, typename Render>
void append_section(std::string& out, const char* key, const Map& map,
                    Render render, bool trailing_comma) {
  out += "  ";
  append_escaped(out, key);
  out += ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    out += render(value);
  }
  out += first ? "}" : "\n  }";
  if (trailing_comma) out += ',';
  out += '\n';
}

std::string render_histogram(const TraceHistogram& h) {
  std::string out = "{\"count\": " + num(h.count) + ", \"sum\": " +
                    num(h.sum) + ", \"min\": " + num(h.min) +
                    ", \"max\": " + num(h.max) + ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < TraceHistogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '[' + num(TraceHistogram::bucket_lo(i)) + ", " +
           num(h.buckets[i]) + ']';
  }
  out += "]}";
  return out;
}

std::string render_timer(const TraceTimer& t) {
  return "{\"count\": " + num(t.count) + ", \"total_ms\": " +
         num(t.total_ms()) + ", \"max_ms\": " + num(t.max_ms()) + '}';
}

}  // namespace

std::string telemetry_to_json(const Trace& trace, const TelemetryMeta& meta,
                              const Diagnostics* diags,
                              const TelemetryJsonOptions& options) {
  std::string out = "{\n  \"schema\": ";
  append_escaped(out, kTelemetrySchema);
  out += ",\n  \"tool\": ";
  append_escaped(out, meta.tool);
  out += ",\n";

  // "run" preserves the caller's ordering: it is context, not a registry.
  out += "  \"run\": {";
  bool first = true;
  for (const auto& [key, value] : meta.run) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, key);
    out += ": ";
    append_escaped(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  const bool with_diags = diags != nullptr;
  append_section(out, "counters", trace.counters(),
                 [](const TraceCounter& c) { return num(c.value); }, true);
  append_section(out, "gauges", trace.gauges(),
                 [](const TraceGauge& g) { return num(g.value); }, true);
  append_section(out, "histograms", trace.histograms(), render_histogram,
                 options.include_timers || with_diags);
  if (options.include_timers) {
    append_section(out, "timers", trace.timers(), render_timer, with_diags);
  }
  if (with_diags) {
    // Only kinds that actually fired; counts are exact past the retention
    // cap, so this is the full mismatch-bucket census.
    std::map<std::string, std::uint64_t> kinds;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(DiagKind::kNumKinds_); ++k) {
      const std::size_t count = diags->count(static_cast<DiagKind>(k));
      if (count > 0) {
        kinds[diag_kind_name(static_cast<DiagKind>(k))] = count;
      }
    }
    append_section(out, "diagnostics", kinds,
                   [](std::uint64_t v) { return num(v); }, false);
  }
  out += "}\n";
  return out;
}

void write_telemetry_json(std::ostream& out, const Trace& trace,
                          const TelemetryMeta& meta, const Diagnostics* diags,
                          const TelemetryJsonOptions& options) {
  out << telemetry_to_json(trace, meta, diags, options);
}

}  // namespace xh
