#include "misr/x_cancel.hpp"

#include <algorithm>
#include <string>

#include "gf2/matrix.hpp"
#include "kernels/kernels.hpp"
#include "misr/spatial_compactor.hpp"

namespace xh {

XCancelSession::XCancelSession(MisrConfig cfg, Diagnostics* diags,
                               Trace* trace)
    : cfg_(cfg),
      taps_(FeedbackPolynomial::primitive(cfg.size).taps()),
      concrete_(FeedbackPolynomial::primitive(cfg.size)),
      diags_(diags),
      trace_(trace) {
  cfg_.validate();
  concrete_.reset();
  xdep_.assign(cfg_.size, BitVec(cfg_.size * 4));
}

void XCancelSession::reset() {
  concrete_.reset();
  const std::size_t cap = xdep_.front().size();
  xdep_.assign(cfg_.size, BitVec(cap));
  segment_x_ = 0;
  deficit_ = 0;
  result_ = {};
  finished_ = false;
}

std::size_t XCancelSession::stop_threshold() const {
  const std::size_t budget = cfg_.size - cfg_.q;
  return budget > deficit_ ? budget - deficit_ : 1;
}

void XCancelSession::install_combination_tamper(CombinationTamper hook) {
  tamper_ = std::move(hook);
}

void XCancelSession::shift(const std::vector<Lv>& slice) {
  XH_REQUIRE(!finished_, "session already finished; call reset()");
  XH_REQUIRE(slice.size() == cfg_.size, "slice width must equal MISR size");

  // Concrete step with X read as 0 — sound because extracted combinations
  // are X-independent, so the substituted value cancels out.
  BitVec input(cfg_.size);
  std::size_t x_in_slice = 0;
  for (std::size_t i = 0; i < cfg_.size; ++i) {
    XH_REQUIRE(slice[i] != Lv::kZ, "Z cannot be captured into the MISR");
    if (slice[i] == Lv::k1) input.set(i);
    if (slice[i] == Lv::kX) ++x_in_slice;
  }
  concrete_.step(input);

  // Symbolic step: dep' = A·dep, then inject fresh symbols for X inputs.
  const std::size_t cap = xdep_.front().size();
  if (segment_x_ + x_in_slice > cap) {
    const std::size_t grown = std::max(cap * 2, segment_x_ + x_in_slice);
    for (auto& row : xdep_) row.resize(grown);
  }
  std::vector<BitVec> next(cfg_.size);
  const BitVec feedback = xdep_[cfg_.size - 1];
  next[0] = feedback;
  for (std::size_t i = 1; i < cfg_.size; ++i) next[i] = std::move(xdep_[i - 1]);
  // Same feedback taps as the concrete LFSR so both sides stay in lock-step.
  // Dispatched XOR: the symbolic rows grow with the segment's X count, so
  // this is the MISR side's widest hot loop.
  for (const std::size_t t : taps_) kernels::xor_into(next[t], feedback);
  for (std::size_t i = 0; i < cfg_.size; ++i) {
    if (slice[i] == Lv::kX) next[i].flip(segment_x_++);
  }
  xdep_ = std::move(next);

  ++result_.shift_cycles;
  result_.total_x_seen += x_in_slice;
  obs_count(trace_, "xcancel.shift_cycles");
  obs_count(trace_, "xcancel.x_seen", x_in_slice);

  if (segment_x_ >= stop_threshold()) extract(/*final_flush=*/false);
}

void XCancelSession::extract(bool final_flush) {
  if (segment_x_ == 0) {
    if (final_flush && result_.shift_cycles > 0) {
      // Fully deterministic signature: read all m bits directly. No stop,
      // no selective-XOR control data.
      for (std::size_t b = 0; b < cfg_.size; ++b) {
        SignatureBit sig;
        sig.stop_index = result_.stops;
        sig.combination = BitVec(cfg_.size);
        sig.combination.set(b);
        sig.value = concrete_.state().get(b);
        result_.signature.push_back(std::move(sig));
      }
    }
    return;
  }

  Gf2Matrix xmat(cfg_.size, segment_x_);
  for (std::size_t r = 0; r < cfg_.size; ++r) {
    for (std::size_t c = 0; c < segment_x_; ++c) {
      if (xdep_[r].get(c)) xmat.set(r, c);
    }
  }
  obs_count(trace_, "xcancel.eliminations");
  obs_count(trace_, "xcancel.elimination_rows", cfg_.size);
  obs_record(trace_, "xcancel.segment_x", segment_x_);
  std::vector<BitVec> combos = kernels::x_free_combinations(xmat);
  if (tamper_) tamper_(combos, xmat);

  // Take q verified combinations, plus any owed from earlier starved stops
  // — the null space is larger than q when this segment stopped below the
  // m − q budget, so the deficit can be repaid here.
  const std::size_t want = cfg_.q + deficit_;
  std::size_t taken = 0;
  for (const BitVec& combo : combos) {
    if (taken == want) break;
    // Re-check the X-freeness invariant before emitting the bit; a
    // combination that fails is never allowed into the signature.
    BitVec acc(segment_x_);
    for (const std::size_t r : combo.set_bits()) {
      acc ^= xmat.row(r);
      obs_count(trace_, "xcancel.recheck_rows");
    }
    if (acc.any()) {
      // With no collector and no injection hook this is unreachable except
      // through a library bug — keep the legacy fail-fast behavior.
      if (diags_ == nullptr && !tamper_) {
        XH_ASSERT(acc.none(), "extracted combination is not X-free");
      }
      ++result_.contaminated_dropped;
      obs_count(trace_, "xcancel.combinations_dropped");
      diag_report(diags_, DiagSeverity::kWarning,
                  DiagKind::kContaminatedCombination,
                  "stop " + std::to_string(result_.stops),
                  "selection vector fails the X-freeness re-check; dropped");
      continue;
    }

    SignatureBit sig;
    sig.stop_index = result_.stops;
    sig.combination = combo;
    bool value = false;
    for (const std::size_t r : combo.set_bits()) {
      value ^= concrete_.state().get(r);
    }
    sig.value = value;
    result_.signature.push_back(std::move(sig));
    ++taken;
    ++result_.selection_vectors;
  }
  obs_count(trace_, "xcancel.combinations_emitted", taken);

  if (taken > cfg_.q) result_.extra_combinations += taken - cfg_.q;
  const std::size_t owed_before = deficit_;
  deficit_ = want - taken;
  if (taken < cfg_.q) {
    ++result_.starved_stops;
    obs_count(trace_, "xcancel.starved_stops");
    // The grown deficit lowers stop_threshold() for the next segment, so a
    // comparable burst cannot overshoot again and the owed bits fit in the
    // next stop's null space.
    diag_report(diags_, DiagSeverity::kWarning, DiagKind::kExtractionStarved,
                "stop " + std::to_string(result_.stops),
                "only " + std::to_string(taken) + " of " +
                    std::to_string(cfg_.q) +
                    " X-free combinations available (segment holds " +
                    std::to_string(segment_x_) + " X's)");
  } else if (owed_before > 0 && deficit_ == 0) {
    obs_count(trace_, "xcancel.starvation_repaid", owed_before);
    diag_report(diags_, DiagSeverity::kInfo, DiagKind::kExtractionRecovered,
                "stop " + std::to_string(result_.stops),
                "repaid " + std::to_string(owed_before) +
                    " signature bits owed from starved stops");
  }

  ++result_.stops;
  obs_count(trace_, "xcancel.stops");
  result_.stop_cycles.push_back(result_.shift_cycles);
  concrete_.reset();
  const std::size_t cap = xdep_.front().size();
  xdep_.assign(cfg_.size, BitVec(cap));
  segment_x_ = 0;
}

const XCancelResult& XCancelSession::finish() {
  if (!finished_) {
    extract(/*final_flush=*/true);
    result_.signature_deficit = deficit_;
    if (deficit_ > 0) {
      diag_report(diags_, DiagSeverity::kError, DiagKind::kSignatureDeficit,
                  "session",
                  std::to_string(deficit_) +
                      " signature bits lost to starved extractions; the "
                      "emitted signature is X-free but shorter than planned");
    }
    finished_ = true;
  }
  return result_;
}

XCancelResult run_x_canceling(const ResponseMatrix& response, MisrConfig cfg,
                              Diagnostics* diags, Trace* trace) {
  cfg.validate();
  const ScopedSpan span(trace, "cancel");
  XCancelSession session(cfg, diags, trace);
  const ScanGeometry& geo = response.geometry();
  SpatialCompactor compactor(geo.num_chains, cfg.size);
  std::vector<Lv> chain_values(geo.num_chains);
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    for (std::size_t pos = 0; pos < geo.chain_length; ++pos) {
      for (std::size_t chain = 0; chain < geo.num_chains; ++chain) {
        chain_values[chain] = response.get(p, geo.cell_index(chain, pos));
      }
      session.shift(compactor.compact(chain_values));
    }
  }
  return session.finish();
}

}  // namespace xh
