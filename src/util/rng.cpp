#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xh {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& lane : s_) lane = splitmix64(seed);
  // A pathological all-zero state would make xoshiro degenerate; splitmix64
  // cannot produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  XH_REQUIRE(bound > 0, "Rng::below bound must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  XH_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (width == 0) {  // full 64-bit span
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian() {
  // Irwin–Hall with n=12: sum of 12 uniforms has mean 6, variance 1.
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform();
  return acc - 6.0;
}

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  XH_REQUIRE((state[0] | state[1] | state[2] | state[3]) != 0,
             "Rng::set_state rejects the all-zero xoshiro state");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  XH_REQUIRE(k <= n, "cannot sample more items than the population size");
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch when k << n.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace xh
