// Canonical telemetry serializer: schema envelope, deterministic ordering,
// escaping, the include_timers switch, and a golden-file lock on the paper
// worked example (the document every adopter — CLI and benches — emits).
#include "obs/telemetry_json.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "engine/pipeline_context.hpp"

namespace xh {
namespace {

std::string render(const Trace& trace, const TelemetryMeta& meta,
                   const Diagnostics* diags = nullptr,
                   const TelemetryJsonOptions& options = {}) {
  return telemetry_to_json(trace, meta, diags, options);
}

TEST(TelemetryJson, SchemaEnvelopeAlwaysPresent) {
  Trace t;
  TelemetryMeta meta;
  meta.tool = "unit";
  const std::string doc = render(t, meta);
  EXPECT_NE(doc.find("\"schema\": \"xh-telemetry/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(std::string(kTelemetrySchema), "xh-telemetry/1");
}

TEST(TelemetryJson, TimersOmittedWhenExcluded) {
  Trace t;
  t.span_enter("analysis");
  t.span_exit(7);
  TelemetryMeta meta;
  meta.tool = "unit";
  TelemetryJsonOptions opt;
  opt.include_timers = true;
  EXPECT_NE(render(t, meta, nullptr, opt).find("\"timers\""),
            std::string::npos);
  opt.include_timers = false;
  EXPECT_EQ(render(t, meta, nullptr, opt).find("\"timers\""),
            std::string::npos);
}

TEST(TelemetryJson, DiagnosticsSectionListsNonZeroKindsOnly) {
  Trace t;
  TelemetryMeta meta;
  meta.tool = "unit";
  EXPECT_EQ(render(t, meta).find("\"diagnostics\""), std::string::npos);

  Diagnostics diags;
  diags.warn(DiagKind::kMissingX, "pattern 0 cell 1", "resolved");
  diags.warn(DiagKind::kMissingX, "pattern 0 cell 2", "resolved");
  const std::string doc = render(t, meta, &diags);
  EXPECT_NE(doc.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(doc.find("\"missing-x\": 2"), std::string::npos);
  EXPECT_EQ(doc.find("undeclared-x"), std::string::npos);
}

TEST(TelemetryJson, StringsAreEscaped) {
  Trace t;
  TelemetryMeta meta;
  meta.tool = "unit";
  meta.run = {{"path", "a\"b\\c\nd"}};
  const std::string doc = render(t, meta);
  EXPECT_NE(doc.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(TelemetryJson, MapsEmitInSortedKeyOrder) {
  Trace t;
  t.counter("zeta");
  t.counter("alpha");
  t.counter("mid");
  TelemetryMeta meta;
  meta.tool = "unit";
  const std::string doc = render(t, meta);
  EXPECT_LT(doc.find("alpha"), doc.find("mid"));
  EXPECT_LT(doc.find("mid"), doc.find("zeta"));
}

// The remaining tests observe the pipeline's live instrumentation, which a
// whole-tree XH_OBS_NOOP build compiles out.
#ifndef XH_OBS_NOOP

TEST(TelemetryJson, IdenticalRunsAreByteIdentical) {
  TelemetryMeta meta;
  meta.tool = "unit";
  meta.run = {{"k", "v"}};
  TelemetryJsonOptions opt;
  opt.include_timers = false;  // timers carry wall-clock noise by design

  const auto run = [&] {
    Trace t;
    PartitionerConfig cfg;
    cfg.misr = {10, 2};
    PipelineContext ctx(cfg);
    ctx.set_trace(&t);
    (void)run_hybrid_analysis(paper_example_x_matrix(), ctx);
    return render(t, meta, nullptr, opt);
  };
  EXPECT_EQ(run(), run());
}

TEST(TelemetryJson, StreamAndStringVariantsAgree) {
  Trace t;
  t.counter("events").value = 7;
  t.gauge("ratio").value = 1.5;
  TelemetryMeta meta;
  meta.tool = "unit";
  std::ostringstream os;
  write_telemetry_json(os, t, meta);
  EXPECT_EQ(os.str(), render(t, meta));
}

// Golden lock: the full document for the Section 4 worked example (m=10,
// q=2), timers excluded. Every field in it — engine counters, hybrid
// gauges, victim-row histogram — is a pure function of the paper's X
// matrix, so any diff is a real behavior change (instrumentation moved,
// partitioner decisions changed, or the schema itself was revised — the
// last requires bumping xh-telemetry/1 and regenerating).
TEST(TelemetryJson, PaperExampleMatchesGoldenFile) {
  Trace t;
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  PipelineContext ctx(cfg);
  ctx.set_trace(&t);
  (void)run_hybrid_analysis(paper_example_x_matrix(), ctx);

  TelemetryMeta meta;
  meta.tool = "telemetry_json_test";
  meta.run = {{"workload", "paper-example"}, {"misr", "10/2"}};
  TelemetryJsonOptions opt;
  opt.include_timers = false;
  const std::string actual = render(t, meta, nullptr, opt);

  const std::string golden_path =
      std::string(XH_OBS_GOLDEN_DIR) + "/paper_example_telemetry.json";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(actual, ss.str())
      << "telemetry for the paper example diverged from the golden file; "
         "if the change is intentional, regenerate " << golden_path;
}

#endif  // XH_OBS_NOOP

}  // namespace
}  // namespace xh
