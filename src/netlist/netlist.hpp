// Structural gate-level netlist with sequential elements and X-source
// modeling (unscanned flops, tri-state buses).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace xh {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();

/// One node of the netlist graph. The gate's output net is identified with
/// the gate itself (single-output gates only, as in .bench).
struct Gate {
  GateType type = GateType::kBuf;
  std::vector<GateId> fanin;
  std::string name;
  /// For kDff only: participates in the scan chain (deterministic at capture)
  /// or free-running (an X-source when uninitialized).
  bool scanned = true;
};

/// A gate-level circuit: combinational cloud + DFFs + primary I/O.
///
/// Construction is incremental via the add_* methods; `finalize()` validates
/// the structure and computes the topological order used by all simulators.
/// After finalize() the netlist is immutable.
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  const std::string& name() const { return name_; }

  // ---- construction -------------------------------------------------------
  GateId add_input(std::string gate_name);
  GateId add_gate(GateType type, std::vector<GateId> fanin,
                  std::string gate_name = "");
  GateId add_dff(GateId d_input, std::string gate_name = "",
                 bool scanned = true);
  /// Creates a DFF whose D input is wired later with connect_dff(); this is
  /// how sequential feedback loops are built (the D cone may read the DFF's
  /// own output). finalize() rejects still-dangling DFFs.
  GateId add_dff_placeholder(std::string gate_name = "", bool scanned = true);
  void connect_dff(GateId dff, GateId d_input);
  void mark_output(GateId gate);
  /// Changes whether a DFF is scanned; only valid before finalize().
  void set_scanned(GateId dff, bool scanned);

  /// Validates arity/acyclicity and freezes the netlist. Throws on malformed
  /// structure (dangling fanin, combinational cycle, bad bus wiring).
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- topology -----------------------------------------------------------
  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId id) const;
  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }

  /// DFFs that are scanned / not scanned (available after finalize()).
  std::vector<GateId> scan_dffs() const;
  std::vector<GateId> nonscan_dffs() const;

  /// Combinational evaluation order: every gate appears after its fanins,
  /// with kInput/kDff/kConst treated as sources. Available after finalize().
  const std::vector<GateId>& topo_order() const;

  /// Gates in the transitive fanout of @p id (excluding @p id itself).
  std::vector<GateId> fanout_cone(GateId id) const;

  /// Fanout adjacency (computed at finalize()).
  const std::vector<GateId>& fanout(GateId id) const;

  /// Logic level (longest path from a source), 0 for sources.
  std::size_t level(GateId id) const;
  std::size_t depth() const { return depth_; }

  /// Lookup by name; returns kNoGate when absent.
  GateId find(const std::string& gate_name) const;

  bool is_output(GateId id) const;

 private:
  GateId add_node(Gate g);
  void check_mutable() const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<bool> output_flag_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<GateId> topo_;
  std::vector<std::vector<GateId>> fanout_;
  std::vector<std::size_t> level_;
  std::size_t depth_ = 0;
  bool finalized_ = false;
  std::uint64_t anon_counter_ = 0;
};

/// Summary statistics for reports and tests.
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;  // combinational gates only
  std::size_t dffs = 0;
  std::size_t nonscan_dffs = 0;
  std::size_t tristate_drivers = 0;
  std::size_t buses = 0;
  std::size_t depth = 0;
};

NetlistStats compute_stats(const Netlist& nl);

}  // namespace xh
