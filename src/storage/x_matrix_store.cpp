#include "storage/x_matrix_store.hpp"

#include "obs/trace.hpp"

namespace xh {

StoreStats XMatrixStore::stats() const {
  StoreStats s;
  s.probe_count_in = probe_count_in_.load(std::memory_order_relaxed);
  s.probe_hash_in = probe_hash_in_.load(std::memory_order_relaxed);
  s.probe_intersect = probe_intersect_.load(std::memory_order_relaxed);
  s.rows_touched = s.probe_count_in + s.probe_hash_in + s.probe_intersect;
  s.pages_touched = pages_touched_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes();
  s.mapped_bytes = mapped_bytes();
  return s;
}

void export_store_telemetry(const XMatrixStore& store, Trace* trace) {
  if (trace == nullptr) return;
  const StoreStats s = store.stats();
  obs_count(trace, "store.probe_count_in", s.probe_count_in);
  obs_count(trace, "store.probe_hash_in", s.probe_hash_in);
  obs_count(trace, "store.probe_intersect", s.probe_intersect);
  obs_count(trace, "store.rows_touched", s.rows_touched);
  obs_count(trace, "store.pages_touched", s.pages_touched);
  obs_gauge(trace, "store.resident_bytes",
            static_cast<double>(s.resident_bytes));
  obs_gauge(trace, "store.mapped_bytes", static_cast<double>(s.mapped_bytes));
}

}  // namespace xh
