// Interactive view of the cost function: forces the partitioner to k rounds
// for increasing k and prints the masking-vs-canceling control-bit trade-off,
// marking the point where the paper's stopping rule lands.
//
// Usage: tradeoff_explorer [misr_size] [q]
#include <cstdio>
#include <cstdlib>

#include "core/partitioner.hpp"
#include "workload/industrial.hpp"

using namespace xh;

int main(int argc, char** argv) {
  MisrConfig misr{32, 7};
  if (argc > 1) misr.size = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) misr.q = static_cast<std::size_t>(std::atoi(argv[2]));
  if (misr.size < 2 || misr.size > 64 || misr.q < 1 || misr.q >= misr.size) {
    std::fprintf(stderr, "usage: %s [misr_size 2..64] [q 1..m-1]\n", argv[0]);
    return 1;
  }

  const WorkloadProfile profile = scaled_profile(ckt_b_profile(), 0.25);
  const XMatrix xm = generate_workload(profile);
  std::printf("workload: %zu cells, %zu patterns, %zu X's; MISR m=%zu q=%zu "
              "(%.2f control bits per leaked X)\n\n",
              xm.num_cells(), xm.num_patterns(), xm.total_x(), misr.size,
              misr.q,
              static_cast<double>(misr.size * misr.q) /
                  static_cast<double>(misr.size - misr.q));

  PartitionerConfig auto_cfg;
  auto_cfg.misr = misr;
  const PartitionResult chosen = partition_patterns(xm, auto_cfg);

  std::printf("%-8s %-12s %-14s %-16s %-14s\n", "rounds", "partitions",
              "masking bits", "canceling bits", "total bits");
  for (std::size_t k = 0;; ++k) {
    PartitionerConfig cfg;
    cfg.misr = misr;
    cfg.stop_on_cost_increase = false;
    cfg.max_rounds = k;
    const PartitionResult r = partition_patterns(xm, cfg);
    const bool is_choice = r.num_partitions() == chosen.num_partitions();
    std::printf("%-8zu %-12zu %-14.0f %-16.0f %-14.0f%s\n", k,
                r.num_partitions(), r.masking_bits, r.canceling_bits,
                r.total_bits, is_choice ? "  <= cost-function stop" : "");
    if (r.num_partitions() < k + 1 ||
        k > chosen.num_partitions() + 10) {
      break;  // ran out of splittable groups, or far past the optimum
    }
  }
  std::printf(
      "\nThe stopping rule accepts a round only while it removes more\n"
      "canceling control data than the extra per-partition mask costs.\n");
  return 0;
}
