// Circuit-level usage: start from a gate-level netlist with X-sources,
// generate tests, capture responses through scan, and apply the hybrid
// X-handling — the complete DFT flow the paper assumes around its method.
//
// The circuit here is the ISCAS-89 s27 benchmark, extended with the two
// X-source structures the paper names: an unscanned flop and a tri-state
// bus pair sharing a net.
#include <cstdio>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "scan/test_application.hpp"

using namespace xh;

namespace {

const char* kCircuit = R"(
# s27 extended with X-sources
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5  = DFF(G10)
G6  = DFF(G11)
G7  = DFF(G13)
G14 = NOT(G0)
G8  = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9  = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
# X-sources: an unscanned flop and a two-driver bus
U0  = NDFF(G9)
T0  = TRISTATE(G1, U0)
T1  = TRISTATE(G2, G15)
B0  = BUS(T0, T1)
G20 = XOR(B0, G12)
Q0  = DFF(G20)
Q1  = DFF(G16)
Q2  = DFF(G15)
)";

}  // namespace

int main() {
  const Netlist nl = read_bench_string(kCircuit, "s27x");
  const NetlistStats stats = compute_stats(nl);
  std::printf("circuit %s: %zu gates, %zu DFFs (%zu unscanned), %zu buses\n",
              nl.name().c_str(), stats.gates, stats.dffs, stats.nonscan_dffs,
              stats.buses);

  const ScanPlan plan = ScanPlan::build(nl, 2);
  std::printf("scan plan: %zu chains x %zu cells\n",
              plan.geometry().num_chains, plan.geometry().chain_length);

  AtpgConfig acfg;
  acfg.random_patterns = 32;
  acfg.seed = 7;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  std::printf("ATPG: %zu patterns, coverage %.1f%% (%zu/%zu; %zu untestable, "
              "%zu aborted)\n",
              atpg.patterns.size(), 100.0 * atpg.coverage(),
              atpg.num_detected, atpg.faults.size(), atpg.num_untestable,
              atpg.num_aborted);

  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(atpg.patterns);
  std::printf("responses: %zu X's over %zu captures (%.1f%% X-density)\n",
              response.total_x(),
              response.num_patterns() * response.num_cells(),
              100.0 * response.x_density());

  PipelineContext ctx;
  ctx.partitioner.misr = {8, 2};
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  std::printf("hybrid: %zu partitions, %llu X's masked, %llu leaked\n",
              sim.report.partitioning.num_partitions(),
              static_cast<unsigned long long>(sim.report.partitioning.masked_x),
              static_cast<unsigned long long>(
                  sim.report.partitioning.leaked_x));
  std::printf("control bits: masking-only %llu, canceling-only %.0f, "
              "hybrid %.0f\n",
              static_cast<unsigned long long>(sim.report.masking_only_bits),
              sim.report.canceling_only_bits, sim.report.proposed_bits);

  // Verify the zero-coverage-loss guarantee on this circuit.
  FaultSimulator fsim(nl, plan);
  const FaultSimResult ideal =
      fsim.run(atpg.patterns, atpg.faults, observe_all());
  const FaultSimResult masked = fsim.run(
      atpg.patterns, atpg.faults,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  std::printf("fault coverage: %.2f%% unmasked vs %.2f%% with hybrid masks "
              "-> %s\n",
              100.0 * ideal.coverage(), 100.0 * masked.coverage(),
              ideal.num_detected == masked.num_detected
                  ? "no fault coverage loss"
                  : "COVERAGE LOST (bug!)");
  return ideal.num_detected == masked.num_detected ? 0 : 1;
}
