#include "misr/symbolic_misr.hpp"

#include "util/check.hpp"

namespace xh {

SymbolicMisr::SymbolicMisr(FeedbackPolynomial poly, std::size_t num_symbols)
    : size_(poly.degree()),
      num_symbols_(num_symbols),
      poly_(std::move(poly)),
      dep_(size_, BitVec(num_symbols)) {}

void SymbolicMisr::reset() {
  for (auto& d : dep_) d.fill(false);
}

void SymbolicMisr::step(
    const std::vector<std::optional<SymbolId>>& inputs) {
  XH_REQUIRE(inputs.size() == size_, "MISR input width mismatch");
  // next = A * state (same structure as Lfsr::next_state, applied to the
  // dependency vectors), then XOR the injected symbols.
  std::vector<BitVec> next(size_, BitVec(num_symbols_));
  const BitVec& feedback = dep_[size_ - 1];
  next[0] = feedback;
  for (std::size_t i = 1; i < size_; ++i) next[i] = dep_[i - 1];
  for (const std::size_t t : poly_.taps()) next[t] ^= feedback;
  for (std::size_t i = 0; i < size_; ++i) {
    if (inputs[i]) {
      XH_REQUIRE(*inputs[i] < num_symbols_, "symbol id out of range");
      next[i].flip(*inputs[i]);
    }
  }
  dep_ = std::move(next);
}

const BitVec& SymbolicMisr::dependency(std::size_t bit) const {
  XH_REQUIRE(bit < size_, "state bit out of range");
  return dep_[bit];
}

BitVec SymbolicMisr::combination_dependency(
    const BitVec& bit_selection) const {
  XH_REQUIRE(bit_selection.size() == size_, "bit selection width mismatch");
  BitVec acc(num_symbols_);
  for (const std::size_t b : bit_selection.set_bits()) acc ^= dep_[b];
  return acc;
}

Gf2Matrix SymbolicMisr::x_dependency_matrix(
    const std::vector<SymbolId>& x_symbols) const {
  Gf2Matrix m(size_, x_symbols.size());
  for (std::size_t r = 0; r < size_; ++r) {
    for (std::size_t c = 0; c < x_symbols.size(); ++c) {
      XH_REQUIRE(x_symbols[c] < num_symbols_, "symbol id out of range");
      if (dep_[r].get(x_symbols[c])) m.set(r, c);
    }
  }
  return m;
}

bool SymbolicMisr::evaluate_combination(const BitVec& bit_selection,
                                        const BitVec& values,
                                        const BitVec& known) const {
  XH_REQUIRE(values.size() == num_symbols_, "values width mismatch");
  XH_REQUIRE(known.size() == num_symbols_, "known width mismatch");
  const BitVec deps = combination_dependency(bit_selection);
  XH_REQUIRE(deps.is_subset_of(known),
             "combination depends on an unknown (X) symbol");
  return ((deps & values).count() % 2) != 0;
}

}  // namespace xh
