// Minimal fixed-column text table used by the benchmark harnesses to print
// paper-style tables (e.g. Table 1) next to google-benchmark timing output.
#pragma once

#include <string>
#include <vector>

namespace xh {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given header row.
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; it may have at most as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  std::string render() const;

  /// Formats a double with @p digits decimal places.
  static std::string num(double value, int digits = 2);

  /// Formats a count in millions with two decimals, e.g. "1515.15M".
  static std::string millions(double value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xh
