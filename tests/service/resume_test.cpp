// Kill-and-resume pin (DESIGN.md §11): a run interrupted at ANY accepted
// round boundary and resumed through the xh-ckpt/1 codec must finish
// bit-identically to the uninterrupted run — same partitions, masks,
// accounting and history. This is the prefix property that makes deadline
// degradation and crash recovery safe, checked both at the engine level
// (every boundary, exhaustively) and through PartitionService end to end.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "engine/partition_engine.hpp"
#include "engine/partition_types.hpp"
#include "kernels/kernels.hpp"
#include "response/x_matrix.hpp"
#include "service/checkpoint.hpp"
#include "service/job_runner.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/clock.hpp"
#include "util/diagnostics.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

XMatrix small_workload(std::uint64_t seed) {
  WorkloadProfile profile;
  profile.name = "resume";
  profile.geometry = {6, 24};
  profile.num_patterns = 96;
  profile.x_density = 0.05;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 6;
  profile.cluster_patterns_mean = 8;
  profile.seed = seed;
  return generate_workload(profile);
}

PartitionerConfig small_config() {
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  return cfg;
}

void expect_identical(const PartitionResult& want, const PartitionResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(want.partitions.size(), got.partitions.size());
  for (std::size_t i = 0; i < want.partitions.size(); ++i) {
    EXPECT_TRUE(want.partitions[i] == got.partitions[i]) << "partition " << i;
    EXPECT_TRUE(want.masks[i] == got.masks[i]) << "mask " << i;
  }
  EXPECT_EQ(want.masked_x, got.masked_x);
  EXPECT_EQ(want.leaked_x, got.leaked_x);
  EXPECT_EQ(want.total_bits, got.total_bits);
  EXPECT_EQ(want.masking_bits, got.masking_bits);
  EXPECT_EQ(want.canceling_bits, got.canceling_bits);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (std::size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    EXPECT_EQ(want.history[i].round, got.history[i].round);
    EXPECT_EQ(want.history[i].num_partitions, got.history[i].num_partitions);
    EXPECT_EQ(want.history[i].masked_x, got.history[i].masked_x);
    EXPECT_EQ(want.history[i].leaked_x, got.history[i].leaked_x);
    EXPECT_EQ(want.history[i].total_bits, got.history[i].total_bits);
    EXPECT_EQ(want.history[i].split_cell, got.history[i].split_cell);
    EXPECT_EQ(want.history[i].accepted, got.history[i].accepted);
  }
}

/// Steps a fresh engine to exactly @p rounds accepted splits. Returns
/// false when the search stopped before reaching that boundary.
bool step_to(PartitionEngine& engine, std::size_t rounds) {
  std::size_t accepted = 0;
  while (accepted < rounds && !engine.finished()) {
    if (engine.step() == PartitionEngine::StepOutcome::kSplit) ++accepted;
  }
  return accepted == rounds;
}

ServiceCheckpoint checkpoint_at(const XMatrixStore& store,
                                const PartitionerConfig& cfg,
                                const PartitionEngine& engine) {
  ServiceCheckpoint ckpt;
  ckpt.geometry = store.geometry();
  ckpt.num_patterns = store.num_patterns();
  ckpt.total_x = store.total_x();
  ckpt.config = cfg;
  ckpt.backend = store.backend_name();
  ckpt.isa = kernels::active().name;
  ckpt.snapshot = engine.snapshot();
  return ckpt;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The exhaustive boundary sweep: for EVERY k in [1, rounds), interrupt a
// fresh run after k accepted rounds, push the state through the text codec,
// restore, finish — and demand the oracle's exact bits. Both split-cell
// policies run, so the serialized RNG state is load-bearing, not décor.
TEST(Resume, EveryRoundBoundaryResumesBitIdentically) {
  for (const SplitCellChoice choice :
       {SplitCellChoice::kLowestIndex, SplitCellChoice::kRandom}) {
    const XMatrix xm = small_workload(21);
    const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
    PartitionerConfig cfg = small_config();
    cfg.cell_choice = choice;
    const std::string policy =
        choice == SplitCellChoice::kRandom ? "random" : "lowest";

    PartitionEngine oracle_engine(*store, cfg);
    const PartitionResult oracle = oracle_engine.run();
    const std::size_t total_rounds = oracle.partitions.size() - 1;
    ASSERT_GE(total_rounds, 3u)
        << "workload too easy to exercise multiple boundaries";

    for (std::size_t k = 1; k <= total_rounds; ++k) {
      PartitionEngine interrupted(*store, cfg);
      ASSERT_TRUE(step_to(interrupted, k));

      Diagnostics diags;
      const std::optional<ServiceCheckpoint> restored = checkpoint_from_string(
          checkpoint_to_string(checkpoint_at(*store, cfg, interrupted)), &diags);
      ASSERT_TRUE(restored.has_value())
          << "codec rejected a clean checkpoint at boundary " << k;

      std::string why;
      ASSERT_TRUE(checkpoint_matches(*restored, store->geometry(),
                                     store->num_patterns(), store->total_x(),
                                     cfg, store->backend_name(),
                                     kernels::active().name, &why))
          << why;
      PartitionEngine resumed(*store, restored->config, restored->snapshot);
      expect_identical(oracle, resumed.run(),
                       policy + " boundary " + std::to_string(k) + "/" +
                           std::to_string(total_rounds));
    }
  }
}

// A checkpoint of the finished state must also restore: resuming yields
// the final result immediately, with no extra rounds consumed.
TEST(Resume, FinishedStateRestoresAsFinished) {
  const XMatrix xm = small_workload(22);
  const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
  const PartitionerConfig cfg = small_config();
  PartitionEngine engine(*store, cfg);
  const PartitionResult oracle = engine.run();

  const std::optional<ServiceCheckpoint> restored = checkpoint_from_string(
      checkpoint_to_string(checkpoint_at(*store, cfg, engine)));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->snapshot.done);
  PartitionEngine resumed(*store, restored->config, restored->snapshot);
  EXPECT_TRUE(resumed.finished());
  expect_identical(oracle, resumed.run(), "finished restore");
}

// Service-level resume: a checkpoint file left by a previous incarnation
// is picked up by job name, resumed, and the finished job deletes it.
TEST(Resume, ServiceResumesFromCheckpointFileBitIdentically) {
  const fs::path dir = fresh_dir("xh_resume_svc");
  const auto xm = std::make_shared<const XMatrix>(small_workload(23));
  const std::unique_ptr<XMatrixStore> store = make_store(*xm, XmBackend::kCsr);
  const PartitionerConfig cfg = small_config();

  PartitionEngine oracle_engine(*store, cfg);
  const PartitionResult oracle = oracle_engine.run();

  PartitionEngine interrupted(*store, cfg);
  ASSERT_TRUE(step_to(interrupted, 2));
  const fs::path ckpt_path = dir / "tenant-a.ckpt";
  ASSERT_TRUE(save_checkpoint(checkpoint_at(*store, cfg, interrupted),
                              ckpt_path.string()));

  ServiceConfig service_cfg;
  service_cfg.workers = 1;
  service_cfg.checkpoint_dir = dir.string();
  service_cfg.checkpoint_every_rounds = 1;
  PartitionService service(service_cfg);
  JobSpec spec;
  spec.name = "tenant-a";
  spec.matrix = xm;
  spec.config = cfg;
  const SubmitOutcome outcome = service.submit(std::move(spec));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);

  EXPECT_EQ(result.state, JobState::kCompleted);
  EXPECT_TRUE(result.resumed_from_checkpoint);
  expect_identical(oracle, result.partition, "service resume");
  EXPECT_EQ(service.stats().checkpoints_resumed, 1u);
  // Completion retires the checkpoint; a rerun would start fresh.
  EXPECT_FALSE(fs::exists(ckpt_path));
}

// The full degradation → restart story across two service incarnations:
// incarnation one times out (deadline token fires at a round boundary),
// keeps its checkpoint; incarnation two resumes and must land on the
// uninterrupted oracle's exact bits.
TEST(Resume, DegradedJobsCheckpointSurvivesIntoTheNextIncarnation) {
  const fs::path dir = fresh_dir("xh_resume_degraded");
  const auto xm = std::make_shared<const XMatrix>(small_workload(24));
  const std::unique_ptr<XMatrixStore> store = make_store(*xm, XmBackend::kCsr);
  const PartitionerConfig cfg = small_config();
  PartitionEngine oracle_engine(*store, cfg);
  const PartitionResult oracle = oracle_engine.run();

  ManualClock clock;
  const fs::path ckpt_path = dir / "tenant-b.ckpt";
  {
    ServiceConfig service_cfg;
    service_cfg.workers = 1;
    service_cfg.checkpoint_dir = dir.string();
    service_cfg.checkpoint_every_rounds = 1;
    service_cfg.clock = &clock;
    PartitionService service(service_cfg);
    // The chaos hook runs at attempt start: burning the whole budget there
    // makes the deadline fire deterministically at the FIRST boundary.
    service.set_fault_hook(
        [&clock](JobId, std::size_t) { clock.advance(10'000); });
    JobSpec spec;
    spec.name = "tenant-b";
    spec.matrix = xm;
    spec.config = cfg;
    spec.deadline_ns = 100;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    const JobResult degraded = service.wait(outcome.id);
    EXPECT_EQ(degraded.state, JobState::kDegraded);
    EXPECT_TRUE(degraded.partition.interrupted);
    EXPECT_GT(degraded.diagnostics.count(DiagKind::kDeadlineExceeded), 0u);
    service.shutdown();
    EXPECT_TRUE(fs::exists(ckpt_path))
        << "a degraded job must keep its checkpoint for the next run";
  }
  {
    ServiceConfig service_cfg;
    service_cfg.workers = 1;
    service_cfg.checkpoint_dir = dir.string();
    service_cfg.checkpoint_every_rounds = 1;
    PartitionService service(service_cfg);
    JobSpec spec;
    spec.name = "tenant-b";
    spec.matrix = xm;
    spec.config = cfg;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    const JobResult finished = service.wait(outcome.id);
    EXPECT_EQ(finished.state, JobState::kCompleted);
    EXPECT_TRUE(finished.resumed_from_checkpoint);
    expect_identical(oracle, finished.partition, "second incarnation");
    EXPECT_FALSE(fs::exists(ckpt_path));
  }
}

// A checkpoint from a DIFFERENT configuration must be refused (identity
// check), reported, and the job rerun from scratch — still bit-identical.
TEST(Resume, ForeignCheckpointIsRefusedAndJobRunsFresh) {
  const fs::path dir = fresh_dir("xh_resume_foreign");
  const auto xm = std::make_shared<const XMatrix>(small_workload(25));
  const std::unique_ptr<XMatrixStore> store = make_store(*xm, XmBackend::kCsr);
  const PartitionerConfig cfg = small_config();
  PartitionEngine oracle_engine(*store, cfg);
  const PartitionResult oracle = oracle_engine.run();

  PartitionerConfig foreign = cfg;
  foreign.seed = 999;
  PartitionEngine other(*store, foreign);
  ASSERT_TRUE(step_to(other, 1));
  ASSERT_TRUE(save_checkpoint(checkpoint_at(*store, foreign, other),
                              (dir / "tenant-c.ckpt").string()));

  ServiceConfig service_cfg;
  service_cfg.workers = 1;
  service_cfg.checkpoint_dir = dir.string();
  service_cfg.checkpoint_every_rounds = 1;
  PartitionService service(service_cfg);
  JobSpec spec;
  spec.name = "tenant-c";
  spec.matrix = xm;
  spec.config = cfg;
  const SubmitOutcome outcome = service.submit(std::move(spec));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);
  EXPECT_EQ(result.state, JobState::kCompleted);
  EXPECT_FALSE(result.resumed_from_checkpoint);
  EXPECT_GT(result.diagnostics.count(DiagKind::kCheckpointCorrupt), 0u);
  expect_identical(oracle, result.partition, "fresh after refusal");
}

}  // namespace
}  // namespace xh
