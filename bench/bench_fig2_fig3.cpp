// Regenerates Figures 2 and 3: symbolic simulation of a 6-bit MISR fed
// 14 deterministic values and 4 X's, followed by Gaussian elimination that
// extracts two X-free row combinations.
//
// The paper does not give its 6-bit MISR's feedback polynomial, so the
// dependency equations differ in detail; the structure — 18 symbols, 4 X
// columns, rank 4, exactly 2 X-free combinations — is the reproduction
// target. The paper's OWN dependency matrix (readable from Figure 2) is also
// eliminated verbatim to confirm the published combinations M1^M3^M5, M1^M4.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "gf2/matrix.hpp"
#include "kernels/kernels.hpp"
#include "misr/symbolic_misr.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

// Symbol universe mirrors Figure 2: 18 captures, of which 4 are X.
constexpr std::size_t kSymbols = 18;
const std::size_t kXSymbols[] = {1, 5, 7, 11};

bool is_x_symbol(std::size_t s) {
  for (const std::size_t x : kXSymbols) {
    if (s == x) return true;
  }
  return false;
}

std::string symbol_name(std::size_t s) {
  std::size_t x_index = 0;
  std::size_t o_index = 0;
  for (std::size_t k = 0; k <= s; ++k) {
    if (is_x_symbol(k)) {
      ++x_index;
    } else {
      ++o_index;
    }
  }
  return is_x_symbol(s) ? "X" + std::to_string(x_index)
                        : "O" + std::to_string(o_index + 1);
}

void print_fig2_fig3() {
  SymbolicMisr misr(FeedbackPolynomial::primitive(6), kSymbols);
  // Three shift cycles × 6 stages = 18 symbols, row-major like Figure 2.
  for (std::size_t cycle = 0; cycle < 3; ++cycle) {
    std::vector<std::optional<SymbolId>> slice(6);
    for (std::size_t stage = 0; stage < 6; ++stage) {
      slice[stage] = cycle * 6 + stage;
    }
    misr.step(slice);
  }

  std::printf("== Figure 2: symbolic MISR state (our 6-bit MISR) =========\n");
  for (std::size_t bit = 0; bit < 6; ++bit) {
    std::printf("M%zu =", bit + 1);
    bool first = true;
    for (const std::size_t s : misr.dependency(bit).set_bits()) {
      std::printf("%s%s", first ? " " : " ^ ", symbol_name(s).c_str());
      first = false;
    }
    std::printf("\n");
  }

  std::vector<SymbolId> xs(std::begin(kXSymbols), std::end(kXSymbols));
  const Gf2Matrix xmat = misr.x_dependency_matrix(xs);
  std::printf("\n== Figure 3: X-dependency matrix (columns X1..X4) ========\n%s",
              xmat.to_string().c_str());
  const auto combos = kernels::x_free_combinations(xmat);
  std::printf("rank = %zu, X-free combinations = %zu (paper: 2)\n",
              xmat.rank(), combos.size());
  for (const auto& combo : combos) {
    std::printf("  X-free row:");
    for (const std::size_t r : combo.set_bits()) std::printf(" M%zu", r + 1);
    std::printf("\n");
  }

  // The paper's exact Figure 2 dependency matrix, eliminated verbatim.
  const Gf2Matrix paper = Gf2Matrix::from_strings(
      {"1000", "1110", "0010", "1000", "1010", "0011"});
  const auto paper_combos = kernels::x_free_combinations(paper);
  std::printf(
      "\nPaper's own matrix: rank %zu, %zu X-free rows "
      "(published: M1^M3^M5 and M1^M4)\n",
      paper.rank(), paper_combos.size());
  for (const auto& combo : paper_combos) {
    std::printf("  extracted:");
    for (const std::size_t r : combo.set_bits()) std::printf(" M%zu", r + 1);
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_SymbolicMisrStep(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  SymbolicMisr misr(FeedbackPolynomial::primitive(m), 4096);
  std::vector<std::optional<SymbolId>> slice(m);
  std::size_t next = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < m; ++i) slice[i] = (next + i) % 4096;
    next = (next + m) % 4096;
    misr.step(slice);
  }
}

void BM_GaussianElimination(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = rows / 2;
  Rng rng(7);
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.chance(0.5)) m.set(r, c);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::x_free_combinations(m));
  }
}

BENCHMARK(BM_SymbolicMisrStep)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_GaussianElimination)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_fig2_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
