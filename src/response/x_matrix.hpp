// Sparse X-location matrix: for each scan cell that ever captures an X, the
// set of patterns under which it does.
//
// This is the exact input of the paper's partitioning algorithm (Figure 4's
// "X-value correlation analysis" table) and scales to the Table 1 workloads
// (hundreds of thousands of cells × 3000 patterns) because deterministic
// cells cost nothing.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "response/geometry.hpp"
#include "util/bitvec.hpp"

namespace xh {

class ResponseMatrix;

/// Per-cell pattern-set view of X locations.
class XMatrix {
 public:
  XMatrix() = default;
  XMatrix(ScanGeometry geometry, std::size_t num_patterns);

  const ScanGeometry& geometry() const { return geometry_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_cells() const { return geometry_.num_cells(); }

  /// Records that @p cell captures X under @p pattern. Idempotent.
  void add_x(std::size_t cell, std::size_t pattern);

  bool is_x(std::size_t cell, std::size_t pattern) const;

  /// Cells that capture at least one X, ascending. Built fresh on every
  /// call (O(n log n)), which keeps concurrent readers safe — the previous
  /// lazily-sorted mutable cache raced under parallel reads. Hot loops
  /// should snapshot once (or freeze the matrix into an XMatrixView, which
  /// sorts exactly once at construction).
  std::vector<std::size_t> x_cells() const;

  /// Pattern set of one cell (empty BitVec of num_patterns bits when the
  /// cell never captures X).
  const BitVec& patterns_of(std::size_t cell) const;

  /// X count of a cell across all patterns.
  std::size_t x_count(std::size_t cell) const;

  /// X count of a cell restricted to @p patterns.
  std::size_t x_count_in(std::size_t cell, const BitVec& patterns) const;

  std::size_t total_x() const { return total_x_; }

  double x_density() const;

  /// Number of X's inside a pattern subset (sum over cells).
  std::size_t total_x_in(const BitVec& patterns) const;

  /// Extracts X locations from a dense response matrix.
  static XMatrix from_response(const ResponseMatrix& response);

 private:
  ScanGeometry geometry_;
  std::size_t num_patterns_ = 0;
  std::size_t total_x_ = 0;
  std::unordered_map<std::size_t, BitVec> cells_;
  BitVec empty_;
};

}  // namespace xh
