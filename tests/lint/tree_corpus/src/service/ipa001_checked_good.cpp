// XH-IPA-001 non-firing fixture: the status-bearing result is bound and
// read, so nothing is discarded.
namespace fixture {

struct ScrubResult {
  bool ok = false;
};

ScrubResult scrub_ledger() {
  ScrubResult r;
  r.ok = true;
  return r;
}

bool scrub_and_check() {
  const ScrubResult r = scrub_ledger();
  return r.ok;
}

}  // namespace fixture
