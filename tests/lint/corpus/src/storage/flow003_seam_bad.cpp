// XH-FLOW-003 fixture: a relaxed-atomic read-modify-write on a probe
// counter outside the note_* accounting seam — storage code must route
// probe accounting through the documented helpers.
#include <atomic>
#include <cstdint>

namespace xh {

struct ProbeCounters {
  std::atomic<std::uint64_t> hits{0};
};

std::uint64_t record_probe(ProbeCounters& counters) {
  return counters.hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xh
