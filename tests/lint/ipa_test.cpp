// Tests for the interprocedural lint tier (DESIGN.md §13): call-graph
// construction and resolution, lambda detection, the must-hold lock
// analysis, bottom-up function summaries, and the real-tree pins the
// XH-IPA/XH-RACE rules depend on (≥200 resolved call edges inside src/,
// and the service/thread-pool seam summarized the way the rules assume).
#include "lint/callgraph.hpp"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/project_model.hpp"
#include "lint/summaries.hpp"

namespace {

using xh::lint::CallGraph;
using xh::lint::CallSite;
using xh::lint::CgFunction;
using xh::lint::LambdaInfo;
using xh::lint::ProjectModel;
using xh::lint::SourceFile;
using xh::lint::SummarySet;

ProjectModel make_model(std::vector<SourceFile> files) {
  return xh::lint::build_project_model(std::move(files), {});
}

const CgFunction* find_fn(const CallGraph& cg, const std::string& display) {
  for (const CgFunction& fn : cg.functions) {
    if (fn.display == display) return &fn;
  }
  return nullptr;
}

std::size_t index_of(const CallGraph& cg, const std::string& display) {
  for (std::size_t i = 0; i < cg.functions.size(); ++i) {
    if (cg.functions[i].display == display) return i;
  }
  ADD_FAILURE() << "no function " << display;
  return 0;
}

/// Resolved target display names of the first call site named @p callee.
std::set<std::string> targets_of(const CallGraph& cg,
                                 const std::string& caller,
                                 const std::string& callee) {
  const CgFunction* fn = find_fn(cg, caller);
  EXPECT_NE(fn, nullptr) << caller;
  std::set<std::string> out;
  if (fn == nullptr) return out;
  for (const CallSite& site : fn->calls) {
    if (site.callee != callee) continue;
    for (const std::size_t t : site.targets) {
      out.insert(cg.functions[t].display);
    }
    return out;
  }
  ADD_FAILURE() << caller << " has no call site '" << callee << "'";
  return out;
}

// ---- lambda detection ---------------------------------------------------

TEST(Lambdas, IntroducerVsSubscriptAndAttributes) {
  // A capture introducer in expression position is a lambda; a subscript
  // or an [[attribute]] is not.
  const std::string text =
      "pool.post([this, &n] { work(n); }); v[i] = 0; [[maybe_unused]] int "
      "x = 0;";
  const std::vector<LambdaInfo> ls = xh::lint::lambdas_in(text);
  ASSERT_EQ(ls.size(), 1u);
  EXPECT_EQ(text.substr(ls[0].cap_begin, ls[0].cap_end - ls[0].cap_begin),
            "this, &n");
  EXPECT_EQ(text.substr(ls[0].body_begin,
                        ls[0].body_end - ls[0].body_begin),
            " work(n); ");
}

TEST(Lambdas, ParameterListsSpecifiersAndNesting) {
  const std::string text =
      "auto f = [&](int a) mutable -> int { return g([] { return 1; }); };";
  // The outer body covers the nested lambda; only the outer is reported.
  const auto ranges = xh::lint::lambda_body_ranges(text);
  ASSERT_EQ(ranges.size(), 1u);
  const std::string body =
      text.substr(ranges[0].first, ranges[0].second - ranges[0].first);
  EXPECT_NE(body.find("return g("), std::string::npos);
  EXPECT_NE(body.find("return 1"), std::string::npos);
}

// ---- call-graph resolution ----------------------------------------------

const char* const kGraphSource = R"cpp(
namespace xh {
int helper(int x) { return x + 1; }
int caller(int x) { return helper(x); }
void Widget::ping() { helper(2); }
void Widget::pong() { w.ping(); }
void Pool::wait() { counter_ = 0; }
void Pool::drive() { cv_.wait(lk); Pool::wait(); }
void Svc::work() { helper(3); }
void Svc::go() { pool_.post([this] { work(); }); }
}  // namespace xh
)cpp";

TEST(CallGraph, FreeMemberQualifiedAndBlocklistResolution) {
  const ProjectModel model =
      make_model({{"src/core/a.cpp", kGraphSource}});
  const CallGraph cg = xh::lint::build_call_graph(model);

  // Free call resolves to the free function.
  EXPECT_EQ(targets_of(cg, "caller", "helper"),
            std::set<std::string>{"helper"});
  // Unqualified call from a member also reaches the free function.
  EXPECT_EQ(targets_of(cg, "Widget::ping", "helper"),
            std::set<std::string>{"helper"});
  // Member call resolves to member functions of the name.
  EXPECT_EQ(targets_of(cg, "Widget::pong", "ping"),
            std::set<std::string>{"Widget::ping"});
  // `cv_.wait(...)` is std vocabulary: NOT resolved to Pool::wait even
  // though that member exists; the explicit Pool::wait() call is.
  const CgFunction* drive = find_fn(cg, "Pool::drive");
  ASSERT_NE(drive, nullptr);
  for (const CallSite& site : drive->calls) {
    if (site.callee == "wait" && site.member) {
      EXPECT_TRUE(site.targets.empty());
    }
    if (site.callee == "wait" && !site.member) {
      ASSERT_EQ(site.targets.size(), 1u);
      EXPECT_EQ(cg.functions[site.targets[0]].display, "Pool::wait");
    }
  }
}

TEST(CallGraph, PostedLambdaCallsAreDeferred) {
  const ProjectModel model =
      make_model({{"src/core/a.cpp", kGraphSource}});
  const CallGraph cg = xh::lint::build_call_graph(model);
  const CgFunction* go = find_fn(cg, "Svc::go");
  ASSERT_NE(go, nullptr);
  bool saw_work = false;
  for (const CallSite& site : go->calls) {
    if (site.callee == "work") {
      saw_work = true;
      EXPECT_TRUE(site.deferred);
      ASSERT_EQ(site.targets.size(), 1u);
      EXPECT_EQ(cg.functions[site.targets[0]].display, "Svc::work");
    }
    if (site.callee == "post") {
      EXPECT_FALSE(site.deferred);  // the post itself runs synchronously
    }
  }
  EXPECT_TRUE(saw_work);
}

TEST(CallGraph, DeclarationsAndMacrosAreNotCallSites) {
  const ProjectModel model = make_model({{"src/core/b.cpp", R"cpp(
void target() {}
void f() {
  std::vector<int> target(3);
  ASSERT_EQ(target.size(), 3u);
  int x = 0;
  target();
}
)cpp"}});
  const CallGraph cg = xh::lint::build_call_graph(model);
  const CgFunction* f = find_fn(cg, "f");
  ASSERT_NE(f, nullptr);
  std::size_t target_sites = 0;
  for (const CallSite& site : f->calls) {
    if (site.callee == "target") ++target_sites;
    EXPECT_NE(site.callee, "ASSERT_EQ");
  }
  // Only the bare `target();` statement, not the declaration shadowing it.
  EXPECT_EQ(target_sites, 1u);
}

// ---- summaries ----------------------------------------------------------

const char* const kSeamSource = R"cpp(
namespace xh {
Diagnostics Pool::post(Task t) {
  std::lock_guard<std::mutex> lk(mu_);
  tasks_.push_back(t);
  return Diagnostics{};
}
void Svc::run_next(const CancelToken& token) {
  if (token.stop_requested()) { return; }
  std::lock_guard<std::mutex> lk(mu_);
  pending_ = pending_ - 1;
}
SubmitResult Svc::enqueue() {
  std::lock_guard<std::mutex> lk(mu_);
  pool_.post([this] { step(); });
  return SubmitResult{};
}
void Svc::step() {
  std::lock_guard<std::mutex> lk(mu_);
  pending_ = pending_ + 1;
}
void Svc::spin() {
  while (true) { sleep_ns(10); }
}
auto Svc::relay() { return enqueue(); }
}  // namespace xh
)cpp";

TEST(Summaries, LocalAndTransitiveFacts) {
  const ProjectModel model =
      make_model({{"src/service/seam.cpp", kSeamSource}});
  const CallGraph cg = xh::lint::build_call_graph(model);
  const SummarySet sums = xh::lint::compute_summaries(cg);

  const auto sum = [&](const std::string& d) {
    return sums.summaries[index_of(cg, d)];
  };

  EXPECT_TRUE(sum("Pool::post").returns_status);  // Diagnostics
  EXPECT_EQ(sum("Pool::post").locks_acquired,
            std::set<std::string>{"Pool::mu_"});

  EXPECT_TRUE(sum("Svc::run_next").consults_token);
  EXPECT_EQ(sum("Svc::run_next").locks_acquired,
            std::set<std::string>{"Svc::mu_"});

  const auto enq = sum("Svc::enqueue");
  EXPECT_TRUE(enq.returns_status);  // SubmitResult by naming convention
  EXPECT_TRUE(enq.escapes_callable_to_pool);
  // Synchronous callee Pool::post's acquisition propagates; the DEFERRED
  // Svc::step acquisition must not.
  EXPECT_EQ(enq.locks_acquired,
            (std::set<std::string>{"Pool::mu_", "Svc::mu_"}));
  // Nested order formed by calling the locking post under Svc::mu_.
  EXPECT_EQ(enq.lock_pairs,
            (std::set<std::pair<std::string, std::string>>{
                {"Svc::mu_", "Pool::mu_"}}));
  // enqueue returns under its guard: the return node is must-holding mu_.
  EXPECT_EQ(enq.locks_held_at_exit, std::set<std::string>{"Svc::mu_"});

  EXPECT_TRUE(sum("Svc::spin").can_block);
  EXPECT_FALSE(sum("Svc::step").can_block);

  // `auto relay() { return enqueue(); }` inherits status-ness.
  EXPECT_TRUE(sum("Svc::relay").returns_status);

  // The witness list anchors the (Svc::mu_, Pool::mu_) formation site.
  bool witnessed = false;
  for (const auto& w : sums.witnesses) {
    if (w.outer == "Svc::mu_" && w.inner == "Pool::mu_") {
      witnessed = true;
      EXPECT_EQ(w.function, "Svc::enqueue");
    }
  }
  EXPECT_TRUE(witnessed);
}

TEST(Summaries, MustHoldRespectsScopesAndUnlock) {
  const ProjectModel model = make_model({{"src/core/h.cpp", R"cpp(
void Svc::phases() {
  {
    std::lock_guard<std::mutex> a(alpha_);
    touch_a();
  }
  {
    std::lock_guard<std::mutex> b(beta_);
    touch_b();
  }
  after();
}
void Svc::manual() {
  std::unique_lock<std::mutex> lk(gamma_, std::defer_lock);
  before();
  lk.lock();
  inside();
  lk.unlock();
  rest();
}
)cpp"}});
  const CallGraph cg = xh::lint::build_call_graph(model);

  const CgFunction* phases = find_fn(cg, "Svc::phases");
  ASSERT_NE(phases, nullptr);
  const auto held_p = xh::lint::must_hold(*phases);
  for (std::size_t n = 0; n < phases->cfg.nodes.size(); ++n) {
    const std::string& t = phases->cfg.nodes[n].text;
    if (t.find("touch_a") != std::string::npos) {
      EXPECT_EQ(held_p[n], std::set<std::string>{"Svc::alpha_"}) << t;
    }
    // Sibling scope: alpha_ must be dead by the time beta_'s block runs.
    if (t.find("touch_b") != std::string::npos) {
      EXPECT_EQ(held_p[n], std::set<std::string>{"Svc::beta_"}) << t;
    }
    if (t.find("after") != std::string::npos) {
      EXPECT_TRUE(held_p[n].empty()) << t;
    }
  }

  const CgFunction* manual = find_fn(cg, "Svc::manual");
  ASSERT_NE(manual, nullptr);
  const auto held_m = xh::lint::must_hold(*manual);
  for (std::size_t n = 0; n < manual->cfg.nodes.size(); ++n) {
    const std::string& t = manual->cfg.nodes[n].text;
    if (t.find("before") != std::string::npos) {
      EXPECT_TRUE(held_m[n].empty()) << t;  // defer_lock: not yet held
    }
    if (t.find("inside") != std::string::npos) {
      EXPECT_EQ(held_m[n], std::set<std::string>{"Svc::gamma_"}) << t;
    }
    if (t.find("rest") != std::string::npos) {
      EXPECT_TRUE(held_m[n].empty()) << t;  // explicit unlock
    }
  }
}

// ---- real-tree pins -----------------------------------------------------

TEST(RealTree, CallGraphResolvesTheServiceSeam) {
  const std::string root = XH_LINT_SOURCE_DIR;
  std::vector<std::string> errors;
  std::vector<SourceFile> files =
      xh::lint::load_tree(root, {root + "/src"}, {}, errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  const ProjectModel model = make_model(std::move(files));
  const CallGraph cg = xh::lint::build_call_graph(model);

  // The floor the interprocedural rules are worth running against: the
  // resolver must see a substantial share of the real tree's call edges.
  std::size_t src_edges = 0;
  for (const CgFunction& fn : cg.functions) {
    if (fn.path.rfind("src/", 0) != 0) continue;
    for (const CallSite& site : fn.calls) {
      for (const std::size_t t : site.targets) {
        if (cg.functions[t].path.rfind("src/", 0) == 0) ++src_edges;
      }
    }
  }
  EXPECT_GE(src_edges, 200u) << "call-graph resolution regressed; "
                             << cg.resolved_edges << " edges total";

  // The seam the XH-IPA/XH-RACE rules reason about, summarized as the
  // rules assume: the job runner consults its cancel token, the pool's
  // post acquires the pool mutex, and submit() (fixed in this tree) no
  // longer must-holds mu_ at its post site.
  const SummarySet sums = xh::lint::compute_summaries(cg);
  const CgFunction* run_next =
      find_fn(cg, "PartitionService::run_next");
  ASSERT_NE(run_next, nullptr);
  EXPECT_TRUE(sums.summaries[index_of(cg, "PartitionService::run_next")]
                  .consults_token);

  const auto& post_sum = sums.summaries[index_of(cg, "ThreadPool::post")];
  EXPECT_EQ(post_sum.locks_acquired,
            std::set<std::string>{"ThreadPool::mu_"});

  const CgFunction* submit = find_fn(cg, "PartitionService::submit");
  ASSERT_NE(submit, nullptr);
  const auto held = xh::lint::must_hold(*submit);
  for (std::size_t n = 0; n < submit->cfg.nodes.size(); ++n) {
    if (submit->cfg.nodes[n].text.find(".post(") != std::string::npos) {
      EXPECT_TRUE(held[n].empty())
          << "submit() posts while holding a lock again: "
          << submit->cfg.nodes[n].text;
    }
  }
}

}  // namespace
