#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"

namespace xh {
namespace {

void expect_pattern_detects(const Netlist& nl, const ScanPlan& plan,
                            const StuckFault& fault, const TestPattern& p) {
  FaultSimulator fsim(nl, plan);
  const auto hits = fsim.detects({p}, fault);
  EXPECT_TRUE(hits[0]) << "generated pattern must detect "
                       << fault_name(nl, fault);
}

TEST(Podem, GeneratesTestForAndGate) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const StuckFault f{nl.find("g"), false};
  const auto p = podem.generate(f);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->pi[0], Lv::k1);
  EXPECT_EQ(p->pi[1], Lv::k1);
  expect_pattern_detects(nl, plan, f, *p);
}

TEST(Podem, GeneratesTestRequiringPropagation) {
  // Fault deep inside: s-a-1 on g1 needs a=1,b=0 (or 0,1) and c=1 to
  // propagate through the AND to the capture flop.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(q)\n"
      "g1 = XOR(a, b)\ng2 = AND(g1, c)\nq = DFF(g2)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const StuckFault f{nl.find("g1"), true};
  const auto p = podem.generate(f);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->pi[2], Lv::k1) << "c must be non-controlling";
  EXPECT_EQ(p->pi[0], p->pi[1]) << "XOR must evaluate to 0 to excite s-a-1";
  expect_pattern_detects(nl, plan, f, *p);
}

TEST(Podem, UsesScanStateAsControllableInput) {
  // Fault excitation requires the scanned flop's present state.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\ns = DFF(d0)\nd0 = BUF(a)\n"
      "g = AND(a, s)\nq = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const StuckFault f{nl.find("g"), false};
  const auto p = podem.generate(f);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->pi[0], Lv::k1);
  EXPECT_EQ(p->scan_in[plan.cell_of(nl.find("s"))], Lv::k1);
  expect_pattern_detects(nl, plan, f, *p);
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // g = AND(a, NOT(a)) is constant 0: s-a-0 on g is undetectable.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nn = NOT(a)\ng = AND(a, n)\nq = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const auto p = podem.generate({nl.find("g"), false});
  EXPECT_FALSE(p.has_value());
  EXPECT_FALSE(podem.stats().aborted) << "search space exhausted, not aborted";
}

TEST(Podem, FaultBlockedByXSourceIsUntestable) {
  // The only observation path XORs with an unscanned flop — hopeless.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nu = NDFF(a)\n"
      "g = AND(a, b)\nd = XOR(g, u)\nq = DFF(d)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const auto p = podem.generate({nl.find("g"), false});
  EXPECT_FALSE(p.has_value());
}

TEST(Podem, NavigatesAroundXSourceWhenAPathExists) {
  // Two observation paths: one X-poisoned, one clean via q2.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q1)\nOUTPUT(q2)\nu = NDFF(a)\n"
      "g = AND(a, b)\nd1 = XOR(g, u)\nq1 = DFF(d1)\nq2 = DFF(g)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const StuckFault f{nl.find("g"), false};
  const auto p = podem.generate(f);
  ASSERT_TRUE(p.has_value());
  expect_pattern_detects(nl, plan, f, *p);
}

TEST(Podem, TristateEnablePath) {
  const Netlist nl = read_bench_string(
      "INPUT(en)\nINPUT(d)\nOUTPUT(q)\n"
      "t = TRISTATE(en, d)\nb = BUS(t)\nq = DFF(b)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  Podem podem(nl, plan);
  const StuckFault f{nl.find("d"), false};
  const auto p = podem.generate(f);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->pi[0], Lv::k1) << "driver must be enabled to observe d";
  expect_pattern_detects(nl, plan, f, *p);
}

TEST(Podem, EveryGeneratedPatternDetectsOnRandomCircuits) {
  for (const std::uint64_t seed : {3ull, 5ull, 8ull}) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.num_gates = 90;
    cfg.num_dffs = 10;
    cfg.nonscan_fraction = 0.2;
    cfg.num_buses = 1;
    const Netlist nl = generate_circuit(cfg);
    const ScanPlan plan = ScanPlan::build(nl, 2);
    Podem podem(nl, plan);
    FaultSimulator fsim(nl, plan);
    const auto faults = collapse_faults(nl, enumerate_faults(nl));
    std::size_t produced = 0;
    for (std::size_t fi = 0; fi < faults.size(); fi += 7) {  // sample
      const auto p = podem.generate(faults[fi], 500);
      if (!p) continue;
      ++produced;
      EXPECT_TRUE(fsim.detects({*p}, faults[fi])[0])
          << "seed " << seed << " fault " << fault_name(nl, faults[fi]);
    }
    EXPECT_GT(produced, 0u);
  }
}

}  // namespace
}  // namespace xh
