// Whole-tree rule families for xh_lint (DESIGN.md §9).
//
// Every pass here consumes the ProjectModel built by build_project_model();
// no file is re-read or re-lexed. Findings are collected RAW (per file),
// the suppression audit (XH-SUP-001) runs against the raw set — a
// suppression is "used" iff it would drop at least one raw finding — and
// only then are suppressions applied.
#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/project_model.hpp"
#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

using RawFindings = std::map<std::string, std::vector<Finding>>;

bool per_file_scope(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

bool iwyu_scope(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

bool telemetry_scope(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "bench/") ||
         starts_with(path, "tools/");
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

// ---- XH-INC-001: include cycles (Tarjan SCC) ---------------------------

void check_cycles(const ProjectModel& model, RawFindings& raw) {
  std::map<std::string, std::size_t> index;
  std::map<std::string, std::size_t> low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::size_t counter = 0;
  std::vector<std::vector<std::string>> cycles;

  std::function<void(const std::string&)> connect =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const IncludeEdge& e : model.files.at(v).includes) {
          if (index.count(e.target) == 0) {
            connect(e.target);
            low[v] = std::min(low[v], low[e.target]);
          } else if (on_stack.count(e.target) != 0) {
            low[v] = std::min(low[v], index[e.target]);
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          bool cyclic = scc.size() > 1;
          for (const IncludeEdge& e : model.files.at(v).includes) {
            if (e.target == v) cyclic = true;  // self-include
          }
          if (cyclic) cycles.push_back(std::move(scc));
        }
      };
  for (const auto& [path, entry] : model.files) {
    (void)entry;
    if (index.count(path) == 0) connect(path);
  }

  for (std::vector<std::string>& scc : cycles) {
    std::sort(scc.begin(), scc.end());
    const std::string& anchor = scc.front();
    const std::set<std::string> members(scc.begin(), scc.end());
    std::size_t line = 1;
    for (const IncludeEdge& e : model.files.at(anchor).includes) {
      if (members.count(e.target) != 0) {
        line = e.line;
        break;
      }
    }
    raw[anchor].push_back(
        {anchor, line, "XH-INC-001",
         "include cycle: " + join(scc, " -> ") + " -> " + anchor});
  }
}

// ---- XH-INC-002: layering ----------------------------------------------

void check_layering(const ProjectModel& model, RawFindings& raw) {
  if (model.spec.layers.empty()) return;
  for (const auto& [path, entry] : model.files) {
    if (!model.spec.known(entry.layer)) {
      raw[path].push_back(
          {path, 1, "XH-INC-002",
           "layer '" + entry.layer +
               "' is not declared in tools/lint/layers.txt"});
      continue;
    }
    for (const IncludeEdge& e : entry.includes) {
      const std::string& to = model.files.at(e.target).layer;
      if (!model.spec.allowed(entry.layer, to)) {
        raw[path].push_back(
            {path, e.line, "XH-INC-002",
             "layer '" + entry.layer + "' may not depend on layer '" + to +
                 "' (" + e.target + ") — see tools/lint/layers.txt"});
        continue;
      }
      // Path-prefix visibility on top of the layer graph: a `private`
      // header may only be included from its whitelisted layers, even when
      // the layer edge itself is legal.
      const LayerSpec::PrivateRule* rule = model.spec.private_rule(e.target);
      if (rule != nullptr && rule->layers.count(entry.layer) == 0) {
        raw[path].push_back(
            {path, e.line, "XH-INC-002",
             e.target + " is private to layers {" +
                 join({rule->layers.begin(), rule->layers.end()}, ", ") +
                 "} — include it through the public factory instead "
                 "(see tools/lint/layers.txt)"});
      }
    }
  }
}

// ---- XH-INC-003: IWYU-lite ---------------------------------------------

/// True when the file itself (forward-)declares @p name, which makes a
/// direct include legitimately unnecessary.
bool declares_locally(const FileEntry& entry, const std::string& name) {
  for (const std::string& line : entry.cleaned.lines) {
    for (const char* kw : {"struct", "class", "enum", "using"}) {
      const std::size_t p = find_ident(line, kw);
      if (p != std::string::npos &&
          find_ident(line, name, p) != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

void check_includes(const ProjectModel& model, RawFindings& raw) {
  // name → every header exporting it; only unique providers are actionable.
  std::map<std::string, std::vector<std::string>> providers;
  for (const auto& [hdr, names] : model.symbols.exported_names) {
    for (const std::string& n : names) providers[n].push_back(hdr);
  }

  for (const auto& [path, entry] : model.files) {
    if (!iwyu_scope(path) || entry.umbrella) continue;

    std::set<std::string> direct;
    for (const IncludeEdge& e : entry.includes) {
      if (!direct.insert(e.target).second) {
        raw[path].push_back({path, e.line, "XH-INC-003",
                             "duplicate include of " + e.target});
      }
    }

    for (const IncludeEdge& e : entry.includes) {
      const FileEntry& target = model.files.at(e.target);
      if (!target.is_header || target.umbrella) continue;
      if (e.target == entry.primary_header) continue;
      const auto it = model.symbols.broad_names.find(e.target);
      // Headers with no harvestable names (aggregation, macros-only edge
      // cases) are never flagged: absence of evidence is not unused.
      if (it == model.symbols.broad_names.end() || it->second.empty()) {
        continue;
      }
      bool used = false;
      for (const std::string& n : it->second) {
        if (entry.idents.count(n) != 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        raw[path].push_back(
            {path, e.line, "XH-INC-003",
             "unused include: nothing declared in " + e.target +
                 " is referenced here"});
      }
    }

    // Missing direct include: a symbol whose unique provider is reachable
    // only transitively. Exemptions: symbols satisfied through the .cpp's
    // own primary header, through an explicitly included umbrella header,
    // or (forward-)declared locally.
    std::set<std::string> via_umbrella;
    for (const std::string& t : direct) {
      if (model.files.at(t).umbrella) {
        const auto& cl = model.closure.at(t);
        via_umbrella.insert(cl.begin(), cl.end());
      }
    }
    const std::set<std::string>* primary_closure = nullptr;
    if (!entry.primary_header.empty()) {
      primary_closure = &model.closure.at(entry.primary_header);
    }
    const std::set<std::string>& closure = model.closure.at(path);
    // header → (example symbol, first-use line): one finding per header.
    std::map<std::string, std::pair<std::string, std::size_t>> missing;
    for (const auto& [name, line] : entry.idents) {
      const auto pit = providers.find(name);
      if (pit == providers.end() || pit->second.size() != 1) continue;
      const std::string& hdr = pit->second.front();
      if (hdr == path || direct.count(hdr) != 0 || closure.count(hdr) == 0) {
        continue;
      }
      if (primary_closure != nullptr && primary_closure->count(hdr) != 0) {
        continue;
      }
      if (via_umbrella.count(hdr) != 0) continue;
      if (declares_locally(entry, name)) continue;
      if (missing.count(hdr) == 0) missing[hdr] = {name, line};
    }
    for (const auto& [hdr, use] : missing) {
      raw[path].push_back(
          {path, use.second, "XH-INC-003",
           "'" + use.first + "' is declared in " + hdr +
               ", which is only reached transitively — include it "
               "directly"});
    }
  }
}

// ---- XH-API-001: discarded [[nodiscard]] results -----------------------

void check_discards(const ProjectModel& model, RawFindings& raw) {
  if (model.symbols.nodiscard.empty()) return;
  for (const auto& [path, entry] : model.files) {
    const auto& lines = entry.cleaned.lines;
    // Statement-start tracking: a call whose (optionally ::-, .- or
    // ->-qualified) name opens the line right after `;`, `{`, `}` or a
    // preprocessor line is a bare expression statement — its result is
    // discarded. Walking member chains means `svc.submit(job);` resolves
    // to `submit`, not `svc`.
    char prev_last = ';';
    bool prev_preproc = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const std::size_t nb = line.find_first_not_of(" \t");
      if (nb == std::string::npos) continue;
      const bool stmt_start = prev_last == ';' || prev_last == '{' ||
                              prev_last == '}' || prev_preproc;
      if (stmt_start && line[nb] != '#') {
        std::size_t p = nb;
        std::string name;
        for (;;) {
          const std::size_t b = p;
          while (p < line.size() && is_ident_char(line[p])) ++p;
          if (p == b) {
            name.clear();
            break;
          }
          name = line.substr(b, p - b);
          if (p + 1 < line.size() && line[p] == ':' && line[p + 1] == ':') {
            p += 2;
            continue;
          }
          if (p < line.size() && line[p] == '.') {
            p += 1;
            continue;
          }
          if (p + 1 < line.size() && line[p] == '-' && line[p + 1] == '>') {
            p += 2;
            continue;
          }
          break;
        }
        std::size_t q = p;
        while (q < line.size() && (line[q] == ' ' || line[q] == '\t')) ++q;
        if (!name.empty() && q < line.size() && line[q] == '(') {
          const auto it = model.symbols.nodiscard.find(name);
          if (it != model.symbols.nodiscard.end()) {
            raw[path].push_back(
                {path, i + 1, "XH-API-001",
                 "result of [[nodiscard]] '" + name + "' (declared in " +
                     *it->second.begin() +
                     ") is discarded — assign it or cast to void with a "
                     "reason"});
          }
        }
      }
      const std::size_t last = line.find_last_not_of(" \t");
      prev_last = line[last];
      prev_preproc = line[nb] == '#';
    }
  }
}

// ---- XH-API-002: deprecated-only APIs ----------------------------------

void check_deprecated(const ProjectModel& model, RawFindings& raw) {
  if (model.symbols.deprecated.empty()) return;

  // Marker type → the deprecated function it feeds (first wins; the three
  // HybridConfig overloads all map the same type).
  std::map<std::string, const DeprecatedApi*> markers;
  for (const DeprecatedApi& api : model.symbols.deprecated) {
    for (const std::string& t : api.marker_types) {
      markers.emplace(t, &api);
    }
  }

  const auto exempt = [&](const std::string& path,
                          const FileEntry& entry,
                          const DeprecatedApi& api) {
    if (path == api.declared_in) return true;
    // Sibling .cpp of the declaring header (out-of-line definitions).
    std::string sibling = api.declared_in;
    const std::size_t dot = sibling.rfind('.');
    if (dot != std::string::npos) sibling = sibling.substr(0, dot) + ".cpp";
    if (path == sibling) return true;
    // Files that explicitly opt in (the dedicated compat test).
    return entry.source.content.find("-Wdeprecated-declarations") !=
           std::string::npos;
  };

  for (const auto& [path, entry] : model.files) {
    for (const auto& [type, api] : markers) {
      if (exempt(path, entry, *api)) continue;
      const auto it = entry.idents.find(type);
      if (it != entry.idents.end()) {
        raw[path].push_back(
            {path, it->second, "XH-API-002",
             "'" + type + "' only feeds the [[deprecated]] '" + api->name +
                 "' overload (" + api->declared_in +
                 ") — migrate to the live API"});
      }
    }
    for (const DeprecatedApi& api : model.symbols.deprecated) {
      if (api.has_live_overload || exempt(path, entry, api)) continue;
      for (std::size_t i = 0; i < entry.cleaned.lines.size(); ++i) {
        if (has_call(entry.cleaned.lines[i], api.name)) {
          raw[path].push_back(
              {path, i + 1, "XH-API-002",
               "call to [[deprecated]] '" + api.name + "' (" +
                   api.declared_in + ") with no live replacement overload"});
        }
      }
    }
  }
}

// ---- XH-OBS-001: telemetry names vs schema -----------------------------

void check_telemetry(const ProjectModel& model, RawFindings& raw) {
  static const std::array<const char*, 5> kHelpers = {
      "obs_count", "obs_counter", "obs_gauge", "obs_record", "ScopedSpan"};
  for (const auto& [path, entry] : model.files) {
    if (!telemetry_scope(path)) continue;
    if (path == model.telemetry_schema_file) continue;
    // Helper declarations/definitions live here; their parameter lists and
    // internal literals are not instrument uses.
    if (starts_with(path, "src/obs/")) continue;
    for (const StringLiteral& lit : entry.cleaned.literals) {
      if (lit.line == 0 || lit.line > entry.cleaned.lines.size()) continue;
      const std::string& line = entry.cleaned.lines[lit.line - 1];
      bool instrument = false;
      for (const char* helper : kHelpers) {
        const std::size_t p = find_ident(line, helper);
        if (p != std::string::npos && p < lit.col) {
          // First literal after the helper on this line is its name.
          bool first = true;
          for (const StringLiteral& other : entry.cleaned.literals) {
            if (other.line == lit.line && other.col > p &&
                other.col < lit.col) {
              first = false;
              break;
            }
          }
          if (first) instrument = true;
          break;
        }
      }
      if (!instrument) continue;
      if (model.telemetry_schema_file.empty()) {
        raw[path].push_back(
            {path, lit.line, "XH-OBS-001",
             "telemetry name '" + lit.text +
                 "' used but no xh-telemetry-schema-begin/end block was "
                 "found in the tree"});
      } else if (model.telemetry_names.count(lit.text) == 0) {
        raw[path].push_back(
            {path, lit.line, "XH-OBS-001",
             "telemetry name '" + lit.text +
                 "' is absent from the canonical schema list (" +
                 model.telemetry_schema_file + ")"});
      }
    }
  }
}

// ---- XH-SUP-001: stale suppressions ------------------------------------

void audit_suppressions(const ProjectModel& model, RawFindings& raw) {
  for (const auto& [path, entry] : model.files) {
    std::vector<Finding> stale;
    const auto rit = raw.find(path);
    for (const Directive& dir : entry.cleaned.directives) {
      if (dir.rules.empty()) continue;
      bool used = false;
      if (rit != raw.end()) {
        for (const Finding& f : rit->second) {
          if (std::find(dir.rules.begin(), dir.rules.end(), f.rule) ==
              dir.rules.end()) {
            continue;
          }
          if (dir.file_scope ||
              (f.line >= dir.first_covered && f.line <= dir.last_covered)) {
            used = true;
            break;
          }
        }
      }
      if (!used) {
        stale.push_back(
            {path, dir.line, "XH-SUP-001",
             "stale suppression: allow(" + join(dir.rules, ",") +
                 ") no longer matches any finding — delete it"});
      }
    }
    if (!stale.empty()) {
      auto& dst = raw[path];
      dst.insert(dst.end(), stale.begin(), stale.end());
    }
  }
}

}  // namespace

std::vector<Finding> analyze_tree(const ProjectModel& model,
                                  const AnalyzeOptions& options) {
  RawFindings raw;

  if (options.per_file_rules) {
    for (const auto& [path, entry] : model.files) {
      if (!per_file_scope(path)) continue;
      std::vector<std::string> extra;
      if (!entry.primary_header.empty()) {
        extra = harvest_unordered_names(
            model.files.at(entry.primary_header).cleaned.lines);
      }
      std::vector<Finding> f =
          per_file_findings(entry.source, entry.cleaned, extra);
      if (!f.empty()) {
        auto& dst = raw[path];
        dst.insert(dst.end(), f.begin(), f.end());
      }
    }
  }

  if (options.flow_rules) {
    FlowContext flow;
    for (const auto& [name, headers] : model.symbols.nodiscard) {
      (void)headers;
      flow.nodiscard_functions.push_back(name);
    }
    for (const auto& [path, entry] : model.files) {
      if (!per_file_scope(path)) continue;
      std::vector<Finding> f = flow_findings(entry.source, entry.cleaned,
                                             flow);
      if (!f.empty()) {
        auto& dst = raw[path];
        dst.insert(dst.end(), f.begin(), f.end());
      }
    }
  }

  if (options.ipa_rules) {
    for (Finding& f : ipa_findings(model)) {
      raw[f.path].push_back(std::move(f));
    }
  }

  if (options.tree_rules) {
    check_cycles(model, raw);
    check_layering(model, raw);
    check_includes(model, raw);
    check_discards(model, raw);
    check_deprecated(model, raw);
    check_telemetry(model, raw);
  }

  // The staleness audit only makes sense when every family that could use
  // a suppression actually ran.
  if (options.per_file_rules && options.tree_rules && options.flow_rules &&
      options.ipa_rules) {
    audit_suppressions(model, raw);
  }

  std::vector<Finding> out;
  for (const auto& [path, entry] : model.files) {
    const auto it = raw.find(path);
    if (it == raw.end()) continue;
    std::vector<Finding> kept =
        apply_suppressions(entry.cleaned, std::move(it->second));
    out.insert(out.end(), kept.begin(), kept.end());
  }
  if (!options.only.empty()) {
    std::vector<Finding> filtered;
    for (Finding& f : out) {
      for (const std::string& pat : options.only) {
        if (rule_matches(f.rule, pat)) {
          filtered.push_back(std::move(f));
          break;
        }
      }
    }
    out = std::move(filtered);
  }
  return out;
}

bool rule_matches(const std::string& rule, const std::string& pattern) {
  if (!pattern.empty() && pattern.back() == '*') {
    return starts_with(rule, pattern.substr(0, pattern.size() - 1));
  }
  return rule == pattern;
}

}  // namespace xh::lint
