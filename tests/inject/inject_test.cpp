// Fault-injection suite (DESIGN.md §7): every corruption mode must end in
// one of exactly two outcomes — the pipeline recovers and the emitted
// signature is verified X-free, or it fails with a structured diagnostic.
// An X-tainted signature reported as valid, or an uncaught crash, is a bug.
#include "inject/corruptor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "netlist/bench_io.hpp"
#include "response/io.hpp"

namespace xh {
namespace {

PartitionerConfig paper_cfg() {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  return cfg;
}

// ---------------------------------------------------------------------------
// Mode 1: unexpected X's (silicon captures X where the prediction says not).

TEST(InjectUndeclaredX, StrictModeThrows) {
  ResponseMatrix response = paper_example_response(21);
  const XMatrix declared = XMatrix::from_response(response);
  Corruptor corruptor(101);
  corruptor.add_undeclared_x(response, 3);
  PipelineContext ctx(paper_cfg());  // strict: no collector adopted
  EXPECT_THROW(run_hybrid_simulation(response, declared, ctx),
               std::runtime_error);
}

TEST(InjectUndeclaredX, GracefulModeRecoversWithXFreeSignature) {
  ResponseMatrix response = paper_example_response(21);
  const XMatrix declared = XMatrix::from_response(response);
  Corruptor corruptor(101);
  const auto injected = corruptor.add_undeclared_x(response, 3);

  Diagnostics diags;
  PipelineContext ctx(paper_cfg());
  ctx.adopt_collector(&diags);
  const HybridSimulation sim =
      run_hybrid_simulation(response, declared, ctx);
  EXPECT_TRUE(sim.degraded);
  EXPECT_EQ(sim.validation.undeclared_x, injected.size());
  EXPECT_EQ(diags.count(DiagKind::kUndeclaredX), injected.size());
  // The undeclared X's flowed into the X-canceling MISR, which tracks them
  // symbolically: the signature exists and every bit passed the X-freeness
  // re-check before emission (contaminated bits are never emitted).
  EXPECT_FALSE(sim.cancel.signature.empty());
  EXPECT_EQ(sim.cancel.contaminated_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Mode 2: declared X resolves deterministic (prediction over-reports X).

TEST(InjectResolvedX, MaskViolationsReportedNeverAbsorbed) {
  // Cell 0 captures X under every pattern, so every partition masks it.
  const ScanGeometry geo{2, 2};
  ResponseMatrix response(geo, 4);
  for (std::size_t p = 0; p < 4; ++p) {
    response.set(p, 0, Lv::kX);
    response.set(p, 1, Lv::k1);
    response.set(p, 2, p % 2 == 0 ? Lv::kX : Lv::k0);
    response.set(p, 3, Lv::k0);
  }
  const XMatrix declared = XMatrix::from_response(response);

  ResponseMatrix silicon = response;
  // Resolve one of cell 0's X's: the mask now hides an observable value.
  silicon.set(1, 0, Lv::k1);

  PipelineContext ctx;
  ctx.partitioner.misr = {4, 1};
  Diagnostics diags;
  ctx.adopt_collector(&diags);
  const HybridSimulation sim =
      run_hybrid_simulation(silicon, declared, ctx);
  EXPECT_TRUE(sim.degraded);
  EXPECT_EQ(sim.validation.missing_x, 1u);
  EXPECT_EQ(diags.count(DiagKind::kMissingX), 1u);
  EXPECT_GE(sim.masked_observable, 1u);
  EXPECT_GE(diags.count(DiagKind::kMaskHidesValue), 1u);
  EXPECT_FALSE(sim.observability_preserved);
}

TEST(InjectResolvedX, EngineResolvesOnlyDeclaredXCells) {
  ResponseMatrix response = paper_example_response(21);
  const XMatrix declared = XMatrix::from_response(response);
  Corruptor corruptor(13);
  const auto resolved = corruptor.resolve_declared_x(response, 4);
  ASSERT_EQ(resolved.size(), 4u);
  for (const CellRef& ref : resolved) {
    EXPECT_TRUE(declared.patterns_of(ref.cell).get(ref.pattern));
    EXPECT_FALSE(response.is_x(ref.pattern, ref.cell));
  }

  Diagnostics diags;
  PipelineContext ctx(paper_cfg());
  ctx.adopt_collector(&diags);
  const HybridSimulation sim =
      run_hybrid_simulation(response, declared, ctx);
  EXPECT_TRUE(sim.degraded);
  EXPECT_EQ(sim.validation.missing_x, 4u);
}

// ---------------------------------------------------------------------------
// Mode 3: truncated serialized inputs.

TEST(InjectTruncation, XMatrixRejectedWithDiagnostic) {
  const std::string text = x_matrix_to_string(paper_example_x_matrix());
  Corruptor corruptor(3);
  const std::string cut = corruptor.truncate_text(text, 0.6);
  Diagnostics diags;
  EXPECT_THROW(x_matrix_from_string(cut, &diags), std::invalid_argument);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_GE(diags.count(DiagKind::kTruncatedInput) +
                diags.count(DiagKind::kGarbledInput),
            1u);
}

TEST(InjectTruncation, EveryPrefixOfAnXMatrixIsRejected) {
  // The 'end <total>' trailer makes truncation detectable at ANY cut point:
  // no strict prefix of a valid file is itself valid. (Cutting only the
  // final newline keeps the trailer intact, so stop one byte short.)
  const std::string text = x_matrix_to_string(paper_example_x_matrix());
  for (std::size_t keep = 0; keep + 1 < text.size(); ++keep) {
    EXPECT_THROW(x_matrix_from_string(text.substr(0, keep)),
                 std::invalid_argument)
        << "prefix of " << keep << " bytes was accepted";
  }
}

TEST(InjectTruncation, ResponseRejectedWithDiagnostic) {
  const std::string text =
      response_to_string(paper_example_response(21));
  Corruptor corruptor(5);
  const std::string cut = corruptor.truncate_text(text, 0.5);
  Diagnostics diags;
  EXPECT_THROW(response_from_string(cut, &diags), std::invalid_argument);
  EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------------
// Mode 4: garbled serialized inputs.

TEST(InjectGarbling, ResponseRejectedWithDiagnostic) {
  const std::string text =
      response_to_string(paper_example_response(21));
  Corruptor corruptor(17);
  const std::string bad = corruptor.garble_text(text, 3);
  Diagnostics diags;
  EXPECT_THROW(response_from_string(bad, &diags), std::invalid_argument);
  EXPECT_TRUE(diags.has_errors());
}

TEST(InjectGarbling, XMatrixRejectedWithDiagnostic) {
  const std::string text = x_matrix_to_string(paper_example_x_matrix());
  Corruptor corruptor(19);
  const std::string bad = corruptor.garble_text(text, 3);
  Diagnostics diags;
  EXPECT_THROW(x_matrix_from_string(bad, &diags), std::invalid_argument);
  EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------------
// Mode 5: duplicated records.

TEST(InjectDuplication, XMatrixRejectedWithDiagnostic) {
  const std::string text = x_matrix_to_string(paper_example_x_matrix());
  Corruptor corruptor(23);
  const std::string bad = corruptor.duplicate_line(text);
  Diagnostics diags;
  // A duplicated cell line trips the duplicate-record check; a duplicated
  // trailer trips the trailing-garbage check. Either way: structured error.
  EXPECT_THROW(x_matrix_from_string(bad, &diags), std::invalid_argument);
  EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------------
// Mode 6: X burst starves Gaussian extraction; deficit repaid later.

TEST(InjectBurst, StarvesExtractionAndReportsDeficit) {
  const MisrConfig cfg{8, 3};
  ResponseMatrix response({8, 16}, 1);
  Corruptor corruptor(31);
  // 7 X's in one shift slice: segment jumps 0 → 7, overshooting the m−q = 5
  // stop budget; the null space holds only 8−7 = 1 X-free combination.
  const auto burst = corruptor.x_burst(response, cfg, 7);
  ASSERT_EQ(burst.size(), 7u);

  Diagnostics diags;
  const XCancelResult result = run_x_canceling(response, cfg, &diags);
  EXPECT_EQ(result.starved_stops, 1u);
  EXPECT_EQ(result.signature_deficit, 2u);
  EXPECT_FALSE(result.healthy());
  EXPECT_EQ(diags.count(DiagKind::kExtractionStarved), 1u);
  EXPECT_EQ(diags.count(DiagKind::kSignatureDeficit), 1u);
  EXPECT_TRUE(diags.has_errors());
}

TEST(InjectBurst, DeficitRepaidAtLaterStopsWithLargerNullSpace) {
  const MisrConfig cfg{8, 3};
  ResponseMatrix response({8, 16}, 1);
  // Burst of 7 at position 0 (one shift cycle) → stop with 1 combination,
  // deficit 2, stop threshold drops to (m−q)−2 = 3.
  for (std::size_t chain = 0; chain < 7; ++chain) {
    response.set(0, response.geometry().cell_index(chain, 0), Lv::kX);
  }
  // Three scattered X's reach the lowered threshold → stop with null-space
  // dimension 8−3 = 5 = q + deficit: the owed bits are repaid.
  response.set(0, response.geometry().cell_index(0, 2), Lv::kX);
  response.set(0, response.geometry().cell_index(1, 4), Lv::kX);
  response.set(0, response.geometry().cell_index(2, 6), Lv::kX);
  // Two trailing X's flush through the final extraction.
  response.set(0, response.geometry().cell_index(3, 8), Lv::kX);
  response.set(0, response.geometry().cell_index(4, 10), Lv::kX);

  Diagnostics diags;
  const XCancelResult result = run_x_canceling(response, cfg, &diags);
  EXPECT_EQ(result.stops, 3u);
  EXPECT_EQ(result.starved_stops, 1u);
  EXPECT_EQ(result.extra_combinations, 2u);
  EXPECT_EQ(result.signature_deficit, 0u);
  EXPECT_EQ(result.selection_vectors, 9u);  // 3 stops × q on aggregate
  EXPECT_EQ(result.signature.size(), 9u);
  EXPECT_EQ(diags.count(DiagKind::kExtractionStarved), 1u);
  EXPECT_EQ(diags.count(DiagKind::kExtractionRecovered), 1u);
  EXPECT_FALSE(diags.has_errors());  // fully recovered: warnings only
}

// ---------------------------------------------------------------------------
// Mode 7: tampered selection vectors must be caught by the X-freeness
// re-check and dropped — an X-tainted bit must never enter the signature.

TEST(InjectTamper, ContaminatedCombinationsDroppedNeverEmitted) {
  const MisrConfig cfg{8, 3};
  Corruptor corruptor(43);
  Diagnostics diags;
  XCancelSession session(cfg, &diags);
  session.install_combination_tamper(corruptor.combination_tamper());

  for (std::size_t cycle = 0; cycle < 40; ++cycle) {
    std::vector<Lv> slice(cfg.size, Lv::k0);
    if (cycle % 2 == 0) slice[cycle % cfg.size] = Lv::kX;
    session.shift(slice);
  }
  const XCancelResult& result = session.finish();
  EXPECT_GE(result.contaminated_dropped, 1u);
  EXPECT_EQ(diags.count(DiagKind::kContaminatedCombination),
            result.contaminated_dropped);
  // Every bit emitted at a stop passed the re-check: their count equals the
  // verified selection vectors, with drops excluded. (Bits with
  // stop_index == stops come from the final X-free flush, which reads the
  // MISR directly and streams no selection vectors.)
  std::size_t emitted_at_stops = 0;
  for (const SignatureBit& bit : result.signature) {
    if (bit.stop_index < result.stops) ++emitted_at_stops;
  }
  EXPECT_EQ(emitted_at_stops, result.selection_vectors);
  EXPECT_FALSE(result.healthy());
}

TEST(InjectTamper, NoCollectorStillDropsInsteadOfCrashing) {
  const MisrConfig cfg{8, 3};
  Corruptor corruptor(47);
  XCancelSession session(cfg);  // no Diagnostics attached
  session.install_combination_tamper(corruptor.combination_tamper());
  for (std::size_t cycle = 0; cycle < 40; ++cycle) {
    std::vector<Lv> slice(cfg.size, Lv::k0);
    if (cycle % 2 == 0) slice[cycle % cfg.size] = Lv::kX;
    session.shift(slice);
  }
  EXPECT_NO_THROW(session.finish());
  EXPECT_GE(session.finish().contaminated_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Mode 8: damaged netlist files.

constexpr const char* kBench = R"(INPUT(a)
INPUT(b)
OUTPUT(f)
g = NAND(a, b)
f = AND(g, b)
)";

TEST(InjectBench, TruncationRejectedWithDiagnostic) {
  Corruptor corruptor(53);
  const std::string cut = corruptor.truncate_text(kBench, 0.9);
  Diagnostics diags;
  EXPECT_THROW(read_bench_string(cut, "cut", &diags), std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kNetlistParseError), 1u);
}

TEST(InjectBench, GarblingRejectedWithDiagnostic) {
  Corruptor corruptor(59);
  const std::string bad = corruptor.garble_text(kBench, 3);
  Diagnostics diags;
  EXPECT_THROW(read_bench_string(bad, "bad", &diags), std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kNetlistParseError), 1u);
}

// ---------------------------------------------------------------------------
// Engine determinism: same seed → identical corruption; different seed →
// different corruption (reproducibility is what makes the suite debuggable).

TEST(InjectEngine, SameSeedReproducesExactCorruption) {
  ResponseMatrix a = paper_example_response(21);
  ResponseMatrix b = paper_example_response(21);
  Corruptor ca(99);
  Corruptor cb(99);
  EXPECT_EQ(ca.add_undeclared_x(a, 5), cb.add_undeclared_x(b, 5));
  EXPECT_EQ(ca.garble_text(kBench, 4), cb.garble_text(kBench, 4));
}

TEST(InjectEngine, RefusesImpossibleRequests) {
  ResponseMatrix response({2, 2}, 1);
  Corruptor corruptor(1);
  EXPECT_THROW(corruptor.add_undeclared_x(response, 5),
               std::invalid_argument);
  EXPECT_THROW(corruptor.resolve_declared_x(response, 1),
               std::invalid_argument);
  EXPECT_THROW(corruptor.x_burst(response, {8, 3}, 7),
               std::invalid_argument);
}

}  // namespace
}  // namespace xh
