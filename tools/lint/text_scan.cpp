#include "lint/text_scan.hpp"

#include <algorithm>
#include <cctype>

namespace xh::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

namespace {

/// Parses allow(ID[,ID...]) and allow-file(ID[,ID...]) directives — each
/// introduced by an "xh-lint:" marker — out of one comment's text.
void parse_directives(const std::string& comment, std::size_t first_line,
                      std::size_t last_line, Cleaned& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("xh-lint:", pos)) != std::string::npos) {
    std::size_t p = pos + 8;
    while (p < comment.size() && comment[p] == ' ') ++p;
    const bool file_scope = starts_with(comment.substr(p), "allow-file(");
    const bool line_scope = !file_scope && starts_with(comment.substr(p), "allow(");
    if (!file_scope && !line_scope) {
      pos = p;
      continue;
    }
    const std::size_t open = comment.find('(', p);
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    // Split the comma-separated rule list.
    std::vector<std::string> ids;
    std::string cur;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!cur.empty()) ids.push_back(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t') {
        cur.push_back(c);
      }
    }
    Directive dir;
    dir.line = first_line;
    dir.file_scope = file_scope;
    dir.rules = ids;
    if (file_scope) {
      out.allow_file.insert(out.allow_file.end(), ids.begin(), ids.end());
    } else {
      // A line-scoped allow covers every line the comment touches plus the
      // following line, so both trailing and line-above styles work.
      dir.first_covered = first_line;
      dir.last_covered = last_line + 1;
      for (std::size_t ln = first_line; ln <= last_line + 1; ++ln) {
        if (out.allow.size() < ln) out.allow.resize(ln);
        out.allow[ln - 1].insert(out.allow[ln - 1].end(), ids.begin(),
                                 ids.end());
      }
    }
    out.directives.push_back(std::move(dir));
    pos = close;
  }
}

}  // namespace

Cleaned clean(const std::string& text) {
  Cleaned out;
  std::string code;
  code.reserve(text.size());

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string comment;
  std::string literal;
  std::string raw_delim;
  std::size_t line = 1;
  std::size_t col = 0;
  std::size_t comment_start = 1;
  std::size_t literal_line = 1;
  std::size_t literal_col = 0;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment.clear();
          comment_start = line;
          code += "  ";
          ++i;
          ++col;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment.clear();
          comment_start = line;
          code += "  ";
          ++i;
          ++col;
        } else if (c == '"' && (i == 0 || text[i - 1] != 'R')) {
          state = State::kString;
          literal.clear();
          literal_line = line;
          literal_col = col;
          code += ' ';
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          state = State::kRaw;
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < text.size() && text[j] != '(') {
            raw_delim.push_back(text[j]);
            ++j;
          }
          code += ' ';
        } else if (c == '\'') {
          // C++14 digit separator (1'000'000, 0xdead'beef): a quote inside
          // a numeric token is not a character literal. Numeric tokens
          // always start with a digit, so classify by the token's head.
          std::size_t b = i;
          while (b > 0 && is_ident_char(text[b - 1])) --b;
          const bool digit_sep =
              b < i && text[b] >= '0' && text[b] <= '9' &&
              std::isalnum(static_cast<unsigned char>(next)) != 0;
          if (digit_sep) {
            code += c;
          } else {
            state = State::kChar;
            code += ' ';
          }
        } else {
          code += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          parse_directives(comment, comment_start, line, out);
          state = State::kCode;
          code += '\n';
        } else {
          comment.push_back(c);
          code += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          parse_directives(comment, comment_start, line, out);
          state = State::kCode;
          code += "  ";
          ++i;
          ++col;
        } else {
          comment.push_back(c);
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          literal.push_back(c);
          if (next != '\0') literal.push_back(next);
          code += "  ";
          ++i;
          ++col;
          if (next == '\n') ++line, code.back() = '\n';
        } else if (c == '"') {
          out.literals.push_back({literal_line, literal_col, literal});
          state = State::kCode;
          code += ' ';
        } else {
          literal.push_back(c);
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code += "  ";
          ++i;
          ++col;
        } else if (c == '\'') {
          state = State::kCode;
          code += ' ';
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, closer.size(), closer) == 0) {
          state = State::kCode;
          for (std::size_t k = 0; k < closer.size(); ++k) code += ' ';
          i += closer.size() - 1;
          col += closer.size() - 1;
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
    if (c == '\n') {
      ++line;
      col = 0;
    } else {
      ++col;
    }
  }
  if (state == State::kLine || state == State::kBlock) {
    parse_directives(comment, comment_start, line, out);
  }

  // Split the blanked text into lines.
  std::string cur;
  for (const char c : code) {
    if (c == '\n') {
      out.lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.lines.push_back(cur);
  if (out.allow.size() < out.lines.size()) out.allow.resize(out.lines.size());
  return out;
}

std::size_t find_ident(const std::string& line, const std::string& name,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool has_ident(const std::string& line, const std::string& name) {
  return find_ident(line, name) != std::string::npos;
}

bool has_call(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = find_ident(line, name, pos)) != std::string::npos) {
    std::size_t p = pos + name.size();
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
    if (p >= line.size() || line[p] != '(') {
      pos = p;
      continue;
    }
    // Inspect what precedes the identifier.
    std::size_t q = pos;
    while (q > 0 && (line[q - 1] == ' ' || line[q - 1] == '\t')) --q;
    const bool member_access =
        (q >= 1 && line[q - 1] == '.') ||
        (q >= 2 && line[q - 2] == '-' && line[q - 1] == '>');
    bool benign = member_access;
    if (!benign && q >= 2 && line[q - 1] == ':' && line[q - 2] == ':') {
      // Qualified name: `std::time(` and `steady_clock::now(` are the libc /
      // chrono queries; `CombSim::clock(` is an out-of-line member whose
      // name merely collides (a scan clock is not a wall clock).
      std::size_t s = q - 2;
      while (s > 0 && is_ident_char(line[s - 1])) --s;
      const std::string qual = line.substr(s, q - 2 - s);
      benign = !qual.empty() && qual != "std" && !ends_with(qual, "_clock") &&
               qual != "chrono";
    } else if (!benign && q >= 1 && is_ident_char(line[q - 1])) {
      // Preceding identifier: a declaration/definition (`void clock();`)
      // unless it is a control keyword (`return time(nullptr)`).
      std::size_t s = q;
      while (s > 0 && is_ident_char(line[s - 1])) --s;
      const std::string prev = line.substr(s, q - s);
      benign = prev != "return" && prev != "else" && prev != "case" &&
               prev != "co_return" && prev != "co_yield";
    }
    if (!benign) return true;
    pos = p;
  }
  return false;
}

std::size_t find_range_colon(const std::string& line, std::size_t from) {
  for (std::size_t i = from; i < line.size(); ++i) {
    if (line[i] != ':') continue;
    const bool left = i > 0 && line[i - 1] == ':';
    const bool right = i + 1 < line.size() && line[i + 1] == ':';
    if (!left && !right) return i;
    if (right) ++i;  // skip the pair
  }
  return std::string::npos;
}

std::vector<std::string> harvest_unordered_names(
    const std::vector<std::string>& lines) {
  std::string text;
  for (const auto& l : lines) {
    text += l;
    text += '\n';
  }
  std::vector<std::string> names;
  for (const char* kind : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    std::size_t pos = 0;
    while ((pos = find_ident(text, kind, pos)) != std::string::npos) {
      std::size_t p = pos + std::string(kind).size();
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
      if (p >= text.size() || text[p] != '<') {
        pos = p;
        continue;
      }
      // Match the template argument list (angle brackets nest; '>>' closes
      // two levels at once in token terms but we count characters, which is
      // equivalent here).
      int depth = 0;
      while (p < text.size()) {
        if (text[p] == '<') ++depth;
        if (text[p] == '>') {
          --depth;
          if (depth == 0) {
            ++p;
            break;
          }
        }
        ++p;
      }
      // Skip whitespace / reference / pointer markers, then read the
      // declared identifier (if this was a type use in a declaration).
      while (p < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[p])) ||
              text[p] == '&' || text[p] == '*')) {
        ++p;
      }
      std::string name;
      while (p < text.size() && is_ident_char(text[p])) {
        name.push_back(text[p]);
        ++p;
      }
      if (!name.empty()) names.push_back(name);
      pos = p;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace xh::lint
