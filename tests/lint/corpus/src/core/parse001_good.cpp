// corpus: the util/parse strict helpers are the sanctioned path.
#include <cstdint>
#include <string>

namespace xh {
std::uint64_t parse_u64(const std::string& text);
}

std::uint64_t chains(const std::string& text) { return xh::parse_u64(text); }
