// XH-FLOW-004 fixture: text is consumed by std::move and then read on the
// very next line — a moved-from read.
#include <cstddef>
#include <string>
#include <utility>

namespace xh {

std::size_t enqueue(std::string text);

std::size_t submit(std::string text) {
  const std::size_t id = enqueue(std::move(text));
  return id + text.size();
}

}  // namespace xh
