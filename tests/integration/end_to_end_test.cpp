// Full-stack integration: synthetic circuit with X-sources → ATPG patterns →
// captured responses → pattern-partitioned hybrid X-handling → verified
// coverage preservation and control-bit/test-time wins.
#include <gtest/gtest.h>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "fault/fault_sim.hpp"
#include "misr/accounting.hpp"
#include "netlist/generator.hpp"
#include "scan/test_application.hpp"

namespace xh {
namespace {

struct Flow {
  Netlist nl;
  ScanPlan plan;
  AtpgResult atpg;
  ResponseMatrix response;

  static Flow build(std::uint64_t seed) {
    GeneratorConfig gcfg;
    gcfg.seed = seed;
    gcfg.num_gates = 220;
    gcfg.num_dffs = 24;
    gcfg.nonscan_fraction = 0.20;
    gcfg.num_buses = 2;
    Netlist nl = generate_circuit(gcfg);
    ScanPlan plan = ScanPlan::build(nl, 4);
    AtpgConfig acfg;
    acfg.random_patterns = 48;
    acfg.seed = seed * 31 + 7;
    AtpgResult atpg = generate_test_set(nl, plan, acfg);
    TestApplicator app(nl, plan);
    ResponseMatrix response = app.capture(atpg.patterns);
    return Flow{std::move(nl), std::move(plan), std::move(atpg),
                std::move(response)};
  }
};

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, ResponsesContainXs) {
  const Flow flow = Flow::build(GetParam());
  EXPECT_GT(flow.response.total_x(), 0u)
      << "unscanned flops / buses must pollute some captures";
  EXPECT_LT(flow.response.x_density(), 1.0);
}

TEST_P(EndToEnd, HybridPipelineRunsAndVerifies) {
  const Flow flow = Flow::build(GetParam());
  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridSimulation sim = run_hybrid_simulation(flow.response, ctx);
  EXPECT_TRUE(sim.observability_preserved);
  EXPECT_EQ(sim.masked_response.total_x(),
            sim.report.partitioning.leaked_x);
  // The hybrid's floor is one partition's mask (L·C bits); the cost
  // function guarantees no state above the unsplit hybrid.
  EXPECT_LE(sim.report.proposed_bits,
            sim.report.canceling_only_bits +
                static_cast<double>(flow.response.num_cells()) + 1e-9)
      << "the cost function may never exceed the unsplit hybrid";
}

TEST_P(EndToEnd, FaultCoverageIsExactlyPreserved) {
  // The paper's headline guarantee: masking only all-X cells per partition
  // cannot lose a single detection. Verified by running fault simulation
  // with full observability vs. the hybrid's observation filter.
  const Flow flow = Flow::build(GetParam());
  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridReport rep =
      run_hybrid_analysis(XMatrix::from_response(flow.response), ctx);

  FaultSimulator fsim(flow.nl, flow.plan);
  // Sample the fault universe to keep runtime sane.
  std::vector<StuckFault> sample;
  for (std::size_t i = 0; i < flow.atpg.faults.size(); i += 5) {
    sample.push_back(flow.atpg.faults[i]);
  }
  const FaultSimResult ideal =
      fsim.run(flow.atpg.patterns, sample, observe_all());
  const FaultSimResult masked = fsim.run(
      flow.atpg.patterns, sample,
      observe_with_partition_masks(rep.partitioning.partitions,
                                   rep.partitioning.masks));
  ASSERT_EQ(ideal.detected.size(), masked.detected.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_EQ(ideal.detected[i], masked.detected[i])
        << "coverage loss on " << fault_name(flow.nl, sample[i]);
  }
  EXPECT_EQ(ideal.num_detected, masked.num_detected);
}

TEST_P(EndToEnd, HybridReducesMisrStops) {
  const Flow flow = Flow::build(GetParam());
  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridSimulation sim = run_hybrid_simulation(flow.response, ctx);
  const XCancelResult baseline =
      run_x_canceling(flow.response, ctx.misr());
  EXPECT_LE(sim.cancel.stops, baseline.stops);
  if (sim.report.partitioning.masked_x > 0) {
    EXPECT_LT(sim.cancel.total_x_seen, baseline.total_x_seen);
  }
}

TEST_P(EndToEnd, AnalysisMatchesSimulation) {
  const Flow flow = Flow::build(GetParam());
  PipelineContext actx;
  actx.partitioner.misr = {16, 4};
  PipelineContext sctx;
  sctx.partitioner.misr = {16, 4};
  const XMatrix xm = XMatrix::from_response(flow.response);
  const HybridReport analytic = run_hybrid_analysis(xm, actx);
  const HybridSimulation sim = run_hybrid_simulation(flow.response, sctx);
  EXPECT_EQ(analytic.total_x, sim.report.total_x);
  EXPECT_DOUBLE_EQ(analytic.proposed_bits, sim.report.proposed_bits);
  EXPECT_EQ(analytic.partitioning.num_partitions(),
            sim.report.partitioning.num_partitions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace xh
