// XH-FLOW-003 non-firing fixture: the same relaxed RMW is fine inside a
// note_* helper — that IS the documented accounting seam.
#include <atomic>
#include <cstdint>

namespace xh {

struct ProbeCounters {
  std::atomic<std::uint64_t> hits{0};
};

std::uint64_t note_probe_hit(ProbeCounters& counters) {
  return counters.hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xh
