// Randomized equivalence suite: the incremental PartitionEngine must be
// bit-identical to the retained seed partitioner (the oracle) — same split
// history, same partitions, same masks, same control-bit totals — for any
// geometry, density, seed and split-cell policy, and for any thread-pool
// size. This is the contract that lets partition_patterns() delegate to the
// engine without a behavioral release note.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "engine/partition_engine.hpp"
#include "engine/pipeline_context.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

XMatrix random_matrix(Rng& rng) {
  WorkloadProfile profile;
  profile.name = "equiv";
  profile.geometry = {2 + static_cast<std::size_t>(rng.below(14)),
                      4 + static_cast<std::size_t>(rng.below(28))};
  profile.num_patterns = 16 + static_cast<std::size_t>(rng.below(180));
  profile.x_density = 0.005 + 0.10 * rng.uniform();
  profile.clustered_fraction = rng.uniform();
  profile.cluster_cells_mean =
      2 + static_cast<std::size_t>(rng.below(12));
  profile.cluster_patterns_mean =
      2 + static_cast<std::size_t>(rng.below(12));
  profile.seed = rng.next_u64();
  return generate_workload(profile);
}

void expect_identical(const PartitionResult& want, const PartitionResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(want.partitions.size(), got.partitions.size());
  for (std::size_t i = 0; i < want.partitions.size(); ++i) {
    EXPECT_TRUE(want.partitions[i] == got.partitions[i]) << "partition " << i;
    EXPECT_TRUE(want.masks[i] == got.masks[i]) << "mask " << i;
  }
  EXPECT_EQ(want.masked_x, got.masked_x);
  EXPECT_EQ(want.leaked_x, got.leaked_x);
  EXPECT_EQ(want.total_bits, got.total_bits);
  EXPECT_EQ(want.masking_bits, got.masking_bits);
  EXPECT_EQ(want.canceling_bits, got.canceling_bits);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (std::size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    EXPECT_EQ(want.history[i].round, got.history[i].round);
    EXPECT_EQ(want.history[i].num_partitions, got.history[i].num_partitions);
    EXPECT_EQ(want.history[i].masked_x, got.history[i].masked_x);
    EXPECT_EQ(want.history[i].leaked_x, got.history[i].leaked_x);
    EXPECT_EQ(want.history[i].total_bits, got.history[i].total_bits);
    EXPECT_EQ(want.history[i].split_cell, got.history[i].split_cell);
    EXPECT_EQ(want.history[i].accepted, got.history[i].accepted);
  }
}

// The core satellite requirement: >= 50 random (geometry, density, seed,
// SplitCellChoice) combinations, each checked field by field against the
// seed oracle, through both the engine and the partition_patterns wrapper.
TEST(EngineEquivalence, MatchesSeedPartitionerOnRandomWorkloads) {
  Rng rng(20260805);
  for (int iter = 0; iter < 56; ++iter) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {8 + static_cast<std::size_t>(rng.below(48)),
                2 + static_cast<std::size_t>(rng.below(6))};
    cfg.cell_choice = (iter % 2 == 0) ? SplitCellChoice::kLowestIndex
                                      : SplitCellChoice::kRandom;
    cfg.allow_singleton_groups = iter % 5 == 0;
    cfg.seed = rng.next_u64();
    const std::string label =
        "iter " + std::to_string(iter) + " cells " +
        std::to_string(xm.num_cells()) + " patterns " +
        std::to_string(xm.num_patterns()) + " x " +
        std::to_string(xm.total_x());

    const PartitionResult want = partition_patterns_reference(xm, cfg);
    expect_identical(want, partition_patterns(xm, cfg), label + " wrapper");

    const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
    PartitionEngine engine(*store, cfg);
    expect_identical(want, engine.run(), label + " engine");
  }
}

// Exhaustive splitting (no cost-based stop) exercises deep split trees and
// the max_rounds bound on both implementations.
TEST(EngineEquivalence, MatchesSeedWhenSplittingExhaustively) {
  Rng rng(777);
  for (int iter = 0; iter < 8; ++iter) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {32, 7};
    cfg.stop_on_cost_increase = false;
    cfg.max_rounds = 1 + static_cast<std::size_t>(rng.below(30));
    cfg.cell_choice =
        iter % 2 == 0 ? SplitCellChoice::kRandom : SplitCellChoice::kLowestIndex;
    cfg.seed = rng.next_u64();
    expect_identical(partition_patterns_reference(xm, cfg),
                     partition_patterns(xm, cfg),
                     "exhaustive iter " + std::to_string(iter));
  }
}

// Pool-backed analysis must produce the same bits as the serial path for
// any lane count: chunk boundaries are deterministic and chunk results are
// merged in chunk order.
TEST(EngineEquivalence, PoolSizeDoesNotChangeTheResult) {
  Rng rng(4242);
  for (int iter = 0; iter < 6; ++iter) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {32, 7};
    cfg.cell_choice = SplitCellChoice::kRandom;
    cfg.seed = rng.next_u64();
    const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
    PartitionEngine serial(*store, cfg, nullptr);
    const PartitionResult want = serial.run();
    for (const std::size_t lanes : {2u, 3u, 5u}) {
      ThreadPool pool(lanes);
      PartitionEngine engine(*store, cfg, &pool);
      expect_identical(want, engine.run(),
                       "iter " + std::to_string(iter) + " lanes " +
                           std::to_string(lanes));
    }
  }
}

// The context-routed entry point is the same computation.
TEST(EngineEquivalence, ContextEntryPointMatchesWrapper) {
  Rng rng(99);
  const XMatrix xm = random_matrix(rng);
  PartitionerConfig cfg;
  cfg.misr = {24, 5};
  cfg.seed = 31337;
  PipelineContext ctx(cfg);
  expect_identical(partition_patterns(xm, cfg), run_partitioning(xm, ctx),
                   "context");
}

// A rejected probe must leave the engine state untouched: same partitions,
// same masked total, and materialize() unchanged except for the recorded
// rejection round.
TEST(EngineEquivalence, RejectedProbeIsIdempotent) {
  Rng rng(5150);
  int rejected_seen = 0;
  for (int iter = 0; iter < 40 && rejected_seen < 5; ++iter) {
    const XMatrix xm = random_matrix(rng);
    PartitionerConfig cfg;
    cfg.misr = {16, 3};  // small MISR: leaking is cheap, rejections common
    cfg.seed = rng.next_u64();
    const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
    PartitionEngine engine(*store, cfg);
    while (true) {
      const std::size_t parts_before = engine.num_partitions();
      const std::uint64_t masked_before = engine.masked_x();
      std::vector<BitVec> patterns_before;
      for (std::size_t i = 0; i < parts_before; ++i) {
        patterns_before.push_back(engine.partition_patterns_of(i));
      }
      const PartitionEngine::StepOutcome out = engine.step();
      if (out == PartitionEngine::StepOutcome::kSplit) continue;
      if (out == PartitionEngine::StepOutcome::kRejected) {
        ++rejected_seen;
        EXPECT_EQ(engine.num_partitions(), parts_before);
        EXPECT_EQ(engine.masked_x(), masked_before);
        for (std::size_t i = 0; i < parts_before; ++i) {
          EXPECT_TRUE(engine.partition_patterns_of(i) == patterns_before[i]);
        }
        EXPECT_FALSE(engine.history().back().accepted);
        EXPECT_TRUE(engine.finished());
        // Further stepping is inert and consumes no randomness.
        EXPECT_EQ(engine.step(), PartitionEngine::StepOutcome::kExhausted);
        EXPECT_EQ(engine.num_partitions(), parts_before);
      }
      break;
    }
  }
  EXPECT_GE(rejected_seen, 1);
}

}  // namespace
}  // namespace xh
