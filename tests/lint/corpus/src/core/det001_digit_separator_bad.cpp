// Digit separators must not be mistaken for character-literal quotes: the
// odd quote count in 1'000'000'000 once put the cleaner into char-literal
// state and hid everything below it, including the banned rand() call.
#include <cstdlib>

namespace xh {

int jittered_backoff() {
  const long long base = 1'000'000;
  const long long cap = 1'000'000'000;
  return static_cast<int>((base + std::rand()) % cap);
}

}  // namespace xh
