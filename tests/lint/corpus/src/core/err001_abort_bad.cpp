// corpus: XH-ERR-001 must fire on process-killing calls inside src/core/.
#include <cstdlib>

void die(bool broken) {
  if (broken) std::abort();
}
