// xh_lint — project lint CLI. Loads every input into the whole-tree
// project model (DESIGN.md §9), runs the per-file and cross-TU rule
// families, and exits non-zero when any finding survives suppression so CI
// can gate on it.
//
//   xh_lint [--root DIR] [--layers FILE] [--exclude PREFIX]...
//           [--json FILE] [--sarif FILE] [--per-file-only|--tree-only]
//           [--only PATTERN] [--cache-dir DIR] [--list-rules] PATH...
//
// Paths are reported relative to --root (default: the current directory);
// rule applicability (src/ vs bench/ vs tests/, core/engine) keys off that
// relative path, so run it from the repository root or pass --root
// explicitly. Missing or unreadable inputs are diagnosed on stderr and the
// exit code is 2 — they are never silently skipped.
//
// --only filters emitted findings to rules matching PATTERN (exact ID or a
// trailing-'*' glob, comma-separable, repeatable); every family still runs
// so the stale-suppression audit stays whole-picture. --cache-dir enables a
// ccache-style findings cache: the key is an FNV-1a hash over the tool
// schema version, the rule-registry fingerprint, the analysis options, the
// layers spec, and every input file's (path, content-hash) pair — any edit
// anywhere (including adding a rule) misses, an untouched tree hits and
// skips the whole analysis.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/project_model.hpp"

namespace {

constexpr const char* kUsage =
    "usage: xh_lint [--root DIR] [--layers FILE] [--exclude PREFIX]...\n"
    "               [--json FILE] [--sarif FILE]\n"
    "               [--per-file-only|--tree-only]\n"
    "               [--only PATTERN] [--cache-dir DIR]\n"
    "               [--list-rules] PATH...\n";

std::uint64_t fnv1a(const std::string& data, std::uint64_t h) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Cache key over everything that can change the findings. Bump the
/// version prefix whenever rule semantics change incompatibly.
std::string cache_key(const std::vector<xh::lint::SourceFile>& files,
                      const std::string& layers_text,
                      const xh::lint::AnalyzeOptions& options) {
  std::uint64_t h = fnv1a("xh-lint-cache/1", 14695981039346656037ULL);
  h = fnv1a(xh::lint::registry_version(), h);
  h = fnv1a(options.per_file_rules ? "pf1" : "pf0", h);
  h = fnv1a(options.tree_rules ? "tr1" : "tr0", h);
  h = fnv1a(options.flow_rules ? "fl1" : "fl0", h);
  h = fnv1a(options.ipa_rules ? "ip1" : "ip0", h);
  for (const std::string& pat : options.only) h = fnv1a("only:" + pat, h);
  h = fnv1a(layers_text, h);
  // load_tree returns paths in traversal order; hash (path, content-hash)
  // pairs sorted so the key is independent of directory enumeration order.
  std::vector<std::string> entries;
  entries.reserve(files.size());
  for (const auto& f : files) {
    entries.push_back(f.path + "=" +
                      hex64(fnv1a(f.content, 14695981039346656037ULL)));
  }
  std::sort(entries.begin(), entries.end());
  for (const std::string& e : entries) h = fnv1a(e, h);
  return hex64(h);
}

/// Serialized finding line: rule \t line \t path \t message (message last
/// so embedded tabs, though absent today, would still round-trip).
bool read_cached(const std::string& file,
                 std::vector<xh::lint::Finding>& findings) {
  std::ifstream in(file, std::ios::binary);
  if (!in.good()) return false;
  std::string line;
  if (!std::getline(in, line) || line != "xh-lint-cache/1") return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 =
        t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    const std::size_t t3 =
        t2 == std::string::npos ? std::string::npos : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) return false;
    xh::lint::Finding f;
    f.rule = line.substr(0, t1);
    f.line = 0;
    for (std::size_t i = t1 + 1; i < t2; ++i) {
      if (line[i] < '0' || line[i] > '9') return false;
      f.line = f.line * 10 + static_cast<std::size_t>(line[i] - '0');
    }
    f.path = line.substr(t2 + 1, t3 - t2 - 1);
    f.message = line.substr(t3 + 1);
    findings.push_back(std::move(f));
  }
  return true;
}

void write_cached(const std::string& file,
                  const std::vector<xh::lint::Finding>& findings) {
  std::ofstream out(file, std::ios::binary);
  out << "xh-lint-cache/1\n";
  for (const auto& f : findings) {
    out << f.rule << '\t' << f.line << '\t' << f.path << '\t' << f.message
        << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;  // default: <root>/tools/lint/layers.txt
  bool layers_explicit = false;
  std::string json_path;
  std::string sarif_path;
  std::string cache_dir;
  std::vector<std::string> excludes;
  std::vector<std::string> inputs;
  xh::lint::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " requires " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      for (const auto& r : xh::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--root") {
      const char* v = next("a directory argument");
      if (v == nullptr) return 2;
      root = v;
      continue;
    }
    if (arg == "--layers") {
      const char* v = next("a file argument");
      if (v == nullptr) return 2;
      layers_path = v;
      layers_explicit = true;
      continue;
    }
    if (arg == "--json") {
      const char* v = next("a file argument");
      if (v == nullptr) return 2;
      json_path = v;
      continue;
    }
    if (arg == "--sarif") {
      const char* v = next("a file argument");
      if (v == nullptr) return 2;
      sarif_path = v;
      continue;
    }
    if (arg == "--exclude") {
      const char* v = next("a repo-relative path prefix");
      if (v == nullptr) return 2;
      excludes.emplace_back(v);
      continue;
    }
    if (arg == "--per-file-only") {
      options.tree_rules = false;
      options.flow_rules = false;
      options.ipa_rules = false;
      continue;
    }
    if (arg == "--tree-only") {
      options.per_file_rules = false;
      options.flow_rules = false;
      options.ipa_rules = false;
      continue;
    }
    if (arg == "--only") {
      const char* v = next("a rule pattern (e.g. XH-FLOW-*)");
      if (v == nullptr) return 2;
      // Comma-separable and repeatable.
      std::string pats = v;
      std::size_t b = 0;
      while (b <= pats.size()) {
        std::size_t e = pats.find(',', b);
        if (e == std::string::npos) e = pats.size();
        if (e > b) options.only.push_back(pats.substr(b, e - b));
        b = e + 1;
      }
      continue;
    }
    if (arg == "--cache-dir") {
      const char* v = next("a directory argument");
      if (v == nullptr) return 2;
      cache_dir = v;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  // Layering spec: an explicitly passed file must exist; the default
  // location is optional (XH-INC-002 simply has nothing to check without
  // it).
  xh::lint::LayerSpec spec;
  std::string layers_text;
  if (layers_path.empty()) layers_path = root + "/tools/lint/layers.txt";
  {
    std::ifstream in(layers_path, std::ios::binary);
    if (in.good()) {
      layers_text.assign((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
      std::string error;
      if (!xh::lint::parse_layer_spec(layers_text, spec, error)) {
        std::cerr << "error: " << layers_path << ": " << error << "\n";
        return 2;
      }
    } else if (layers_explicit) {
      std::cerr << "error: cannot open layers spec " << layers_path << "\n";
      return 2;
    }
  }

  std::vector<std::string> errors;
  std::vector<xh::lint::SourceFile> files =
      xh::lint::load_tree(root, inputs, excludes, errors);
  if (!errors.empty()) {
    for (const std::string& e : errors) std::cerr << "error: " << e << "\n";
    return 2;
  }

  std::string cache_file;
  std::vector<xh::lint::Finding> findings;
  bool cache_hit = false;
  if (!cache_dir.empty()) {
    cache_file =
        cache_dir + "/" + cache_key(files, layers_text, options) + ".tsv";
    cache_hit = read_cached(cache_file, findings);
  }
  if (!cache_hit) {
    const xh::lint::ProjectModel model =
        xh::lint::build_project_model(std::move(files), std::move(spec));
    findings = xh::lint::analyze_tree(model, options);
    if (!cache_file.empty()) write_cached(cache_file, findings);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << xh::lint::findings_to_json(findings);
    if (!out.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    out << xh::lint::findings_to_sarif(findings);
    if (!out.good()) {
      std::cerr << "error: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  for (const auto& f : findings) {
    std::cout << xh::lint::to_string(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (suppress with // xh-lint: allow(RULE) and a justification)"
              << "\n";
    return 1;
  }
  return 0;
}
