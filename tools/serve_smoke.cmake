# End-to-end smoke for `xhybrid_cli serve` (cli_serve_drains_jobs_directory):
# seeds a jobs directory with two generated .xm workloads, runs the service
# over it with checkpointing enabled, and re-prints the report so ctest's
# PASS_REGULAR_EXPRESSION can assert on it. Inputs: -DCLI, -DWORK_DIR.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/jobs")

foreach(job_seed IN ITEMS 1 9)
  execute_process(
    COMMAND "${CLI}" analyze --chains 4 --length 16 --patterns 48
            --seed ${job_seed} --save-xm "${WORK_DIR}/jobs/job${job_seed}.xm"
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "seeding job${job_seed}.xm failed (rc=${rc}): ${err}")
  endif()
endforeach()

execute_process(
  COMMAND "${CLI}" serve --jobs-dir "${WORK_DIR}/jobs" --workers 2
          --checkpoint-dir "${WORK_DIR}/ckpt" --checkpoint-every 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE err)
message("${out}${err}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve failed (rc=${rc})")
endif()
