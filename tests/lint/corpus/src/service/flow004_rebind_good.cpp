// XH-FLOW-004 non-firing fixtures: a range-for binding is fresh every
// iteration, so moving it at the bottom of the body is fine; and
// `v = f(std::move(v))` reassigns in the same statement, keeping v live.
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace xh {

void enqueue(std::string text);
std::string join(std::string acc, const std::string& part);

std::size_t submit_all(std::vector<std::string> lines) {
  std::size_t total = 0;
  for (std::string& line : lines) {
    total += line.size();
    enqueue(std::move(line));
  }
  return total;
}

std::string fold(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    out = join(std::move(out), part);
  }
  return out;
}

}  // namespace xh
