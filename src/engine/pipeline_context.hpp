// Shared execution context of the analysis pipeline.
//
// Before the engine layer existed, every stage grew its own plumbing: a
// HybridConfig wrapping a PartitionerConfig wrapping a MisrConfig, a raw
// Diagnostics* threaded hand-to-hand through hybrid → partitioner →
// x_cancel → masking → response IO, and ad-hoc Rng construction at each
// stochastic site. PipelineContext bundles all of it once:
//
//   * the partitioning/cost configuration (which embeds the MISR shape),
//   * the diagnostics routing — strict (mismatches throw, the legacy
//     default), lenient (collected into an owned Diagnostics), or adopted
//     (collected into a caller-owned Diagnostics),
//   * the observability routing — an optional xh::Trace every instrumented
//     stage reports counters/spans into (nullptr = observability off),
//   * a deterministic Rng seeded from the configured seed,
//   * an optional ThreadPool the engine fans cell analysis out on.
//
// A context is one pipeline run's ambient state; it is cheap to construct
// and not thread-safe itself (the pool parallelism happens *inside* engine
// calls, which only read the context).
#pragma once

#include "engine/partition_types.hpp"
#include "misr/x_cancel.hpp"
#include "obs/trace.hpp"
#include "storage/store_factory.hpp"
#include "util/cancel_token.hpp"
#include "util/diagnostics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace xh {

class PipelineContext {
 public:
  PipelineContext() : rng_(partitioner.seed) {}
  explicit PipelineContext(PartitionerConfig cfg, ThreadPool* pool = nullptr)
      : partitioner(std::move(cfg)), pool_(pool), rng_(partitioner.seed) {}

  // Non-copyable: the sink may point at the owned collector, which a
  // default copy/move would silently re-target to the source's.
  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  PartitionerConfig partitioner;

  const MisrConfig& misr() const { return partitioner.misr; }

  /// Collector the pipeline reports data mismatches into, or nullptr in
  /// strict mode (the legacy throw-on-mismatch contract).
  Diagnostics* collector() { return sink_; }

  /// Lenient mode: mismatches are recorded in the owned collector and the
  /// pipeline degrades gracefully.
  ///
  /// Precedence: an explicitly adopted caller-owned collector always wins.
  /// Calling be_lenient() after adopt_collector(non-null) used to silently
  /// re-target the sink to the owned collector, losing every later record
  /// from the caller's view; now the adopted collector stays active and the
  /// double-set itself is diagnosed into it as a kBadArgument warning.
  void be_lenient() {
    if (adopted_) {
      sink_->warn(DiagKind::kBadArgument, "pipeline context",
                  "be_lenient() after adopt_collector(): the adopted "
                  "collector keeps precedence; call adopt_collector(nullptr) "
                  "first to release it");
      return;
    }
    sink_ = &owned_;
  }
  /// Adopts a caller-owned collector (compatibility with the Diagnostics*
  /// APIs). Passing nullptr releases any adopted collector and returns to
  /// strict mode. Explicit adoption takes precedence over be_lenient().
  void adopt_collector(Diagnostics* diags) {
    sink_ = diags;
    adopted_ = diags != nullptr;
  }

  /// The owned collector (meaningful after be_lenient()).
  const Diagnostics& diagnostics() const { return owned_; }

  /// Observability sink every instrumented stage reports into, or nullptr
  /// when observability is off (the zero-overhead default). Not owned.
  Trace* trace() const { return trace_; }
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Optional worker pool; nullptr runs every stage serially. Results are
  /// identical either way. Not owned.
  ThreadPool* pool() const { return pool_; }
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Optional cooperative stop token the engine polls at round boundaries;
  /// nullptr means the run can never be interrupted. Not owned. A stop
  /// yields the best-so-far prefix (PartitionResult::interrupted == true),
  /// never a broken result.
  const CancelToken* cancel() const { return cancel_; }
  void set_cancel(const CancelToken* token) { cancel_ = token; }

  /// X-matrix storage backend the pipeline freezes the matrix into.
  /// kAuto (the default) picks per workload via resolve_xm_backend();
  /// results are bit-identical for every backend, so this is purely a
  /// footprint/speed knob.
  XmBackend xm_backend() const { return xm_backend_; }
  void set_xm_backend(XmBackend backend) { xm_backend_ = backend; }

  /// Factory knobs for the storage layer (mmap directory, auto threshold).
  const StoreFactoryOptions& store_options() const { return store_options_; }
  void set_store_options(StoreFactoryOptions options) {
    store_options_ = std::move(options);
  }

  /// Context-wide deterministic generator, seeded from partitioner.seed.
  Rng& rng() { return rng_; }

 private:
  ThreadPool* pool_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  Diagnostics owned_;
  Diagnostics* sink_ = nullptr;
  bool adopted_ = false;  // sink_ points at a caller-owned collector
  Trace* trace_ = nullptr;
  XmBackend xm_backend_ = XmBackend::kAuto;
  StoreFactoryOptions store_options_;
  Rng rng_;
};

}  // namespace xh
