#include "scan/scan_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"

namespace xh {
namespace {

Netlist circuit(std::size_t dffs, double nonscan = 0.0) {
  GeneratorConfig cfg;
  cfg.num_dffs = dffs;
  cfg.nonscan_fraction = nonscan;
  cfg.num_gates = 50;
  cfg.seed = 11;
  return generate_circuit(cfg);
}

TEST(ScanPlan, EvenSplit) {
  const Netlist nl = circuit(12);
  const ScanPlan plan = ScanPlan::build(nl, 4);
  EXPECT_EQ(plan.geometry().num_chains, 4u);
  EXPECT_EQ(plan.geometry().chain_length, 3u);
  EXPECT_EQ(plan.num_scan_dffs(), 12u);
}

TEST(ScanPlan, UnevenSplitPadsToLongestChain) {
  const Netlist nl = circuit(10);
  const ScanPlan plan = ScanPlan::build(nl, 4);
  EXPECT_EQ(plan.geometry().chain_length, 3u);  // ceil(10/4)
  EXPECT_EQ(plan.geometry().num_cells(), 12u);
  std::size_t padding = 0;
  for (std::size_t cell = 0; cell < plan.geometry().num_cells(); ++cell) {
    if (plan.dff_at(cell) == kNoGate) ++padding;
  }
  EXPECT_EQ(padding, 2u);
}

TEST(ScanPlan, CellMappingBijective) {
  const Netlist nl = circuit(9);
  const ScanPlan plan = ScanPlan::build(nl, 3);
  for (const GateId dff : nl.scan_dffs()) {
    EXPECT_EQ(plan.dff_at(plan.cell_of(dff)), dff);
  }
}

TEST(ScanPlan, ExcludesUnscannedFlops) {
  const Netlist nl = circuit(10, 0.3);
  ASSERT_EQ(nl.nonscan_dffs().size(), 3u);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  EXPECT_EQ(plan.num_scan_dffs(), 7u);
  for (const GateId dff : nl.nonscan_dffs()) {
    EXPECT_THROW(plan.cell_of(dff), std::invalid_argument);
  }
}

TEST(ScanPlan, SingleChain) {
  const Netlist nl = circuit(5);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  EXPECT_EQ(plan.geometry().chain_length, 5u);
  EXPECT_EQ(plan.geometry().num_chains, 1u);
}

TEST(ScanPlan, RejectsInvalidInputs) {
  const Netlist nl = circuit(5);
  EXPECT_THROW(ScanPlan::build(nl, 0), std::invalid_argument);
  GeneratorConfig cfg;
  cfg.nonscan_fraction = 1.0;  // every flop unscanned
  cfg.num_gates = 10;
  const Netlist no_scan = generate_circuit(cfg);
  EXPECT_THROW(ScanPlan::build(no_scan, 2), std::invalid_argument);
}

}  // namespace
}  // namespace xh
