// Compile-time proofs of the GF(2) identities the X-canceling architecture
// rests on (paper §2/§4). Every property here is a static_assert over the
// constexpr BitVec / Gf2Matrix kernels: if a change breaks the algebra, the
// build fails before a single runtime test runs. The TEST bodies re-assert
// the same predicates at runtime only so ctest shows the suite explicitly.
//
// All sample vectors are sized 130 bits on purpose: that spans three 64-bit
// words with a ragged 2-bit tail, so every proof also exercises the
// mask_tail() invariant (bits beyond size() stay zero).
#include <cstddef>

#include <gtest/gtest.h>

#include "gf2/matrix.hpp"
#include "kernels/kernels.hpp"
#include "util/bitvec.hpp"

namespace {

using xh::BitVec;
using xh::Gf2Matrix;

constexpr std::size_t kBits = 130;

/// A deterministic patterned vector: bit i set iff (i*a + b) % m == 0.
constexpr BitVec pattern(std::size_t a, std::size_t b, std::size_t m) {
  BitVec v(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    if ((i * a + b) % m == 0) v.set(i);
  }
  return v;
}

// ---- Proof 1: XOR self-inverse (a ^ b) ^ b == a ------------------------
// The identity that makes X-canceling reversible: XORing a signature with
// the same combination twice restores it.
constexpr bool xor_self_inverse() {
  const BitVec a = pattern(3, 1, 5);
  const BitVec b = pattern(7, 2, 3);
  return ((a ^ b) ^ b) == a;
}
static_assert(xor_self_inverse(), "GF(2) addition must be self-inverse");

// ---- Proof 2: XOR is its own negation: a ^ a == 0 ----------------------
constexpr bool xor_self_cancels() {
  const BitVec a = pattern(5, 3, 7);
  return (a ^ a).none() && (a ^ a).count() == 0;
}
static_assert(xor_self_cancels(), "x + x = 0 over GF(2)");

// ---- Proof 3: and_count fusion == materialized intersection ------------
// PR 2's fused kernel must agree with the two-step form on ragged-tail
// word patterns; this is the hot primitive of restricted-X accounting.
constexpr bool and_count_fusion() {
  const BitVec a = pattern(3, 0, 4);
  const BitVec b = pattern(5, 1, 3);
  return xh::kernels::and_count(a, b) == (a & b).count();
}
static_assert(and_count_fusion(), "and_count must equal popcount(a & b)");

// ---- Proof 4: and_not_count fusion == materialized difference ----------
constexpr bool and_not_count_fusion() {
  const BitVec a = pattern(3, 0, 4);
  const BitVec b = pattern(5, 1, 3);
  BitVec diff = a;
  diff.and_not(b);
  return xh::kernels::and_not_count(a, b) == diff.count();
}
static_assert(and_not_count_fusion(),
              "and_not_count must equal popcount(a & ~b)");

// ---- Proof 5: inclusion–exclusion over GF(2) ---------------------------
// |a ^ b| = |a| + |b| - 2|a & b| ties the fused kernels to XOR cardinality.
constexpr bool inclusion_exclusion() {
  const BitVec a = pattern(2, 1, 5);
  const BitVec b = pattern(3, 2, 7);
  return (a ^ b).count() + 2 * xh::kernels::and_count(a, b) == a.count() + b.count();
}
static_assert(inclusion_exclusion(),
              "|a^b| + 2|a&b| must equal |a| + |b|");

// ---- Proof 6: subset/intersection duality ------------------------------
constexpr bool subset_duality() {
  const BitVec whole = pattern(2, 0, 2);
  BitVec part = whole;
  part.clear(part.find_first());
  return part.is_subset_of(whole) && xh::kernels::and_not_count(part, whole) == 0 &&
         (part.intersects(whole) == (xh::kernels::and_count(part, whole) > 0));
}
static_assert(subset_duality(),
              "is_subset_of / intersects must match the fused counts");

// ---- Proof 7: tail bits can never leak ---------------------------------
// A full vector has exactly size() set bits even though its storage rounds
// up to whole words; set_word must re-mask the tail.
constexpr bool tail_stays_masked() {
  BitVec v(kBits, true);
  if (v.count() != kBits) return false;
  v.set_word(v.word_count() - 1, ~0ULL);
  return v.count() == kBits && v.find_next(kBits - 1) == kBits - 1;
}
static_assert(tail_stays_masked(),
              "bits beyond size() must stay zero through word writes");

// ---- Proof 8: scan/enumeration consistency -----------------------------
constexpr bool scan_matches_enumeration() {
  const BitVec v = pattern(7, 3, 11);
  std::size_t walked = 0;
  for (std::size_t i = v.find_first(); i < v.size(); i = v.find_next(i + 1)) {
    if (!v.get(i)) return false;
    ++walked;
  }
  return walked == v.count() && v.set_bits().size() == v.count();
}
static_assert(scan_matches_enumeration(),
              "find_first/find_next must visit exactly the set bits");

// ---- Proof 9: elimination combination tracking -------------------------
// The invariant the X-canceling MISR depends on: every reduced row is the
// XOR of the original rows its combination selects. Without this, the
// "X-free combination" the hardware applies would not cancel the X's.
constexpr Gf2Matrix sample_matrix() {
  // 5x4, rank 3: rows 2 = 0^1 and 4 = 0^3 are dependent.
  Gf2Matrix m(5, 4);
  m.set(0, 0);
  m.set(0, 1);          // 1100
  m.set(1, 1);
  m.set(1, 2);          // 0110
  m.set(2, 0);
  m.set(2, 2);          // 1010 = row0 ^ row1
  m.set(3, 3);          // 0001
  m.set(4, 0);
  m.set(4, 1);
  m.set(4, 3);          // 1101 = row0 ^ row3
  return m;
}

constexpr bool combination_tracking_holds() {
  const Gf2Matrix m = sample_matrix();
  const xh::Elimination e = xh::kernels::eliminate(m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    BitVec acc(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (e.combination[i].get(r)) acc ^= m.row(r);
    }
    if (!(acc == e.reduced.row(i))) return false;
  }
  return true;
}
static_assert(combination_tracking_holds(),
              "reduced rows must equal the XOR of their tracked originals");

// ---- Proof 10: rank–nullity over the row space -------------------------
constexpr bool rank_nullity_holds() {
  const Gf2Matrix m = sample_matrix();
  const xh::Elimination e = xh::kernels::eliminate(m);
  return e.rank == 3 && e.null_rows().size() == m.rows() - e.rank &&
         m.rank() == e.rank;
}
static_assert(rank_nullity_holds(),
              "null rows must number rows() - rank (left rank–nullity)");

// ---- Proof 11: null-space combinations really cancel every column ------
constexpr bool null_combinations_cancel() {
  const Gf2Matrix m = sample_matrix();
  const auto combos = xh::kernels::x_free_combinations(m);
  if (combos.empty()) return false;
  for (const BitVec& combo : combos) {
    BitVec acc(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (combo.get(r)) acc ^= m.row(r);
    }
    if (acc.any()) return false;  // an X would survive into the signature
  }
  return true;
}
static_assert(null_combinations_cancel(),
              "every x_free_combination must XOR all columns to zero");

// ---- Proof 12: canonical pivots (full reduction) -----------------------
// Each pivot column contains exactly one 1 across the reduced rows; this
// canonical form is what lets solve() assign pivots independently.
constexpr bool pivots_are_canonical() {
  const Gf2Matrix m = sample_matrix();
  const xh::Elimination e = xh::kernels::eliminate(m);
  for (std::size_t r = 0; r < e.rank; ++r) {
    const std::size_t pivot = e.reduced.row(r).find_first();
    if (pivot >= m.cols()) return false;
    std::size_t ones = 0;
    for (std::size_t rr = 0; rr < m.rows(); ++rr) {
      if (e.reduced.get(rr, pivot)) ++ones;
    }
    if (ones != 1) return false;
  }
  return true;
}
static_assert(pivots_are_canonical(),
              "full reduction must leave each pivot column with a single 1");

// ---- Proof 13: solve() returns a verified solution ---------------------
constexpr bool solve_satisfies_system() {
  const Gf2Matrix m = sample_matrix();
  // b = A · x0 for x0 = 1010 — solvable by construction.
  BitVec x0(4);
  x0.set(0);
  x0.set(2);
  BitVec b(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    b.set(r, xh::kernels::and_count(m.row(r), x0) % 2 == 1);
  }
  const auto x = xh::kernels::solve(m, b);
  if (!x.has_value()) return false;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if ((xh::kernels::and_count(m.row(r), *x) % 2 == 1) != b.get(r)) return false;
  }
  return true;
}
static_assert(solve_satisfies_system(), "solve() must satisfy A·x = b");

// ---- Proof 14: solve() detects inconsistency ---------------------------
constexpr bool solve_rejects_inconsistent() {
  // Rows 0 and 1 identical, contradictory right-hand side.
  Gf2Matrix m(2, 3);
  m.set(0, 0);
  m.set(1, 0);
  BitVec b(2);
  b.set(0);  // row0·x = 1 but row1·x = 0 with row0 == row1
  return !xh::kernels::solve(m, b).has_value();
}
static_assert(solve_rejects_inconsistent(),
              "solve() must return nullopt for inconsistent systems");

// ---- Proof 15: string round-trip ---------------------------------------
constexpr bool string_round_trip() {
  const BitVec v = pattern(9, 4, 13);
  return BitVec::from_string(v.to_string()) == v;
}
static_assert(string_round_trip(),
              "from_string(to_string(v)) must reproduce v");

// Runtime echoes: ctest visibility for the proofs above. A failure here
// with a passing build would mean constant evaluation and codegen disagree
// — worth its own loud signal.
TEST(StaticProofs, BitVecKernels) {
  EXPECT_TRUE(xor_self_inverse());
  EXPECT_TRUE(xor_self_cancels());
  EXPECT_TRUE(and_count_fusion());
  EXPECT_TRUE(and_not_count_fusion());
  EXPECT_TRUE(inclusion_exclusion());
  EXPECT_TRUE(subset_duality());
  EXPECT_TRUE(tail_stays_masked());
  EXPECT_TRUE(scan_matches_enumeration());
}

TEST(StaticProofs, EliminationInvariants) {
  EXPECT_TRUE(combination_tracking_holds());
  EXPECT_TRUE(rank_nullity_holds());
  EXPECT_TRUE(null_combinations_cancel());
  EXPECT_TRUE(pivots_are_canonical());
  EXPECT_TRUE(solve_satisfies_system());
  EXPECT_TRUE(solve_rejects_inconsistent());
  EXPECT_TRUE(string_round_trip());
}

}  // namespace
