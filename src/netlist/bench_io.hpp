// Reader/writer for the ISCAS-89 ".bench" netlist format, with two small
// extensions: NDFF (a DFF excluded from the scan chain — an X-source) and
// TRISTATE/BUS for the bus-contention X-source.
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = DFF(G14)
//   G11 = NAND(G0, G10)
//   G12 = NDFF(G11)          # unscanned flop (extension)
//   T1  = TRISTATE(EN1, D1)  # extension
//   B1  = BUS(T1, T2)        # extension
//
// Signals may be referenced before they are defined; sequential feedback
// through DFFs is supported.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/diagnostics.hpp"

namespace xh {

/// Parses a .bench description. Throws std::invalid_argument with a
/// line-numbered message on malformed input (empty files, garbled gate
/// expressions, undefined or doubly-defined signals, trailing commas).
/// Undefined-signal errors name the line that *references* the signal.
/// A Diagnostics collector, when given, records every failure as a
/// kNetlistParseError before the throw. The returned netlist is finalized.
Netlist read_bench(std::istream& in, std::string name = "bench",
                   Diagnostics* diags = nullptr);

/// Convenience overload for in-memory text.
Netlist read_bench_string(const std::string& text, std::string name = "bench",
                          Diagnostics* diags = nullptr);

/// Serializes @p nl in .bench form (round-trips through read_bench).
void write_bench(const Netlist& nl, std::ostream& out);

std::string write_bench_string(const Netlist& nl);

}  // namespace xh
