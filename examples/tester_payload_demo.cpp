// What actually goes to the ATE: builds the complete control-data image for
// a workload — per-partition gap-coded masks, the pattern application order,
// and the selective-XOR schedule extracted by a real X-canceling session —
// and prints the byte-level budget next to the paper's raw accounting.
#include <cstdio>

#include "core/tester_payload.hpp"
#include "util/rng.hpp"
#include "workload/industrial.hpp"

using namespace xh;

int main() {
  // A mid-size workload with strong correlation (CKT-B structure, scaled).
  const WorkloadProfile profile = scaled_profile(ckt_b_profile(), 0.08);
  const XMatrix xm = generate_workload(profile);

  // Materialize a dense response carrying those X's (values arbitrary).
  ResponseMatrix response(xm.geometry(), xm.num_patterns());
  Rng rng(7);
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    for (std::size_t c = 0; c < response.num_cells(); ++c) {
      response.set(p, c,
                   xm.is_x(c, p) ? Lv::kX
                                 : (rng.chance(0.5) ? Lv::k1 : Lv::k0));
    }
  }

  PipelineContext ctx;
  ctx.partitioner.misr = {32, 7};
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  const TesterPayload payload = build_tester_payload(sim);

  std::printf("workload: %zu cells x %zu patterns, %zu X's\n",
              response.num_cells(), response.num_patterns(),
              response.total_x());
  std::printf("partitions: %zu\n\n", payload.partitions.size());

  std::printf("%-10s %-10s %-14s %-16s\n", "partition", "patterns",
              "mask cells set", "coded mask bits");
  for (std::size_t i = 0; i < payload.partitions.size(); ++i) {
    const auto& s = payload.partitions[i];
    std::printf("%-10zu %-10zu %-14zu %-16zu\n", i, s.patterns.count(),
                decode_mask(s.mask).count(), s.mask.bits());
  }

  std::printf("\ncontrol-data budget:\n");
  std::printf("  raw masks (paper accounting):   %zu bits\n",
              payload.raw_mask_bits);
  std::printf("  gap-coded masks (extension):    %zu bits (%.1fx smaller)\n",
              payload.coded_mask_bits,
              static_cast<double>(payload.raw_mask_bits) /
                  static_cast<double>(payload.coded_mask_bits == 0
                                          ? 1
                                          : payload.coded_mask_bits));
  std::printf("  selective-XOR vectors:          %zu bits (%zu vectors)\n",
              payload.cancel_bits, payload.cancel_vectors.size());
  std::printf("  total (raw / coded):            %zu / %zu bits\n",
              payload.total_bits_raw(), payload.total_bits_coded());
  std::printf(
      "\npattern order ships patterns grouped by partition (first 16): ");
  for (std::size_t i = 0; i < 16 && i < payload.pattern_order.size(); ++i) {
    std::printf("%zu ", payload.pattern_order[i]);
  }
  std::printf("...\n");
  return 0;
}
