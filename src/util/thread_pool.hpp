// Minimal fork-join thread pool for data-parallel fan-out.
//
// The pool owns N-1 persistent worker threads; the caller of
// parallel_chunks() is the N-th lane, so a pool of size 1 degenerates to a
// plain serial loop with no synchronization at all. Work is handed out as
// contiguous index chunks whose boundaries depend only on (n, grain, lanes) —
// never on thread scheduling — so callers that merge per-chunk results in
// chunk order get bit-identical output for any timing and any pool size.
//
// Exceptions thrown by the chunk function are caught, the first one is
// retained, and it is rethrown on the calling thread after every chunk has
// finished (no worker ever dies, no chunk is skipped mid-flight).
//
// Alongside the fork-join path, the pool carries a fire-and-forget task
// queue (post()/drain()) used by the service layer: tasks run on the
// same workers, a throwing task can never wedge the pool — the first
// exception is captured and rethrown on whichever thread calls drain() —
// and the destructor discards tasks that never started. Tasks must not
// call back into the pool (no post-from-task fan-out, no nested
// parallel_chunks on the same pool).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xh {

class ThreadPool {
 public:
  /// Function applied to one chunk: fn(chunk_index, begin, end) with
  /// 0 <= begin < end <= n.
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Creates a pool with @p lanes total execution lanes (the caller counts
  /// as one, so lanes - 1 workers are spawned). 0 picks the hardware
  /// concurrency.
  explicit ThreadPool(std::size_t lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  std::size_t lanes() const { return workers_.size() + 1; }

  /// Number of chunks parallel_chunks() will split [0, n) into, given a
  /// minimum chunk size of @p grain. Deterministic in (n, grain, lanes());
  /// callers use it to pre-size per-chunk result slots.
  std::size_t chunk_count(std::size_t n, std::size_t grain) const;

  /// Runs fn over every chunk of [0, n) and blocks until all complete.
  /// The calling thread participates; rethrows the first exception.
  void parallel_chunks(std::size_t n, std::size_t grain, const ChunkFn& fn);

  /// Enqueues @p task for execution on a worker thread (or on the next
  /// drain() caller when the pool has no workers). Never blocks. A task
  /// that throws is captured, not lost: the first exception surfaces from
  /// the next drain() call, and the pool keeps running either way.
  void post(std::function<void()> task);

  /// Runs queued tasks on the calling thread until the queue is empty and
  /// every in-flight task has finished, then rethrows the first exception
  /// captured from any task since the last drain() (clearing it).
  void drain();

  /// Tasks queued but not yet started (snapshot; racy by nature).
  std::size_t pending_tasks() const;

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::size_t next = 0;  // next chunk to hand out (under mutex)
    std::size_t done = 0;  // chunks fully executed (under mutex)
    std::exception_ptr error;
  };

  void worker_loop();
  /// Executes chunks of the current job until none remain. Returns once
  /// this thread cannot obtain further chunks (others may still run).
  void drain_job(Job& job, std::unique_lock<std::mutex>& lock);
  /// Pops and runs one queued task; @p lock is held on entry and exit but
  /// released around the task body. Captures the task's exception.
  void run_one_task(std::unique_lock<std::mutex>& lock);
  static void chunk_bounds(std::size_t n, std::size_t chunks,
                           std::size_t chunk, std::size_t* begin,
                           std::size_t* end);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job / shutdown
  std::condition_variable done_cv_;  // caller waits for job completion
  Job* job_ = nullptr;               // active job, nullptr when idle
  std::size_t generation_ = 0;       // bumped per job so workers re-check
  bool stop_ = false;
  std::deque<std::function<void()>> tasks_;
  std::size_t tasks_active_ = 0;          // posted tasks mid-execution
  std::exception_ptr task_error_;         // first task exception since drain
  std::vector<std::thread> workers_;
};

}  // namespace xh
