// Flow-sensitive rule families XH-FLOW-001..004 (DESIGN.md §13).
//
// Each rule is a query over the per-function CFGs (cfg.hpp) using the
// dataflow framework (dataflow.hpp). They run per file — from scan_file()
// for the corpus and from analyze_tree() with the project model's
// [[nodiscard]] index attached — and return RAW findings so the tree-wide
// suppression audit (XH-SUP-001) sees them like every other family.
#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint_core.hpp"
#include "lint/text_scan.hpp"

namespace xh::lint {
namespace {

std::size_t ident_count(const std::string& text, const std::string& name) {
  std::size_t count = 0;
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (!member_of_other(text, p)) ++count;
  }
  return count;
}

/// A statement that overwrites @p name without reading it: `name = ...`
/// where name occurs exactly once (so `s = f(s)` is a read, not a kill).
bool pure_redef(const std::string& text, const std::string& name) {
  return is_def(text, name) && ident_count(text, name) == 1;
}

struct FlowRuleContext {
  const SourceFile* file = nullptr;
  const std::vector<FunctionCfg>* cfgs = nullptr;
  const FlowContext* flow = nullptr;
  std::vector<Finding>* out = nullptr;
};

void report(const FlowRuleContext& ctx, std::size_t line,
            const std::string& rule, const std::string& message) {
  ctx.out->push_back({ctx.file->path, line, rule, message});
}

// ---- XH-FLOW-001: status value discarded/overwritten before checked ----
// (status_type / type_word_before live in dataflow.hpp, shared with the
// interprocedural tier.)

void rule_flow001(const FlowRuleContext& ctx) {
  for (const FunctionCfg& cfg : *ctx.cfgs) {
    for (std::size_t d = 0; d < cfg.nodes.size(); ++d) {
      const CfgNode& node = cfg.nodes[d];
      if (node.kind != CfgNode::Kind::kStatement) continue;
      // Candidate: `StatusType name ...` declaration, or `auto name =`
      // initialized from a [[nodiscard]] project function.
      const std::string& text = node.text;
      std::size_t p = 0;
      while (p < text.size()) {
        if (!is_ident_char(text[p]) || (p > 0 && is_ident_char(text[p - 1]))) {
          ++p;
          continue;
        }
        std::size_t q = p;
        while (q < text.size() && is_ident_char(text[q])) ++q;
        const std::string name = text.substr(p, q - p);
        const std::size_t at = p;
        p = q;
        // The declared variable must be INITIALIZED — `= expr`, `(args)`
        // or `{args}` with a non-empty argument list. A bare `Type name;`
        // (default-constructed collector awaiting later assignment, the
        // idiomatic out-param pattern) is not a discarded value.
        std::size_t after = q;
        while (after < text.size() && text[after] == ' ') ++after;
        const char nxt = after < text.size() ? text[after] : ';';
        std::size_t init = after + 1;
        while (init < text.size() && text[init] == ' ') ++init;
        const char first_init = init < text.size() ? text[init] : '\0';
        bool decl_shape = false;
        if (nxt == '=' && first_init != '=') {
          // `auto f = [&] {...}` declares a lambda, not a status value.
          decl_shape = first_init != '[';
        } else if (nxt == '(' || nxt == '{') {
          decl_shape = first_init != (nxt == '(' ? ')' : '}');
        }
        if (!decl_shape) continue;
        // Pointer/reference declarations alias a value someone else owns
        // checking it is that owner's responsibility, not this binding's.
        std::size_t tb = at;
        while (tb > 0 && text[tb - 1] == ' ') --tb;
        if (tb > 0 && (text[tb - 1] == '*' || text[tb - 1] == '&')) continue;
        // A second mention inside the same statement node is a read: the
        // `x = f(x)` shape, or a decl+use merged into one node by the
        // one-statement lambda approximation (cfg.hpp).
        if (ident_count(text, name) > 1) continue;
        const std::string type = type_word_before(text, at);
        bool candidate = status_type(type);
        if (!candidate && type == "auto" && ctx.flow != nullptr) {
          for (const std::string& fn : ctx.flow->nodiscard_functions) {
            if (has_call(text, fn) || has_member_call(text, fn)) {
              candidate = true;
              break;
            }
          }
        }
        if (!candidate) continue;

        const auto mentions = [&](std::size_t n) {
          return n != d && is_use(cfg.nodes[n].text, name);
        };
        // "Never read" is whole-reachability, not per-path: a read inside
        // a loop body counts even though a zero-trip path skips it.
        bool mentioned = false;
        for (const std::size_t n : reachable_from(cfg, d)) {
          if (mentions(n)) {
            mentioned = true;
            break;
          }
        }
        if (!mentioned) {
          report(ctx, node.line, "XH-FLOW-001",
                 "'" + name + "' (" + (type == "auto" ? "nodiscard" : type) +
                     ") is never read after this initialization in '" +
                     cfg.name + "' — check or propagate it");
        } else if (exists_path(
                       cfg, d,
                       [&](std::size_t n) {
                         return n != d && pure_redef(cfg.nodes[n].text, name);
                       },
                       mentions)) {
          report(ctx, node.line, "XH-FLOW-001",
                 "'" + name + "' (" + (type == "auto" ? "nodiscard" : type) +
                     ") is overwritten on some path through '" + cfg.name +
                     "' before being read");
        }
      }
    }
  }
}

// ---- XH-FLOW-002: blocking loop never consults its CancelToken ----------
// (blocking_text / token_names live in dataflow.hpp, shared with the
// interprocedural tier.)

void rule_flow002(const FlowRuleContext& ctx) {
  for (const FunctionCfg& cfg : *ctx.cfgs) {
    const std::vector<std::string> tokens = token_names(cfg);
    if (tokens.empty()) continue;
    const auto consults = [&](std::size_t n) {
      for (const std::string& t : tokens) {
        if (is_use(cfg.nodes[n].text, t)) return true;
      }
      return false;
    };
    for (std::size_t h = 0; h < cfg.nodes.size(); ++h) {
      if (!cfg.nodes[h].is_loop_head) continue;
      const std::vector<std::size_t> cyc = cycle_nodes(cfg, h);
      if (cyc.empty()) continue;
      bool can_block = cfg.nodes[h].loop_unbounded;
      for (const std::size_t n : cyc) {
        if (blocking_text(cfg.nodes[n].text)) can_block = true;
      }
      if (!can_block) continue;
      if (consults(h)) continue;  // every cycle passes the head
      std::vector<bool> in_cycle(cfg.nodes.size(), false);
      for (const std::size_t n : cyc) in_cycle[n] = true;
      const bool unguarded_cycle = exists_path(
          cfg, h, [&](std::size_t n) { return n == h; },
          [&](std::size_t n) { return !in_cycle[n] || consults(n); });
      if (unguarded_cycle) {
        report(ctx, cfg.nodes[h].line, "XH-FLOW-002",
               "loop in '" + cfg.name +
                   "' can block (sleep/wait or unbounded) but some "
                   "iteration path never consults CancelToken '" +
                   tokens.front() +
                   "' — check stop_requested()/expired() or pass the token "
                   "down on every cycle");
      }
    }
  }
}

// ---- XH-FLOW-003: storage atomics seam + mutex-guard discipline ---------

const std::array<const char*, 6> kRmwCalls = {
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor",
    "exchange"};

void rule_flow003_storage_seam(const FlowRuleContext& ctx) {
  if (!starts_with(ctx.file->path, "src/storage/")) return;
  for (const FunctionCfg& cfg : *ctx.cfgs) {
    if (starts_with(cfg.name, "note_")) continue;  // the documented seam
    for (const CfgNode& node : cfg.nodes) {
      if (!has_ident(node.text, "memory_order_relaxed")) continue;
      for (const char* call : kRmwCalls) {
        if (has_member_call(node.text, call)) {
          report(ctx, node.line, "XH-FLOW-003",
                 "relaxed-atomic read-modify-write ('" + std::string(call) +
                     "') outside the note_* accounting seam (function '" +
                     cfg.name +
                     "') — route probe accounting through the documented "
                     "helpers (DESIGN.md §12)");
          break;
        }
      }
    }
  }
}

/// True when @p text mutates @p name: an assignment/compound-assignment or
/// ++/-- applied to it (possibly through a .member/[index] chain), or a
/// mutating container member call on it.
bool mutates(const std::string& text, const std::string& name) {
  static const std::array<const char*, 12> kMutatingCalls = {
      "push_back", "pop_back", "push_front", "pop_front", "insert",
      "emplace",   "emplace_back", "erase",  "clear",     "resize",
      "assign",    "reset"};
  for (std::size_t p = find_ident(text, name); p != std::string::npos;
       p = find_ident(text, name, p + 1)) {
    if (p >= 2 && ((text[p - 1] == '+' && text[p - 2] == '+') ||
                   (text[p - 1] == '-' && text[p - 2] == '-'))) {
      return true;
    }
    std::size_t q = p + name.size();
    // Walk the member/index chain.
    std::string last_member;
    for (;;) {
      while (q < text.size() && text[q] == ' ') ++q;
      if (q < text.size() && text[q] == '.') {
        ++q;
      } else if (q + 1 < text.size() && text[q] == '-' &&
                 text[q + 1] == '>') {
        q += 2;
      } else if (q < text.size() && text[q] == '[') {
        int depth = 0;
        while (q < text.size()) {
          if (text[q] == '[') ++depth;
          if (text[q] == ']' && --depth == 0) {
            ++q;
            break;
          }
          ++q;
        }
        continue;
      } else {
        break;
      }
      while (q < text.size() && text[q] == ' ') ++q;
      std::size_t e = q;
      while (e < text.size() && is_ident_char(text[e])) ++e;
      last_member = text.substr(q, e - q);
      q = e;
    }
    // Mutating member call: `name.push_back(...)`.
    if (!last_member.empty()) {
      std::size_t after = q;
      while (after < text.size() && text[after] == ' ') ++after;
      if (after < text.size() && text[after] == '(') {
        for (const char* call : kMutatingCalls) {
          if (last_member == call) return true;
        }
        continue;  // non-mutating member call
      }
    }
    while (q < text.size() && text[q] == ' ') ++q;
    if (q >= text.size()) continue;
    const char c = text[q];
    if (c == '=' && (q + 1 >= text.size() || text[q + 1] != '=')) {
      return true;
    }
    if ((c == '+' || c == '-') && q + 1 < text.size() &&
        text[q + 1] == c) {
      return true;  // postfix ++/--
    }
    static const std::array<const char*, 10> kCompound = {
        "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="};
    for (const char* op : kCompound) {
      if (text.compare(q, std::string(op).size(), op) == 0) return true;
    }
  }
  return false;
}

/// Collects trailing-underscore identifiers mentioned in @p text.
std::set<std::string> field_idents(const std::string& text) {
  std::set<std::string> out;
  std::size_t p = 0;
  while (p < text.size()) {
    if (!is_ident_char(text[p]) || (p > 0 && is_ident_char(text[p - 1]))) {
      ++p;
      continue;
    }
    std::size_t q = p;
    while (q < text.size() && is_ident_char(text[q])) ++q;
    if (text[q - 1] == '_' && q - p > 1) out.insert(text.substr(p, q - p));
    p = q;
  }
  return out;
}

void rule_flow003_guards(const FlowRuleContext& ctx) {
  // Pass 1: fields written while the guard state is locked (outside
  // constructors/destructors) are "guarded fields"; fields with atomic
  // member calls anywhere in the file are exempt (they synchronize
  // themselves).
  std::set<std::string> guarded;
  std::set<std::string> atomic_like;
  std::vector<GuardAnalysis> analyses;
  analyses.reserve(ctx.cfgs->size());
  for (const FunctionCfg& cfg : *ctx.cfgs) {
    analyses.push_back(analyze_guards(cfg));
  }
  for (std::size_t f = 0; f < ctx.cfgs->size(); ++f) {
    const FunctionCfg& cfg = (*ctx.cfgs)[f];
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const std::string& text = cfg.nodes[n].text;
      for (const std::string& field : field_idents(text)) {
        for (const char* call :
             {"load", "store", "fetch_add", "fetch_sub", "exchange",
              "compare_exchange_weak", "compare_exchange_strong"}) {
          const std::size_t p = find_ident(text, field);
          if (p != std::string::npos &&
              text.compare(p + field.size(), std::string(".") .size() +
                           std::string(call).size(),
                           "." + std::string(call)) == 0) {
            atomic_like.insert(field);
          }
        }
      }
      if (cfg.is_constructor || cfg.is_destructor) continue;
      if (state_at(analyses[f], cfg, n) != GuardState::kLocked) continue;
      for (const std::string& field : field_idents(text)) {
        if (mutates(text, field)) guarded.insert(field);
      }
    }
  }
  for (const std::string& field : atomic_like) guarded.erase(field);
  if (guarded.empty()) return;

  // Pass 2: any touch of a guarded field on an unlocked (or mixed) path.
  for (std::size_t f = 0; f < ctx.cfgs->size(); ++f) {
    const FunctionCfg& cfg = (*ctx.cfgs)[f];
    if (cfg.is_constructor || cfg.is_destructor) continue;
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const GuardState st = state_at(analyses[f], cfg, n);
      if (st != GuardState::kUnlocked && st != GuardState::kBoth) continue;
      for (const std::string& field : field_idents(cfg.nodes[n].text)) {
        if (guarded.count(field) == 0) continue;
        report(ctx, cfg.nodes[n].line, "XH-FLOW-003",
               "'" + field + "' is written under a lock elsewhere in this "
               "file but touched " +
                   (st == GuardState::kBoth ? "on a path that may not hold"
                                            : "without") +
                   " the lock in '" + cfg.name + "'");
      }
    }
  }
}

// ---- XH-FLOW-004: use-after-move ---------------------------------------

/// The plain identifier moved by a `std::move(name)` in @p text starting
/// the search at @p from; npos-terminated scan. Returns "" when the move
/// argument is not a plain identifier (members, derefs: skipped for
/// soundness).
std::string moved_ident(const std::string& text, std::size_t& from) {
  for (std::size_t p = find_ident(text, "move", from);
       p != std::string::npos; p = find_ident(text, "move", p + 1)) {
    from = p + 4;
    // Require ::move( or move( — reject .move( member calls.
    if (p >= 1 && (text[p - 1] == '.' ||
                   (p >= 2 && text[p - 2] == '-' && text[p - 1] == '>'))) {
      continue;
    }
    std::size_t q = p + 4;
    while (q < text.size() && text[q] == ' ') ++q;
    if (q >= text.size() || text[q] != '(') continue;
    ++q;
    while (q < text.size() && text[q] == ' ') ++q;
    std::size_t e = q;
    while (e < text.size() && is_ident_char(text[e])) ++e;
    if (e == q) continue;
    std::size_t r = e;
    while (r < text.size() && text[r] == ' ') ++r;
    if (r >= text.size() || text[r] != ')') continue;  // not a plain ident
    return text.substr(q, e - q);
  }
  from = std::string::npos;
  return "";
}

/// A node that re-establishes a valid value for @p name after a move:
/// reassignment/redeclaration, or an explicit reset/clear/assign call.
bool revalidates(const std::string& text, const std::string& name) {
  if (pure_redef(text, name)) return true;
  const std::size_t p = find_ident(text, name);
  if (p == std::string::npos) return false;
  for (const char* call : {"reset", "clear", "assign", "swap"}) {
    const std::string pat = "." + std::string(call);
    if (text.compare(p + name.size(), pat.size(), pat) == 0) return true;
  }
  // Stream extraction writes a fresh value: `std::getline(in, name)` and
  // `in >> name` are the loop-condition idioms that refill a moved-from
  // string each iteration.
  if (has_call(text, "getline") && has_ident(text, name)) return true;
  for (std::size_t u = find_ident(text, name); u != std::string::npos;
       u = find_ident(text, name, u + 1)) {
    std::size_t b = u;
    while (b > 0 && text[b - 1] == ' ') --b;
    if (b >= 2 && text[b - 1] == '>' && text[b - 2] == '>') return true;
  }
  return is_decl(text, name);
}

void rule_flow004(const FlowRuleContext& ctx) {
  for (const FunctionCfg& cfg : *ctx.cfgs) {
    for (std::size_t m = 0; m < cfg.nodes.size(); ++m) {
      std::size_t from = 0;
      while (from != std::string::npos) {
        const std::string name = moved_ident(cfg.nodes[m].text, from);
        if (name.empty()) continue;
        // `v = f(std::move(v))` / `use(std::move(v)); v = {};` — the node
        // that moves also reassigns, so the value is live again before any
        // successor runs.
        if (is_def(cfg.nodes[m].text, name)) continue;
        // Find the first reachable use before any revalidation, for the
        // message; plain exists_path loses the witness node.
        std::vector<bool> seen(cfg.nodes.size(), false);
        std::vector<std::size_t> stack(cfg.nodes[m].succ.begin(),
                                       cfg.nodes[m].succ.end());
        std::size_t witness = kCfgNone;
        while (!stack.empty()) {
          const std::size_t n = stack.back();
          stack.pop_back();
          if (seen[n]) continue;
          seen[n] = true;
          const std::string& text = cfg.nodes[n].text;
          // A range-for header re-binds its loop variable each iteration:
          // `for (auto& [k, v] : m)` makes v fresh before the body runs.
          if (cfg.nodes[n].is_loop_head) {
            const std::size_t rc = find_range_colon(text, 0);
            const std::size_t u = find_ident(text, name);
            if (rc != std::string::npos && u != std::string::npos && u < rc) {
              continue;
            }
          }
          if (revalidates(text, name)) continue;
          if (is_use(text, name)) {
            if (witness == kCfgNone || cfg.nodes[n].line <
                                           cfg.nodes[witness].line) {
              witness = n;
            }
            continue;
          }
          for (const std::size_t s : cfg.nodes[n].succ) stack.push_back(s);
        }
        if (witness != kCfgNone) {
          report(ctx, cfg.nodes[witness].line, "XH-FLOW-004",
                 "'" + name + "' is used here after being moved-from at "
                 "line " +
                     std::to_string(cfg.nodes[m].line) + " in '" + cfg.name +
                     "' — moved-from objects are only safe to destroy or "
                     "reassign");
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> flow_findings(const SourceFile& file,
                                   const Cleaned& cleaned,
                                   const FlowContext& flow) {
  if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/") &&
      !starts_with(file.path, "bench/")) {
    return {};
  }
  const std::vector<FunctionCfg> cfgs = build_cfgs(cleaned);
  std::vector<Finding> out;
  FlowRuleContext ctx;
  ctx.file = &file;
  ctx.cfgs = &cfgs;
  ctx.flow = &flow;
  ctx.out = &out;
  rule_flow001(ctx);
  rule_flow002(ctx);
  rule_flow003_storage_seam(ctx);
  rule_flow003_guards(ctx);
  rule_flow004(ctx);
  return out;
}

}  // namespace xh::lint
