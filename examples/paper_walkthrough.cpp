// A guided tour of every mechanism in the DAC'16 paper, in order:
//   Figure 1 — the X-masking architecture (mask application),
//   Figure 2 — symbolic MISR simulation,
//   Figure 3 — Gaussian elimination extracting X-free combinations,
//   Figures 4–6 — X correlation analysis, pattern partitioning with the cost
//   function, and per-partition control-bit generation,
// finishing with the full hybrid simulation and its invariants.
#include <cstdio>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "kernels/kernels.hpp"
#include "masking/mask.hpp"
#include "misr/symbolic_misr.hpp"
#include "response/x_stats.hpp"

using namespace xh;

namespace {

void figure1_x_masking() {
  std::printf("--- Figure 1: X-masking --------------------------------\n");
  ResponseMatrix response = paper_example_response(/*seed=*/5);
  std::printf("captured responses (rows = patterns, X = unknown):\n");
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    std::printf("  P%zu  %s\n", p + 1, response.row_string(p).c_str());
  }
  // Conventional per-cycle masking blanks every X — at the cost of one
  // control bit per scan cell per pattern.
  ResponseMatrix cleaned = response;
  XMaskingOnly::apply(cleaned);
  std::printf("after conventional X-masking (cost %llu control bits):\n",
              static_cast<unsigned long long>(XMaskingOnly::control_bits(
                  response.geometry(), response.num_patterns())));
  for (std::size_t p = 0; p < cleaned.num_patterns(); ++p) {
    std::printf("  P%zu  %s\n", p + 1, cleaned.row_string(p).c_str());
  }
}

void figures2_3_x_canceling() {
  std::printf("\n--- Figures 2 & 3: X-canceling MISR --------------------\n");
  // Shift 12 symbols (two of them X) into a 4-bit MISR and watch each state
  // bit become a linear combination of everything shifted in.
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 12);
  for (std::size_t cycle = 0; cycle < 3; ++cycle) {
    std::vector<std::optional<SymbolId>> slice(4);
    for (std::size_t stage = 0; stage < 4; ++stage) {
      slice[stage] = cycle * 4 + stage;
    }
    misr.step(slice);
  }
  const std::vector<SymbolId> xs = {2, 7};  // symbols 2 and 7 are X's
  for (std::size_t bit = 0; bit < 4; ++bit) {
    std::printf("  M%zu depends on symbols:", bit + 1);
    for (const std::size_t s : misr.dependency(bit).set_bits()) {
      std::printf(" %zu%s", s,
                  (s == xs[0] || s == xs[1]) ? "(X)" : "");
    }
    std::printf("\n");
  }
  const Gf2Matrix xdep = misr.x_dependency_matrix(xs);
  const auto combos = xh::kernels::x_free_combinations(xdep);
  std::printf("  X-dependency matrix has rank %zu -> %zu X-free combos:\n",
              xdep.rank(), combos.size());
  for (const auto& combo : combos) {
    std::printf("   ");
    for (const std::size_t r : combo.set_bits()) std::printf(" M%zu", r + 1);
    std::printf("\n");
  }
}

void figures4_6_partitioning() {
  std::printf("\n--- Figures 4-6: pattern partitioning ------------------\n");
  const XMatrix xm = paper_example_x_matrix();
  const XStatistics stats = compute_x_statistics(xm);
  std::printf("  %zu X's across %zu of %zu cells; largest same-count group: "
              "%zu cells with %zu X's\n",
              stats.total_x, stats.x_capturing_cells, stats.num_cells,
              stats.largest_bucket().num_cells, stats.largest_bucket().x_count);

  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const PartitionResult r = partition_patterns(xm, cfg);
  for (const auto& h : r.history) {
    std::printf("  round %zu: %zu partition(s), %llu masked, bits %.1f%s\n",
                h.round, h.num_partitions,
                static_cast<unsigned long long>(h.masked_x), h.total_bits,
                h.accepted ? "" : " (rejected -> stop)");
  }
  std::printf("  final: %zu partitions, 120 -> %.0f masking control bits, "
              "%llu X's leaked to the MISR\n",
              r.num_partitions(), r.masking_bits,
              static_cast<unsigned long long>(r.leaked_x));
}

void full_hybrid() {
  std::printf("\n--- Full hybrid simulation ------------------------------\n");
  PipelineContext ctx;
  ctx.partitioner.misr = {10, 2};
  const HybridSimulation sim =
      run_hybrid_simulation(paper_example_response(5), ctx);
  std::printf("  observability preserved: %s\n",
              sim.observability_preserved ? "yes" : "NO");
  std::printf("  X's entering MISR after masking: %llu (was %llu)\n",
              static_cast<unsigned long long>(sim.x_entering_misr),
              static_cast<unsigned long long>(sim.report.total_x));
  std::printf("  MISR stops: %zu, selective-XOR control bits: %zu\n",
              sim.cancel.stops,
              sim.cancel.control_bits(ctx.misr()));
  std::printf("  extracted %zu X-free signature bits\n",
              sim.cancel.signature.size());
  std::printf("  total control bits: %.1f (vs %.1f canceling-only, "
              "%llu masking-only)\n",
              sim.report.proposed_bits, sim.report.canceling_only_bits,
              static_cast<unsigned long long>(sim.report.masking_only_bits));
}

}  // namespace

int main() {
  figure1_x_masking();
  figures2_3_x_canceling();
  figures4_6_partitioning();
  full_hybrid();
  return 0;
}
