// corpus: XH-HDR-001 must fire when code precedes #pragma once.
#include <cstddef>

#pragma once

inline std::size_t identity(std::size_t n) { return n; }
