// Seeds XH-RACE-001: the posted callable captures the local accumulator
// by reference and the function returns without any drain/join barrier —
// the callable can run after the frame is gone.
#include "service/ipa_seam.hpp"

namespace fixture {

void flush_totals(WorkPool& pool) {
  int total = 0;
  pool.post([&total] { total = total + 1; });
}

}  // namespace fixture
