#include "masking/mask.hpp"

#include "kernels/kernels.hpp"
#include "util/check.hpp"

namespace xh {

BitVec partition_mask(const XMatrix& xm, const BitVec& partition) {
  XH_REQUIRE(partition.size() == xm.num_patterns(),
             "partition width must equal pattern count");
  const std::size_t span = partition.count();
  XH_REQUIRE(span > 0, "partition must contain at least one pattern");
  BitVec mask(xm.num_cells());
  for (const std::size_t cell : xm.x_cells()) {
    // Masked ⇔ X under every pattern of the partition.
    if (kernels::and_count(xm.patterns_of(cell), partition) == span) {
      mask.set(cell);
    }
  }
  return mask;
}

std::size_t masked_x_count(const XMatrix& xm, const BitVec& partition) {
  return partition_mask(xm, partition).count() * partition.count();
}

void apply_mask(ResponseMatrix& response, const BitVec& partition,
                const BitVec& mask, Trace* trace) {
  XH_REQUIRE(partition.size() == response.num_patterns(),
             "partition width must equal pattern count");
  XH_REQUIRE(mask.size() == response.num_cells(),
             "mask width must equal cell count");
  const auto cells = mask.set_bits();
  for (const std::size_t p : partition.set_bits()) {
    for (const std::size_t c : cells) {
      response.set(p, c, Lv::k0);
    }
  }
  obs_count(trace, "masking.partitions");
  // L·C control bits per partition: the mask vector itself, one bit per cell.
  obs_count(trace, "masking.control_bits", mask.size());
  obs_count(trace, "masking.cells_masked", cells.size());
  obs_count(trace, "masking.x_masked", cells.size() * partition.count());
  obs_record(trace, "masking.masked_cells_per_partition", cells.size());
}

bool masks_preserve_observability(const ResponseMatrix& response,
                                  const std::vector<BitVec>& partitions,
                                  const std::vector<BitVec>& masks) {
  XH_REQUIRE(partitions.size() == masks.size(),
             "one mask per partition required");
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const auto cells = masks[i].set_bits();
    for (const std::size_t p : partitions[i].set_bits()) {
      for (const std::size_t c : cells) {
        if (!response.is_x(p, c)) return false;
      }
    }
  }
  return true;
}

std::uint64_t count_mask_violations(const ResponseMatrix& response,
                                    const std::vector<BitVec>& partitions,
                                    const std::vector<BitVec>& masks,
                                    Diagnostics* diags, Trace* trace) {
  XH_REQUIRE(partitions.size() == masks.size(),
             "one mask per partition required");
  std::uint64_t violations = 0;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const auto cells = masks[i].set_bits();
    for (const std::size_t p : partitions[i].set_bits()) {
      for (const std::size_t c : cells) {
        if (response.is_x(p, c)) continue;
        ++violations;
        diag_report(diags, DiagSeverity::kWarning, DiagKind::kMaskHidesValue,
                    "pattern " + std::to_string(p) + " cell " +
                        std::to_string(c),
                    "partition " + std::to_string(i) +
                        " mask hides an observable value (declared X "
                        "resolved deterministic)");
      }
    }
  }
  obs_count(trace, "masking.violations", violations);
  return violations;
}

std::uint64_t XMaskingOnly::control_bits(const ScanGeometry& geometry,
                                         std::size_t num_patterns) {
  return static_cast<std::uint64_t>(geometry.num_cells()) * num_patterns;
}

void XMaskingOnly::apply(ResponseMatrix& response) {
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    const BitVec xs = response.x_row(p);
    for (const std::size_t c : xs.set_bits()) {
      response.set(p, c, Lv::k0);
    }
  }
}

}  // namespace xh
