// corpus: XH-DET-001 must fire on std::random_device even without a call.
#include <random>

unsigned seed_from_host() {
  std::random_device rd;
  return rd();
}
