// Chaos suite for the resident service (DESIGN.md §11): seeded fault
// injection from src/inject/ attacks checkpoint files, source files, the
// clock and the queue, and the service must degrade along its ladder —
// reject, retry, resume-from-scratch, best-so-far — without ever producing
// wrong bits, leaking jobs, or dying. Every attack is driven by a seeded
// Corruptor, so a failure reproduces from the seed alone.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "engine/partition_engine.hpp"
#include "engine/partition_types.hpp"
#include "inject/corruptor.hpp"
#include "response/io.hpp"
#include "response/x_matrix.hpp"
#include "service/checkpoint.hpp"
#include "service/job_runner.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/bitvec.hpp"
#include "util/clock.hpp"
#include "util/diagnostics.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

XMatrix small_workload(std::uint64_t seed) {
  WorkloadProfile profile;
  profile.name = "chaos";
  profile.geometry = {6, 24};
  profile.num_patterns = 96;
  profile.x_density = 0.05;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 6;
  profile.cluster_patterns_mean = 8;
  profile.seed = seed;
  return generate_workload(profile);
}

PartitionerConfig small_config() {
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  return cfg;
}

void expect_same_bits(const PartitionResult& want,
                      const PartitionResult& got) {
  ASSERT_EQ(want.partitions.size(), got.partitions.size());
  for (std::size_t i = 0; i < want.partitions.size(); ++i) {
    EXPECT_TRUE(want.partitions[i] == got.partitions[i]) << "partition " << i;
    EXPECT_TRUE(want.masks[i] == got.masks[i]) << "mask " << i;
  }
  EXPECT_EQ(want.total_bits, got.total_bits);
  EXPECT_EQ(want.masked_x, got.masked_x);
  EXPECT_EQ(want.leaked_x, got.leaked_x);
}

void expect_valid_cover(const PartitionResult& result,
                        std::size_t num_patterns) {
  BitVec cover(num_patterns);
  std::size_t total = 0;
  for (const BitVec& patterns : result.partitions) {
    total += patterns.count();
    cover |= patterns;
  }
  EXPECT_EQ(total, num_patterns);
  EXPECT_EQ(cover.count(), num_patterns);
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A checkpoint file from a genuine run interrupted after two rounds.
void plant_checkpoint(const fs::path& path, const XMatrix& xm,
                      const PartitionerConfig& cfg) {
  const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
  PartitionEngine engine(*store, cfg);
  std::size_t accepted = 0;
  while (accepted < 2 && !engine.finished()) {
    if (engine.step() == PartitionEngine::StepOutcome::kSplit) ++accepted;
  }
  ServiceCheckpoint ckpt;
  ckpt.geometry = xm.geometry();
  ckpt.num_patterns = xm.num_patterns();
  ckpt.total_x = xm.total_x();
  ckpt.config = cfg;
  ckpt.backend = store->backend_name();
  ckpt.snapshot = engine.snapshot();
  ASSERT_TRUE(save_checkpoint(ckpt, path.string()));
}

// Damaged checkpoints must never damage results: every attack is detected,
// reported as kCheckpointCorrupt, and the job reruns from scratch to the
// exact uninterrupted bits.
TEST(ServiceChaos, CorruptedCheckpointsFallBackToBitIdenticalFreshRuns) {
  const fs::path dir = fresh_dir("xh_chaos_ckpt");
  const auto xm = std::make_shared<const XMatrix>(small_workload(101));
  const PartitionerConfig cfg = small_config();
  const PartitionResult oracle = partition_patterns(*xm, cfg);

  Corruptor chaos(0xbadc0de);
  struct Attack {
    const char* name;
    std::string text;
  };
  const fs::path seed_path = dir / "seed.ckpt";
  plant_checkpoint(seed_path, *xm, cfg);
  const std::string intact = slurp(seed_path);
  const std::vector<Attack> attacks = {
      {"truncate-hard", chaos.truncate_text(intact, 0.3)},
      {"truncate-soft", chaos.truncate_text(intact, 0.9)},
      {"garble-one", chaos.garble_text(intact, 1)},
      {"garble-many", chaos.garble_text(intact, 40)},
      {"duplicate-line", chaos.duplicate_line(intact)},
      {"zero-length", std::string()},
      {"foreign-format", "xmatrix v1 6 24 96\nend 0\n"},
  };

  for (std::size_t i = 0; i < attacks.size(); ++i) {
    SCOPED_TRACE(attacks[i].name);
    const std::string job_name = "victim-" + std::to_string(i);
    spit(dir / (job_name + ".ckpt"), attacks[i].text);

    ServiceConfig service_cfg;
    service_cfg.workers = 1;
    service_cfg.checkpoint_dir = dir.string();
    service_cfg.checkpoint_every_rounds = 1;
    PartitionService service(service_cfg);
    JobSpec spec;
    spec.name = job_name;
    spec.matrix = xm;
    spec.config = cfg;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    const JobResult result = service.wait(outcome.id);

    EXPECT_EQ(result.state, JobState::kCompleted);
    EXPECT_FALSE(result.resumed_from_checkpoint);
    EXPECT_GT(result.diagnostics.count(DiagKind::kCheckpointCorrupt), 0u)
        << "corruption must be reported, not silently ignored";
    expect_same_bits(oracle, result.partition);
    EXPECT_EQ(service.stats().checkpoints_resumed, 0u);
  }

  // Control: the intact twin resumes rather than rerunning.
  {
    ServiceConfig service_cfg;
    service_cfg.workers = 1;
    service_cfg.checkpoint_dir = dir.string();
    service_cfg.checkpoint_every_rounds = 1;
    PartitionService service(service_cfg);
    JobSpec spec;
    spec.name = "seed";
    spec.matrix = xm;
    spec.config = cfg;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    const JobResult result = service.wait(outcome.id);
    EXPECT_EQ(result.state, JobState::kCompleted);
    EXPECT_TRUE(result.resumed_from_checkpoint);
    expect_same_bits(oracle, result.partition);
  }
}

// A storm of first-attempt transients: every tenant recovers on retry and
// the backoff ledger matches one retry per job.
TEST(ServiceChaos, TransientFaultStormRecoversEveryJob) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 3;
  PartitionService service(cfg);
  service.set_fault_hook([](JobId, std::size_t attempt) {
    if (attempt == 1) throw TransientError("storm");
  });

  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 8; ++i) {
    JobSpec spec;
    spec.name = "storm-" + std::to_string(i);
    spec.matrix = std::make_shared<const XMatrix>(small_workload(111 + i));
    spec.config = small_config();
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  for (const JobId id : ids) {
    const JobResult result = service.wait(id);
    EXPECT_EQ(result.state, JobState::kCompleted);
    EXPECT_EQ(result.attempts, 2u);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 8u);
  EXPECT_EQ(stats.job_retries, 8u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

// A deadline storm: every tenant times out immediately, and every returned
// prefix is still a disjoint cover — degraded, never garbage.
TEST(ServiceChaos, DeadlineStormDegradesEveryJobSafely) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.clock = &clock;
  cfg.default_deadline_ns = 50;
  PartitionService service(cfg);
  service.set_fault_hook(
      [&clock](JobId, std::size_t) { clock.advance(1'000'000); });

  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.name = "deadline-" + std::to_string(i);
    spec.matrix = std::make_shared<const XMatrix>(small_workload(121 + i));
    spec.config = small_config();
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  for (const JobId id : ids) {
    const JobResult result = service.wait(id);
    EXPECT_EQ(result.state, JobState::kDegraded);
    EXPECT_TRUE(result.partition.interrupted);
    expect_valid_cover(result.partition, 96);
  }
  EXPECT_EQ(service.stats().jobs_degraded, 6u);
}

// Queue flood against a tight admission cap: memory stays bounded (the
// peak never exceeds the cap), the overflow is rejected loudly, and the
// admitted jobs still finish.
TEST(ServiceChaos, QueueFloodIsBoundedByBackpressure) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 4;
  PartitionService service(cfg);
  service.pause();

  std::size_t accepted = 0;
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 40; ++i) {
    JobSpec spec;
    spec.name = "flood-" + std::to_string(i);
    spec.matrix = std::make_shared<const XMatrix>(small_workload(131));
    spec.config = small_config();
    const SubmitOutcome outcome = service.submit(std::move(spec));
    if (outcome.accepted) {
      ++accepted;
      ids.push_back(outcome.id);
    }
  }
  EXPECT_EQ(accepted, 4u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected_overload, 36u);
  EXPECT_LE(stats.queue_depth_peak, 4u);
  EXPECT_EQ(service.diagnostics().count(DiagKind::kOverloaded), 36u);

  service.resume();
  service.wait_all();
  for (const JobId id : ids) {
    EXPECT_EQ(service.wait(id).state, JobState::kCompleted);
  }
  EXPECT_EQ(service.stats().jobs_completed, 4u);
}

// Mixed-health ingestion: garbled source files fail fast, intact ones
// complete, and one tenant's damage never leaks into another's result.
TEST(ServiceChaos, GarbledIngestFilesFailFastOthersComplete) {
  const fs::path dir = fresh_dir("xh_chaos_ingest");
  Corruptor chaos(0x5eed);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::string text = x_matrix_to_string(small_workload(141 + i));
    const bool sabotage = i % 2 == 1;
    spit(dir / ("job-" + std::to_string(i) + ".xm"),
         sabotage ? chaos.garble_text(text, 8) : text);
  }

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.partitioner = small_config();
  cfg.retry.max_attempts = 3;
  PartitionService service(cfg);
  const std::vector<SubmitOutcome> outcomes =
      service.ingest_directory(dir.string());
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(outcomes[i].accepted);
    const JobResult result = service.wait(outcomes[i].id);
    if (i % 2 == 1) {
      EXPECT_EQ(result.state, JobState::kFailed) << "job " << i;
      EXPECT_EQ(result.attempts, 1u)
          << "parse damage is permanent; retrying cannot help";
      EXPECT_TRUE(result.diagnostics.has_errors());
    } else {
      EXPECT_EQ(result.state, JobState::kCompleted) << "job " << i;
      const PartitionResult want =
          partition_patterns(small_workload(141 + i), small_config());
      expect_same_bits(want, result.partition);
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.jobs_failed, 2u);
}

// The kitchen sink: checkpointed jobs under a transient storm with tight
// deadlines on some tenants — terminal states partition cleanly into the
// ladder's rungs and the accounting identity holds.
TEST(ServiceChaos, MixedChaosKeepsTheLedgerConsistent) {
  const fs::path dir = fresh_dir("xh_chaos_mixed");
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.clock = &clock;
  cfg.checkpoint_dir = dir.string();
  cfg.checkpoint_every_rounds = 1;
  cfg.retry.max_attempts = 2;
  PartitionService service(cfg);
  service.set_fault_hook([&clock](JobId id, std::size_t attempt) {
    if (id % 3 == 0 && attempt == 1) throw TransientError("blip");
    if (id % 4 == 0) clock.advance(1'000'000);
  });

  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.name = "mixed-" + std::to_string(i);
    spec.matrix = std::make_shared<const XMatrix>(small_workload(151 + i));
    spec.config = small_config();
    if (i % 4 == 0) spec.deadline_ns = 50;
    const SubmitOutcome outcome = service.submit(std::move(spec));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  service.wait_all();

  std::size_t terminal = 0;
  for (const JobId id : ids) {
    const JobResult result = service.wait(id);
    EXPECT_TRUE(job_state_terminal(result.state));
    if (result.state == JobState::kCompleted ||
        result.state == JobState::kDegraded) {
      expect_valid_cover(result.partition, 96);
    }
    ++terminal;
  }
  EXPECT_EQ(terminal, 12u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_accepted, 12u);
  EXPECT_EQ(stats.jobs_completed + stats.jobs_degraded + stats.jobs_failed +
                stats.jobs_cancelled,
            12u);
  service.shutdown();
}

}  // namespace
}  // namespace xh
