// XH-FLOW-001 fixture: a status-bearing value initialized from a call and
// then never read on any path — the finding the rule exists for.
#include <cstddef>

namespace xh {

struct SubmitOutcome {
  bool accepted = false;
  std::size_t id = 0;
};

SubmitOutcome submit_stub(std::size_t n);

void enqueue_all(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const SubmitOutcome oc = submit_stub(i);
  }
}

}  // namespace xh
