// 64-way parallel-pattern four-valued simulation.
//
// Each net carries two 64-bit planes; bit lane s of the pair encodes the
// value under pattern slot s using the same 2-bit code as Lv:
//   (p1,p0) = 00 → 0,  01 → 1,  10 → X,  11 → Z.
// This is the fast path used by fault simulation (PPSFP): 64 patterns per
// evaluation sweep, single stuck-at fault injected per sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace xh {

/// 64 four-valued lanes packed into two machine words.
struct LvPlane {
  std::uint64_t p0 = 0;
  std::uint64_t p1 = 0;

  void set(std::size_t slot, Lv v);
  Lv get(std::size_t slot) const;

  /// Plane with every lane equal to @p v.
  static LvPlane splat(Lv v);

  bool operator==(const LvPlane&) const = default;
};

/// Parallel-pattern simulator; mirrors CombSim semantics exactly (tested
/// lane-by-lane against it).
class ParallelSim {
 public:
  explicit ParallelSim(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  void set_input(GateId input, const LvPlane& plane);
  void set_state(GateId dff, const LvPlane& plane);
  void set_all_state(Lv v);

  /// Forces the output of @p gate to the stuck-at @p value in the lanes
  /// selected by @p lanes (default: all 64). Lane masking is what lets a
  /// transition-fault simulator force a site only in lanes where a
  /// transition was actually launched.
  struct Fault {
    GateId gate;
    Lv value;
    std::uint64_t lanes = ~0ULL;
  };
  void inject(std::optional<Fault> fault);

  void evaluate();

  const LvPlane& plane(GateId id) const;
  Lv value(GateId id, std::size_t slot) const;
  const LvPlane& next_state_plane(GateId dff) const;

  /// Copies DFF next-state planes into present state.
  void clock();

 private:
  const Netlist* nl_;
  std::vector<LvPlane> planes_;
  std::vector<LvPlane> state_;
  std::vector<LvPlane> next_state_;
  std::optional<Fault> fault_;
  bool evaluated_ = false;
};

}  // namespace xh
