#include "storage/backend_mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <ios>
#include <vector>

#include "kernels/kernels.hpp"

#include "util/check.hpp"

namespace xh {
namespace {

constexpr std::uint64_t kMagic = 0x31762d6d6d782d68ULL;  // "h-xmm-v1"

/// Fixed-width header at offset 0 of the backing file.
struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint64_t num_chains = 0;
  std::uint64_t chain_length = 0;
  std::uint64_t num_patterns = 0;
  std::uint64_t total_x = 0;
  std::uint64_t num_rows = 0;
  std::uint64_t words_per_row = 0;
  std::uint64_t cells_off = 0;
  std::uint64_t counts_off = 0;
  std::uint64_t words_off = 0;
  std::uint64_t file_bytes = 0;
};

std::uint64_t page_align(std::uint64_t offset) {
  return (offset + MmapStore::kPageSize - 1) / MmapStore::kPageSize *
         MmapStore::kPageSize;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::ios_base::failure("MmapStore: " + what);
}

void pad_to(std::ofstream& out, std::uint64_t offset) {
  const auto at = static_cast<std::uint64_t>(out.tellp());
  XH_ASSERT(at <= offset, "mmap section layout overflow");
  const std::vector<char> zeros(static_cast<std::size_t>(offset - at), 0);
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
}

void write_u64s(std::ofstream& out, const std::uint64_t* data,
                std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
}

}  // namespace

MmapStore::MmapStore(const XMatrix& xm, const MmapStoreOptions& options)
    : geometry_(xm.geometry()),
      num_patterns_(xm.num_patterns()),
      total_x_(xm.total_x()) {
  XH_REQUIRE(!options.path.empty(), "MmapStore needs a backing-file path");
  words_per_row_ = (num_patterns_ + 63) / 64;
  const std::vector<std::size_t> cells = xm.x_cells();
  num_rows_ = cells.size();

  FileHeader header;
  header.num_chains = geometry_.num_chains;
  header.chain_length = geometry_.chain_length;
  header.num_patterns = num_patterns_;
  header.total_x = total_x_;
  header.num_rows = num_rows_;
  header.words_per_row = words_per_row_;
  header.cells_off = page_align(sizeof(FileHeader));
  header.counts_off =
      page_align(header.cells_off + num_rows_ * sizeof(std::uint64_t));
  header.words_off =
      page_align(header.counts_off + num_rows_ * sizeof(std::uint64_t));
  header.file_bytes = page_align(header.words_off + num_rows_ *
                                                        words_per_row_ *
                                                        sizeof(std::uint64_t));
  words_off_ = header.words_off;
  file_bytes_ = header.file_bytes;

  // tmp + rename, like the checkpoint codec: a crash mid-build leaves only
  // a .tmp to sweep, never a torn file under the real name.
  const std::string tmp = options.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(&header), sizeof header);
    pad_to(out, header.cells_off);
    std::vector<std::uint64_t> scratch;
    scratch.reserve(num_rows_);
    for (const std::size_t cell : cells) {
      scratch.push_back(static_cast<std::uint64_t>(cell));
    }
    write_u64s(out, scratch.data(), scratch.size());
    pad_to(out, header.counts_off);
    scratch.clear();
    for (const std::size_t cell : cells) {
      scratch.push_back(
          static_cast<std::uint64_t>(xm.patterns_of(cell).count()));
    }
    write_u64s(out, scratch.data(), scratch.size());
    pad_to(out, header.words_off);
    scratch.clear();
    for (const std::size_t cell : cells) {
      const BitVec& pats = xm.patterns_of(cell);
      XH_ASSERT(pats.word_count() == words_per_row_,
                "XMatrix row width disagrees with pattern count");
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        scratch.push_back(pats.word(w));
      }
    }
    write_u64s(out, scratch.data(), scratch.size());
    pad_to(out, header.file_bytes);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      fail("short write while building " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), options.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " into place");
  }

  const int fd = ::open(options.path.c_str(), O_RDONLY);  // NOLINT
  if (fd < 0) fail("cannot open " + options.path + " for mapping");
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) != file_bytes_) {
    ::close(fd);
    fail("backing file " + options.path + " has the wrong size");
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(file_bytes_), PROT_READ,
                     MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor (and,
  // by default, the directory entry) can go away immediately.
  ::close(fd);
  if (map == MAP_FAILED) fail("mmap of " + options.path + " failed");
  if (!options.keep_file) std::remove(options.path.c_str());
  map_ = map;

  const auto* base = static_cast<const std::uint8_t*>(map_);
  const auto* mapped_header = reinterpret_cast<const FileHeader*>(base);
  if (mapped_header->magic != kMagic) fail("bad magic in mapped file");
  cells_ = reinterpret_cast<const std::uint64_t*>(base + header.cells_off);
  counts_ = reinterpret_cast<const std::uint64_t*>(base + header.counts_off);
  words_ = reinterpret_cast<const std::uint64_t*>(base + header.words_off);
}

MmapStore::~MmapStore() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(file_bytes_));
  }
}

void MmapStore::note_row_pages(std::size_t row) const {
  const std::uint64_t begin =
      words_off_ + row * words_per_row_ * sizeof(std::uint64_t);
  const std::uint64_t end = begin + words_per_row_ * sizeof(std::uint64_t);
  if (end == begin) return;
  note_pages((end - 1) / kPageSize - begin / kPageSize + 1);
}

std::size_t MmapStore::count_in(std::size_t row,
                                const BitVec& patterns) const {
  note_count_in();
  note_row_pages(row);
  return kernels::active().and_count_words(
      row_words(row), patterns.word_data(), words_per_row_);
}

std::uint64_t MmapStore::hash_in(std::size_t row,
                                 const BitVec& patterns) const {
  note_hash_in();
  note_row_pages(row);
  const std::uint64_t* words = row_words(row);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    h ^= words[w] & patterns.word(w);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void MmapStore::intersect_into(std::size_t row, const BitVec& patterns,
                               BitVec* out) const {
  note_intersect();
  note_row_pages(row);
  out->resize(num_patterns_);
  // Tail-safe raw write: patterns' tail bits are zero, so the AND's are too.
  kernels::active().and_words_into(out->word_data(), row_words(row),
                                   patterns.word_data(), words_per_row_);
}

}  // namespace xh
