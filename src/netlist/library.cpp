#include "netlist/library.hpp"

#include <string>

#include "util/check.hpp"

namespace xh {
namespace {

std::string idx_name(const char* base, std::size_t i) {
  return std::string(base) + std::to_string(i);
}

/// Builds a ripple-carry full adder over the given operand bits; returns the
/// sum bits and writes the final carry to @p carry_out.
std::vector<GateId> ripple_adder(Netlist& nl, const std::vector<GateId>& a,
                                 const std::vector<GateId>& b,
                                 GateId carry_in, GateId* carry_out,
                                 const char* prefix) {
  XH_REQUIRE(a.size() == b.size(), "adder operand width mismatch");
  std::vector<GateId> sum;
  GateId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string p = std::string(prefix) + std::to_string(i);
    const GateId axb = nl.add_gate(GateType::kXor, {a[i], b[i]}, p + "_axb");
    sum.push_back(nl.add_gate(GateType::kXor, {axb, carry}, p + "_sum"));
    const GateId and1 = nl.add_gate(GateType::kAnd, {a[i], b[i]}, p + "_c1");
    const GateId and2 = nl.add_gate(GateType::kAnd, {axb, carry}, p + "_c2");
    carry = nl.add_gate(GateType::kOr, {and1, and2}, p + "_cout");
  }
  if (carry_out != nullptr) *carry_out = carry;
  return sum;
}

}  // namespace

Netlist make_counter(std::size_t bits) {
  XH_REQUIRE(bits >= 1 && bits <= 64, "counter width must be 1..64");
  Netlist nl("counter" + std::to_string(bits));
  const GateId en = nl.add_input("en");

  std::vector<GateId> q;
  for (std::size_t i = 0; i < bits; ++i) {
    q.push_back(nl.add_dff_placeholder(idx_name("q", i)));
  }
  // q'[i] = q[i] ^ (en & q[0] & ... & q[i-1]); carry chain.
  GateId carry = en;
  for (std::size_t i = 0; i < bits; ++i) {
    const GateId next =
        nl.add_gate(GateType::kXor, {q[i], carry}, idx_name("d", i));
    nl.connect_dff(q[i], next);
    nl.mark_output(q[i]);
    if (i + 1 < bits) {
      carry = nl.add_gate(GateType::kAnd, {carry, q[i]}, idx_name("c", i));
    } else {
      carry = nl.add_gate(GateType::kAnd, {carry, q[i]}, "carry_out");
    }
  }
  nl.mark_output(carry);
  nl.finalize();
  return nl;
}

Netlist make_crc(std::size_t bits, std::size_t tap_mask) {
  XH_REQUIRE(bits >= 2 && bits <= 64, "CRC width must be 2..64");
  Netlist nl("crc" + std::to_string(bits));
  const GateId din = nl.add_input("din");
  const GateId en = nl.add_input("en");

  std::vector<GateId> q;
  for (std::size_t i = 0; i < bits; ++i) {
    q.push_back(nl.add_dff_placeholder(idx_name("q", i)));
  }
  // Galois form: feedback = q[msb] ^ din, gated by enable.
  const GateId fb_raw =
      nl.add_gate(GateType::kXor, {q[bits - 1], din}, "fb_raw");
  const GateId fb = nl.add_gate(GateType::kAnd, {fb_raw, en}, "fb");
  const GateId hold0 = nl.add_gate(GateType::kNot, {en}, "hold_n");
  for (std::size_t i = 0; i < bits; ++i) {
    const GateId prev = (i == 0)
                            ? nl.add_gate(GateType::kConst0, {}, "zero")
                            : q[i - 1];
    GateId shifted = prev;
    if (i == 0 || ((tap_mask >> i) & 1u) != 0) {
      shifted = nl.add_gate(GateType::kXor, {prev, fb}, idx_name("t", i));
    }
    // d = en ? shifted : q (hold when disabled).
    const GateId keep =
        nl.add_gate(GateType::kAnd, {q[i], hold0}, idx_name("k", i));
    const GateId load =
        nl.add_gate(GateType::kAnd, {shifted, en}, idx_name("l", i));
    const GateId d =
        nl.add_gate(GateType::kOr, {keep, load}, idx_name("d", i));
    nl.connect_dff(q[i], d);
    nl.mark_output(q[i]);
  }
  nl.finalize();
  return nl;
}

Netlist make_alu(std::size_t width) {
  XH_REQUIRE(width >= 1 && width <= 32, "ALU width must be 1..32");
  Netlist nl("alu" + std::to_string(width));

  const GateId op0 = nl.add_input("op0");
  const GateId op1 = nl.add_input("op1");
  std::vector<GateId> a_in;
  std::vector<GateId> b_in;
  for (std::size_t i = 0; i < width; ++i) {
    a_in.push_back(nl.add_input(idx_name("a", i)));
    b_in.push_back(nl.add_input(idx_name("b", i)));
  }

  // Input registers.
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (std::size_t i = 0; i < width; ++i) {
    a.push_back(nl.add_dff(a_in[i], idx_name("ra", i)));
    b.push_back(nl.add_dff(b_in[i], idx_name("rb", i)));
  }

  const GateId zero = nl.add_gate(GateType::kConst0, {}, "zero");
  GateId carry_out = kNoGate;
  const std::vector<GateId> sum =
      ripple_adder(nl, a, b, zero, &carry_out, "add");

  // Result mux: op = 00 ADD, 01 AND, 10 OR, 11 XOR.
  for (std::size_t i = 0; i < width; ++i) {
    const GateId g_and =
        nl.add_gate(GateType::kAnd, {a[i], b[i]}, idx_name("fand", i));
    const GateId g_or =
        nl.add_gate(GateType::kOr, {a[i], b[i]}, idx_name("for", i));
    const GateId g_xor =
        nl.add_gate(GateType::kXor, {a[i], b[i]}, idx_name("fxor", i));
    const GateId lo =
        nl.add_gate(GateType::kMux, {op0, sum[i], g_and}, idx_name("mlo", i));
    const GateId hi =
        nl.add_gate(GateType::kMux, {op0, g_or, g_xor}, idx_name("mhi", i));
    const GateId res =
        nl.add_gate(GateType::kMux, {op1, lo, hi}, idx_name("res", i));
    const GateId reg = nl.add_dff(res, idx_name("rr", i));
    nl.mark_output(reg);
  }
  const GateId carry_reg = nl.add_dff(carry_out, "rcarry");
  nl.mark_output(carry_reg);
  nl.finalize();
  return nl;
}

Netlist make_pipeline(std::size_t width, std::size_t stages) {
  XH_REQUIRE(width >= 2 && width <= 64, "pipeline width must be 2..64");
  XH_REQUIRE(stages >= 2 && stages <= 16, "pipeline depth must be 2..16");
  Netlist nl("pipe" + std::to_string(width) + "x" + std::to_string(stages));

  std::vector<GateId> data;
  for (std::size_t i = 0; i < width; ++i) {
    data.push_back(nl.add_input(idx_name("in", i)));
  }

  // The middle stage is unscanned — the X-source.
  const std::size_t x_stage = stages / 2;
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i < width; ++i) {
      // Mix: bit i XOR (bit i+1 AND bit i+2), wrap-around.
      const GateId mixed = nl.add_gate(
          GateType::kAnd, {data[(i + 1) % width], data[(i + 2) % width]},
          "s" + std::to_string(s) + "_m" + std::to_string(i));
      const GateId d = nl.add_gate(
          GateType::kXor, {data[i], mixed},
          "s" + std::to_string(s) + "_d" + std::to_string(i));
      next.push_back(nl.add_dff(
          d, "s" + std::to_string(s) + "_r" + std::to_string(i),
          /*scanned=*/s != x_stage));
    }
    data = std::move(next);
  }
  for (const GateId out : data) nl.mark_output(out);
  nl.finalize();
  return nl;
}

Netlist make_bus_fabric(std::size_t masters, std::size_t width) {
  XH_REQUIRE(masters >= 2 && masters <= 8, "need 2..8 bus masters");
  XH_REQUIRE(width >= 1 && width <= 32, "bus width must be 1..32");
  Netlist nl("bus" + std::to_string(masters) + "x" + std::to_string(width));

  std::vector<GateId> enables;
  for (std::size_t m = 0; m < masters; ++m) {
    enables.push_back(nl.add_input(idx_name("en", m)));
  }
  std::vector<std::vector<GateId>> payload(masters);
  for (std::size_t m = 0; m < masters; ++m) {
    for (std::size_t i = 0; i < width; ++i) {
      payload[m].push_back(
          nl.add_input("m" + std::to_string(m) + "_d" + std::to_string(i)));
    }
  }

  for (std::size_t i = 0; i < width; ++i) {
    std::vector<GateId> drivers;
    for (std::size_t m = 0; m < masters; ++m) {
      drivers.push_back(nl.add_gate(
          GateType::kTristate, {enables[m], payload[m][i]},
          "t" + std::to_string(m) + "_" + std::to_string(i)));
    }
    const GateId bus =
        nl.add_gate(GateType::kBus, std::move(drivers), idx_name("bus", i));
    const GateId obs = nl.add_dff(bus, idx_name("obs", i));
    nl.mark_output(obs);
  }
  nl.finalize();
  return nl;
}

Netlist make_multiplier(std::size_t width) {
  XH_REQUIRE(width >= 2 && width <= 16, "multiplier width must be 2..16");
  Netlist nl("mul" + std::to_string(width));

  std::vector<GateId> a;
  std::vector<GateId> b;
  for (std::size_t i = 0; i < width; ++i) {
    a.push_back(nl.add_dff(nl.add_input(idx_name("a", i)),
                           idx_name("ra", i)));
  }
  for (std::size_t i = 0; i < width; ++i) {
    b.push_back(nl.add_dff(nl.add_input(idx_name("b", i)),
                           idx_name("rb", i)));
  }

  // Row-by-row accumulation of partial products with ripple adders.
  const GateId zero = nl.add_gate(GateType::kConst0, {}, "zero");
  std::vector<GateId> acc(2 * width, zero);
  for (std::size_t row = 0; row < width; ++row) {
    // Partial product row: a[i] & b[row], aligned at bit `row`.
    std::vector<GateId> addend(2 * width, zero);
    for (std::size_t i = 0; i < width; ++i) {
      addend[row + i] = nl.add_gate(
          GateType::kAnd, {a[i], b[row]},
          "pp" + std::to_string(row) + "_" + std::to_string(i));
    }
    GateId carry_out = kNoGate;
    acc = ripple_adder(nl, acc, addend, zero, &carry_out,
                       ("acc" + std::to_string(row)).c_str());
  }
  for (std::size_t i = 0; i < 2 * width; ++i) {
    nl.mark_output(nl.add_dff(acc[i], idx_name("p", i)));
  }
  nl.finalize();
  return nl;
}

Netlist make_gray_counter(std::size_t bits) {
  XH_REQUIRE(bits >= 2 && bits <= 32, "gray counter width must be 2..32");
  Netlist nl("gray" + std::to_string(bits));
  const GateId en = nl.add_input("en");

  // Binary core counter; Gray outputs g[i] = q[i] ^ q[i+1].
  std::vector<GateId> q;
  for (std::size_t i = 0; i < bits; ++i) {
    q.push_back(nl.add_dff_placeholder(idx_name("q", i)));
  }
  GateId carry = en;
  for (std::size_t i = 0; i < bits; ++i) {
    nl.connect_dff(q[i], nl.add_gate(GateType::kXor, {q[i], carry},
                                     idx_name("d", i)));
    carry = nl.add_gate(GateType::kAnd, {carry, q[i]}, idx_name("c", i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    const GateId g =
        (i + 1 < bits)
            ? nl.add_gate(GateType::kXor, {q[i], q[i + 1]}, idx_name("g", i))
            : nl.add_gate(GateType::kBuf, {q[i]}, idx_name("g", i));
    nl.mark_output(g);
  }
  nl.finalize();
  return nl;
}

}  // namespace xh
