#include "util/diagnostics.hpp"

#include <sstream>

#include "util/check.hpp"

namespace xh {

const char* diag_kind_name(DiagKind kind) {
  switch (kind) {
    case DiagKind::kUndeclaredX: return "undeclared-x";
    case DiagKind::kMissingX: return "missing-x";
    case DiagKind::kMaskHidesValue: return "mask-hides-value";
    case DiagKind::kAccountingMismatch: return "accounting-mismatch";
    case DiagKind::kContaminatedCombination: return "contaminated-combination";
    case DiagKind::kExtractionStarved: return "extraction-starved";
    case DiagKind::kExtractionRecovered: return "extraction-recovered";
    case DiagKind::kSignatureDeficit: return "signature-deficit";
    case DiagKind::kTruncatedInput: return "truncated-input";
    case DiagKind::kGarbledInput: return "garbled-input";
    case DiagKind::kDuplicateRecord: return "duplicate-record";
    case DiagKind::kTrailingGarbage: return "trailing-garbage";
    case DiagKind::kStreamFailure: return "stream-failure";
    case DiagKind::kNetlistParseError: return "netlist-parse-error";
    case DiagKind::kBadArgument: return "bad-argument";
    case DiagKind::kOverloaded: return "overloaded";
    case DiagKind::kDeadlineExceeded: return "deadline-exceeded";
    case DiagKind::kCheckpointCorrupt: return "checkpoint-corrupt";
    case DiagKind::kNumKinds_: break;
  }
  return "unknown";
}

const char* diag_severity_name(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kInfo: return "info";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << diag_severity_name(severity) << " [" << diag_kind_name(kind) << ']';
  if (!location.empty()) os << ' ' << location;
  os << ": " << message;
  return os.str();
}

void Diagnostics::report(DiagSeverity severity, DiagKind kind,
                         std::string location, std::string message) {
  XH_REQUIRE(kind != DiagKind::kNumKinds_, "kNumKinds_ is not reportable");
  const std::size_t k = static_cast<std::size_t>(kind);
  ++severity_counts_[static_cast<std::size_t>(severity)];
  if (kind_counts_[k]++ < kMaxRecordsPerKind) {
    records_.push_back(
        {severity, kind, std::move(location), std::move(message)});
  }
}

std::size_t Diagnostics::count(DiagKind kind) const {
  XH_REQUIRE(kind != DiagKind::kNumKinds_, "kNumKinds_ is not reportable");
  return kind_counts_[static_cast<std::size_t>(kind)];
}

std::size_t Diagnostics::count(DiagSeverity severity) const {
  return severity_counts_[static_cast<std::size_t>(severity)];
}

std::size_t Diagnostics::total() const {
  std::size_t n = 0;
  for (const std::size_t c : severity_counts_) n += c;
  return n;
}

std::string Diagnostics::render() const {
  std::ostringstream os;
  for (const Diagnostic& d : records_) os << d.to_string() << '\n';
  for (std::size_t k = 0; k < kind_counts_.size(); ++k) {
    if (kind_counts_[k] > kMaxRecordsPerKind) {
      os << "  (+" << kind_counts_[k] - kMaxRecordsPerKind << " more "
         << diag_kind_name(static_cast<DiagKind>(k)) << " suppressed)\n";
    }
  }
  return os.str();
}

void Diagnostics::clear() {
  records_.clear();
  kind_counts_.fill(0);
  severity_counts_.fill(0);
}

}  // namespace xh
