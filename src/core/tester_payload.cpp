#include "core/tester_payload.hpp"

#include "util/check.hpp"

namespace xh {

TesterPayload build_tester_payload(const HybridSimulation& sim) {
  const PartitionResult& pr = sim.report.partitioning;
  XH_REQUIRE(!pr.partitions.empty(), "simulation carries no partitions");

  TesterPayload payload;
  payload.partitions.reserve(pr.partitions.size());
  for (std::size_t i = 0; i < pr.partitions.size(); ++i) {
    TesterPayload::PartitionSection section;
    section.patterns = pr.partitions[i];
    section.mask = encode_mask(pr.masks[i]);
    section.raw_mask_bits = pr.masks[i].size();
    payload.raw_mask_bits += section.raw_mask_bits;
    payload.coded_mask_bits += section.mask.bits();
    for (const std::size_t p : section.patterns.set_bits()) {
      payload.pattern_order.push_back(p);
    }
    payload.partitions.push_back(std::move(section));
  }
  XH_ASSERT(payload.pattern_order.size() ==
                sim.masked_response.num_patterns(),
            "partitions must cover every pattern exactly once");

  // Canceling schedule: the selection vectors actually extracted by the
  // real session (identity reads of a fully deterministic final signature
  // cost nothing and are excluded, matching the accounting).
  for (const SignatureBit& sig : sim.cancel.signature) {
    if (sig.stop_index < sim.cancel.stops) {
      payload.cancel_vectors.push_back(sig.combination);
      payload.cancel_bits += sig.combination.size();
    }
  }
  return payload;
}

}  // namespace xh
