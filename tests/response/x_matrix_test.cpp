#include "response/x_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "response/response_matrix.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(XMatrix, AddAndQuery) {
  XMatrix xm({2, 3}, 4);
  xm.add_x(1, 0);
  xm.add_x(1, 2);
  xm.add_x(5, 3);
  EXPECT_TRUE(xm.is_x(1, 0));
  EXPECT_FALSE(xm.is_x(1, 1));
  EXPECT_EQ(xm.total_x(), 3u);
  EXPECT_EQ(xm.x_count(1), 2u);
  EXPECT_EQ(xm.x_count(0), 0u);
}

TEST(XMatrix, AddIsIdempotent) {
  XMatrix xm({1, 2}, 2);
  xm.add_x(0, 1);
  xm.add_x(0, 1);
  EXPECT_EQ(xm.total_x(), 1u);
}

TEST(XMatrix, XCellsSortedAndStable) {
  XMatrix xm({3, 3}, 2);
  xm.add_x(7, 0);
  xm.add_x(2, 1);
  xm.add_x(4, 0);
  EXPECT_EQ(xm.x_cells(), (std::vector<std::size_t>{2, 4, 7}));
  xm.add_x(0, 0);
  EXPECT_EQ(xm.x_cells(), (std::vector<std::size_t>{0, 2, 4, 7}));
}

TEST(XMatrix, PatternsOfReturnsEmptyForCleanCell) {
  XMatrix xm({1, 3}, 5);
  EXPECT_EQ(xm.patterns_of(2).size(), 5u);
  EXPECT_TRUE(xm.patterns_of(2).none());
}

TEST(XMatrix, XCountInSubset) {
  XMatrix xm({1, 2}, 6);
  for (const std::size_t p : {0u, 2u, 4u}) xm.add_x(0, p);
  BitVec subset(6);
  subset.set(0);
  subset.set(1);
  subset.set(2);
  EXPECT_EQ(xm.x_count_in(0, subset), 2u);
  EXPECT_THROW(xm.x_count_in(0, BitVec(5)), std::invalid_argument);
}

TEST(XMatrix, TotalXInSubset) {
  XMatrix xm({1, 3}, 4);
  xm.add_x(0, 0);
  xm.add_x(1, 0);
  xm.add_x(1, 3);
  BitVec subset(4);
  subset.set(0);
  EXPECT_EQ(xm.total_x_in(subset), 2u);
  subset.set(3);
  EXPECT_EQ(xm.total_x_in(subset), 3u);
}

TEST(XMatrix, DensityMatchesDefinition) {
  XMatrix xm({2, 5}, 10);
  for (std::size_t p = 0; p < 5; ++p) xm.add_x(3, p);
  EXPECT_DOUBLE_EQ(xm.x_density(), 5.0 / 100.0);
}

TEST(XMatrix, BoundsChecked) {
  XMatrix xm({1, 2}, 2);
  EXPECT_THROW(xm.add_x(2, 0), std::invalid_argument);
  EXPECT_THROW(xm.add_x(0, 2), std::invalid_argument);
  EXPECT_THROW(xm.patterns_of(5), std::invalid_argument);
}

TEST(XMatrix, FromResponseMatchesDense) {
  Rng rng(3);
  ResponseMatrix rm({3, 4}, 6);
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t c = 0; c < 12; ++c) {
      const double roll = rng.uniform();
      rm.set(p, c, roll < 0.2 ? Lv::kX : (roll < 0.6 ? Lv::k1 : Lv::k0));
    }
  }
  const XMatrix xm = XMatrix::from_response(rm);
  EXPECT_EQ(xm.total_x(), rm.total_x());
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t c = 0; c < 12; ++c) {
      EXPECT_EQ(xm.is_x(c, p), rm.is_x(p, c));
    }
  }
}

}  // namespace
}  // namespace xh
