#include "response/x_stats.hpp"

#include <gtest/gtest.h>

#include "core/paper_example.hpp"

namespace xh {
namespace {

TEST(XStats, EmptyMatrix) {
  const XMatrix xm({1, 4}, 4);
  const XStatistics s = compute_x_statistics(xm);
  EXPECT_EQ(s.total_x, 0u);
  EXPECT_EQ(s.x_capturing_cells, 0u);
  EXPECT_TRUE(s.histogram.empty());
  EXPECT_EQ(s.largest_bucket().num_cells, 0u);
  EXPECT_DOUBLE_EQ(s.cell_fraction_covering(0.9), 0.0);
}

TEST(XStats, HistogramOfPaperExample) {
  // Figure 4 analysis: 3 cells with 4 X's, and one cell each with 1, 2, 6, 7.
  const XStatistics s = compute_x_statistics(paper_example_x_matrix());
  EXPECT_EQ(s.total_x, 28u);
  EXPECT_EQ(s.x_capturing_cells, 7u);
  ASSERT_EQ(s.histogram.size(), 5u);
  // Sorted by descending x_count: 7, 6, 4, 2, 1.
  EXPECT_EQ(s.histogram[0].x_count, 7u);
  EXPECT_EQ(s.histogram[0].num_cells, 1u);
  EXPECT_EQ(s.histogram[1].x_count, 6u);
  EXPECT_EQ(s.histogram[2].x_count, 4u);
  EXPECT_EQ(s.histogram[2].num_cells, 3u);
  EXPECT_EQ(s.histogram[3].x_count, 2u);
  EXPECT_EQ(s.histogram[4].x_count, 1u);
}

TEST(XStats, LargestBucketIsTheFourXGroup) {
  const XStatistics s = compute_x_statistics(paper_example_x_matrix());
  const XHistogramBucket b = s.largest_bucket();
  EXPECT_EQ(b.x_count, 4u);
  EXPECT_EQ(b.num_cells, 3u);
}

TEST(XStats, ConcentrationMonotonicInTarget) {
  const XStatistics s = compute_x_statistics(paper_example_x_matrix());
  const double f50 = s.cell_fraction_covering(0.5);
  const double f90 = s.cell_fraction_covering(0.9);
  const double f100 = s.cell_fraction_covering(1.0);
  EXPECT_LE(f50, f90);
  EXPECT_LE(f90, f100);
  // 7 of 15 cells capture X at all.
  EXPECT_DOUBLE_EQ(f100, 7.0 / 15.0);
  // Greedy: 7+6=13 ≥ 14? no; 7+6+4=17 ≥ 14 → 3 cells cover half of 28.
  EXPECT_DOUBLE_EQ(f50, 3.0 / 15.0);
}

TEST(XStats, ClustersOfPaperExample) {
  const auto clusters = find_x_clusters(paper_example_x_matrix());
  // Pattern sets: {0,3,4,5}×3 cells; four singleton clusters.
  ASSERT_EQ(clusters.size(), 5u);
  EXPECT_EQ(clusters[0].cells.size(), 3u);
  EXPECT_EQ(clusters[0].x_count(), 4u);
  EXPECT_EQ(clusters[0].total_x(), 12u);
  EXPECT_EQ(clusters[0].cells,
            (std::vector<std::size_t>{PaperExampleCells::sc1_c0,
                                      PaperExampleCells::sc2_c0,
                                      PaperExampleCells::sc3_c0}));
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    EXPECT_EQ(clusters[i].cells.size(), 1u);
  }
}

TEST(XStats, ClusterOrderingDeterministic) {
  const auto a = find_x_clusters(paper_example_x_matrix());
  const auto b = find_x_clusters(paper_example_x_matrix());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cells, b[i].cells);
    EXPECT_TRUE(a[i].patterns == b[i].patterns);
  }
}

TEST(XStats, IdenticalSetsRequiredForClustering) {
  XMatrix xm({1, 3}, 4);
  xm.add_x(0, 0);
  xm.add_x(0, 1);
  xm.add_x(1, 0);
  xm.add_x(1, 1);
  xm.add_x(2, 0);  // subset, but not identical
  const auto clusters = find_x_clusters(xm);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].cells, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(clusters[1].cells, (std::vector<std::size_t>{2}));
}

TEST(XStats, CellFractionRejectsBadArgument) {
  const XStatistics s = compute_x_statistics(paper_example_x_matrix());
  EXPECT_THROW(s.cell_fraction_covering(1.5), std::invalid_argument);
  EXPECT_THROW(s.cell_fraction_covering(-0.1), std::invalid_argument);
}

}  // namespace
}  // namespace xh
