// Seeds XH-API-001 through member-call chains: the rule must walk
// `svc.submit_job(` and `psvc->poll_job(` to the final [[nodiscard]] name
// instead of stopping at the object. The assigned call stays clean.
#include "service/service_api.hpp"

namespace fixture {

void drop_results(Service& svc, Service* psvc) {
  svc.submit_job(1);
  psvc->poll_job(2);
  const Outcome kept = svc.submit_job(3);
  (void)kept;
}

}  // namespace fixture
