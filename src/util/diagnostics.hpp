// Structured diagnostics for the robustness layer.
//
// The pipeline distinguishes three error families (see DESIGN.md §7):
//   * caller misuse            → XH_REQUIRE / std::invalid_argument
//   * internal invariant break → XH_ASSERT / std::logic_error
//   * data mismatch            → a Diagnostic record in this collector
// The third family covers everything silicon can do to us that simulation
// did not predict: undeclared X's, predicted X's that came back
// deterministic, truncated or garbled serialized inputs, starved Gaussian
// extractions. Those are *expected* at production scale and must be
// reported and recovered from, not thrown through the stack.
//
// Modules accept an optional `Diagnostics*`; passing nullptr selects the
// legacy strict behavior (mismatches become exceptions where they were
// before). Record retention is capped per kind so an O(total_x) mismatch
// storm cannot exhaust memory — counts stay exact past the cap.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xh {

enum class DiagSeverity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

/// Machine-readable classification of every condition the robustness layer
/// can report. Keep in sync with diag_kind_name().
enum class DiagKind : std::uint8_t {
  // Response-vs-declared-X mismatch family.
  kUndeclaredX = 0,      // silicon X where simulation predicted a value
  kMissingX,             // predicted X came back deterministic
  kMaskHidesValue,       // partition mask covers an observable cell
  kAccountingMismatch,   // leaked-X prediction != residual X after masking
  // X-canceling session family.
  kContaminatedCombination,  // selection vector fails the X-freeness re-check
  kExtractionStarved,        // fewer than q X-free combinations at a stop
  kExtractionRecovered,      // an earlier signature deficit was made up
  kSignatureDeficit,         // session finished with signature bits missing
  // Serialized-input family.
  kTruncatedInput,
  kGarbledInput,
  kDuplicateRecord,
  kTrailingGarbage,
  kStreamFailure,
  // Netlist family.
  kNetlistParseError,
  // CLI / configuration family.
  kBadArgument,
  // Service family (src/service): admission, deadlines, checkpoints.
  kOverloaded,         // job rejected by queue-depth backpressure
  kDeadlineExceeded,   // job stopped at a round boundary, best-so-far kept
  kCheckpointCorrupt,  // checkpoint failed validation; resuming from scratch
  kNumKinds_,  // sentinel, not reportable
};

const char* diag_kind_name(DiagKind kind);
const char* diag_severity_name(DiagSeverity severity);

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kInfo;
  DiagKind kind = DiagKind::kBadArgument;
  std::string location;  // e.g. "file.xm:12", "pattern 3 cell 17", "stop 2"
  std::string message;

  /// "error [undeclared-x] pattern 3 cell 17: ..." — one line, greppable.
  std::string to_string() const;
};

/// Append-only diagnostic collector threaded through the pipeline.
class Diagnostics {
 public:
  /// Records retained per kind; further reports of that kind only count.
  static constexpr std::size_t kMaxRecordsPerKind = 64;

  void report(DiagSeverity severity, DiagKind kind, std::string location,
              std::string message);

  void info(DiagKind kind, std::string location, std::string message) {
    report(DiagSeverity::kInfo, kind, std::move(location), std::move(message));
  }
  void warn(DiagKind kind, std::string location, std::string message) {
    report(DiagSeverity::kWarning, kind, std::move(location),
           std::move(message));
  }
  void error(DiagKind kind, std::string location, std::string message) {
    report(DiagSeverity::kError, kind, std::move(location),
           std::move(message));
  }

  /// Retained records (capped per kind), in report order.
  const std::vector<Diagnostic>& records() const { return records_; }

  /// Exact number of reports of @p kind, including suppressed ones.
  std::size_t count(DiagKind kind) const;
  /// Exact number of reports at @p severity, including suppressed ones.
  std::size_t count(DiagSeverity severity) const;
  std::size_t total() const;

  bool has_errors() const { return count(DiagSeverity::kError) > 0; }
  bool has_warnings() const { return count(DiagSeverity::kWarning) > 0; }
  bool empty() const { return total() == 0; }

  /// Multi-line human-readable dump: one line per retained record plus a
  /// suppression summary for kinds that overflowed the retention cap.
  std::string render() const;

  void clear();

 private:
  std::vector<Diagnostic> records_;
  std::array<std::size_t, static_cast<std::size_t>(DiagKind::kNumKinds_)>
      kind_counts_{};
  std::array<std::size_t, 3> severity_counts_{};
};

/// No-op-on-null convenience used by modules that accept `Diagnostics*`.
inline void diag_report(Diagnostics* diags, DiagSeverity severity,
                        DiagKind kind, std::string location,
                        std::string message) {
  if (diags != nullptr) {
    diags->report(severity, kind, std::move(location), std::move(message));
  }
}

}  // namespace xh
