// Crash-safe serialization of a PartitionEngine round boundary (xh-ckpt/1).
//
// A checkpoint binds an EngineSnapshot to the identity of the run that
// produced it — scan geometry, pattern count, total X population, and the
// full PartitionerConfig — so a resume can refuse to graft saved state
// onto a different matrix or configuration (checkpoint_matches()). The
// format is line-oriented text in the spirit of response/io.hpp:
//
//   xh-ckpt v1
//   geometry <num_chains> <chain_length> <num_patterns> <total_x>
//   config <misr_size> <misr_q> <stop> <max_rounds> <singletons> <choice> <seed>
//   store <backend>                               (csr | tebm | mmap)
//   isa <name>                    (optional: scalar | avx2 | avx512)
//   state <round> <done>
//   rng <s0> <s1> <s2> <s3>                       (hex)
//   parts <count>
//   part <word> <word> ...                        (hex BitVec words)
//   history <count>
//   hist <round> <parts> <masked> <leaked> <cell> <accepted> <bits>
//   end <fnv1a64>                                 (hex, of all bytes above)
//
// total_bits doubles travel as hex-encoded bit patterns ("bits" above), so
// a round-trip is bit-exact — no decimal-formatting drift can break the
// resume-equals-uninterrupted pin. save_checkpoint() writes to a sibling
// .tmp file and renames it into place, so a crash mid-write leaves either
// the previous checkpoint or none — never a torn file; the trailing
// checksum line catches truncation and garbling of whatever does land.
//
// Loaders never throw on bad data: corruption is an *expected* production
// event (that is the point of the chaos suite), reported through the
// Diagnostics collector as kCheckpointCorrupt / kStreamFailure, and the
// caller falls back to a fresh run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "engine/partition_types.hpp"
#include "response/geometry.hpp"
#include "util/diagnostics.hpp"

namespace xh {

struct ServiceCheckpoint {
  ScanGeometry geometry;
  std::size_t num_patterns = 0;
  std::uint64_t total_x = 0;
  PartitionerConfig config;
  /// XMatrixStore::backend_name() of the store the snapshot was taken
  /// against. Every backend yields bit-identical snapshots, but recording
  /// the identity keeps resumes auditable and lets checkpoint_matches()
  /// refuse a graft onto a store the operator did not intend.
  std::string backend = "csr";
  /// kernels::active().name of the dispatch table the snapshot was computed
  /// under. Informational-but-checked, like `backend`: every ISA tier is
  /// differentially pinned bit-identical, yet a resume that silently crosses
  /// tiers would make any future divergence unauditable, so
  /// checkpoint_matches() refuses the graft and the caller demotes to a
  /// fresh run. Empty means the checkpoint predates the field (pre-kernels
  /// xh-ckpt/1 files have no isa line) and matches any ISA.
  std::string isa;
  EngineSnapshot snapshot;
};

/// Serializes @p ckpt into the xh-ckpt/1 text form, checksum included.
[[nodiscard]] std::string checkpoint_to_string(const ServiceCheckpoint& ckpt);

/// Parses an xh-ckpt/1 document. Any structural defect — bad header,
/// short/garbled lines, checksum mismatch, inconsistent counts — is
/// reported as an error on @p diags and yields nullopt.
[[nodiscard]] std::optional<ServiceCheckpoint> checkpoint_from_string(
    const std::string& text, Diagnostics* diags = nullptr);

/// Atomically replaces @p path with the serialized checkpoint (write to
/// "<path>.tmp", then rename). Returns false (with a kStreamFailure
/// diagnostic) when the filesystem refuses; the previous file survives.
[[nodiscard]] bool save_checkpoint(const ServiceCheckpoint& ckpt,
                                   const std::string& path,
                                   Diagnostics* diags = nullptr);

/// Reads and parses @p path. A missing file is a clean nullopt with no
/// diagnostic (the normal first-run case); unreadable or corrupt content
/// diagnoses like checkpoint_from_string().
[[nodiscard]] std::optional<ServiceCheckpoint> load_checkpoint(
    const std::string& path, Diagnostics* diags = nullptr);

/// True when the checkpoint was taken from a run with this exact identity
/// (geometry, pattern count, X population, configuration, storage backend,
/// kernel ISA). A checkpoint with an empty isa field (written before the
/// kernel layer existed) matches any @p isa. On mismatch, fills @p why
/// (when non-null) with a human-readable reason.
[[nodiscard]] bool checkpoint_matches(const ServiceCheckpoint& ckpt,
                                      const ScanGeometry& geometry,
                                      std::size_t num_patterns,
                                      std::uint64_t total_x,
                                      const PartitionerConfig& config,
                                      const std::string& backend,
                                      const std::string& isa,
                                      std::string* why = nullptr);

}  // namespace xh
