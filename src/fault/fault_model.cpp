#include "fault/fault_model.hpp"

#include "util/check.hpp"

namespace xh {

std::string fault_name(const Netlist& nl, const StuckFault& fault) {
  return nl.gate(fault.gate).name + (fault.stuck_at_one ? "/1" : "/0");
}

std::vector<StuckFault> enumerate_faults(const Netlist& nl) {
  XH_REQUIRE(nl.finalized(), "fault enumeration requires a finalized netlist");
  std::vector<StuckFault> faults;
  faults.reserve(nl.gate_count() * 2);
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const GateType type = nl.gate(id).type;
    // Constants cannot meaningfully be stuck at their own value, and a
    // stuck fault on a constant's opposite value is a fault on its fanout —
    // skip constants entirely.
    if (type == GateType::kConst0 || type == GateType::kConst1) continue;
    faults.push_back({id, false});
    faults.push_back({id, true});
  }
  return faults;
}

std::vector<StuckFault> collapse_faults(const Netlist& nl,
                                        const std::vector<StuckFault>& all) {
  XH_REQUIRE(nl.finalized(), "fault collapsing requires a finalized netlist");
  std::vector<StuckFault> kept;
  kept.reserve(all.size());
  for (const StuckFault& f : all) {
    const Gate& g = nl.gate(f.gate);
    if (g.type == GateType::kBuf || g.type == GateType::kNot) {
      const GateId stem = g.fanin[0];
      // Equivalent to a stem fault when the stem drives only this gate and
      // the stem itself is a faultable site.
      const GateType stem_type = nl.gate(stem).type;
      const bool stem_faultable = stem_type != GateType::kConst0 &&
                                  stem_type != GateType::kConst1;
      if (stem_faultable && nl.fanout(stem).size() == 1) continue;
    }
    kept.push_back(f);
  }
  return kept;
}

}  // namespace xh
