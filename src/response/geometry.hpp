// Scan geometry: how scan cells are arranged into chains.
//
// Cell indices are chain-major: cell = chain * chain_length + position, with
// position 0 closest to the chain output (shifted out first). The X-masking
// control-bit count of the paper — longest chain length × number of chains —
// is a direct function of this geometry.
#pragma once

#include <cstddef>

#include "util/check.hpp"

namespace xh {

/// Rectangular scan configuration (all chains share one length, as in the
/// paper's designs; a ragged design is padded to the longest chain, which is
/// exactly how the paper counts control bits).
struct ScanGeometry {
  std::size_t num_chains = 0;
  std::size_t chain_length = 0;

  std::size_t num_cells() const { return num_chains * chain_length; }

  std::size_t cell_index(std::size_t chain, std::size_t position) const {
    XH_REQUIRE(chain < num_chains, "chain index out of range");
    XH_REQUIRE(position < chain_length, "scan position out of range");
    return chain * chain_length + position;
  }

  std::size_t chain_of(std::size_t cell) const {
    XH_REQUIRE(cell < num_cells(), "cell index out of range");
    return cell / chain_length;
  }

  std::size_t position_of(std::size_t cell) const {
    XH_REQUIRE(cell < num_cells(), "cell index out of range");
    return cell % chain_length;
  }

  /// Per-pattern X-masking control data in the conventional scheme [5]:
  /// one bit per scan cell per pattern.
  std::size_t mask_bits_per_pattern() const { return num_cells(); }

  bool operator==(const ScanGeometry&) const = default;
};

}  // namespace xh
