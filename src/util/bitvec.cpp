#include "util/bitvec.hpp"

#include <bit>

#include "util/check.hpp"

namespace xh {
namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t size, bool value)
    : size_(size), words_(words_for(size), value ? ~0ULL : 0ULL) {
  mask_tail();
}

void BitVec::mask_tail() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

bool BitVec::get(std::size_t i) const {
  XH_REQUIRE(i < size_, "BitVec::get index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  XH_REQUIRE(i < size_, "BitVec::set index out of range");
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  XH_REQUIRE(i < size_, "BitVec::flip index out of range");
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

void BitVec::fill(bool value) {
  for (auto& w : words_) w = value ? ~0ULL : 0ULL;
  mask_tail();
}

std::size_t BitVec::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVec::any() const {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t BitVec::find_first() const { return find_next(0); }

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from / kWordBits;
  std::uint64_t cur = words_[w] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (cur != 0) {
      const std::size_t bit =
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(cur));
      return bit < size_ ? bit : size_;
    }
    if (++w >= words_.size()) return size_;
    cur = words_[w];
  }
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < size_; i = find_next(i + 1)) {
    out.push_back(i);
  }
  return out;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in ^=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in &=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in |=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVec& BitVec::and_not(const BitVec& other) {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in and_not");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

bool BitVec::intersects(const BitVec& other) const {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in intersects");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

bool BitVec::is_subset_of(const BitVec& other) const {
  XH_REQUIRE(size_ == other.size_, "BitVec size mismatch in is_subset_of");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void BitVec::resize(std::size_t size) {
  const bool shrinking_within_word = size < size_;
  size_ = size;
  words_.resize(words_for(size), 0ULL);
  if (shrinking_within_word) mask_tail();
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(get(i) ? '1' : '0');
  return out;
}

BitVec BitVec::from_string(const std::string& bits) {
  std::string compact;
  compact.reserve(bits.size());
  for (const char c : bits) {
    if (c == '0' || c == '1') {
      compact.push_back(c);
    } else {
      XH_REQUIRE(c == ' ' || c == '\t' || c == '\n' || c == '_',
                 "BitVec::from_string: invalid character");
    }
  }
  BitVec out(compact.size());
  for (std::size_t i = 0; i < compact.size(); ++i) {
    if (compact[i] == '1') out.set(i);
  }
  return out;
}

void BitVec::set_word(std::size_t w, std::uint64_t value) {
  XH_REQUIRE(w < words_.size(), "BitVec::set_word index out of range");
  words_[w] = value;
  if (w + 1 == words_.size()) mask_tail();
}

BitVec operator^(BitVec lhs, const BitVec& rhs) { return lhs ^= rhs; }
BitVec operator&(BitVec lhs, const BitVec& rhs) { return lhs &= rhs; }
BitVec operator|(BitVec lhs, const BitVec& rhs) { return lhs |= rhs; }

std::size_t and_count(const BitVec& a, const BitVec& b) {
  XH_REQUIRE(a.size() == b.size(), "BitVec size mismatch in and_count");
  std::size_t total = 0;
  for (std::size_t w = 0; w < a.word_count(); ++w) {
    total += static_cast<std::size_t>(std::popcount(a.word(w) & b.word(w)));
  }
  return total;
}

std::size_t and_not_count(const BitVec& a, const BitVec& b) {
  XH_REQUIRE(a.size() == b.size(), "BitVec size mismatch in and_not_count");
  std::size_t total = 0;
  for (std::size_t w = 0; w < a.word_count(); ++w) {
    total += static_cast<std::size_t>(std::popcount(a.word(w) & ~b.word(w)));
  }
  return total;
}

}  // namespace xh
