#pragma once

#include "util/cycle_a.hpp"

namespace fixture {

struct CycleB {
  CycleA* owner = nullptr;
};

}  // namespace fixture
