#include "lint/project_model.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xh::lint {
namespace {

namespace fs = std::filesystem;

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(cur), cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// "src/core" from "src/core/hybrid.hpp"; "" when there is no directory.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool is_upperish(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) != 0 ||
          (name.size() > 1 && name[0] == 'k' &&
           std::isupper(static_cast<unsigned char>(name[1])) != 0));
}

/// Flattened cleaned text (newlines preserved) for multi-line pattern work.
std::string flatten(const Cleaned& cleaned) {
  std::string text;
  for (const auto& l : cleaned.lines) {
    text += l;
    text += '\n';
  }
  return text;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
}

/// Reads the identifier ending right before @p end (exclusive); empty when
/// the preceding token is not an identifier.
std::string ident_before(const std::string& text, std::size_t end) {
  std::size_t e = end;
  while (e > 0 && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  return text.substr(b, e - b);
}

/// Skips whitespace then a chain of [[...]] attribute blocks starting at
/// @p pos; returns the offset of the first non-attribute character.
std::size_t skip_attributes(const std::string& text, std::size_t pos) {
  for (;;) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos + 1 < text.size() && text[pos] == '[' && text[pos + 1] == '[') {
      const std::size_t close = text.find("]]", pos + 2);
      if (close == std::string::npos) return text.size();
      pos = close + 2;
    } else {
      return pos;
    }
  }
}

/// Harvests the symbol/declaration index contributions of one header.
void harvest_header(const std::string& path, const Cleaned& cleaned,
                    SymbolIndex& index) {
  const std::string text = flatten(cleaned);
  std::set<std::string>& broad = index.broad_names[path];
  std::set<std::string>& exported = index.exported_names[path];

  // Type-introducing keywords, using-aliases and macros. These feed both
  // name sets: they are the precise "this header provides X" signals.
  for (const char* kw : {"struct", "class", "enum"}) {
    std::size_t pos = 0;
    while ((pos = find_ident(text, kw, pos)) != std::string::npos) {
      std::size_t p = pos + std::string(kw).size();
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      // `enum class Name`.
      if (std::string(kw) == "enum" && text.compare(p, 5, "class") == 0 &&
          p + 5 < text.size() && !is_ident_char(text[p + 5])) {
        p += 5;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
      }
      std::string name;
      while (p < text.size() && is_ident_char(text[p])) {
        name.push_back(text[p]);
        ++p;
      }
      if (!name.empty()) {
        broad.insert(name);
        exported.insert(name);
      }
      // Enumerators: every identifier inside the enum's brace block.
      if (std::string(kw) == "enum") {
        while (p < text.size() && text[p] != '{' && text[p] != ';') ++p;
        if (p < text.size() && text[p] == '{') {
          const std::size_t close = text.find('}', p);
          std::size_t q = p + 1;
          while (q < (close == std::string::npos ? text.size() : close)) {
            if (is_ident_char(text[q])) {
              std::string en;
              while (q < text.size() && is_ident_char(text[q])) {
                en.push_back(text[q]);
                ++q;
              }
              broad.insert(en);
              // Enumerators are deliberately NOT exported: they would turn
              // every `kFoo` use into a missing-direct-include demand.
            } else {
              ++q;
            }
          }
        }
      }
      pos = p;
    }
  }
  {
    std::size_t pos = 0;
    while ((pos = find_ident(text, "using", pos)) != std::string::npos) {
      std::size_t p = pos + 5;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      std::string name;
      while (p < text.size() && is_ident_char(text[p])) {
        name.push_back(text[p]);
        ++p;
      }
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (!name.empty() && p < text.size() && text[p] == '=' &&
          name != "namespace") {
        broad.insert(name);
        exported.insert(name);
      }
      pos = p;
    }
  }
  {
    std::size_t pos = 0;
    while ((pos = text.find("#define", pos)) != std::string::npos) {
      std::size_t p = pos + 7;
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
      std::string name;
      while (p < text.size() && is_ident_char(text[p])) {
        name.push_back(text[p]);
        ++p;
      }
      if (!name.empty()) {
        broad.insert(name);
        exported.insert(name);
      }
      pos = p;
    }
  }

  // Broad-only signals: anything callable (`name(`) and anything
  // initialized (`name =`, catches constants and inline variables). These
  // exist so the unused-include check errs toward "used".
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '(' && text[i] != '=') continue;
    if (text[i] == '=' && i + 1 < text.size() &&
        (text[i + 1] == '=' || (i > 0 && (text[i - 1] == '=' ||
                                          text[i - 1] == '!' ||
                                          text[i - 1] == '<' ||
                                          text[i - 1] == '>')))) {
      continue;  // comparison, not initialization
    }
    const std::string name = ident_before(text, i);
    if (name.size() >= 3 && name != "return" && name != "sizeof" &&
        name != "while" && name != "for" && name != "if" &&
        name != "switch" && name != "catch" && name != "alignof" &&
        name != "decltype" && name != "static_assert") {
      broad.insert(name);
    }
  }

  // [[nodiscard]] function names.
  {
    std::size_t pos = 0;
    while ((pos = text.find("[[", pos)) != std::string::npos) {
      const std::size_t close = text.find("]]", pos + 2);
      if (close == std::string::npos) break;
      const std::string attr = text.substr(pos + 2, close - pos - 2);
      const bool nodiscard =
          find_ident(attr, "nodiscard") != std::string::npos;
      const bool deprecated =
          find_ident(attr, "deprecated") != std::string::npos;
      if (!nodiscard && !deprecated) {
        pos = close + 2;
        continue;
      }
      const std::size_t decl_begin = skip_attributes(text, pos);
      std::size_t decl_end = decl_begin;
      while (decl_end < text.size() && text[decl_end] != ';' &&
             text[decl_end] != '{') {
        ++decl_end;
      }
      const std::string decl = text.substr(decl_begin, decl_end - decl_begin);
      const std::size_t paren = decl.find('(');
      if (paren != std::string::npos) {
        const std::string name = ident_before(decl, paren);
        if (!name.empty()) {
          if (nodiscard) index.nodiscard[name].insert(path);
          if (deprecated) {
            DeprecatedApi api;
            api.name = name;
            api.declared_in = path;
            // Parameter types (project-style uppercase identifiers) of the
            // deprecated overload; refined against live overloads below.
            std::size_t depth = 0;
            std::size_t q = paren;
            std::string tok;
            for (; q < decl.size(); ++q) {
              const char c = decl[q];
              if (c == '(') ++depth;
              if (c == ')' && --depth == 0) break;
              if (is_ident_char(c)) {
                tok.push_back(c);
              } else {
                if (is_upperish(tok)) api.marker_types.insert(tok);
                tok.clear();
              }
            }
            if (is_upperish(tok)) api.marker_types.insert(tok);
            index.deprecated.push_back(std::move(api));
          }
        }
      }
      pos = close + 2;
    }
  }
}

/// Refines the deprecated index of one header: determines which deprecated
/// functions also have live overloads and prunes marker types down to
/// same-header types used ONLY by deprecated overloads.
void refine_deprecated(const std::string& path, const Cleaned& cleaned,
                       SymbolIndex& index) {
  const std::string text = flatten(cleaned);
  // Offsets of deprecated attribute declarations in this header.
  std::vector<std::pair<std::size_t, std::size_t>> dep_ranges;
  {
    std::size_t pos = 0;
    while ((pos = text.find("[[", pos)) != std::string::npos) {
      const std::size_t close = text.find("]]", pos + 2);
      if (close == std::string::npos) break;
      if (find_ident(text.substr(pos + 2, close - pos - 2), "deprecated") !=
          std::string::npos) {
        const std::size_t begin = skip_attributes(text, pos);
        std::size_t end = begin;
        while (end < text.size() && text[end] != ';' && text[end] != '{') {
          ++end;
        }
        dep_ranges.emplace_back(begin, end);
      }
      pos = close + 2;
    }
  }
  const auto in_dep_range = [&](std::size_t off) {
    for (const auto& [b, e] : dep_ranges) {
      if (off >= b && off < e) return true;
    }
    return false;
  };

  for (DeprecatedApi& api : index.deprecated) {
    if (api.declared_in != path) continue;
    std::set<std::string> live_param_types;
    std::size_t pos = 0;
    while ((pos = find_ident(text, api.name, pos)) != std::string::npos) {
      const std::size_t after = pos + api.name.size();
      std::size_t p = after;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (p < text.size() && text[p] == '(' && !in_dep_range(pos)) {
        api.has_live_overload = true;
        std::size_t depth = 0;
        std::string tok;
        for (std::size_t q = p; q < text.size(); ++q) {
          const char c = text[q];
          if (c == '(') ++depth;
          if (c == ')' && --depth == 0) break;
          if (is_ident_char(c)) {
            tok.push_back(c);
          } else {
            if (is_upperish(tok)) live_param_types.insert(tok);
            tok.clear();
          }
        }
      }
      pos = after;
    }
    // Marker types: declared in THIS header, absent from every live
    // overload of the same function. (HybridConfig qualifies; XMatrix and
    // Diagnostics, declared elsewhere, never do.)
    std::set<std::string> markers;
    const auto& exported = index.exported_names[path];
    for (const std::string& t : api.marker_types) {
      if (exported.count(t) != 0 && live_param_types.count(t) == 0) {
        markers.insert(t);
      }
    }
    api.marker_types = std::move(markers);
  }
}

void harvest_telemetry_schema(const std::string& path,
                              const SourceFile& source,
                              const Cleaned& cleaned, ProjectModel& model) {
  const std::size_t begin_off =
      source.content.find("xh-telemetry-schema-begin");
  if (begin_off == std::string::npos) return;
  const std::size_t end_off =
      source.content.find("xh-telemetry-schema-end", begin_off);
  const std::size_t begin_line = line_of_offset(source.content, begin_off);
  const std::size_t end_line =
      end_off == std::string::npos
          ? source.content.size()
          : line_of_offset(source.content, end_off);
  for (const StringLiteral& lit : cleaned.literals) {
    if (lit.line > begin_line && lit.line < end_line) {
      model.telemetry_names.insert(lit.text);
    }
  }
  model.telemetry_schema_file = path;
}

}  // namespace

bool LayerSpec::allowed(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const auto it = layers.find(from);
  if (it == layers.end()) return true;  // unknown source layers are reported
                                        // separately, not per edge
  return it->second.allow_all || it->second.deps.count(to) != 0;
}

const LayerSpec::PrivateRule* LayerSpec::private_rule(
    const std::string& target_path) const {
  for (const PrivateRule& rule : privates) {
    if (starts_with(target_path, rule.prefix)) return &rule;
  }
  return nullptr;
}

bool parse_layer_spec(const std::string& text, LayerSpec& spec,
                      std::string& error) {
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    std::vector<std::string> tokens = split_ws(line);
    if (tokens.size() >= 1 && tokens[0] == "private") {
      if (tokens.size() < 4 || tokens[2] != "->") {
        error = "layers spec line " + std::to_string(line_no) +
                ": expected 'private <prefix> -> <layer>...', got '" + line +
                "'";
        return false;
      }
      LayerSpec::PrivateRule rule;
      rule.prefix = tokens[1];
      // Two directives for one prefix would silently shadow each other
      // (private_rule returns the first match): refuse instead of letting
      // the second one widen or narrow visibility unnoticed.
      for (const LayerSpec::PrivateRule& existing : spec.privates) {
        if (existing.prefix == rule.prefix) {
          error = "layers spec line " + std::to_string(line_no) +
                  ": duplicate private directive for prefix '" +
                  rule.prefix + "'; merge the layer lists into one line";
          return false;
        }
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        rule.layers.insert(tokens[i]);
      }
      spec.privates.push_back(std::move(rule));
      continue;
    }
    if (tokens.size() < 2 || tokens[0] != "layer") {
      error = "layers spec line " + std::to_string(line_no) +
              ": expected 'layer <name> [-> dep...]' or "
              "'private <prefix> -> <layer>...', got '" + line + "'";
      return false;
    }
    LayerSpec::Layer layer;
    if (tokens.size() > 2) {
      if (tokens[2] != "->") {
        error = "layers spec line " + std::to_string(line_no) +
                ": expected '->' after layer name";
        return false;
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (tokens[i] == "*") {
          layer.allow_all = true;
        } else {
          layer.deps.insert(tokens[i]);
        }
      }
    }
    spec.layers[tokens[1]] = std::move(layer);
  }
  return true;
}

std::string layer_of(const std::string& path) {
  if (starts_with(path, "src/")) {
    const std::string rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos) return stem_of(rest);  // src/xh.hpp → xh
    return rest.substr(0, slash);
  }
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

ProjectModel build_project_model(std::vector<SourceFile> files,
                                 LayerSpec spec) {
  ProjectModel model;
  model.spec = std::move(spec);

  for (SourceFile& f : files) {
    FileEntry entry;
    entry.cleaned = clean(f.content);
    entry.layer = layer_of(f.path);
    entry.is_header = ends_with(f.path, ".hpp") || ends_with(f.path, ".h");
    entry.source = std::move(f);
    model.files.emplace(entry.source.path, std::move(entry));
  }

  // Include graph: quoted includes resolved against src/, tools/, the
  // includer's directory, then the root itself. Unresolvable (= external)
  // includes are dropped — the model only reasons about project files.
  for (auto& [path, entry] : model.files) {
    std::size_t include_lines = 0;
    std::size_t code_lines = 0;
    for (std::size_t i = 0; i < entry.cleaned.lines.size(); ++i) {
      const std::string line = trim(entry.cleaned.lines[i]);
      if (line.empty()) continue;
      if (!starts_with(line, "#include")) {
        ++code_lines;
        continue;
      }
      ++include_lines;
      // The quoted path is a string literal, which clean() blanks out of
      // the code text — recover it from the captured literal list. A line
      // with no literal is a <...> system include.
      std::string inc;
      for (const StringLiteral& lit : entry.cleaned.literals) {
        if (lit.line == i + 1) {
          inc = lit.text;
          break;
        }
      }
      if (inc.empty()) continue;
      for (const std::string& cand :
           {"src/" + inc, "tools/" + inc, dir_of(path) + "/" + inc, inc}) {
        if (model.files.count(cand) != 0) {
          entry.includes.push_back({cand, i + 1});
          break;
        }
      }
    }
    entry.umbrella =
        entry.is_header && include_lines >= 5 && code_lines <= 2;

    if (!entry.is_header) {
      const std::string sibling = dir_of(path).empty()
                                      ? stem_of(path) + ".hpp"
                                      : dir_of(path) + "/" + stem_of(path) +
                                            ".hpp";
      if (model.files.count(sibling) != 0) entry.primary_header = sibling;
    }

    // Identifier token set with first-occurrence lines.
    for (std::size_t i = 0; i < entry.cleaned.lines.size(); ++i) {
      const std::string& line = entry.cleaned.lines[i];
      std::size_t p = 0;
      while (p < line.size()) {
        if (!is_ident_char(line[p])) {
          ++p;
          continue;
        }
        std::size_t b = p;
        while (p < line.size() && is_ident_char(line[p])) ++p;
        entry.idents.emplace(line.substr(b, p - b), i + 1);
      }
    }
  }

  // Symbol index over headers; deprecated refinement needs the exported
  // name sets, so it runs as a second pass.
  for (const auto& [path, entry] : model.files) {
    if (entry.is_header) harvest_header(path, entry.cleaned, model.symbols);
  }
  for (const auto& [path, entry] : model.files) {
    if (entry.is_header) refine_deprecated(path, entry.cleaned, model.symbols);
  }

  // Telemetry schema list.
  for (const auto& [path, entry] : model.files) {
    harvest_telemetry_schema(path, entry.source, entry.cleaned, model);
  }

  // Transitive include closure (iterative DFS per file; the graph is tiny).
  for (const auto& [path, entry] : model.files) {
    std::set<std::string>& reach = model.closure[path];
    std::vector<std::string> stack = {path};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (!reach.insert(cur).second) continue;
      const auto it = model.files.find(cur);
      if (it == model.files.end()) continue;
      for (const IncludeEdge& e : it->second.includes) {
        if (reach.count(e.target) == 0) stack.push_back(e.target);
      }
    }
  }

  return model;
}

std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& inputs,
                                  const std::vector<std::string>& excludes,
                                  std::vector<std::string>& errors) {
  const fs::path root_path(root);
  std::vector<SourceFile> out;
  std::set<std::string> seen;

  const auto rel_path = [&](const fs::path& p) {
    std::error_code ec;
    fs::path rel = fs::relative(p, root_path, ec);
    if (ec || rel.empty()) rel = p;
    return rel.generic_string();
  };
  const auto excluded = [&](const std::string& rel) {
    for (const std::string& prefix : excludes) {
      if (starts_with(rel, prefix)) return true;
    }
    return false;
  };
  const auto has_source_extension = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
  };
  const auto load_one = [&](const fs::path& p, bool explicit_input) {
    const std::string rel = rel_path(p);
    if (excluded(rel) || seen.count(rel) != 0) return;
    std::ifstream in(p, std::ios::binary);
    if (!in.good()) {
      errors.push_back("cannot open " + p.generic_string());
      return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
      errors.push_back("read error on " + p.generic_string());
      return;
    }
    if (!explicit_input && !has_source_extension(p)) return;
    seen.insert(rel);
    out.push_back({rel, ss.str()});
  };

  for (const std::string& input : inputs) {
    const fs::path p(input);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> entries;
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          entries.push_back(entry.path());
        }
      }
      if (ec) {
        errors.push_back("cannot walk directory " + p.generic_string());
        continue;
      }
      std::sort(entries.begin(), entries.end());
      for (const fs::path& e : entries) load_one(e, false);
    } else if (fs::is_regular_file(p, ec)) {
      load_one(p, true);
    } else {
      errors.push_back("no such file or directory: " + p.generic_string());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

}  // namespace xh::lint
