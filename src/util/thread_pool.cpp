#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xh {
namespace {

/// Upper bound on chunks per lane: enough slack for load balancing without
/// drowning small inputs in scheduling overhead.
constexpr std::size_t kChunksPerLane = 4;

}  // namespace

ThreadPool::ThreadPool(std::size_t lanes) {
  if (lanes == 0) {
    lanes = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::chunk_count(std::size_t n, std::size_t grain) const {
  if (n == 0) return 0;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t by_grain = (n + grain - 1) / grain;
  return std::clamp<std::size_t>(by_grain, 1, lanes() * kChunksPerLane);
}

void ThreadPool::chunk_bounds(std::size_t n, std::size_t chunks,
                              std::size_t chunk, std::size_t* begin,
                              std::size_t* end) {
  *begin = chunk * n / chunks;
  *end = (chunk + 1) * n / chunks;
}

void ThreadPool::drain_job(Job& job, std::unique_lock<std::mutex>& lock) {
  while (job.next < job.chunks) {
    const std::size_t chunk = job.next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      std::size_t begin = 0;
      std::size_t end = 0;
      chunk_bounds(job.n, job.chunks, chunk, &begin, &end);
      (*job.fn)(chunk, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !job.error) job.error = error;
    if (++job.done == job.chunks) done_cv_.notify_all();
  }
}

void ThreadPool::run_one_task(std::unique_lock<std::mutex>& lock) {
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop_front();
  ++tasks_active_;
  lock.unlock();
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  --tasks_active_;
  if (error && !task_error_) task_error_ = error;
  if (tasks_.empty() && tasks_active_ == 0) done_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::size_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation) ||
             !tasks_.empty();
    });
    if (stop_) return;
    if (job_ != nullptr && generation_ != seen_generation) {
      seen_generation = generation_;
      drain_job(*job_, lock);
      continue;
    }
    if (!tasks_.empty()) run_one_task(lock);
  }
}

void ThreadPool::post(std::function<void()> task) {
  XH_REQUIRE(task != nullptr, "ThreadPool::post requires a callable task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    XH_ASSERT(!stop_, "ThreadPool::post after shutdown began");
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (!tasks_.empty()) run_one_task(lock);
    if (tasks_active_ == 0) break;
    done_cv_.wait(lock,
                  [&] { return !tasks_.empty() || tasks_active_ == 0; });
  }
  if (task_error_) {
    std::exception_ptr error = task_error_;
    task_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::parallel_chunks(std::size_t n, std::size_t grain,
                                 const ChunkFn& fn) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  if (chunks == 1 || workers_.empty()) {
    // Serial fast path: no locking, no handoff.
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t begin = 0;
      std::size_t end = 0;
      chunk_bounds(n, chunks, c, &begin, &end);
      fn(c, begin, end);
    }
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunks = chunks;
  std::unique_lock<std::mutex> lock(mu_);
  XH_ASSERT(job_ == nullptr, "ThreadPool::parallel_chunks is not reentrant");
  job_ = &job;
  ++generation_;
  work_cv_.notify_all();
  drain_job(job, lock);  // the caller is a lane too
  done_cv_.wait(lock, [&] { return job.done == job.chunks; });
  job_ = nullptr;
  lock.unlock();
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace xh
