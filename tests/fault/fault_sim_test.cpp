#include "fault/fault_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"

namespace xh {
namespace {

// q captures AND(a, b); s-a-0 at g detectable by a=b=1 only.
const char* kTiny =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n";

std::vector<TestPattern> all_pi_patterns(const Netlist& nl,
                                         const ScanPlan& plan) {
  std::vector<TestPattern> out;
  const std::size_t n = nl.inputs().size();
  for (std::size_t bits = 0; bits < (1u << n); ++bits) {
    TestPattern p;
    for (std::size_t i = 0; i < n; ++i) {
      p.pi.push_back((bits >> i) & 1 ? Lv::k1 : Lv::k0);
    }
    p.scan_in.assign(plan.geometry().num_cells(), Lv::k0);
    out.push_back(p);
  }
  return out;
}

TEST(FaultSim, DetectsStuckAtWithExhaustivePatterns) {
  const Netlist nl = read_bench_string(kTiny);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  FaultSimulator fsim(nl, plan);
  const auto patterns = all_pi_patterns(nl, plan);
  const auto faults = enumerate_faults(nl);
  const FaultSimResult r = fsim.run(patterns, faults);
  EXPECT_EQ(r.num_detected, faults.size()) << "AND cone is fully testable";
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(FaultSim, FirstPatternIsTheEarliestDetector) {
  const Netlist nl = read_bench_string(kTiny);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  FaultSimulator fsim(nl, plan);
  const auto patterns = all_pi_patterns(nl, plan);  // 00,10,01,11
  const StuckFault g_sa0{nl.find("g"), false};
  const FaultSimResult r = fsim.run(patterns, {g_sa0});
  ASSERT_TRUE(r.detected[0]);
  EXPECT_EQ(r.first_pattern[0], 3u) << "only a=b=1 excites g s-a-0";
}

TEST(FaultSim, XBlocksDetection) {
  // The AND output is XORed with an unscanned flop: every capture is X, so
  // nothing is ever detected even though the fault propagates electrically.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nu = NDFF(a)\n"
      "g = AND(a, b)\nd = XOR(g, u)\nq = DFF(d)\n");
  const ScanPlan plan = ScanPlan::build(nl, 1);
  FaultSimulator fsim(nl, plan);
  const auto patterns = all_pi_patterns(nl, plan);
  const StuckFault g_sa0{nl.find("g"), false};
  const FaultSimResult r = fsim.run(patterns, {g_sa0});
  EXPECT_FALSE(r.detected[0]) << "X-corrupted capture cannot detect";
}

TEST(FaultSim, DetectsMatchesRunPerPattern) {
  GeneratorConfig cfg;
  cfg.seed = 21;
  cfg.num_gates = 60;
  cfg.num_dffs = 8;
  const Netlist nl = generate_circuit(cfg);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  FaultSimulator fsim(nl, plan);
  Rng rng(8);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 12; ++i) patterns.push_back(random_pattern(nl, plan, rng));
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  const StuckFault probe = faults[faults.size() / 2];
  const auto per_pattern = fsim.detects(patterns, probe);
  const FaultSimResult r = fsim.run(patterns, {probe});
  bool any = false;
  std::size_t first = 0;
  for (std::size_t p = 0; p < per_pattern.size(); ++p) {
    if (per_pattern[p]) {
      any = true;
      first = p;
      break;
    }
  }
  EXPECT_EQ(r.detected[0], any);
  if (any) {
    EXPECT_EQ(r.first_pattern[0], first);
  }
}

TEST(FaultSim, ObservationFilterRemovesDetections) {
  const Netlist nl = read_bench_string(kTiny);
  const ScanPlan plan = ScanPlan::build(nl, 1);
  FaultSimulator fsim(nl, plan);
  const auto patterns = all_pi_patterns(nl, plan);
  const StuckFault g_sa0{nl.find("g"), false};
  // Blind the only observation cell.
  const auto blind = [](std::size_t, std::size_t) { return false; };
  const FaultSimResult r = fsim.run(patterns, {g_sa0}, blind);
  EXPECT_FALSE(r.detected[0]);
}

TEST(FaultSim, PartitionMaskFilterSemantics) {
  // 2 patterns, 2 partitions; cell 0 masked in partition of pattern 0 only.
  BitVec part0(2);
  part0.set(0);
  BitVec part1(2);
  part1.set(1);
  BitVec mask0(4);
  mask0.set(0);
  const BitVec mask1(4);
  const auto filter =
      observe_with_partition_masks({part0, part1}, {mask0, mask1});
  EXPECT_FALSE(filter(0, 0));
  EXPECT_TRUE(filter(0, 1));
  EXPECT_TRUE(filter(1, 0));
  EXPECT_TRUE(filter(2, 0)) << "uncovered pattern fully observable";
}

}  // namespace
}  // namespace xh
