#include "core/legacy.hpp"

namespace fixture {

int drive(int v) {
  LegacyCfg cfg;
  return run_thing(cfg.knobs + v) + old_entry(v);
}

}  // namespace fixture
