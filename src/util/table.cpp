#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace xh {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  XH_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  XH_REQUIRE(row.size() <= header_.size(), "row has more cells than header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string TextTable::millions(double value) {
  return num(value / 1e6, 2) + "M";
}

}  // namespace xh
