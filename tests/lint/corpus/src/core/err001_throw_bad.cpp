// corpus: XH-ERR-001 must fire on a bare throw inside src/core/.
#include <stdexcept>

void fail(int rc) {
  if (rc != 0) throw std::runtime_error("engine failure");
}
