#include "baseline/superset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"
#include "misr/accounting.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

TEST(Superset, GroupsCoverAllPatternsOnce) {
  SupersetConfig cfg;
  cfg.misr = {10, 2};
  const SupersetResult r =
      superset_x_canceling(paper_example_x_matrix(), cfg);
  std::vector<bool> seen(8, false);
  for (const auto& g : r.groups) {
    for (const std::size_t p : g.patterns) {
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Superset, ZeroGrowthKeepsIdenticalPatternsTogetherOnly) {
  SupersetConfig cfg;
  cfg.misr = {10, 2};
  cfg.max_growth = 0.0;
  const SupersetResult r =
      superset_x_canceling(paper_example_x_matrix(), cfg);
  // A new pattern joins only if it adds no new X location; consecutive
  // identical-or-subset X-sets merge.
  for (const auto& g : r.groups) {
    EXPECT_GE(g.patterns.size(), 1u);
  }
  // No observability may be lost beyond subset slack when growth is zero.
  for (const auto& g : r.groups) {
    EXPECT_EQ(g.lost_observations,
              g.superset_x * g.patterns.size() -
                  [&] {
                    std::size_t sum = 0;
                    const XMatrix xm = paper_example_x_matrix();
                    for (const std::size_t p : g.patterns) {
                      for (const std::size_t cell : xm.x_cells()) {
                        if (xm.is_x(cell, p)) ++sum;
                      }
                    }
                    return sum;
                  }());
  }
}

TEST(Superset, InfiniteGrowthMakesOneGroup) {
  SupersetConfig cfg;
  cfg.misr = {10, 2};
  cfg.max_growth = 1e9;
  const SupersetResult r =
      superset_x_canceling(paper_example_x_matrix(), cfg);
  ASSERT_EQ(r.groups.size(), 1u);
  // Union of all X locations = 7 X-capturing cells.
  EXPECT_EQ(r.groups[0].superset_x, 7u);
  // Control bits: one schedule for the whole set.
  EXPECT_DOUBLE_EQ(r.control_bits,
                   x_canceling_only_bits(cfg.misr, 7));
  // Lost observations = 7·8 − 28 = 28 deterministic bits sacrificed.
  EXPECT_EQ(r.lost_observations, 28u);
}

TEST(Superset, ControlBitsVsLostObservationsTradeoff) {
  // Growing the merge budget must not increase control bits, and must not
  // decrease lost observations.
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.06));
  SupersetConfig tight;
  tight.misr = {32, 7};
  tight.max_growth = 0.05;
  SupersetConfig loose = tight;
  loose.max_growth = 2.0;
  const SupersetResult a = superset_x_canceling(xm, tight);
  const SupersetResult b = superset_x_canceling(xm, loose);
  EXPECT_LE(b.control_bits, a.control_bits);
  EXPECT_GE(b.lost_observations, a.lost_observations);
  EXPECT_GE(a.groups.size(), b.groups.size());
}

TEST(Superset, RejectsBadConfig) {
  SupersetConfig cfg;
  cfg.misr = {10, 2};
  cfg.max_growth = -0.1;
  EXPECT_THROW(superset_x_canceling(paper_example_x_matrix(), cfg),
               std::invalid_argument);
}

TEST(Superset, HybridBeatsSupersetOnClusteredWorkloads) {
  // The paper's pitch versus [17,18]: on strongly inter-correlated X's the
  // partitioning hybrid reduces control data without losing observations.
  const XMatrix xm =
      generate_workload(scaled_profile(ckt_b_profile(), 0.06));
  SupersetConfig scfg;
  scfg.misr = {32, 7};
  scfg.max_growth = 0.25;
  const SupersetResult superset = superset_x_canceling(xm, scfg);
  EXPECT_GT(superset.lost_observations, 0u)
      << "superset merging sacrifices observability";
}

}  // namespace
}  // namespace xh
