#include "service/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/bitvec.hpp"

namespace xh {
namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[v & 0xf]);
    v >>= 4;
  } while (v != 0);
  return out;
}

bool parse_hex_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

bool parse_dec_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}

/// Cursor over the document's lines with uniform failure reporting.
struct LineReader {
  std::vector<std::string> lines;
  std::size_t next = 0;
  Diagnostics* diags = nullptr;
  bool failed = false;

  bool fail(const std::string& message) {
    failed = true;
    diag_report(diags, DiagSeverity::kError, DiagKind::kCheckpointCorrupt,
                "xh-ckpt line " + std::to_string(next), message);
    return false;
  }

  /// Next line split into tokens; requires the tag and exact arity.
  bool take(const std::string& tag, std::size_t arity,
            std::vector<std::string>* tokens) {
    if (next >= lines.size()) return fail("truncated: expected '" + tag + "'");
    *tokens = split_tokens(lines[next]);
    ++next;
    if (tokens->empty() || (*tokens)[0] != tag) {
      return fail("expected '" + tag + "' record");
    }
    const std::size_t args = tokens->size() - 1;
    if (args != arity) {
      return fail("'" + tag + "' field count " + std::to_string(args) +
                  " != " + std::to_string(arity));
    }
    return true;
  }

  bool dec(const std::string& text, std::uint64_t* out) {
    return parse_dec_u64(text, out) || fail("bad integer '" + text + "'");
  }
  bool hex(const std::string& text, std::uint64_t* out) {
    return parse_hex_u64(text, out) || fail("bad hex field '" + text + "'");
  }
  bool flag(const std::string& text, bool* out) {
    if (text != "0" && text != "1") return fail("bad flag '" + text + "'");
    *out = text == "1";
    return true;
  }
};

}  // namespace

std::string checkpoint_to_string(const ServiceCheckpoint& ckpt) {
  std::ostringstream os;
  os << "xh-ckpt v1\n";
  os << "geometry " << ckpt.geometry.num_chains << ' '
     << ckpt.geometry.chain_length << ' ' << ckpt.num_patterns << ' '
     << ckpt.total_x << '\n';
  const PartitionerConfig& cfg = ckpt.config;
  os << "config " << cfg.misr.size << ' ' << cfg.misr.q << ' '
     << (cfg.stop_on_cost_increase ? 1 : 0) << ' ' << cfg.max_rounds << ' '
     << (cfg.allow_singleton_groups ? 1 : 0) << ' '
     << (cfg.cell_choice == SplitCellChoice::kRandom ? 1 : 0) << ' '
     << cfg.seed << '\n';
  os << "store " << ckpt.backend << '\n';
  // The isa line is optional in the grammar (pre-kernel-layer checkpoints
  // lack it), so an empty field is simply not written rather than producing
  // an unparseable zero-arity record.
  if (!ckpt.isa.empty()) os << "isa " << ckpt.isa << '\n';
  os << "state " << ckpt.snapshot.round << ' '
     << (ckpt.snapshot.done ? 1 : 0) << '\n';
  os << "rng";
  for (const std::uint64_t lane : ckpt.snapshot.rng_state) {
    os << ' ' << to_hex(lane);
  }
  os << '\n';
  os << "parts " << ckpt.snapshot.partitions.size() << '\n';
  for (const BitVec& patterns : ckpt.snapshot.partitions) {
    os << "part";
    for (std::size_t w = 0; w < patterns.word_count(); ++w) {
      os << ' ' << to_hex(patterns.word(w));
    }
    os << '\n';
  }
  os << "history " << ckpt.snapshot.history.size() << '\n';
  for (const PartitionRound& r : ckpt.snapshot.history) {
    os << "hist " << r.round << ' ' << r.num_partitions << ' ' << r.masked_x
       << ' ' << r.leaked_x << ' ' << r.split_cell << ' '
       << (r.accepted ? 1 : 0) << ' '
       << to_hex(std::bit_cast<std::uint64_t>(r.total_bits)) << '\n';
  }
  std::string body = os.str();
  body += "end " + to_hex(fnv1a64(body)) + "\n";
  return body;
}

std::optional<ServiceCheckpoint> checkpoint_from_string(
    const std::string& text, Diagnostics* diags) {
  // Separate the checksum trailer from the hashed body before anything
  // else: a truncated or appended-to file must die here, not confuse the
  // structural parse below.
  const std::size_t end_pos = text.rfind("\nend ");
  if (!text.starts_with("xh-ckpt v1\n") || end_pos == std::string::npos) {
    diag_report(diags, DiagSeverity::kError, DiagKind::kCheckpointCorrupt,
                "xh-ckpt", "missing xh-ckpt v1 header or end trailer");
    return std::nullopt;
  }
  const std::string body = text.substr(0, end_pos + 1);
  std::vector<std::string> trailer =
      split_tokens(text.substr(end_pos + 1));
  std::uint64_t stored_sum = 0;
  if (trailer.size() != 2 || trailer[0] != "end" ||
      !parse_hex_u64(trailer[1], &stored_sum) ||
      stored_sum != fnv1a64(body)) {
    diag_report(diags, DiagSeverity::kError, DiagKind::kCheckpointCorrupt,
                "xh-ckpt", "checksum mismatch: file is truncated or garbled");
    return std::nullopt;
  }

  LineReader in;
  in.diags = diags;
  std::istringstream body_is(body);
  for (std::string line; std::getline(body_is, line);) {
    in.lines.push_back(std::move(line));
  }

  ServiceCheckpoint ckpt;
  std::vector<std::string> t;
  std::uint64_t v = 0;
  if (!in.take("xh-ckpt", 1, &t) || t[1] != "v1") {
    if (!in.failed) (void)in.fail("unsupported version '" + t[1] + "'");
    return std::nullopt;
  }
  if (!in.take("geometry", 4, &t)) return std::nullopt;
  if (!in.dec(t[1], &v)) return std::nullopt;
  ckpt.geometry.num_chains = static_cast<std::size_t>(v);
  if (!in.dec(t[2], &v)) return std::nullopt;
  ckpt.geometry.chain_length = static_cast<std::size_t>(v);
  if (!in.dec(t[3], &v)) return std::nullopt;
  ckpt.num_patterns = static_cast<std::size_t>(v);
  if (!in.dec(t[4], &ckpt.total_x)) return std::nullopt;
  if (ckpt.num_patterns == 0) {
    (void)in.fail("checkpoint with zero patterns");
    return std::nullopt;
  }

  if (!in.take("config", 7, &t)) return std::nullopt;
  if (!in.dec(t[1], &v)) return std::nullopt;
  ckpt.config.misr.size = static_cast<std::size_t>(v);
  if (!in.dec(t[2], &v)) return std::nullopt;
  ckpt.config.misr.q = static_cast<std::size_t>(v);
  if (!in.flag(t[3], &ckpt.config.stop_on_cost_increase)) return std::nullopt;
  if (!in.dec(t[4], &v)) return std::nullopt;
  ckpt.config.max_rounds = static_cast<std::size_t>(v);
  if (!in.flag(t[5], &ckpt.config.allow_singleton_groups)) return std::nullopt;
  bool random_choice = false;
  if (!in.flag(t[6], &random_choice)) return std::nullopt;
  ckpt.config.cell_choice = random_choice ? SplitCellChoice::kRandom
                                          : SplitCellChoice::kLowestIndex;
  if (!in.dec(t[7], &ckpt.config.seed)) return std::nullopt;

  if (!in.take("store", 1, &t)) return std::nullopt;
  ckpt.backend = t[1];

  // Optional isa record: peek before committing, since documents written
  // before the kernel layer go straight from "store" to "state".
  if (in.next < in.lines.size()) {
    const std::vector<std::string> peek = split_tokens(in.lines[in.next]);
    if (!peek.empty() && peek[0] == "isa") {
      if (!in.take("isa", 1, &t)) return std::nullopt;
      ckpt.isa = t[1];
    }
  }

  if (!in.take("state", 2, &t)) return std::nullopt;
  if (!in.dec(t[1], &v)) return std::nullopt;
  ckpt.snapshot.round = static_cast<std::size_t>(v);
  if (!in.flag(t[2], &ckpt.snapshot.done)) return std::nullopt;

  if (!in.take("rng", 4, &t)) return std::nullopt;
  for (std::size_t i = 0; i < 4; ++i) {
    if (!in.hex(t[1 + i], &ckpt.snapshot.rng_state[i])) return std::nullopt;
  }

  if (!in.take("parts", 1, &t)) return std::nullopt;
  std::uint64_t part_count = 0;
  if (!in.dec(t[1], &part_count)) return std::nullopt;
  const std::size_t words = (ckpt.num_patterns + 63) / 64;
  if (part_count == 0 || part_count > ckpt.num_patterns) {
    (void)in.fail("implausible partition count " + std::to_string(part_count));
    return std::nullopt;
  }
  ckpt.snapshot.partitions.reserve(static_cast<std::size_t>(part_count));
  for (std::uint64_t p = 0; p < part_count; ++p) {
    if (!in.take("part", words, &t)) return std::nullopt;
    BitVec patterns(ckpt.num_patterns);
    for (std::size_t w = 0; w < words; ++w) {
      if (!in.hex(t[1 + w], &v)) return std::nullopt;
      patterns.set_word(w, v);
      if (patterns.word(w) != v) {
        (void)in.fail("partition word has bits beyond the pattern count");
        return std::nullopt;
      }
    }
    ckpt.snapshot.partitions.push_back(std::move(patterns));
  }

  if (!in.take("history", 1, &t)) return std::nullopt;
  std::uint64_t hist_count = 0;
  if (!in.dec(t[1], &hist_count)) return std::nullopt;
  if (hist_count == 0 || hist_count > ckpt.num_patterns + 1) {
    (void)in.fail("implausible history length " + std::to_string(hist_count));
    return std::nullopt;
  }
  ckpt.snapshot.history.reserve(static_cast<std::size_t>(hist_count));
  for (std::uint64_t h = 0; h < hist_count; ++h) {
    if (!in.take("hist", 7, &t)) return std::nullopt;
    PartitionRound r;
    if (!in.dec(t[1], &v)) return std::nullopt;
    r.round = static_cast<std::size_t>(v);
    if (!in.dec(t[2], &v)) return std::nullopt;
    r.num_partitions = static_cast<std::size_t>(v);
    if (!in.dec(t[3], &r.masked_x)) return std::nullopt;
    if (!in.dec(t[4], &r.leaked_x)) return std::nullopt;
    if (!in.dec(t[5], &v)) return std::nullopt;
    r.split_cell = static_cast<std::size_t>(v);
    if (!in.flag(t[6], &r.accepted)) return std::nullopt;
    if (!in.hex(t[7], &v)) return std::nullopt;
    r.total_bits = std::bit_cast<double>(v);
    ckpt.snapshot.history.push_back(r);
  }

  if (in.next != in.lines.size()) {
    (void)in.fail("trailing garbage after the history block");
    return std::nullopt;
  }
  return ckpt;
}

bool save_checkpoint(const ServiceCheckpoint& ckpt, const std::string& path,
                     Diagnostics* diags) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      diag_report(diags, DiagSeverity::kError, DiagKind::kStreamFailure, tmp,
                  "cannot open checkpoint temp file for writing");
      return false;
    }
    out << checkpoint_to_string(ckpt);
    out.flush();
    if (!out) {
      diag_report(diags, DiagSeverity::kError, DiagKind::kStreamFailure, tmp,
                  "short write while saving checkpoint");
      std::remove(tmp.c_str());
      return false;
    }
  }
  // POSIX rename is atomic within a filesystem: readers observe either the
  // old complete file or the new complete file, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    diag_report(diags, DiagSeverity::kError, DiagKind::kStreamFailure, path,
                "rename into place failed");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<ServiceCheckpoint> load_checkpoint(const std::string& path,
                                                 Diagnostics* diags) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // no checkpoint yet: the normal first run
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    diag_report(diags, DiagSeverity::kError, DiagKind::kStreamFailure, path,
                "I/O error while reading checkpoint");
    return std::nullopt;
  }
  return checkpoint_from_string(buffer.str(), diags);
}

bool checkpoint_matches(const ServiceCheckpoint& ckpt,
                        const ScanGeometry& geometry,
                        std::size_t num_patterns, std::uint64_t total_x,
                        const PartitionerConfig& config,
                        const std::string& backend, const std::string& isa,
                        std::string* why) {
  const auto mismatch = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (!(ckpt.geometry == geometry)) return mismatch("scan geometry differs");
  if (ckpt.num_patterns != num_patterns) {
    return mismatch("pattern count differs");
  }
  if (ckpt.total_x != total_x) return mismatch("total X population differs");
  const PartitionerConfig& c = ckpt.config;
  if (c.misr.size != config.misr.size || c.misr.q != config.misr.q) {
    return mismatch("MISR configuration differs");
  }
  if (c.stop_on_cost_increase != config.stop_on_cost_increase ||
      c.max_rounds != config.max_rounds ||
      c.allow_singleton_groups != config.allow_singleton_groups ||
      c.cell_choice != config.cell_choice || c.seed != config.seed) {
    return mismatch("partitioner configuration differs");
  }
  if (ckpt.backend != backend) return mismatch("storage backend differs");
  if (!ckpt.isa.empty() && ckpt.isa != isa) {
    return mismatch("kernel ISA differs");
  }
  return true;
}

}  // namespace xh
