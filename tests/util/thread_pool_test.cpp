#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xh {
namespace {

TEST(ThreadPool, ZeroLanesSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.lanes(), 1u);
}

TEST(ThreadPool, ChunkCountIsDeterministicAndBounded) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.chunk_count(0, 100), 0u);
  EXPECT_EQ(pool.chunk_count(1, 100), 1u);
  EXPECT_EQ(pool.chunk_count(100, 100), 1u);
  EXPECT_EQ(pool.chunk_count(101, 100), 2u);
  // Large inputs are capped at a fixed multiple of the lane count, so the
  // chunk layout depends only on (n, grain, lanes) — never on timing.
  EXPECT_EQ(pool.chunk_count(1'000'000, 1), pool.lanes() * 4);
  EXPECT_EQ(pool.chunk_count(1'000'000, 1), pool.chunk_count(1'000'000, 1));
}

// Every index in [0, n) is visited exactly once, chunks tile the range in
// order, and this holds for awkward n / lane combinations.
TEST(ThreadPool, ChunksCoverEveryIndexExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(lanes);
    for (const std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u, 4097u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_chunks(n, 16, [&](std::size_t chunk, std::size_t begin,
                                      std::size_t end) {
        EXPECT_LE(begin, end);
        EXPECT_LT(chunk, pool.chunk_count(n, 16));
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " lanes " << lanes;
      }
    }
  }
}

TEST(ThreadPool, FewerItemsThanLanesStillCoversAll) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_chunks(3, 1, [&](std::size_t, std::size_t begin,
                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(hits[0].load() + hits[1].load() + hits[2].load(), 3);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_chunks(10'000, 1,
                           [](std::size_t chunk, std::size_t, std::size_t) {
                             if (chunk == 2) {
                               throw std::runtime_error("chunk failure");
                             }
                           }),
      std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<std::size_t> total{0};
  pool.parallel_chunks(100, 10, [&](std::size_t, std::size_t begin,
                                    std::size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100u);
}

// Reuse after a drained (exceptional) job, alternating failing and clean
// jobs so a stale Job pointer, unreset chunk cursor, or leaked
// exception_ptr from the previous drain would surface immediately.
TEST(ThreadPool, ReuseAfterDrainAlternatingFailures) {
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    ThreadPool pool(lanes);
    for (int round = 0; round < 8; ++round) {
      EXPECT_THROW(
          pool.parallel_chunks(
              1'000, 1,
              [](std::size_t chunk, std::size_t, std::size_t) {
                if (chunk % 2 == 0) throw std::runtime_error("boom");
              }),
          std::runtime_error)
          << "lanes " << lanes << " round " << round;
      std::vector<std::atomic<int>> hits(97);
      pool.parallel_chunks(hits.size(), 4,
                           [&](std::size_t, std::size_t begin,
                               std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               hits[i].fetch_add(1,
                                                 std::memory_order_relaxed);
                             }
                           });
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "lanes " << lanes << " round " << round << " index " << i;
      }
    }
  }
}

// A zero-size job is a no-op (the chunk function must never run) and must
// leave the pool reusable.
TEST(ThreadPool, EmptyJobThenReuse) {
  ThreadPool pool(4);
  pool.parallel_chunks(0, 16, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "chunk function ran for n == 0";
  });
  std::atomic<std::size_t> total{0};
  pool.parallel_chunks(64, 8, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 64u);
}

// The single-lane degenerate pool (serial loop, no workers) follows the
// same drain-and-reuse contract as the threaded configurations.
TEST(ThreadPool, SingleLaneExceptionThenReuse) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  EXPECT_THROW(pool.parallel_chunks(
                   10, 1,
                   [](std::size_t chunk, std::size_t, std::size_t) {
                     if (chunk == 0) throw std::logic_error("first chunk");
                   }),
               std::logic_error);
  std::size_t visited = 0;
  pool.parallel_chunks(10, 1, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    visited += end - begin;  // single lane: no atomics needed
  });
  EXPECT_EQ(visited, 10u);
}

// Satellite regression: a submitted task that throws must not wedge
// drain() or shutdown — the exception is captured and rethrown on the
// drain() caller, and the pool stays fully usable afterwards.
TEST(ThreadPool, ThrowingTaskSurfacesAtDrainAndPoolSurvives) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  pool.post([&] { ran.fetch_add(1); });
  pool.post([&] { throw std::runtime_error("task boom"); });
  pool.post([&] { ran.fetch_add(1); });
  EXPECT_THROW(pool.drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);  // the throwing task never skipped its peers

  // The error was consumed: a clean batch drains cleanly and the
  // fork-join path still works on the same workers.
  pool.post([&] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 3);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_chunks(64, 1, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 64u);
}

// With no workers at all, drain() itself executes the queue — including
// the throwing task — and still rethrows exactly once.
TEST(ThreadPool, SingleLaneSubmitDrainRunsOnCaller) {
  ThreadPool pool(1);
  int ran = 0;
  pool.post([&] { ++ran; });
  pool.post([] { throw std::runtime_error("serial boom"); });
  pool.post([&] { ++ran; });
  EXPECT_EQ(pool.pending_tasks(), 3u);  // nothing runs before drain
  EXPECT_THROW(pool.drain(), std::runtime_error);
  EXPECT_EQ(ran, 2);
  pool.drain();  // error cleared; empty drain is a no-op
}

// Destructor with queued-but-unstarted tasks must not hang or run them.
TEST(ThreadPool, DestructorDiscardsUnstartedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);  // no workers: submitted tasks can never start
    for (int i = 0; i < 8; ++i) pool.post([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, ManyTasksAllExecuteAcrossWorkers) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) pool.post([&] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::uint64_t> sum{0};
    const std::size_t n = 257;
    pool.parallel_chunks(n, 8, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
  }
}

}  // namespace
}  // namespace xh
