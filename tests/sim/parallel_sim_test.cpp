#include "sim/parallel_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"
#include "sim/comb_sim.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

TEST(LvPlane, SetGetRoundTrip) {
  LvPlane p;
  p.set(0, Lv::k1);
  p.set(1, Lv::kX);
  p.set(63, Lv::kZ);
  EXPECT_EQ(p.get(0), Lv::k1);
  EXPECT_EQ(p.get(1), Lv::kX);
  EXPECT_EQ(p.get(2), Lv::k0);
  EXPECT_EQ(p.get(63), Lv::kZ);
  p.set(1, Lv::k0);
  EXPECT_EQ(p.get(1), Lv::k0);
}

TEST(LvPlane, SplatFillsAllLanes) {
  for (const Lv v : {Lv::k0, Lv::k1, Lv::kX, Lv::kZ}) {
    const LvPlane p = LvPlane::splat(v);
    EXPECT_EQ(p.get(0), v);
    EXPECT_EQ(p.get(31), v);
    EXPECT_EQ(p.get(63), v);
  }
}

TEST(LvPlane, SlotOutOfRangeThrows) {
  LvPlane p;
  EXPECT_THROW(p.set(64, Lv::k0), std::invalid_argument);
  EXPECT_THROW(p.get(64), std::invalid_argument);
}

// The defining property: every lane of ParallelSim matches CombSim for random
// circuits including X-sources, tri-state buses and unknown states.
class ParallelVsScalar : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelVsScalar, AllLanesMatchScalarReference) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.num_gates = 150;
  cfg.num_dffs = 12;
  cfg.num_buses = 3;
  cfg.nonscan_fraction = 0.25;
  const Netlist nl = generate_circuit(cfg);

  Rng rng(GetParam() * 7919 + 1);
  ParallelSim psim(nl);
  std::vector<std::vector<Lv>> pi_values(nl.inputs().size());
  std::vector<std::vector<Lv>> st_values(nl.dffs().size());

  const std::vector<Lv> choices = {Lv::k0, Lv::k1, Lv::kX};
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    LvPlane plane;
    for (std::size_t s = 0; s < 64; ++s) {
      const Lv v = choices[rng.below(3)];
      pi_values[i].push_back(v);
      plane.set(s, v);
    }
    psim.set_input(nl.inputs()[i], plane);
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    LvPlane plane;
    for (std::size_t s = 0; s < 64; ++s) {
      const Lv v = choices[rng.below(3)];
      st_values[i].push_back(v);
      plane.set(s, v);
    }
    psim.set_state(nl.dffs()[i], plane);
  }
  psim.evaluate();

  CombSim ssim(nl);
  for (std::size_t s = 0; s < 64; ++s) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      ssim.set_input(nl.inputs()[i], pi_values[i][s]);
    }
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      ssim.set_state(nl.dffs()[i], st_values[i][s]);
    }
    ssim.evaluate();
    for (GateId id = 0; id < nl.gate_count(); ++id) {
      ASSERT_EQ(psim.value(id, s), ssim.value(id))
          << "slot " << s << " gate " << nl.gate(id).name;
    }
    for (const GateId dff : nl.dffs()) {
      ASSERT_EQ(psim.next_state_plane(dff).get(s), ssim.next_state(dff))
          << "slot " << s << " dff " << nl.gate(dff).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVsScalar,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23));

TEST(ParallelSim, FaultInjectionMatchesScalar) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.num_gates = 80;
  const Netlist nl = generate_circuit(cfg);

  Rng rng(55);
  ParallelSim psim(nl);
  CombSim ssim(nl);
  std::vector<Lv> pi(nl.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    pi[i] = rng.chance(0.5) ? Lv::k1 : Lv::k0;
    psim.set_input(nl.inputs()[i], LvPlane::splat(pi[i]));
    ssim.set_input(nl.inputs()[i], pi[i]);
  }
  psim.set_all_state(Lv::k0);
  ssim.set_all_state(Lv::k0);

  const GateId victim = nl.topo_order()[nl.gate_count() / 2];
  psim.inject(ParallelSim::Fault{victim, Lv::k1});
  ssim.inject(CombSim::Fault{victim, Lv::k1});
  psim.evaluate();
  ssim.evaluate();
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    ASSERT_EQ(psim.value(id, 17), ssim.value(id)) << nl.gate(id).name;
  }
}

TEST(ParallelSim, ClockAdvancesState) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId ff = nl.add_dff(a, "ff");
  nl.mark_output(ff);
  nl.finalize();

  ParallelSim sim(nl);
  LvPlane in;
  in.set(0, Lv::k1);
  in.set(1, Lv::k0);
  in.set(2, Lv::kX);
  sim.set_input(a, in);
  sim.set_state(ff, LvPlane::splat(Lv::k0));
  sim.evaluate();
  EXPECT_EQ(sim.value(ff, 0), Lv::k0);
  sim.clock();
  sim.evaluate();
  EXPECT_EQ(sim.value(ff, 0), Lv::k1);
  EXPECT_EQ(sim.value(ff, 1), Lv::k0);
  EXPECT_EQ(sim.value(ff, 2), Lv::kX);
}

TEST(ParallelSim, ZAbsorbedAtDffInput) {
  // A disabled tristate feeds a DFF: the captured value is X, not Z.
  Netlist nl;
  const GateId en = nl.add_input("en");
  const GateId d = nl.add_input("d");
  const GateId t = nl.add_gate(GateType::kTristate, {en, d}, "t");
  const GateId ff = nl.add_dff(t, "ff");
  nl.mark_output(ff);
  nl.finalize();

  ParallelSim sim(nl);
  sim.set_input(en, LvPlane::splat(Lv::k0));
  sim.set_input(d, LvPlane::splat(Lv::k1));
  sim.set_state(ff, LvPlane::splat(Lv::k0));
  sim.evaluate();
  EXPECT_EQ(sim.value(t, 5), Lv::kZ);
  EXPECT_EQ(sim.next_state_plane(ff).get(5), Lv::kX);
}

}  // namespace
}  // namespace xh
