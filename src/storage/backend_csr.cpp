#include "storage/backend_csr.hpp"

#include "kernels/kernels.hpp"
#include "util/check.hpp"

namespace xh {

CsrStore::CsrStore(const XMatrix& xm)
    : geometry_(xm.geometry()),
      num_patterns_(xm.num_patterns()),
      total_x_(xm.total_x()),
      cells_(xm.x_cells()) {
  // BitVec packs 64 bits per word; every row shares one width.
  words_per_row_ = (num_patterns_ + 63) / 64;
  counts_.reserve(cells_.size());
  words_.reserve(cells_.size() * words_per_row_);
  for (const std::size_t cell : cells_) {
    const BitVec& pats = xm.patterns_of(cell);
    XH_ASSERT(pats.word_count() == words_per_row_,
              "XMatrix row width disagrees with pattern count");
    counts_.push_back(pats.count());
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      words_.push_back(pats.word(w));
    }
  }
}

std::size_t CsrStore::count_in(std::size_t row, const BitVec& patterns) const {
  note_count_in();
  // The partition engine's hottest probe: fused popcount(row & patterns)
  // through the dispatched kernel table (scalar reference / AVX2 / AVX-512).
  return kernels::active().and_count_words(
      row_words(row), patterns.word_data(), words_per_row_);
}

std::uint64_t CsrStore::hash_in(std::size_t row, const BitVec& patterns) const {
  note_hash_in();
  const std::uint64_t* words = row_words(row);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    h ^= words[w] & patterns.word(w);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void CsrStore::intersect_into(std::size_t row, const BitVec& patterns,
                              BitVec* out) const {
  note_intersect();
  out->resize(num_patterns_);
  // Tail-safe raw write: patterns' tail bits are zero, so the AND's are too.
  kernels::active().and_words_into(out->word_data(), row_words(row),
                                   patterns.word_data(), words_per_row_);
}

std::uint64_t CsrStore::resident_bytes() const {
  return static_cast<std::uint64_t>(cells_.size()) * sizeof(std::size_t) +
         static_cast<std::uint64_t>(counts_.size()) * sizeof(std::size_t) +
         static_cast<std::uint64_t>(words_.size()) * sizeof(std::uint64_t);
}

}  // namespace xh
