#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

// The classic ISCAS-89 s27 benchmark.
const char* kS27 = R"(
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
)";

TEST(BenchIo, ParsesS27) {
  const Netlist nl = read_bench_string(kS27, "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.gates, 10u);
  EXPECT_TRUE(nl.finalized());
}

TEST(BenchIo, HandlesForwardReferences) {
  // G9 uses G12 before G12 is defined.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(g9)\ng9 = NOT(g12)\ng12 = BUF(a)\n");
  EXPECT_EQ(nl.gate(nl.find("g9")).type, GateType::kNot);
}

TEST(BenchIo, SequentialFeedbackLoop) {
  // ff feeds logic that feeds ff — must parse.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n");
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(BenchIo, CombinationalCycleRejected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(x)\nx = NOT(y)\ny = NOT(x)\n"),
               std::invalid_argument);
}

TEST(BenchIo, UndefinedSignalRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(x)\nx = NOT(ghost)\n"),
               std::invalid_argument);
}

TEST(BenchIo, UndefinedOutputRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n"),
               std::invalid_argument);
}

TEST(BenchIo, DuplicateDefinitionRejected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUF(a)\n"),
               std::invalid_argument);
}

TEST(BenchIo, InputRedefinedAsGateRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"),
               std::invalid_argument);
}

TEST(BenchIo, MalformedLineRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nwhatever\n"),
               std::invalid_argument);
  EXPECT_THROW(read_bench_string("INPUT(a)\nx = NOT(\n"),
               std::invalid_argument);
  EXPECT_THROW(read_bench_string("INPUT(a)\nx = FROB(a)\n"),
               std::invalid_argument);
}

TEST(BenchIo, TrailingCommaRejected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b,)\n"),
               std::invalid_argument);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(x)\nx = NOT(,a)\n"),
               std::invalid_argument);
}

TEST(BenchIo, GarbageAfterCloseParenRejected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(x)\nx = NOT(a) junk\n"),
               std::invalid_argument);
}

TEST(BenchIo, EmptyFileRejected) {
  EXPECT_THROW(read_bench_string(""), std::invalid_argument);
  EXPECT_THROW(read_bench_string("\n\n"), std::invalid_argument);
  EXPECT_THROW(read_bench_string("# comments only\n# nothing else\n"),
               std::invalid_argument);
}

// Line numbers in semantic errors must point at real evidence: the line
// referencing an undefined signal, the second of two clashing declarations.
TEST(BenchIo, UndefinedSignalErrorNamesReferencingLine) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(x)\nx = NOT(ghost)\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(BenchIo, DuplicateInputErrorNamesItsLine) {
  try {
    read_bench_string("INPUT(a)\nINPUT(a)\nOUTPUT(x)\nx = NOT(a)\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(BenchIo, UndefinedOutputErrorNamesItsDeclaration) {
  // 'ghost' is declared on line 2; a later OUTPUT must not steal the blame.
  try {
    read_bench_string("INPUT(a)\nOUTPUT(ghost)\nOUTPUT(x)\nx = NOT(a)\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(BenchIo, ParseFailureRecordedAsDiagnostic) {
  Diagnostics diags;
  EXPECT_THROW(read_bench_string("INPUT(a)\nx = NOT(\n", "broken", &diags),
               std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kNetlistParseError), 1u);
  EXPECT_TRUE(diags.has_errors());
}

TEST(BenchIo, NdffExtensionMarksUnscanned) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = NDFF(a)\np = DFF(a)\n");
  EXPECT_EQ(nl.nonscan_dffs().size(), 1u);
  EXPECT_EQ(nl.scan_dffs().size(), 1u);
  EXPECT_FALSE(nl.gate(nl.find("q")).scanned);
}

TEST(BenchIo, TristateBusExtension) {
  const Netlist nl = read_bench_string(
      "INPUT(en)\nINPUT(d)\nOUTPUT(b)\n"
      "t1 = TRISTATE(en, d)\nt2 = TRISTATE(d, en)\nb = BUS(t1, t2)\n");
  EXPECT_EQ(nl.gate(nl.find("b")).type, GateType::kBus);
}

TEST(BenchIo, ConstantsAndAliases) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(x)\nc0 = CONST0()\nc1 = VDD()\n"
      "n = INV(a)\nbf = BUFF(a)\nx = AND(n, bf, c1)\n");
  EXPECT_EQ(nl.gate(nl.find("c0")).type, GateType::kConst0);
  EXPECT_EQ(nl.gate(nl.find("c1")).type, GateType::kConst1);
  EXPECT_EQ(nl.gate(nl.find("n")).type, GateType::kNot);
}

TEST(BenchIo, RoundTripS27) {
  const Netlist original = read_bench_string(kS27, "s27");
  const std::string text = write_bench_string(original);
  const Netlist reparsed = read_bench_string(text, "s27rt");
  EXPECT_EQ(original.gate_count(), reparsed.gate_count());
  EXPECT_EQ(original.inputs().size(), reparsed.inputs().size());
  EXPECT_EQ(original.outputs().size(), reparsed.outputs().size());
  EXPECT_EQ(original.dffs().size(), reparsed.dffs().size());
  // Same names resolve to gates of the same type.
  for (GateId id = 0; id < original.gate_count(); ++id) {
    const Gate& g = original.gate(id);
    const GateId rid = reparsed.find(g.name);
    ASSERT_NE(rid, kNoGate) << g.name;
    EXPECT_EQ(reparsed.gate(rid).type, g.type) << g.name;
  }
}

TEST(BenchIo, RoundTripPreservesNdffAndBus) {
  const char* text =
      "INPUT(en)\nINPUT(d)\nOUTPUT(b)\n"
      "t1 = TRISTATE(en, d)\nt2 = TRISTATE(d, en)\nb = BUS(t1, t2)\n"
      "q = NDFF(b)\n";
  const Netlist nl = read_bench_string(text);
  const Netlist rt = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(rt.nonscan_dffs().size(), 1u);
  EXPECT_EQ(rt.gate(rt.find("b")).type, GateType::kBus);
}

}  // namespace
}  // namespace xh
