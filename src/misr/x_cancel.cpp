#include "misr/x_cancel.hpp"

#include "gf2/matrix.hpp"
#include "misr/spatial_compactor.hpp"

namespace xh {

XCancelSession::XCancelSession(MisrConfig cfg)
    : cfg_(cfg),
      taps_(FeedbackPolynomial::primitive(cfg.size).taps()),
      concrete_(FeedbackPolynomial::primitive(cfg.size)) {
  cfg_.validate();
  concrete_.reset();
  xdep_.assign(cfg_.size, BitVec(cfg_.size * 4));
}

void XCancelSession::reset() {
  concrete_.reset();
  const std::size_t cap = xdep_.front().size();
  xdep_.assign(cfg_.size, BitVec(cap));
  segment_x_ = 0;
  result_ = {};
  finished_ = false;
}

void XCancelSession::shift(const std::vector<Lv>& slice) {
  XH_REQUIRE(!finished_, "session already finished; call reset()");
  XH_REQUIRE(slice.size() == cfg_.size, "slice width must equal MISR size");

  // Concrete step with X read as 0 — sound because extracted combinations
  // are X-independent, so the substituted value cancels out.
  BitVec input(cfg_.size);
  std::size_t x_in_slice = 0;
  for (std::size_t i = 0; i < cfg_.size; ++i) {
    XH_REQUIRE(slice[i] != Lv::kZ, "Z cannot be captured into the MISR");
    if (slice[i] == Lv::k1) input.set(i);
    if (slice[i] == Lv::kX) ++x_in_slice;
  }
  concrete_.step(input);

  // Symbolic step: dep' = A·dep, then inject fresh symbols for X inputs.
  const std::size_t cap = xdep_.front().size();
  if (segment_x_ + x_in_slice > cap) {
    const std::size_t grown = std::max(cap * 2, segment_x_ + x_in_slice);
    for (auto& row : xdep_) row.resize(grown);
  }
  std::vector<BitVec> next(cfg_.size);
  const BitVec feedback = xdep_[cfg_.size - 1];
  next[0] = feedback;
  for (std::size_t i = 1; i < cfg_.size; ++i) next[i] = std::move(xdep_[i - 1]);
  // Same feedback taps as the concrete LFSR so both sides stay in lock-step.
  for (const std::size_t t : taps_) next[t] ^= feedback;
  for (std::size_t i = 0; i < cfg_.size; ++i) {
    if (slice[i] == Lv::kX) next[i].flip(segment_x_++);
  }
  xdep_ = std::move(next);

  ++result_.shift_cycles;
  result_.total_x_seen += x_in_slice;

  if (segment_x_ >= cfg_.size - cfg_.q) extract(/*final_flush=*/false);
}

void XCancelSession::extract(bool final_flush) {
  if (segment_x_ == 0) {
    if (final_flush && result_.shift_cycles > 0) {
      // Fully deterministic signature: read all m bits directly. No stop,
      // no selective-XOR control data.
      for (std::size_t b = 0; b < cfg_.size; ++b) {
        SignatureBit sig;
        sig.stop_index = result_.stops;
        sig.combination = BitVec(cfg_.size);
        sig.combination.set(b);
        sig.value = concrete_.state().get(b);
        result_.signature.push_back(std::move(sig));
      }
    }
    return;
  }

  Gf2Matrix xmat(cfg_.size, segment_x_);
  for (std::size_t r = 0; r < cfg_.size; ++r) {
    for (std::size_t c = 0; c < segment_x_; ++c) {
      if (xdep_[r].get(c)) xmat.set(r, c);
    }
  }
  const auto combos = x_free_combinations(xmat);
  const std::size_t take = std::min(cfg_.q, combos.size());
  for (std::size_t k = 0; k < take; ++k) {
    // Defensive re-check of the X-freeness invariant.
    BitVec acc(segment_x_);
    for (const std::size_t r : combos[k].set_bits()) acc ^= xmat.row(r);
    XH_ASSERT(acc.none(), "extracted combination is not X-free");

    SignatureBit sig;
    sig.stop_index = result_.stops;
    sig.combination = combos[k];
    bool value = false;
    for (const std::size_t r : combos[k].set_bits()) {
      value ^= concrete_.state().get(r);
    }
    sig.value = value;
    result_.signature.push_back(std::move(sig));
  }

  ++result_.stops;
  result_.stop_cycles.push_back(result_.shift_cycles);
  concrete_.reset();
  const std::size_t cap = xdep_.front().size();
  xdep_.assign(cfg_.size, BitVec(cap));
  segment_x_ = 0;
}

const XCancelResult& XCancelSession::finish() {
  if (!finished_) {
    extract(/*final_flush=*/true);
    finished_ = true;
  }
  return result_;
}

XCancelResult run_x_canceling(const ResponseMatrix& response, MisrConfig cfg) {
  cfg.validate();
  XCancelSession session(cfg);
  const ScanGeometry& geo = response.geometry();
  SpatialCompactor compactor(geo.num_chains, cfg.size);
  std::vector<Lv> chain_values(geo.num_chains);
  for (std::size_t p = 0; p < response.num_patterns(); ++p) {
    for (std::size_t pos = 0; pos < geo.chain_length; ++pos) {
      for (std::size_t chain = 0; chain < geo.num_chains; ++chain) {
        chain_values[chain] = response.get(p, geo.cell_index(chain, pos));
      }
      session.shift(compactor.compact(chain_values));
    }
  }
  return session.finish();
}

}  // namespace xh
