// xh-ckpt/1 codec contract (DESIGN.md §11): a round-boundary checkpoint
// must round-trip bit-exactly (doubles travel as hex bit patterns), the
// trailing FNV checksum must catch truncation and garbling, structural
// defects must diagnose as kCheckpointCorrupt without ever throwing, and
// checkpoint_matches() must refuse to graft saved state onto a different
// matrix or configuration.
#include "service/checkpoint.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/partition_engine.hpp"
#include "engine/partition_types.hpp"
#include "inject/corruptor.hpp"
#include "response/geometry.hpp"
#include "response/x_matrix.hpp"
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"
#include "util/diagnostics.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

XMatrix small_workload(std::uint64_t seed) {
  WorkloadProfile profile;
  profile.name = "ckpt";
  profile.geometry = {6, 24};
  profile.num_patterns = 96;
  profile.x_density = 0.05;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 6;
  profile.cluster_patterns_mean = 8;
  profile.seed = seed;
  return generate_workload(profile);
}

PartitionerConfig small_config() {
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  return cfg;
}

/// Steps a fresh engine until @p rounds splits were accepted (or the
/// search stopped) and captures the state as a service checkpoint.
ServiceCheckpoint checkpoint_after(const XMatrix& xm,
                                   const PartitionerConfig& cfg,
                                   std::size_t rounds) {
  const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
  PartitionEngine engine(*store, cfg);
  std::size_t accepted = 0;
  while (accepted < rounds && !engine.finished()) {
    if (engine.step() == PartitionEngine::StepOutcome::kSplit) ++accepted;
  }
  ServiceCheckpoint ckpt;
  ckpt.geometry = xm.geometry();
  ckpt.num_patterns = xm.num_patterns();
  ckpt.total_x = xm.total_x();
  ckpt.config = cfg;
  ckpt.backend = store->backend_name();
  ckpt.isa = "scalar";  // fixed, so the codec tests are CPU-independent
  ckpt.snapshot = engine.snapshot();
  return ckpt;
}

void expect_same_checkpoint(const ServiceCheckpoint& want,
                            const ServiceCheckpoint& got) {
  EXPECT_TRUE(want.geometry == got.geometry);
  EXPECT_EQ(want.num_patterns, got.num_patterns);
  EXPECT_EQ(want.total_x, got.total_x);
  EXPECT_EQ(want.config.misr.size, got.config.misr.size);
  EXPECT_EQ(want.config.misr.q, got.config.misr.q);
  EXPECT_EQ(want.config.stop_on_cost_increase, got.config.stop_on_cost_increase);
  EXPECT_EQ(want.config.max_rounds, got.config.max_rounds);
  EXPECT_EQ(want.config.allow_singleton_groups, got.config.allow_singleton_groups);
  EXPECT_EQ(want.config.cell_choice, got.config.cell_choice);
  EXPECT_EQ(want.config.seed, got.config.seed);
  EXPECT_EQ(want.backend, got.backend);
  EXPECT_EQ(want.isa, got.isa);
  EXPECT_EQ(want.snapshot.round, got.snapshot.round);
  EXPECT_EQ(want.snapshot.done, got.snapshot.done);
  EXPECT_EQ(want.snapshot.rng_state, got.snapshot.rng_state);
  ASSERT_EQ(want.snapshot.partitions.size(), got.snapshot.partitions.size());
  for (std::size_t i = 0; i < want.snapshot.partitions.size(); ++i) {
    EXPECT_TRUE(want.snapshot.partitions[i] == got.snapshot.partitions[i])
        << "partition " << i;
  }
  ASSERT_EQ(want.snapshot.history.size(), got.snapshot.history.size());
  for (std::size_t i = 0; i < want.snapshot.history.size(); ++i) {
    SCOPED_TRACE("history " + std::to_string(i));
    EXPECT_EQ(want.snapshot.history[i].round, got.snapshot.history[i].round);
    EXPECT_EQ(want.snapshot.history[i].num_partitions,
              got.snapshot.history[i].num_partitions);
    EXPECT_EQ(want.snapshot.history[i].masked_x,
              got.snapshot.history[i].masked_x);
    EXPECT_EQ(want.snapshot.history[i].leaked_x,
              got.snapshot.history[i].leaked_x);
    // Bit-exact: the codec ships the double's bit pattern, not a decimal.
    EXPECT_EQ(want.snapshot.history[i].total_bits,
              got.snapshot.history[i].total_bits);
    EXPECT_EQ(want.snapshot.history[i].split_cell,
              got.snapshot.history[i].split_cell);
    EXPECT_EQ(want.snapshot.history[i].accepted,
              got.snapshot.history[i].accepted);
  }
}

/// Test-side twin of the codec's FNV-1a trailer, for re-signing tampered
/// bodies so structural checks are reached past the checksum gate.
std::string sign(const std::string& body) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : body) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  do {
    hex.insert(hex.begin(), kDigits[h & 0xf]);
    h >>= 4;
  } while (h != 0);
  return body + "end " + hex + "\n";
}

/// Serialized text with the checksum trailer stripped.
std::string body_of(const ServiceCheckpoint& ckpt) {
  const std::string text = checkpoint_to_string(ckpt);
  const std::size_t end_pos = text.rfind("\nend ");
  return text.substr(0, end_pos + 1);
}

/// Replaces the whole line starting with @p tag by @p replacement.
std::string swap_line(const std::string& body, const std::string& tag,
                      const std::string& replacement) {
  const std::size_t at = body.find(tag);
  EXPECT_NE(at, std::string::npos) << "no '" << tag << "' line";
  const std::size_t eol = body.find('\n', at);
  return body.substr(0, at) + replacement + body.substr(eol);
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const XMatrix xm = small_workload(11);
  for (const std::size_t rounds : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}, std::size_t{200}}) {
    SCOPED_TRACE("rounds " + std::to_string(rounds));
    const ServiceCheckpoint want = checkpoint_after(xm, small_config(), rounds);
    Diagnostics diags;
    const std::optional<ServiceCheckpoint> got =
        checkpoint_from_string(checkpoint_to_string(want), &diags);
    ASSERT_TRUE(got.has_value());
    EXPECT_FALSE(diags.has_errors());
    expect_same_checkpoint(want, *got);
  }
}

TEST(Checkpoint, RandomCellChoiceRngStateSurvivesTheTrip) {
  const XMatrix xm = small_workload(12);
  PartitionerConfig cfg = small_config();
  cfg.cell_choice = SplitCellChoice::kRandom;
  cfg.seed = 0xfeedULL;
  const ServiceCheckpoint want = checkpoint_after(xm, cfg, 2);
  const std::optional<ServiceCheckpoint> got =
      checkpoint_from_string(checkpoint_to_string(want));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(want.snapshot.rng_state, got->snapshot.rng_state);
}

TEST(Checkpoint, SaveAndLoadRoundTripThroughDisk) {
  const fs::path dir = fresh_dir("xh_ckpt_disk");
  const fs::path path = dir / "job.ckpt";
  const XMatrix xm = small_workload(13);
  const ServiceCheckpoint want = checkpoint_after(xm, small_config(), 2);

  Diagnostics diags;
  ASSERT_TRUE(save_checkpoint(want, path.string(), &diags));
  EXPECT_FALSE(diags.has_errors());
  // The atomic-rename protocol must not leave its temp file behind.
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));

  const std::optional<ServiceCheckpoint> got =
      load_checkpoint(path.string(), &diags);
  ASSERT_TRUE(got.has_value());
  expect_same_checkpoint(want, *got);

  // Overwriting with newer state replaces the file completely.
  const ServiceCheckpoint newer = checkpoint_after(xm, small_config(), 4);
  ASSERT_TRUE(save_checkpoint(newer, path.string(), &diags));
  const std::optional<ServiceCheckpoint> reloaded =
      load_checkpoint(path.string(), &diags);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(newer.snapshot.round, reloaded->snapshot.round);
}

TEST(Checkpoint, MissingFileIsACleanFirstRun) {
  Diagnostics diags;
  const std::optional<ServiceCheckpoint> got = load_checkpoint(
      (fs::path(::testing::TempDir()) / "xh_no_such.ckpt").string(), &diags);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(diags.empty()) << "a missing checkpoint is not an error";
}

TEST(Checkpoint, SaveIntoMissingDirectoryFailsWithDiagnostic) {
  const fs::path path =
      fs::path(::testing::TempDir()) / "xh_ckpt_void" / "nested" / "job.ckpt";
  const XMatrix xm = small_workload(14);
  const ServiceCheckpoint ckpt = checkpoint_after(xm, small_config(), 1);
  Diagnostics diags;
  EXPECT_FALSE(save_checkpoint(ckpt, path.string(), &diags));
  EXPECT_GT(diags.count(DiagKind::kStreamFailure), 0u);
}

TEST(Checkpoint, ChecksumCatchesTruncationAtEveryLine) {
  const XMatrix xm = small_workload(15);
  const std::string text =
      checkpoint_to_string(checkpoint_after(xm, small_config(), 3));

  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_GT(lines.size(), 5u);

  std::string prefix;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    prefix += lines[i] + "\n";
    SCOPED_TRACE("kept " + std::to_string(i + 1) + " lines");
    Diagnostics diags;
    EXPECT_FALSE(checkpoint_from_string(prefix, &diags).has_value());
    EXPECT_GT(diags.count(DiagKind::kCheckpointCorrupt), 0u);
  }
}

TEST(Checkpoint, ChecksumCatchesSeededCorruptorDamage) {
  const XMatrix xm = small_workload(16);
  const std::string text =
      checkpoint_to_string(checkpoint_after(xm, small_config(), 3));
  Corruptor chaos(0xc0ffee);
  const std::vector<std::string> attacks = {
      chaos.truncate_text(text, 0.8),
      chaos.truncate_text(text, 0.3),
      chaos.garble_text(text, 1),
      chaos.garble_text(text, 25),
      chaos.duplicate_line(text),
      text + "trailing junk\n",
  };
  for (std::size_t i = 0; i < attacks.size(); ++i) {
    SCOPED_TRACE("attack " + std::to_string(i));
    ASSERT_NE(attacks[i], text);
    Diagnostics diags;
    EXPECT_FALSE(checkpoint_from_string(attacks[i], &diags).has_value());
    EXPECT_GT(diags.count(DiagKind::kCheckpointCorrupt), 0u);
  }
}

TEST(Checkpoint, StructuralDefectsAreRejectedPastTheChecksum) {
  const XMatrix xm = small_workload(17);
  const std::string body =
      body_of(checkpoint_after(xm, small_config(), 2));

  // Each tampered body is re-signed, so only the structural validation can
  // reject it — the plausibility bounds, not the checksum, are on trial.
  const std::vector<std::string> tampered = {
      sign(swap_line(body, "xh-ckpt", "xh-ckpt v2")),
      sign(swap_line(body, "parts", "parts 0")),
      sign(swap_line(body, "parts", "parts 500000")),
      sign(swap_line(body, "history", "history 0")),
      sign(swap_line(body, "state", "state 1 maybe")),
      sign(swap_line(body, "rng", "rng dead beef")),
      sign(swap_line(body, "store", "store")),
      sign(swap_line(body, "isa", "isa")),
      sign(swap_line(body, "isa", "isa scalar scalar")),
      sign(body + "junk line\n"),
  };
  for (std::size_t i = 0; i < tampered.size(); ++i) {
    SCOPED_TRACE("tamper " + std::to_string(i));
    Diagnostics diags;
    EXPECT_FALSE(checkpoint_from_string(tampered[i], &diags).has_value());
    EXPECT_GT(diags.count(DiagKind::kCheckpointCorrupt), 0u);
  }
  // Control: the untampered re-signed body still parses.
  EXPECT_TRUE(checkpoint_from_string(sign(body)).has_value());
}

TEST(Checkpoint, MatchesOnlyTheExactRunIdentity) {
  const XMatrix xm = small_workload(18);
  const PartitionerConfig cfg = small_config();
  const ServiceCheckpoint ckpt = checkpoint_after(xm, cfg, 2);

  std::string why;
  EXPECT_TRUE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                 xm.total_x(), cfg, "csr", "scalar", &why))
      << why;

  ScanGeometry other_geometry{7, 24};
  EXPECT_FALSE(checkpoint_matches(ckpt, other_geometry, xm.num_patterns(),
                                  xm.total_x(), cfg, "csr", "scalar", &why));
  EXPECT_EQ(why, "scan geometry differs");

  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(),
                                  xm.num_patterns() + 1, xm.total_x(),
                                  cfg, "csr", "scalar", &why));
  EXPECT_EQ(why, "pattern count differs");

  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                  xm.total_x() + 1, cfg, "csr", "scalar",
                                  &why));
  EXPECT_EQ(why, "total X population differs");

  PartitionerConfig other_misr = cfg;
  other_misr.misr.q += 1;
  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                  xm.total_x(), other_misr, "csr", "scalar",
                                  &why));
  EXPECT_EQ(why, "MISR configuration differs");

  PartitionerConfig other_seed = cfg;
  other_seed.seed += 1;
  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                  xm.total_x(), other_seed, "csr", "scalar",
                                  &why));
  EXPECT_EQ(why, "partitioner configuration differs");

  // A valid-but-different backend parses fine yet must refuse to graft:
  // resuming csr state through a tebm store is an operator surprise.
  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                  xm.total_x(), cfg, "tebm", "scalar", &why));
  EXPECT_EQ(why, "storage backend differs");

  // Crossing kernel ISA tiers likewise demotes to a fresh run — the tiers
  // are differentially pinned bit-identical, but an unaudited cross-tier
  // graft would hide any future divergence.
  EXPECT_FALSE(checkpoint_matches(ckpt, xm.geometry(), xm.num_patterns(),
                                  xm.total_x(), cfg, "csr", "avx2", &why));
  EXPECT_EQ(why, "kernel ISA differs");

  // A pre-kernel-layer checkpoint carries no isa field and matches any.
  ServiceCheckpoint legacy = ckpt;
  legacy.isa.clear();
  EXPECT_TRUE(checkpoint_matches(legacy, xm.geometry(), xm.num_patterns(),
                                 xm.total_x(), cfg, "csr", "avx512", &why))
      << why;
}

// The store line is load-bearing round-trip state, not a comment: a
// checkpoint recorded against tebm restores as tebm.
TEST(Checkpoint, BackendIdentitySurvivesTheTrip) {
  const XMatrix xm = small_workload(19);
  ServiceCheckpoint want = checkpoint_after(xm, small_config(), 1);
  want.backend = "tebm";
  const std::optional<ServiceCheckpoint> got =
      checkpoint_from_string(checkpoint_to_string(want));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->backend, "tebm");
}

// The isa line round-trips like the store line, and its absence is not a
// defect: checkpoints written before the kernel layer simply skip from
// "store" to "state" and parse to an empty (match-any) isa field.
TEST(Checkpoint, IsaIdentitySurvivesTheTripAndIsOptional) {
  const XMatrix xm = small_workload(20);
  ServiceCheckpoint want = checkpoint_after(xm, small_config(), 1);
  want.isa = "avx512";
  const std::optional<ServiceCheckpoint> got =
      checkpoint_from_string(checkpoint_to_string(want));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->isa, "avx512");

  ServiceCheckpoint legacy = want;
  legacy.isa.clear();
  const std::string text = checkpoint_to_string(legacy);
  EXPECT_EQ(text.find("isa "), std::string::npos);
  const std::optional<ServiceCheckpoint> reparsed =
      checkpoint_from_string(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->isa.empty());
}

}  // namespace
}  // namespace xh
