#include "workload/industrial.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

/// Samples @p k distinct indices below @p n into @p out (collision-retry;
/// intended for k << n).
void sample_distinct(Rng& rng, std::size_t n, std::size_t k,
                     std::vector<std::size_t>& out,
                     std::unordered_set<std::size_t>& used) {
  out.clear();
  XH_REQUIRE(k <= n, "cannot sample more than the population");
  while (out.size() < k) {
    const auto v = static_cast<std::size_t>(rng.below(n));
    if (used.insert(v).second) out.push_back(v);
  }
}

std::size_t jitter(Rng& rng, std::size_t mean) {
  // Uniform in [mean/2, 3*mean/2], at least 1.
  const std::size_t lo = std::max<std::size_t>(1, mean / 2);
  const std::size_t hi = mean + mean / 2;
  return lo + static_cast<std::size_t>(rng.below(hi - lo + 1));
}

}  // namespace

WorkloadProfile ckt_a_profile() {
  WorkloadProfile p;
  p.name = "CKT-A";
  p.geometry = {1050, 481};
  p.num_patterns = 3000;
  p.x_density = 0.0005;
  p.clustered_fraction = 0.45;
  p.cluster_cells_mean = 280;
  p.cluster_patterns_mean = 320;
  p.seed = 0xA;
  return p;
}

WorkloadProfile ckt_b_profile() {
  WorkloadProfile p;
  p.name = "CKT-B";
  p.geometry = {75, 481};
  p.num_patterns = 3000;
  p.x_density = 0.0275;
  p.clustered_fraction = 0.55;
  p.cluster_cells_mean = 160;
  p.cluster_patterns_mean = 650;
  p.seed = 0xB;
  return p;
}

WorkloadProfile ckt_c_profile() {
  WorkloadProfile p;
  p.name = "CKT-C";
  p.geometry = {203, 481};
  p.num_patterns = 3000;
  p.x_density = 0.0238;
  p.clustered_fraction = 0.38;
  p.cluster_cells_mean = 180;
  p.cluster_patterns_mean = 420;
  p.seed = 0xC;
  return p;
}

WorkloadProfile scaled_profile(WorkloadProfile profile, double factor) {
  XH_REQUIRE(factor > 0.0 && factor <= 1.0, "factor must be in (0,1]");
  profile.name += "-scaled";
  profile.geometry.num_chains = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             static_cast<double>(profile.geometry.num_chains) * factor));
  profile.geometry.chain_length = std::max<std::size_t>(
      4, static_cast<std::size_t>(
             static_cast<double>(profile.geometry.chain_length) * factor));
  profile.num_patterns = std::max<std::size_t>(
      8, static_cast<std::size_t>(
             static_cast<double>(profile.num_patterns) * factor));
  profile.cluster_cells_mean = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             static_cast<double>(profile.cluster_cells_mean) * factor));
  profile.cluster_patterns_mean = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             static_cast<double>(profile.cluster_patterns_mean) * factor));
  return profile;
}

XMatrix generate_workload(const WorkloadProfile& profile) {
  XH_REQUIRE(profile.x_density > 0.0 && profile.x_density < 1.0,
             "x_density must be in (0,1)");
  XH_REQUIRE(profile.clustered_fraction >= 0.0 &&
                 profile.clustered_fraction <= 1.0,
             "clustered_fraction must be in [0,1]");
  Rng rng(profile.seed);
  XMatrix xm(profile.geometry, profile.num_patterns);

  const std::uint64_t target = profile.target_total_x();
  const auto clustered_budget = static_cast<std::uint64_t>(
      profile.clustered_fraction * static_cast<double>(target));

  // --- clustered X's: cells sharing one pattern set per cluster ------------
  std::unordered_set<std::size_t> used_cells;  // keep clusters cell-disjoint
  std::vector<std::size_t> cells;
  std::vector<std::size_t> pats;
  std::uint64_t placed_in_clusters = 0;
  while (placed_in_clusters < clustered_budget) {
    const std::size_t n_pats = std::min(
        jitter(rng, profile.cluster_patterns_mean), profile.num_patterns);
    std::size_t n_cells = jitter(rng, profile.cluster_cells_mean);
    // Trim the final cluster to the remaining budget.
    const std::uint64_t remaining = clustered_budget - placed_in_clusters;
    n_cells = std::min<std::size_t>(
        n_cells, std::max<std::uint64_t>(1, remaining / n_pats + 1));
    if (used_cells.size() + n_cells > profile.geometry.num_cells()) break;

    // Contiguous pattern window: deterministic patterns exercising one
    // X-source family come from consecutive ATPG targets, so a cluster's
    // pattern set is a (jittered) range rather than a uniform scatter.
    pats.clear();
    const std::size_t start = static_cast<std::size_t>(
        rng.below(profile.num_patterns - n_pats + 1));
    for (std::size_t k = 0; k < n_pats; ++k) pats.push_back(start + k);
    sample_distinct(rng, profile.geometry.num_cells(), n_cells, cells,
                    used_cells);
    for (const std::size_t cell : cells) {
      for (const std::size_t p : pats) xm.add_x(cell, p);
    }
    placed_in_clusters +=
        static_cast<std::uint64_t>(n_cells) * static_cast<std::uint64_t>(n_pats);
  }

  // --- background X's: scattered, weakly correlated -----------------------
  // Concentrate the scatter on a subset of "X-prone" cells so the Section 3
  // statistic (90 % of X's in a few % of cells) holds even off-cluster.
  // Background X's land on a small "X-prone" stripe of cells — silicon
  // X-sources (uninitialized memories, floating buses) are tied to specific
  // cells, which is why the paper sees only ~11 % of cells capture X at all
  // and 90 % of X's inside ~5 % of the cells. Cluster cells are excluded, so
  // cluster members keep bit-identical pattern sets (the 177-cells-with-
  // exactly-406-X's effect).
  const std::size_t prone_cells =
      std::min(profile.geometry.num_cells(),
               std::max<std::size_t>(profile.geometry.num_cells() / 25, 32));
  std::uint64_t guard = 0;
  const std::uint64_t guard_limit = 12 * target + 1000;
  while (xm.total_x() < target && guard++ < guard_limit) {
    const auto cell = static_cast<std::size_t>(rng.below(prone_cells));
    if (used_cells.count(cell) != 0) continue;
    const auto pat =
        static_cast<std::size_t>(rng.below(profile.num_patterns));
    xm.add_x(cell, pat);
  }
  return xm;
}

}  // namespace xh
