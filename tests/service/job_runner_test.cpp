// PartitionService behavior under normal load and at every failure seam
// (DESIGN.md §11): admission backpressure, deadline degradation, the
// transient/permanent retry split with exponential backoff + jitter,
// cancel/pause/shutdown semantics, watchdog liveness, and telemetry
// export. Time-dependent paths run on ManualClock, so backoff schedules
// and deadlines are asserted exactly, not statistically.
#include "service/job_runner.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "engine/partition_types.hpp"
#include "obs/trace.hpp"
#include "response/io.hpp"
#include "response/x_matrix.hpp"
#include "util/bitvec.hpp"
#include "util/clock.hpp"
#include "util/diagnostics.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

XMatrix small_workload(std::uint64_t seed) {
  WorkloadProfile profile;
  profile.name = "svc";
  profile.geometry = {6, 24};
  profile.num_patterns = 96;
  profile.x_density = 0.05;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 6;
  profile.cluster_patterns_mean = 8;
  profile.seed = seed;
  return generate_workload(profile);
}

PartitionerConfig small_config() {
  PartitionerConfig cfg;
  cfg.misr = {16, 4};
  cfg.seed = 7;
  return cfg;
}

JobSpec matrix_job(const std::string& name, std::uint64_t seed) {
  JobSpec spec;
  spec.name = name;
  spec.matrix = std::make_shared<const XMatrix>(small_workload(seed));
  spec.config = small_config();
  return spec;
}

/// Every partition result — degraded or not — must be a disjoint cover of
/// all patterns; that is the coverage-safety half of the prefix property.
void expect_valid_cover(const PartitionResult& result,
                        std::size_t num_patterns) {
  BitVec cover(num_patterns);
  std::size_t total = 0;
  for (const BitVec& patterns : result.partitions) {
    total += patterns.count();
    cover |= patterns;
  }
  EXPECT_EQ(total, num_patterns) << "partitions overlap or drop patterns";
  EXPECT_EQ(cover.count(), num_patterns);
}

/// Spins (bounded, real time) until @p done reports true.
template <typename Predicate>
bool eventually(Predicate done) {
  for (int i = 0; i < 5000; ++i) {
    if (done()) return true;
    wall_clock().sleep_ns(1'000'000);
  }
  return done();
}

TEST(JobRunner, CompletedJobsAreBitIdenticalToTheDirectEngine) {
  ServiceConfig cfg;
  cfg.workers = 2;
  PartitionService service(cfg);

  std::vector<JobId> ids;
  std::vector<std::uint64_t> seeds = {31, 32, 33};
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const SubmitOutcome outcome =
        service.submit(matrix_job("job-" + std::to_string(i), seeds[i]));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = service.wait(ids[i]);
    EXPECT_EQ(result.state, JobState::kCompleted);
    EXPECT_EQ(result.attempts, 1u);
    const PartitionResult want =
        partition_patterns(small_workload(seeds[i]), small_config());
    ASSERT_EQ(result.partition.partitions.size(), want.partitions.size());
    for (std::size_t p = 0; p < want.partitions.size(); ++p) {
      EXPECT_TRUE(result.partition.partitions[p] == want.partitions[p]);
    }
    EXPECT_EQ(result.partition.total_bits, want.total_bits);
    EXPECT_EQ(result.rounds, want.partitions.size() - 1);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_accepted, 3u);
  EXPECT_EQ(stats.jobs_completed, 3u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(JobRunner, BackpressureRejectsBeyondTheAdmissionCap) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 2;
  PartitionService service(cfg);
  service.pause();  // deterministic backlog: nothing starts running

  std::vector<SubmitOutcome> outcomes;
  for (std::uint64_t i = 0; i < 5; ++i) {
    outcomes.push_back(
        service.submit(matrix_job("flood-" + std::to_string(i), 41 + i)));
  }
  EXPECT_TRUE(outcomes[0].accepted);
  EXPECT_TRUE(outcomes[1].accepted);
  for (std::size_t i = 2; i < outcomes.size(); ++i) {
    EXPECT_FALSE(outcomes[i].accepted) << "submit " << i;
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_accepted, 2u);
  EXPECT_EQ(stats.jobs_rejected_overload, 3u);
  EXPECT_EQ(stats.queue_depth_peak, 2u);
  EXPECT_EQ(service.diagnostics().count(DiagKind::kOverloaded), 3u);

  // Rejection is not sticky: draining the backlog reopens admission.
  service.resume();
  service.wait_all();
  EXPECT_TRUE(service.submit(matrix_job("late", 99)).accepted);
  service.wait_all();
  EXPECT_EQ(service.stats().jobs_completed, 3u);
}

TEST(JobRunner, SubmitValidatesTheSpec) {
  PartitionService service(ServiceConfig{});
  EXPECT_THROW((void)service.submit(JobSpec{}), std::invalid_argument);
}

TEST(JobRunner, DeadlineDegradesToACoverageSafePrefix) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  PartitionService service(cfg);
  // Burn the deadline budget at attempt start: the token fires at the
  // first round boundary and the engine keeps the best-so-far prefix.
  service.set_fault_hook(
      [&clock](JobId, std::size_t) { clock.advance(1'000'000); });

  JobSpec spec = matrix_job("tight", 51);
  spec.deadline_ns = 100;
  const SubmitOutcome outcome = service.submit(std::move(spec));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);

  EXPECT_EQ(result.state, JobState::kDegraded);
  EXPECT_TRUE(result.partition.interrupted);
  EXPECT_EQ(result.attempts, 1u) << "a deadline is not a retryable failure";
  expect_valid_cover(result.partition, 96);
  EXPECT_GT(result.diagnostics.count(DiagKind::kDeadlineExceeded), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_degraded, 1u);
  EXPECT_EQ(stats.jobs_completed, 0u);
}

TEST(JobRunner, DefaultDeadlineAppliesWhenTheJobSetsNone) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.default_deadline_ns = 100;
  PartitionService service(cfg);
  service.set_fault_hook(
      [&clock](JobId, std::size_t) { clock.advance(1'000'000); });
  const SubmitOutcome outcome = service.submit(matrix_job("inherit", 52));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(service.wait(outcome.id).state, JobState::kDegraded);
}

TEST(JobRunner, TransientFaultsRetryWithExponentialBackoffAndJitter) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 4;
  cfg.retry.base_backoff_ns = 1'000;
  cfg.retry.max_backoff_ns = 1'000'000;
  PartitionService service(cfg);
  service.set_fault_hook([](JobId, std::size_t attempt) {
    if (attempt <= 2) throw TransientError("synthetic hiccup");
  });

  const SubmitOutcome outcome = service.submit(matrix_job("flaky", 53));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);

  EXPECT_EQ(result.state, JobState::kCompleted);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(service.stats().job_retries, 2u);
  // Full jitter keeps each sleep in [backoff/2, backoff]; with base 1000ns
  // the two backoffs are 1000 and 2000, so total virtual sleep is bounded
  // by [1500, 3000] — the exponential envelope, asserted exactly.
  EXPECT_GE(clock.total_advanced_ns(), 1'500u);
  EXPECT_LE(clock.total_advanced_ns(), 3'000u);
}

TEST(JobRunner, RetriesExhaustIntoFailure) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 2;
  PartitionService service(cfg);
  service.set_fault_hook(
      [](JobId, std::size_t) { throw TransientError("always down"); });
  const SubmitOutcome outcome = service.submit(matrix_job("doomed", 54));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(result.error, "always down");
  EXPECT_EQ(service.stats().job_retries, 1u);
  EXPECT_EQ(service.stats().jobs_failed, 1u);
}

TEST(JobRunner, PermanentFaultsFailFastWithoutRetry) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry.max_attempts = 5;
  PartitionService service(cfg);
  service.set_fault_hook(
      [](JobId, std::size_t) { throw std::runtime_error("config bug"); });
  const SubmitOutcome outcome = service.submit(matrix_job("broken", 55));
  ASSERT_TRUE(outcome.accepted);
  const JobResult result = service.wait(outcome.id);
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.attempts, 1u) << "permanent failures must not burn retries";
  EXPECT_EQ(result.error, "config bug");
  EXPECT_EQ(service.stats().job_retries, 0u);
}

TEST(JobRunner, ParseErrorsFailFastMissingFilesRetry) {
  const fs::path dir = fs::path(::testing::TempDir()) / "xh_runner_io";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path garbled = dir / "garbled.xm";
  {
    std::ofstream out(garbled);
    out << "xmatrix v1 6 24 96\nnot a cell record\n";
  }
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 3;
  PartitionService service(cfg);

  JobSpec parse_fail;
  parse_fail.name = "garbled";
  parse_fail.source_path = garbled.string();
  parse_fail.config = small_config();
  const SubmitOutcome a = service.submit(std::move(parse_fail));
  ASSERT_TRUE(a.accepted);
  const JobResult parse_result = service.wait(a.id);
  EXPECT_EQ(parse_result.state, JobState::kFailed);
  EXPECT_EQ(parse_result.attempts, 1u)
      << "a malformed file never parses; retrying is waste";
  EXPECT_TRUE(parse_result.diagnostics.has_errors());

  JobSpec missing;
  missing.name = "missing";
  missing.source_path = (dir / "nope.xm").string();
  missing.config = small_config();
  const SubmitOutcome b = service.submit(std::move(missing));
  ASSERT_TRUE(b.accepted);
  const JobResult missing_result = service.wait(b.id);
  EXPECT_EQ(missing_result.state, JobState::kFailed);
  EXPECT_EQ(missing_result.attempts, 3u)
      << "an open failure is an I/O transient: retry to exhaustion";
  EXPECT_GT(missing_result.diagnostics.count(DiagKind::kStreamFailure), 0u);
  EXPECT_EQ(service.stats().job_retries, 2u);
}

TEST(JobRunner, CancelAllCancelsTheBacklog) {
  ServiceConfig cfg;
  cfg.workers = 1;
  PartitionService service(cfg);
  service.pause();
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const SubmitOutcome outcome =
        service.submit(matrix_job("queued-" + std::to_string(i), 61 + i));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  service.cancel_all();
  service.resume();
  for (const JobId id : ids) {
    EXPECT_EQ(service.wait(id).state, JobState::kCancelled);
  }
  EXPECT_EQ(service.stats().jobs_cancelled, 3u);
}

TEST(JobRunner, PollAndWaitContract) {
  PartitionService service(ServiceConfig{});
  EXPECT_FALSE(service.poll(12345).has_value());
  EXPECT_THROW((void)service.wait(12345), std::invalid_argument);

  const SubmitOutcome outcome = service.submit(matrix_job("tracked", 71));
  ASSERT_TRUE(outcome.accepted);
  const std::optional<JobResult> early = service.poll(outcome.id);
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->name, "tracked");
  const JobResult done = service.wait(outcome.id);
  EXPECT_EQ(done.state, JobState::kCompleted);
  const std::optional<JobResult> late = service.poll(outcome.id);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->state, JobState::kCompleted);
}

TEST(JobRunner, ShutdownDrainsIsIdempotentAndRejectsLateWork) {
  ServiceConfig cfg;
  cfg.workers = 2;
  PartitionService service(cfg);
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const SubmitOutcome outcome =
        service.submit(matrix_job("drain-" + std::to_string(i), 81 + i));
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  service.shutdown();
  for (const JobId id : ids) {
    EXPECT_EQ(service.wait(id).state, JobState::kCompleted)
        << "shutdown must drain accepted work, not drop it";
  }
  const SubmitOutcome late = service.submit(matrix_job("late", 90));
  EXPECT_FALSE(late.accepted);
  EXPECT_GT(service.diagnostics().count(DiagKind::kOverloaded), 0u);
  service.shutdown();  // idempotent
}

TEST(JobRunner, WatchdogHeartbeatsAccumulate) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.watchdog_period_ns = 1'000'000;  // 1 ms
  PartitionService service(cfg);
  EXPECT_TRUE(eventually([&] { return service.stats().heartbeats > 0; }))
      << "watchdog thread never ticked";
  service.shutdown();
  const std::uint64_t after_shutdown = service.stats().heartbeats;
  EXPECT_GT(after_shutdown, 0u);
}

TEST(JobRunner, WatchdogReportsAStalledJobOnce) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.watchdog_period_ns = 1'000'000;  // 1 ms real tick
  cfg.stall_after_ns = 100;            // 100 virtual ns without progress
  PartitionService service(cfg);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  service.set_fault_hook([gate](JobId, std::size_t) { gate.wait(); });

  const SubmitOutcome outcome = service.submit(matrix_job("stuck", 91));
  ASSERT_TRUE(outcome.accepted);
  ASSERT_TRUE(eventually([&] {
    const std::optional<JobResult> r = service.poll(outcome.id);
    return r.has_value() && r->state == JobState::kRunning;
  }));
  clock.advance(1'000);  // the job's last progress is now 1000ns stale
  EXPECT_TRUE(eventually([&] { return service.stats().watchdog_stalls > 0; }));
  // A stalled job is reported once, not once per tick.
  const std::uint64_t ticks = service.stats().heartbeats;
  EXPECT_TRUE(eventually([&] { return service.stats().heartbeats > ticks; }));
  EXPECT_EQ(service.stats().watchdog_stalls, 1u);

  release.set_value();
  EXPECT_EQ(service.wait(outcome.id).state, JobState::kCompleted);
}

TEST(JobRunner, TelemetryExportPublishesServiceCounters) {
  ManualClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  PartitionService service(cfg);
  const SubmitOutcome ok = service.submit(matrix_job("clean", 95));
  ASSERT_TRUE(ok.accepted);
  ASSERT_EQ(service.wait(ok.id).state, JobState::kCompleted);

  Trace clean_trace;
  service.export_telemetry(&clean_trace);
  EXPECT_EQ(clean_trace.counters().at("service.jobs_completed").value, 1u);
  EXPECT_EQ(clean_trace.counters().at("service.jobs_accepted").value, 1u);
  EXPECT_EQ(clean_trace.counters().at("service.jobs_degraded").value, 0u);
  // A clean run must not grow a degradation gauge: telemetry baselines of
  // healthy runs stay byte-identical.
  EXPECT_EQ(clean_trace.gauges().count("hybrid.degraded"), 0u);

  service.set_fault_hook(
      [&clock](JobId, std::size_t) { clock.advance(1'000'000); });
  JobSpec spec = matrix_job("timed-out", 96);
  spec.deadline_ns = 10;
  const SubmitOutcome slow = service.submit(std::move(spec));
  ASSERT_TRUE(slow.accepted);
  ASSERT_EQ(service.wait(slow.id).state, JobState::kDegraded);

  Trace degraded_trace;
  service.export_telemetry(&degraded_trace);
  EXPECT_EQ(degraded_trace.counters().at("service.jobs_degraded").value, 1u);
  ASSERT_EQ(degraded_trace.gauges().count("hybrid.degraded"), 1u);
  EXPECT_EQ(degraded_trace.gauges().at("hybrid.degraded").value, 1.0);
  // export_telemetry(nullptr) is a clean no-op.
  service.export_telemetry(nullptr);
}

TEST(JobRunner, IngestDirectoryIsSortedAndSkipsForeignFiles) {
  const fs::path dir = fs::path(::testing::TempDir()) / "xh_runner_ingest";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream b(dir / "b.xm");
    b << x_matrix_to_string(small_workload(97));
    std::ofstream a(dir / "a.xm");
    a << x_matrix_to_string(small_workload(98));
    std::ofstream notes(dir / "notes.txt");
    notes << "not a matrix\n";
  }
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.partitioner = small_config();
  PartitionService service(cfg);
  const std::vector<SubmitOutcome> outcomes =
      service.ingest_directory(dir.string());
  ASSERT_EQ(outcomes.size(), 2u) << "only *.xm files are jobs";
  ASSERT_TRUE(outcomes[0].accepted);
  ASSERT_TRUE(outcomes[1].accepted);
  EXPECT_EQ(service.wait(outcomes[0].id).name, "a");
  EXPECT_EQ(service.wait(outcomes[1].id).name, "b");
  EXPECT_EQ(service.wait(outcomes[0].id).state, JobState::kCompleted);
  EXPECT_EQ(service.wait(outcomes[1].id).state, JobState::kCompleted);

  const std::vector<SubmitOutcome> none =
      service.ingest_directory((dir / "missing").string());
  EXPECT_TRUE(none.empty());
  EXPECT_GT(service.diagnostics().count(DiagKind::kStreamFailure), 0u);
}

}  // namespace
}  // namespace xh
