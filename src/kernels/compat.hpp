// Deprecated pre-kernel-layer spellings, quarantined from the headers that
// define their parameter types.
//
// These unqualified entry points predate the dispatched kernel layer and
// always ran the scalar reference. xh::kernels::and_count / and_not_count /
// eliminate / x_free_combinations / solve (kernels.hpp) are bit-identical
// and pick the fastest backend (SIMD word ops, M4RM blocking) at runtime,
// so the shims simply delegate to the kernel wrappers: under constant
// evaluation both spellings still execute the constexpr scalar reference.
//
// They live here — not in util/bitvec.hpp or gf2/matrix.hpp — so that
// including BitVec or Gf2Matrix does not drag the deprecated names into
// scope, and xh_lint's XH-API-002 rule can treat an unqualified call as a
// straggler instead of flagging every file that mentions the types. Kept,
// mirroring the PR 4 HybridConfig overloads, until the external-caller
// window closes; tests/core/deprecated_api_test.cpp pins the equivalence.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "gf2/matrix.hpp"
#include "kernels/kernels.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// Deprecated: use xh::kernels::and_count.
[[deprecated("use xh::kernels::and_count (src/kernels/kernels.hpp)")]]
constexpr std::size_t and_count(const BitVec& a, const BitVec& b) {
  return kernels::and_count(a, b);
}

/// Deprecated: use xh::kernels::and_not_count.
[[deprecated("use xh::kernels::and_not_count (src/kernels/kernels.hpp)")]]
constexpr std::size_t and_not_count(const BitVec& a, const BitVec& b) {
  return kernels::and_not_count(a, b);
}

/// Deprecated: use xh::kernels::eliminate.
[[deprecated("use xh::kernels::eliminate (src/kernels/kernels.hpp)")]]
constexpr Elimination eliminate(const Gf2Matrix& m) {
  return kernels::eliminate(m);
}

/// Deprecated: use xh::kernels::x_free_combinations.
[[deprecated(
    "use xh::kernels::x_free_combinations (src/kernels/kernels.hpp)")]]
constexpr std::vector<BitVec> x_free_combinations(const Gf2Matrix& m) {
  return kernels::x_free_combinations(m);
}

/// Deprecated: use xh::kernels::solve.
[[deprecated("use xh::kernels::solve (src/kernels/kernels.hpp)")]]
constexpr std::optional<BitVec> solve(const Gf2Matrix& m, const BitVec& b) {
  return kernels::solve(m, b);
}

}  // namespace xh
