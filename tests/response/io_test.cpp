#include "response/io.hpp"

#include <gtest/gtest.h>

#include <istream>
#include <stdexcept>
#include <streambuf>
#include <utility>

#include "core/paper_example.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

TEST(ResponseIo, XMatrixRoundTripPaperExample) {
  const XMatrix original = paper_example_x_matrix();
  const XMatrix loaded =
      x_matrix_from_string(x_matrix_to_string(original));
  EXPECT_EQ(loaded.total_x(), original.total_x());
  EXPECT_EQ(loaded.num_patterns(), original.num_patterns());
  EXPECT_TRUE(loaded.geometry() == original.geometry());
  for (const std::size_t cell : original.x_cells()) {
    EXPECT_TRUE(loaded.patterns_of(cell) == original.patterns_of(cell));
  }
}

TEST(ResponseIo, XMatrixRoundTripWorkload) {
  const XMatrix original =
      generate_workload(scaled_profile(ckt_b_profile(), 0.05));
  const XMatrix loaded =
      x_matrix_from_string(x_matrix_to_string(original));
  EXPECT_EQ(loaded.total_x(), original.total_x());
  EXPECT_EQ(loaded.x_cells(), original.x_cells());
}

TEST(ResponseIo, ResponseRoundTrip) {
  const ResponseMatrix original = paper_example_response(12);
  const ResponseMatrix loaded =
      response_from_string(response_to_string(original));
  EXPECT_EQ(loaded.num_patterns(), original.num_patterns());
  for (std::size_t p = 0; p < original.num_patterns(); ++p) {
    EXPECT_EQ(loaded.row_string(p), original.row_string(p));
  }
}

TEST(ResponseIo, HeaderIsHumanReadable) {
  const std::string text = x_matrix_to_string(paper_example_x_matrix());
  EXPECT_EQ(text.substr(0, 16), "xmatrix v1 5 3 8");
}

TEST(ResponseIo, RejectsBadMagicAndVersion) {
  EXPECT_THROW(x_matrix_from_string("nonsense v1 2 2 2\n"),
               std::invalid_argument);
  EXPECT_THROW(x_matrix_from_string("xmatrix v9 2 2 2\n"),
               std::invalid_argument);
  EXPECT_THROW(response_from_string("xmatrix v1 2 2 2\n"),
               std::invalid_argument);
}

TEST(ResponseIo, RejectsDegenerateGeometry) {
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 0 3 8\n"),
               std::invalid_argument);
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 3 0\n"),
               std::invalid_argument);
}

TEST(ResponseIo, RejectsOutOfRangeEntries) {
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n9 0\n"),
               std::invalid_argument);
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0 7\n"),
               std::invalid_argument);
}

TEST(ResponseIo, RejectsMalformedRows) {
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0\n"),
               std::invalid_argument);
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0 1 junk\n"),
               std::invalid_argument);
  EXPECT_THROW(response_from_string("response v1 2 2 2\n01X\n0000\n"),
               std::invalid_argument);
  EXPECT_THROW(response_from_string("response v1 2 2 2\n01X0\n"),
               std::invalid_argument);
  EXPECT_THROW(response_from_string("response v1 2 2 1\n01Q0\n"),
               std::invalid_argument);
}

TEST(ResponseIo, EmptyXMatrixSerializes) {
  const XMatrix empty({2, 3}, 5);
  const XMatrix loaded = x_matrix_from_string(x_matrix_to_string(empty));
  EXPECT_EQ(loaded.total_x(), 0u);
  EXPECT_EQ(loaded.num_patterns(), 5u);
}

TEST(ResponseIo, RejectsDuplicateCellRecords) {
  Diagnostics diags;
  EXPECT_THROW(
      x_matrix_from_string("xmatrix v1 2 2 4\n0 1\n0 2\nend 2\n", &diags),
      std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kDuplicateRecord), 1u);
}

TEST(ResponseIo, RejectsMissingTrailer) {
  Diagnostics diags;
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0 1\n", &diags),
               std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kTruncatedInput), 1u);
}

TEST(ResponseIo, RejectsTrailerCountMismatch) {
  // A lost cell record keeps the file syntactically valid line by line;
  // only the trailer count exposes it.
  Diagnostics diags;
  EXPECT_THROW(
      x_matrix_from_string("xmatrix v1 2 2 4\n0 1\nend 5\n", &diags),
      std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kTruncatedInput), 1u);
}

TEST(ResponseIo, RejectsContentAfterTrailer) {
  Diagnostics diags;
  EXPECT_THROW(
      x_matrix_from_string("xmatrix v1 2 2 4\n0 1\nend 1\n1 2\n", &diags),
      std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kTrailingGarbage), 1u);
}

TEST(ResponseIo, RejectsMalformedTrailer) {
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(x_matrix_from_string("xmatrix v1 2 2 4\n0 1\nend 1 junk\n"),
               std::invalid_argument);
}

TEST(ResponseIo, RejectsRowsAfterLastDeclaredPattern) {
  Diagnostics diags;
  EXPECT_THROW(
      response_from_string("response v1 2 2 1\n01X0\n1100\n", &diags),
      std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kTrailingGarbage), 1u);
}

TEST(ResponseIo, AllowsTrailingBlankLines) {
  const ResponseMatrix rm =
      response_from_string("response v1 2 2 1\n01X0\n\n\n");
  EXPECT_EQ(rm.num_patterns(), 1u);
  EXPECT_EQ(rm.row_string(0), "01X0");
}

TEST(ResponseIo, RejectsTruncatedResponseAsTruncation) {
  Diagnostics diags;
  EXPECT_THROW(response_from_string("response v1 2 2 3\n01X0\n", &diags),
               std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kTruncatedInput), 1u);
  EXPECT_EQ(diags.count(DiagKind::kStreamFailure), 0u);
}

/// Streambuf that yields a fixed prefix, then fails at the stream level —
/// the shape of a mid-read disk error, as opposed to a short-but-clean file.
class FailingBuf : public std::streambuf {
 public:
  explicit FailingBuf(std::string prefix) : prefix_(std::move(prefix)) {
    setg(prefix_.data(), prefix_.data(), prefix_.data() + prefix_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("disk error"); }

 private:
  std::string prefix_;
};

TEST(ResponseIo, DistinguishesStreamFailureFromCleanEof) {
  FailingBuf buf("xmatrix v1 2 2 4\n0 1\n");
  std::istream in(&buf);
  Diagnostics diags;
  EXPECT_THROW(read_x_matrix(in, &diags), std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kStreamFailure), 1u);
  EXPECT_EQ(diags.count(DiagKind::kTruncatedInput), 0u);
}

TEST(ResponseIo, DistinguishesStreamFailureInResponseRows) {
  FailingBuf buf("response v1 2 2 2\n01X0\n");
  std::istream in(&buf);
  Diagnostics diags;
  EXPECT_THROW(read_response(in, &diags), std::invalid_argument);
  EXPECT_EQ(diags.count(DiagKind::kStreamFailure), 1u);
}

}  // namespace
}  // namespace xh
