#include "masking/mask_encoding.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/check.hpp"

namespace xh {
namespace {

std::size_t gamma_bits(std::uint64_t n) {
  XH_ASSERT(n >= 1, "Elias gamma encodes positive integers");
  const int b = static_cast<int>(std::bit_width(n)) - 1;
  return 2 * static_cast<std::size_t>(b) + 1;
}

/// Bit-stream writer/reader over BitVec (MSB-first codewords).
class Writer {
 public:
  void gamma(std::uint64_t n) {
    const int b = static_cast<int>(std::bit_width(n)) - 1;
    for (int i = 0; i < b; ++i) bits_.push_back(false);
    for (int i = b; i >= 0; --i) bits_.push_back(((n >> i) & 1) != 0);
  }
  BitVec finish() const {
    BitVec out(bits_.size());
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) out.set(i);
    }
    return out;
  }

 private:
  std::vector<bool> bits_;
};

class Reader {
 public:
  explicit Reader(const BitVec& bits) : bits_(&bits) {}

  std::uint64_t gamma() {
    int zeros = 0;
    while (!next()) ++zeros;
    XH_REQUIRE(zeros < 64, "corrupt gamma codeword");
    std::uint64_t n = 1;
    for (int i = 0; i < zeros; ++i) {
      n = (n << 1) | (next() ? 1u : 0u);
    }
    return n;
  }

  bool exhausted() const { return pos_ == bits_->size(); }

 private:
  bool next() {
    XH_REQUIRE(pos_ < bits_->size(), "truncated mask stream");
    return bits_->get(pos_++);
  }

  const BitVec* bits_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

/// Gamma-stream size without the escape flag.
std::size_t gamma_stream_bits(const BitVec& mask) {
  const auto positions = mask.set_bits();
  std::size_t total = gamma_bits(positions.size() + 1);
  std::size_t prev = 0;
  bool first = true;
  for (const std::size_t pos : positions) {
    total += gamma_bits(first ? pos + 1 : pos - prev);
    prev = pos;
    first = false;
  }
  return total;
}

}  // namespace

EncodedMask encode_mask(const BitVec& mask) {
  XH_REQUIRE(mask.size() >= 1, "cannot encode an empty-width mask");
  // Escape flag: if the gamma stream would exceed the raw image (dense
  // masks), ship the raw bits instead. Guarantees bits() <= size() + 1.
  if (gamma_stream_bits(mask) >= mask.size()) {
    BitVec payload(mask.size() + 1);
    payload.set(0);  // raw-escape flag
    for (const std::size_t pos : mask.set_bits()) payload.set(pos + 1);
    return EncodedMask{std::move(payload), mask.size()};
  }
  Writer w;
  const auto positions = mask.set_bits();
  w.gamma(positions.size() + 1);  // count (shifted so 0 is encodable)
  std::size_t prev = 0;
  bool first = true;
  for (const std::size_t pos : positions) {
    const std::uint64_t gap = first ? pos + 1 : pos - prev;
    w.gamma(gap);
    prev = pos;
    first = false;
  }
  // Prepend the cleared escape flag.
  const BitVec stream = w.finish();
  BitVec payload(stream.size() + 1);
  for (const std::size_t i : stream.set_bits()) payload.set(i + 1);
  return EncodedMask{std::move(payload), mask.size()};
}

BitVec decode_mask(const EncodedMask& encoded) {
  XH_REQUIRE(encoded.mask_size >= 1, "invalid decoded width");
  XH_REQUIRE(encoded.payload.size() >= 1, "empty mask stream");
  if (encoded.payload.get(0)) {
    // Raw escape.
    XH_REQUIRE(encoded.payload.size() == encoded.mask_size + 1,
               "raw mask image width mismatch");
    BitVec mask(encoded.mask_size);
    for (std::size_t i = 0; i < encoded.mask_size; ++i) {
      if (encoded.payload.get(i + 1)) mask.set(i);
    }
    return mask;
  }
  BitVec stream(encoded.payload.size() - 1);
  for (std::size_t i = 1; i < encoded.payload.size(); ++i) {
    if (encoded.payload.get(i)) stream.set(i - 1);
  }
  Reader r(stream);
  const std::uint64_t count = r.gamma() - 1;
  BitVec mask(encoded.mask_size);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t gap = r.gamma();
    pos = (i == 0) ? static_cast<std::size_t>(gap - 1)
                   : pos + static_cast<std::size_t>(gap);
    XH_REQUIRE(pos < encoded.mask_size, "mask position out of range");
    mask.set(pos);
  }
  XH_REQUIRE(r.exhausted(), "trailing bits in mask stream");
  return mask;
}

std::size_t encoded_mask_bits(const BitVec& mask) {
  XH_REQUIRE(mask.size() >= 1, "cannot encode an empty-width mask");
  return 1 + std::min(gamma_stream_bits(mask), mask.size());
}

}  // namespace xh
