#include "misr/symbolic_misr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace xh {
namespace {

std::vector<std::optional<SymbolId>> slice(
    std::initializer_list<int> symbols) {
  std::vector<std::optional<SymbolId>> out;
  for (const int s : symbols) {
    if (s < 0) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(static_cast<SymbolId>(s));
    }
  }
  return out;
}

TEST(SymbolicMisr, SingleCycleDependencies) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 8);
  misr.step(slice({0, 1, -1, 2}));
  EXPECT_EQ(misr.dependency(0).set_bits(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(misr.dependency(1).set_bits(), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(misr.dependency(2).none());
  EXPECT_EQ(misr.dependency(3).set_bits(), (std::vector<std::size_t>{2}));
}

TEST(SymbolicMisr, DependenciesShiftThroughRegister) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 8);
  misr.step(slice({0, -1, -1, -1}));
  misr.step(slice({-1, -1, -1, -1}));
  // Symbol 0 moved from stage 0 to stage 1; no feedback fired yet.
  EXPECT_TRUE(misr.dependency(0).none());
  EXPECT_EQ(misr.dependency(1).set_bits(), (std::vector<std::size_t>{0}));
}

TEST(SymbolicMisr, FeedbackFoldsDependencies) {
  // Inject at the last stage; next cycle the feedback spreads it to stage 0
  // and every tap.
  const FeedbackPolynomial poly = FeedbackPolynomial::primitive(4);  // taps {3}
  SymbolicMisr misr(poly, 4);
  misr.step(slice({-1, -1, -1, 0}));
  misr.step(slice({-1, -1, -1, -1}));
  EXPECT_EQ(misr.dependency(0).set_bits(), (std::vector<std::size_t>{0}));
  // Stage 3 receives old stage 2 (empty) XOR feedback (tap at 3).
  EXPECT_EQ(misr.dependency(3).set_bits(), (std::vector<std::size_t>{0}));
}

TEST(SymbolicMisr, RepeatedSymbolCancels) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 4);
  misr.step(slice({0, -1, -1, -1}));
  misr.step(slice({-1, 0, -1, -1}));  // symbol 0 lands on its shifted self
  EXPECT_TRUE(misr.dependency(1).none()) << "x ^ x = 0 over GF(2)";
}

TEST(SymbolicMisr, ResetClearsDependencies) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 4);
  misr.step(slice({0, 1, 2, 3}));
  misr.reset();
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_TRUE(misr.dependency(b).none());
  }
}

TEST(SymbolicMisr, InputWidthChecked) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 4);
  EXPECT_THROW(misr.step(slice({0, 1})), std::invalid_argument);
  EXPECT_THROW(misr.step(slice({9, -1, -1, -1})), std::invalid_argument);
}

TEST(SymbolicMisr, CombinationDependencyIsXorOfRows) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(6), 10);
  misr.step(slice({0, 1, -1, 2, -1, 3}));
  misr.step(slice({4, -1, 5, -1, 6, -1}));
  BitVec sel(6);
  sel.set(0);
  sel.set(1);
  const BitVec combo = misr.combination_dependency(sel);
  EXPECT_EQ(combo, misr.dependency(0) ^ misr.dependency(1));
}

TEST(SymbolicMisr, XDependencyMatrixSelectsColumns) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 6);
  misr.step(slice({0, 1, 2, 3}));
  const Gf2Matrix m = misr.x_dependency_matrix({1, 3});
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_TRUE(m.get(1, 0));   // stage 1 depends on symbol 1
  EXPECT_TRUE(m.get(3, 1));   // stage 3 depends on symbol 3
  EXPECT_FALSE(m.get(0, 0));
}

// Cross-validation: symbolic dependencies evaluated with concrete symbol
// values must reproduce a concrete Lfsr-based MISR run.
TEST(SymbolicMisrProperty, MatchesConcreteMisr) {
  Rng rng(31);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t m = 4 + static_cast<std::size_t>(rng.below(12));
    const std::size_t cycles = 1 + static_cast<std::size_t>(rng.below(12));
    const std::size_t num_symbols = m * cycles;

    SymbolicMisr symbolic(FeedbackPolynomial::primitive(m), num_symbols);
    Lfsr concrete(FeedbackPolynomial::primitive(m));
    concrete.reset();

    BitVec values(num_symbols);
    SymbolId next_symbol = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      std::vector<std::optional<SymbolId>> symbols(m);
      BitVec input(m);
      for (std::size_t i = 0; i < m; ++i) {
        const bool bit = rng.chance(0.5);
        symbols[i] = next_symbol;
        values.set(next_symbol, bit);
        input.set(i, bit);
        ++next_symbol;
      }
      symbolic.step(symbols);
      concrete.step(input);
    }

    const BitVec known(num_symbols, true);
    for (std::size_t b = 0; b < m; ++b) {
      BitVec sel(m);
      sel.set(b);
      EXPECT_EQ(symbolic.evaluate_combination(sel, values, known),
                concrete.state().get(b))
          << "bit " << b;
    }
  }
}

TEST(SymbolicMisr, EvaluateRejectsUnknownDependency) {
  SymbolicMisr misr(FeedbackPolynomial::primitive(4), 4);
  misr.step(slice({0, -1, -1, -1}));
  BitVec sel(4);
  sel.set(0);
  BitVec values(4);
  BitVec known(4, true);
  known.clear(0);  // symbol 0 is an X
  EXPECT_THROW(misr.evaluate_combination(sel, values, known),
               std::invalid_argument);
  sel.clear(0);
  sel.set(1);  // stage 1 has no dependencies — evaluates fine
  EXPECT_FALSE(misr.evaluate_combination(sel, values, known));
}

}  // namespace
}  // namespace xh
