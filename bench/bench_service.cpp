// Service saturation: PartitionService under multi-tenant load.
//
// Prices the resident job runner (DESIGN.md §11) against the bare engine
// and exercises its failure seams at benchmark scale:
//
//   * dispatch overhead — J in-memory jobs through a 1-worker service vs
//     the same matrices through partition_patterns() serially;
//   * scaling — the same batch across a W-worker service (parallelism is
//     across tenants; each engine stays serial inside its job);
//   * flood — pause(), submit the whole batch into a small admission cap,
//     resume(): rejections and the queue high-water mark are exact, not
//     racy, so the backpressure numbers are deterministic;
//   * checkpoint tax — the batch again with checkpoint_every_rounds=1
//     (every accepted round snapshots through the xh-ckpt/1 codec).
//
//   bench_service [--jobs J] [--cells N] [--patterns P] [--density D]
//                 [--rounds R] [--workers W] [--flood-cap C] [--seed S]
//                 [--smoke] [--telemetry file.json]
//
// --smoke runs a reduced-scale batch (well under 10 s), cross-checks that
// every service-completed job is bit-identical to the direct engine run,
// asserts the flood rejected exactly J - C jobs with a queue peak <= C,
// and exits non-zero otherwise — the CI gate for the service's admission
// and equivalence claims.
//
// --telemetry writes the canonical xh-telemetry/1 document: the flood
// service's service.* counters (deterministic thanks to pause(); the
// watchdog stays off so heartbeats are exactly zero) plus bench.* gauges
// for the measured numbers. tools/check_service_smoke.py gates on it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"
#include "response/x_matrix.hpp"
#include "service/job_runner.hpp"
#include "util/parse.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

struct BenchOptions {
  std::size_t jobs = 24;
  std::size_t cells = 20'000;
  std::size_t patterns = 800;
  double density = 0.02;
  std::size_t rounds = 12;
  std::size_t workers = 4;
  std::size_t flood_cap = 4;
  std::uint64_t seed = 1;
  bool smoke = false;
  std::string telemetry_path;
};

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool results_identical(const PartitionResult& a, const PartitionResult& b) {
  if (a.partitions.size() != b.partitions.size()) return false;
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    if (!(a.partitions[i] == b.partitions[i])) return false;
    if (!(a.masks[i] == b.masks[i])) return false;
  }
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].split_cell != b.history[i].split_cell) return false;
    if (a.history[i].accepted != b.history[i].accepted) return false;
  }
  return a.masked_x == b.masked_x && a.leaked_x == b.leaked_x &&
         a.total_bits == b.total_bits;
}

/// J distinct tenants: same shape, different seeds, so the batch is
/// heterogeneous enough that worker scheduling matters.
std::vector<std::shared_ptr<const XMatrix>> make_tenants(
    const BenchOptions& opt) {
  const std::size_t chains = opt.smoke ? 20 : 100;
  const std::size_t length = std::max<std::size_t>(1, opt.cells / chains);
  std::vector<std::shared_ptr<const XMatrix>> tenants;
  tenants.reserve(opt.jobs);
  for (std::size_t j = 0; j < opt.jobs; ++j) {
    WorkloadProfile profile;
    profile.name = "tenant";
    profile.geometry = {chains, length};
    profile.num_patterns = opt.patterns;
    profile.x_density = opt.density;
    profile.clustered_fraction = 0.9;
    profile.cluster_cells_mean = std::max<std::size_t>(2, chains * length / 40);
    profile.cluster_patterns_mean = std::max<std::size_t>(2, opt.patterns / 20);
    profile.seed = opt.seed + j;
    tenants.push_back(std::make_shared<XMatrix>(generate_workload(profile)));
  }
  return tenants;
}

/// Runs the whole batch through one service instance and collects each
/// job's terminal result in submission order. Jobs the admission cap
/// rejects leave a default (empty) slot.
double run_batch(const std::vector<std::shared_ptr<const XMatrix>>& tenants,
                 const PartitionerConfig& cfg, ServiceConfig scfg,
                 std::vector<PartitionResult>* results,
                 ServiceStats* stats_out) {
  const double ms = time_ms([&] {
    PartitionService service(std::move(scfg));
    std::vector<JobId> ids;
    ids.reserve(tenants.size());
    for (std::size_t j = 0; j < tenants.size(); ++j) {
      JobSpec spec;
      spec.name = "tenant-" + std::to_string(j);
      spec.matrix = tenants[j];
      spec.config = cfg;
      const SubmitOutcome oc = service.submit(std::move(spec));
      ids.push_back(oc.accepted ? oc.id : 0);
    }
    service.wait_all();
    if (results != nullptr) {
      results->assign(tenants.size(), PartitionResult{});
      for (std::size_t j = 0; j < ids.size(); ++j) {
        if (ids[j] == 0) continue;
        const std::optional<JobResult> res = service.poll(ids[j]);
        if (res && res->state == JobState::kCompleted) {
          (*results)[j] = res->partition;
        }
      }
    }
    service.shutdown();
    if (stats_out != nullptr) *stats_out = service.stats();
  });
  return ms;
}

/// The flood phase: pause() first so the admission counters are exact —
/// every submit lands on a held queue, so accepted == min(J, cap) and
/// rejected == J - accepted with no scheduling race.
double run_flood(const std::vector<std::shared_ptr<const XMatrix>>& tenants,
                 const PartitionerConfig& cfg, ServiceConfig scfg,
                 ServiceStats* stats_out, Trace* trace) {
  const double ms = time_ms([&] {
    PartitionService service(std::move(scfg));
    service.pause();
    for (std::size_t j = 0; j < tenants.size(); ++j) {
      JobSpec spec;
      spec.name = "flood-" + std::to_string(j);
      spec.matrix = tenants[j];
      spec.config = cfg;
      const SubmitOutcome oc = service.submit(std::move(spec));
      (void)oc;  // rejections are the point; the stats ledger records them
    }
    service.resume();
    service.wait_all();
    service.shutdown();
    *stats_out = service.stats();
    service.export_telemetry(trace);
  });
  return ms;
}

int run(const BenchOptions& opt) {
  const std::vector<std::shared_ptr<const XMatrix>> tenants =
      make_tenants(opt);

  PartitionerConfig cfg;
  cfg.misr = {32, 7};
  cfg.stop_on_cost_increase = false;
  cfg.allow_singleton_groups = true;
  cfg.max_rounds = opt.rounds;
  cfg.seed = opt.seed;

  // Direct engine baseline: the same matrices, no service in the way.
  std::vector<PartitionResult> direct(tenants.size());
  const double direct_ms = time_ms([&] {
    for (std::size_t j = 0; j < tenants.size(); ++j) {
      direct[j] = partition_patterns(*tenants[j], cfg);
    }
  });

  ServiceConfig base;
  base.max_queue_depth = tenants.size();
  base.partitioner = cfg;

  // Dispatch overhead: one worker, so the service adds queueing + snapshot
  // bookkeeping but no parallelism over the serial baseline.
  ServiceConfig serial = base;
  serial.workers = 1;
  std::vector<PartitionResult> via_service;
  ServiceStats serial_stats;
  const double serial_ms =
      run_batch(tenants, cfg, serial, &via_service, &serial_stats);

  bool identical = via_service.size() == direct.size();
  for (std::size_t j = 0; identical && j < direct.size(); ++j) {
    identical = results_identical(direct[j], via_service[j]);
  }

  // Scaling: parallelism across tenants.
  ServiceConfig pooled = base;
  pooled.workers = std::max<std::size_t>(1, opt.workers);
  ServiceStats pooled_stats;
  const double pooled_ms =
      run_batch(tenants, cfg, pooled, nullptr, &pooled_stats);

  // Checkpoint tax: snapshot through the codec at every accepted round.
  ServiceConfig ckpt = pooled;
  ckpt.checkpoint_dir = "bench_service_ckpt";
  ckpt.checkpoint_every_rounds = 1;
  ServiceStats ckpt_stats;
  const double ckpt_ms = run_batch(tenants, cfg, ckpt, nullptr, &ckpt_stats);

  // Flood: deterministic backpressure numbers (see run_flood).
  Trace trace;
  ServiceConfig flood = base;
  flood.workers = std::max<std::size_t>(1, opt.workers);
  flood.max_queue_depth = opt.flood_cap;
  ServiceStats flood_stats;
  const double flood_ms =
      run_flood(tenants, cfg, flood, &flood_stats, &trace);

  const double overhead =
      direct_ms > 0.0 ? serial_ms / direct_ms : 0.0;
  const double scaling = pooled_ms > 0.0 ? serial_ms / pooled_ms : 0.0;
  const double ckpt_tax = pooled_ms > 0.0 ? ckpt_ms / pooled_ms : 0.0;
  const double jobs_per_sec =
      pooled_ms > 0.0
          ? 1000.0 * static_cast<double>(tenants.size()) / pooled_ms
          : 0.0;
  const std::size_t expect_accepted =
      std::min(tenants.size(), opt.flood_cap);

  std::printf(
      "{\n"
      "  \"batch\": {\"jobs\": %zu, \"cells\": %zu, \"patterns\": %zu, "
      "\"rounds\": %zu},\n"
      "  \"direct_ms\": %.3f,\n"
      "  \"service_serial_ms\": %.3f,\n"
      "  \"service_pool%zu_ms\": %.3f,\n"
      "  \"service_checkpointed_ms\": %.3f,\n"
      "  \"flood_ms\": %.3f,\n"
      "  \"dispatch_overhead\": %.3f,\n"
      "  \"scaling\": %.2f,\n"
      "  \"checkpoint_tax\": %.3f,\n"
      "  \"jobs_per_sec\": %.1f,\n"
      "  \"checkpoints_written\": %llu,\n"
      "  \"flood\": {\"cap\": %zu, \"accepted\": %llu, \"rejected\": %llu, "
      "\"queue_peak\": %zu},\n"
      "  \"results_identical\": %s\n"
      "}\n",
      tenants.size(), opt.cells, opt.patterns, opt.rounds, direct_ms,
      serial_ms, pooled.workers, pooled_ms, ckpt_ms, flood_ms, overhead,
      scaling, ckpt_tax, jobs_per_sec,
      static_cast<unsigned long long>(ckpt_stats.checkpoints_written),
      opt.flood_cap,
      static_cast<unsigned long long>(flood_stats.jobs_accepted),
      static_cast<unsigned long long>(flood_stats.jobs_rejected_overload),
      flood_stats.queue_depth_peak, identical ? "true" : "false");

  if (!opt.telemetry_path.empty()) {
    obs_count(&trace, "bench.jobs", tenants.size());
    obs_count(&trace, "bench.flood_cap", opt.flood_cap);
    obs_count(&trace, "bench.results_identical", identical ? 1 : 0);
    obs_gauge(&trace, "bench.direct_ms", direct_ms);
    obs_gauge(&trace, "bench.service_serial_ms", serial_ms);
    obs_gauge(&trace, "bench.service_pooled_ms", pooled_ms);
    obs_gauge(&trace, "bench.service_checkpointed_ms", ckpt_ms);
    obs_gauge(&trace, "bench.dispatch_overhead", overhead);
    obs_gauge(&trace, "bench.scaling", scaling);
    obs_gauge(&trace, "bench.checkpoint_tax", ckpt_tax);
    obs_gauge(&trace, "bench.jobs_per_sec", jobs_per_sec);
    std::ofstream out(opt.telemetry_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.telemetry_path.c_str());
      return 1;
    }
    TelemetryMeta meta;
    meta.tool = "bench_service";
    meta.run = {{"smoke", opt.smoke ? "true" : "false"},
                {"seed", std::to_string(opt.seed)},
                {"workers", std::to_string(pooled.workers)},
                {"flood_cap", std::to_string(opt.flood_cap)}};
    write_telemetry_json(out, trace, meta);
    std::fprintf(stderr, "telemetry written to %s\n",
                 opt.telemetry_path.c_str());
  }

  // The smoke gates: the equivalence claim, the exact admission ledger,
  // and the codec actually being exercised on the checkpointed pass.
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: service results differ from the direct engine\n");
    return 1;
  }
  if (flood_stats.jobs_accepted != expect_accepted ||
      flood_stats.jobs_rejected_overload !=
          tenants.size() - expect_accepted) {
    std::fprintf(
        stderr,
        "FAIL: flood ledger off: accepted %llu (want %zu), rejected %llu\n",
        static_cast<unsigned long long>(flood_stats.jobs_accepted),
        expect_accepted,
        static_cast<unsigned long long>(flood_stats.jobs_rejected_overload));
    return 1;
  }
  if (flood_stats.queue_depth_peak > opt.flood_cap) {
    std::fprintf(stderr, "FAIL: flood queue peak %zu exceeds the cap %zu\n",
                 flood_stats.queue_depth_peak, opt.flood_cap);
    return 1;
  }
  if (flood_stats.jobs_completed != flood_stats.jobs_accepted ||
      flood_stats.jobs_failed != 0) {
    std::fprintf(stderr, "FAIL: flood jobs did not all complete\n");
    return 1;
  }
  if (ckpt_stats.checkpoints_written == 0) {
    std::fprintf(stderr,
                 "FAIL: checkpointed pass never touched the codec\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::BenchOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--jobs") {
        opt.jobs = xh::parse_size(next());
      } else if (arg == "--cells") {
        opt.cells = xh::parse_size(next());
      } else if (arg == "--patterns") {
        opt.patterns = xh::parse_size(next());
      } else if (arg == "--density") {
        opt.density = xh::parse_f64(next());
      } else if (arg == "--rounds") {
        opt.rounds = xh::parse_size(next());
      } else if (arg == "--workers") {
        opt.workers = xh::parse_size(next());
      } else if (arg == "--flood-cap") {
        opt.flood_cap = xh::parse_size(next());
      } else if (arg == "--seed") {
        opt.seed = xh::parse_u64(next());
      } else if (arg == "--telemetry") {
        opt.telemetry_path = next();
      } else if (arg == "--smoke") {
        opt.smoke = true;
        opt.jobs = 12;
        opt.cells = 4'000;
        opt.patterns = 300;
        opt.rounds = 8;
        opt.flood_cap = 3;
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return xh::run(opt);
}
