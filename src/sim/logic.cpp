#include "sim/logic.hpp"

#include "util/check.hpp"

namespace xh {

char to_char(Lv v) {
  switch (v) {
    case Lv::k0: return '0';
    case Lv::k1: return '1';
    case Lv::kX: return 'X';
    case Lv::kZ: return 'Z';
  }
  return '?';
}

Lv lv_from_char(char c) {
  switch (c) {
    case '0': return Lv::k0;
    case '1': return Lv::k1;
    case 'x':
    case 'X': return Lv::kX;
    case 'z':
    case 'Z': return Lv::kZ;
    default:
      XH_REQUIRE(false, std::string("invalid logic character '") + c + "'");
  }
  return Lv::kX;
}

Lv lv_not(Lv a) {
  a = absorb_z(a);
  if (a == Lv::k0) return Lv::k1;
  if (a == Lv::k1) return Lv::k0;
  return Lv::kX;
}

Lv lv_and(Lv a, Lv b) {
  a = absorb_z(a);
  b = absorb_z(b);
  if (a == Lv::k0 || b == Lv::k0) return Lv::k0;
  if (a == Lv::k1 && b == Lv::k1) return Lv::k1;
  return Lv::kX;
}

Lv lv_or(Lv a, Lv b) {
  a = absorb_z(a);
  b = absorb_z(b);
  if (a == Lv::k1 || b == Lv::k1) return Lv::k1;
  if (a == Lv::k0 && b == Lv::k0) return Lv::k0;
  return Lv::kX;
}

Lv lv_xor(Lv a, Lv b) {
  a = absorb_z(a);
  b = absorb_z(b);
  if (!is_definite(a) || !is_definite(b)) return Lv::kX;
  return a == b ? Lv::k0 : Lv::k1;
}

Lv lv_mux(Lv select, Lv in0, Lv in1) {
  select = absorb_z(select);
  in0 = absorb_z(in0);
  in1 = absorb_z(in1);
  if (select == Lv::k0) return in0;
  if (select == Lv::k1) return in1;
  if (is_definite(in0) && in0 == in1) return in0;
  return Lv::kX;
}

Lv lv_tristate(Lv enable, Lv data) {
  enable = absorb_z(enable);
  if (enable == Lv::k0) return Lv::kZ;
  if (enable == Lv::k1) return absorb_z(data);
  return Lv::kX;
}

}  // namespace xh
