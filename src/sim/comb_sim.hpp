// Scalar four-valued evaluation of the combinational cloud of a netlist.
//
// Sources are primary inputs and DFF outputs (present state). One call to
// evaluate() computes every net and the DFF next-state values; sequential
// behaviour (scan shifting, capture cycles) is layered on top by the scan
// module, which repeatedly loads state and re-evaluates.
#pragma once

#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace xh {

/// Scalar reference simulator. Prioritizes clarity over speed; the parallel
/// simulator is the fast path and is tested against this one.
class CombSim {
 public:
  explicit CombSim(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Sets a primary input value.
  void set_input(GateId input, Lv value);
  /// Sets all primary inputs at once (order of netlist().inputs()).
  void set_inputs(const std::vector<Lv>& values);

  /// Sets a DFF present-state value.
  void set_state(GateId dff, Lv value);
  /// Sets every DFF present state to @p value (e.g. all-X power-up).
  void set_all_state(Lv value);

  /// Evaluates the combinational cloud; values and next states refresh.
  void evaluate();

  /// Value of any net after evaluate(). DFFs report present state.
  Lv value(GateId id) const;

  /// DFF next state (the evaluated D input) after evaluate().
  Lv next_state(GateId dff) const;

  /// Copies every DFF next state into its present state (a capture clock
  /// without re-evaluating). Typically followed by evaluate().
  void clock();

  /// Optional single stuck-at fault injection: forces the output of @p gate
  /// to @p value before fanout sees it. Pass std::nullopt to clear.
  struct Fault {
    GateId gate;
    Lv value;
  };
  void inject(std::optional<Fault> fault);

 private:
  Lv eval_gate(GateId id) const;

  const Netlist* nl_;
  std::vector<Lv> values_;
  std::vector<Lv> state_;       // indexed by gate id, DFFs only meaningful
  std::vector<Lv> next_state_;  // same indexing
  std::optional<Fault> fault_;
  bool evaluated_ = false;
};

}  // namespace xh
