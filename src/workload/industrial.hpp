// Synthetic industrial X-distributions.
//
// The paper evaluates on three proprietary designs (CKT-A/B/C); only their
// geometry, X-density and the Section 3 correlation structure are published.
// This generator reproduces those published statistics: a configurable share
// of the X budget is placed in *clusters* — groups of scan cells that capture
// X under an identical set of patterns (the inter-correlation the method
// exploits; cf. the 177-cell / 406-pattern cluster of Section 3) — and the
// remainder is scattered uniformly (intractable background X's that end up
// leaking into the X-canceling MISR).
//
// Geometries are reverse-engineered from Table 1 (all three designs have
// chain length 481; see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>

#include "response/geometry.hpp"
#include "response/x_matrix.hpp"

namespace xh {

struct WorkloadProfile {
  std::string name;
  ScanGeometry geometry;
  std::size_t num_patterns = 3000;
  /// Target fraction of all response bits that are X.
  double x_density = 0.01;
  /// Share of the X budget placed into pattern-aligned cell clusters.
  double clustered_fraction = 0.5;
  /// Cluster shape (means; actual sizes jitter ±50%).
  std::size_t cluster_cells_mean = 100;
  std::size_t cluster_patterns_mean = 350;
  std::uint64_t seed = 1;

  std::uint64_t target_total_x() const {
    return static_cast<std::uint64_t>(
        x_density * static_cast<double>(geometry.num_cells()) *
        static_cast<double>(num_patterns));
  }
};

/// CKT-A: 505,050 cells (1050 × 481), 0.05 % X-density. Low density, strong
/// correlation: the X-canceling baseline is already cheap here.
WorkloadProfile ckt_a_profile();

/// CKT-B: 36,075 cells (75 × 481), 2.75 % X-density — the Section 3 example
/// circuit.
WorkloadProfile ckt_b_profile();

/// CKT-C: 97,643 cells (203 × 481), 2.38 % X-density.
WorkloadProfile ckt_c_profile();

/// Shrinks a profile by ~@p factor in cells and patterns (for fast tests);
/// densities and correlation structure are preserved.
WorkloadProfile scaled_profile(WorkloadProfile profile, double factor);

/// Generates the X-location matrix for a profile. Deterministic in the
/// profile (including seed). The realized total X count lands within ~1 % of
/// target_total_x().
XMatrix generate_workload(const WorkloadProfile& profile);

}  // namespace xh
