// Dense GF(2) matrix with Gaussian elimination that tracks row combinations.
//
// This is the algebraic engine behind the X-canceling MISR (Yang & Touba,
// TCAD 2012): each MISR bit is a linear combination of scan-cell symbols; the
// X-dependency part forms a matrix whose left null space (row combinations
// that XOR to zero) yields X-free signatures.
//
// Everything here is constexpr: tests/static/ proves the elimination
// invariants (combination tracking, canonical pivots, rank–nullity, null
// rows really cancel) at compile time, so the core algebra of the paper is
// checked by the compiler on every build.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/bitvec.hpp"
#include "util/check.hpp"

namespace xh {

/// Row-major dense matrix over GF(2).
class Gf2Matrix {
 public:
  constexpr Gf2Matrix() = default;

  /// rows × cols zero matrix.
  constexpr Gf2Matrix(std::size_t rows, std::size_t cols)
      : cols_(cols), rows_(rows, BitVec(cols)) {}

  /// Builds from explicit rows; all rows must share one size.
  explicit constexpr Gf2Matrix(std::vector<BitVec> rows)
      : rows_(std::move(rows)) {
    if (!rows_.empty()) {
      cols_ = rows_.front().size();
      for (const auto& r : rows_) {
        XH_REQUIRE(r.size() == cols_, "all matrix rows must share one width");
      }
    }
  }

  constexpr std::size_t rows() const { return rows_.size(); }
  constexpr std::size_t cols() const { return cols_; }

  constexpr const BitVec& row(std::size_t r) const {
    XH_REQUIRE(r < rows_.size(), "row index out of range");
    return rows_[r];
  }

  constexpr BitVec& row(std::size_t r) {
    XH_REQUIRE(r < rows_.size(), "row index out of range");
    return rows_[r];
  }

  constexpr bool get(std::size_t r, std::size_t c) const {
    return row(r).get(c);
  }

  constexpr void set(std::size_t r, std::size_t c, bool value = true) {
    row(r).set(c, value);
  }

  constexpr void append_row(BitVec new_row) {
    if (rows_.empty() && cols_ == 0) {
      cols_ = new_row.size();
    }
    XH_REQUIRE(new_row.size() == cols_, "appended row width mismatch");
    rows_.push_back(std::move(new_row));
  }

  /// Parses rows from strings of '0'/'1' (e.g. {"1100", "0101"}).
  static constexpr Gf2Matrix from_strings(
      const std::vector<std::string>& rows) {
    std::vector<BitVec> parsed;
    parsed.reserve(rows.size());
    for (const auto& s : rows) parsed.push_back(BitVec::from_string(s));
    return Gf2Matrix(std::move(parsed));
  }

  /// rank over GF(2) (destructive elimination on a copy).
  constexpr std::size_t rank() const;

  constexpr bool operator==(const Gf2Matrix& other) const = default;

  constexpr std::string to_string() const {
    std::string out;
    for (const auto& r : rows_) {
      out += r.to_string();
      out.push_back('\n');
    }
    return out;
  }

 private:
  std::size_t cols_ = 0;
  std::vector<BitVec> rows_;
};

/// Result of tracked Gaussian elimination.
///
/// `reduced.row(i)` equals the XOR of the original rows selected by
/// `combination[i]`. Rows with `reduced.row(i).none()` are members of the left
/// null space: XORing those original rows cancels every column — for the
/// X-canceling MISR this means an X-free signature combination.
struct Elimination {
  Gf2Matrix reduced;
  /// combination[i] is a BitVec over original row indices.
  std::vector<BitVec> combination;
  std::size_t rank = 0;

  /// Indices i with reduced.row(i) all-zero (null-space rows).
  constexpr std::vector<std::size_t> null_rows() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < reduced.rows(); ++i) {
      if (reduced.row(i).none()) out.push_back(i);
    }
    return out;
  }
};

/// The constexpr reference implementations of elimination and solving.
///
/// These are the semantic ground truth the dispatched kernel layer
/// (src/kernels/) must reproduce bit-for-bit: kernels::eliminate and
/// kernels::solve execute exactly this code under constant evaluation, and
/// the randomized differential suite in tests/kernels/ pins the runtime
/// backends (including the M4RM variant) against it. Callers should use the
/// kernels:: entry points; the _reference spellings exist so the kernel
/// wrappers (and the deprecated shims in src/kernels/compat.hpp) have a
/// live implementation without shadowing the new API.
namespace gf2_ref {

/// Forward Gaussian elimination with full row-combination tracking.
constexpr Elimination eliminate_reference(const Gf2Matrix& m) {
  Elimination result;
  result.reduced = m;
  result.combination.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    BitVec id(m.rows());
    id.set(r);
    result.combination.push_back(std::move(id));
  }

  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a row at or below pivot_row with a 1 in this column.
    std::size_t sel = pivot_row;
    while (sel < m.rows() && !result.reduced.get(sel, col)) ++sel;
    if (sel == m.rows()) continue;

    std::swap(result.reduced.row(pivot_row), result.reduced.row(sel));
    std::swap(result.combination[pivot_row], result.combination[sel]);

    // Eliminate this column from every other row (full reduction keeps the
    // surviving rows canonical, which simplifies downstream reasoning).
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r != pivot_row && result.reduced.get(r, col)) {
        result.reduced.row(r) ^= result.reduced.row(pivot_row);
        result.combination[r] ^= result.combination[pivot_row];
      }
    }
    ++pivot_row;
  }
  result.rank = pivot_row;
  return result;
}

/// Convenience: the row combinations (over original rows) whose XOR is zero
/// in every column of @p m — i.e. a basis of the left null space.
constexpr std::vector<BitVec> x_free_combinations_reference(
    const Gf2Matrix& m) {
  const Elimination e = eliminate_reference(m);
  std::vector<BitVec> combos;
  for (const std::size_t r : e.null_rows()) {
    combos.push_back(e.combination[r]);
  }
  return combos;
}

/// Solves A·x = b over GF(2). Returns one solution (free variables set to 0)
/// or nullopt when the system is inconsistent. @p b must have m.rows() bits;
/// the solution has m.cols() bits.
constexpr std::optional<BitVec> solve_reference(const Gf2Matrix& m,
                                                const BitVec& b) {
  XH_REQUIRE(b.size() == m.rows(), "right-hand side height mismatch");
  // Eliminate the augmented system [A | b] without materializing it: the
  // tracked combinations tell us how b transforms alongside each row.
  const Elimination e = eliminate_reference(m);
  BitVec x(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    // Transformed rhs bit for this reduced row.
    bool rhs = false;
    for (const std::size_t orig : e.combination[r].set_bits()) {
      rhs ^= b.get(orig);
    }
    const std::size_t pivot = e.reduced.row(r).find_first();
    if (pivot == m.cols()) {
      if (rhs) return std::nullopt;  // 0 = 1: inconsistent
      continue;
    }
    // Rows are fully reduced, so each pivot column appears in exactly one
    // row; setting x[pivot] = rhs (free variables stay 0) satisfies it as
    // long as the row's non-pivot columns are free (they are: full
    // reduction leaves non-pivot columns only in rows whose pivots precede
    // them, and those contributions are fixed by the zero assignment).
    if (rhs) {
      // Account for non-pivot columns already assigned: with free vars at 0
      // and pivots assigned row-by-row in increasing pivot order, no pivot
      // column appears in another reduced row, so the assignment is direct.
      x.set(pivot);
    }
  }
  // Verify (cheap, and guards the subtle free-variable reasoning above).
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (((m.row(r) & x).count() % 2 != 0) != b.get(r)) {
      return std::nullopt;
    }
  }
  return x;
}

}  // namespace gf2_ref

constexpr std::size_t Gf2Matrix::rank() const {
  return gf2_ref::eliminate_reference(*this).rank;
}

// The deprecated unqualified eliminate / x_free_combinations / solve
// spellings now live in src/kernels/compat.hpp, away from the Gf2Matrix
// declaration, so including this header never drags them into scope.

}  // namespace xh
