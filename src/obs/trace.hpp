// Observability spine: metrics and tracing for the analysis pipeline.
//
// The paper's whole argument is an accounting identity —
//   TotalBits = L·C·#Partitions + m·q·X_leaked/(m−q)
// — and xh::Trace is the runtime ledger that proves where those bits,
// Gaussian-elimination row operations and partitioner probe rejections
// actually go. One Trace instance is threaded through PipelineContext the
// same way Diagnostics already is: nullptr means off, and every
// instrumentation helper below degrades to a branch on a null pointer.
//
// Instrument families:
//   * counters    — monotonic uint64 totals, registered by name
//   * gauges      — last-write-wins doubles (workload facts, derived ratios)
//   * histograms  — power-of-two bucketed uint64 samples (size distributions)
//   * spans       — hierarchical scoped timers; nested ScopedSpans join
//                   their names into a "parent/child" path
//
// Determinism: counter/gauge/histogram values are pure functions of the
// input data and configuration — they are safe to golden-test. Span timers
// read the steady clock; their *values* are wall-clock noise by design, but
// they feed exclusively into telemetry output, never back into any
// computation (the XH-DET-001 suppression proof lives in trace.cpp).
//
// Threading: a Trace is owned by one pipeline thread and is NOT internally
// synchronized. Stages that fan work out across a ThreadPool must count at
// their deterministic merge points, not inside pool tasks.
//
// Compile-time off switch: building with -DXH_OBS_NOOP selects no-op
// instrumentation helpers (empty handle types, empty ScopedSpan) so every
// call site compiles to nothing. The helpers live in a distinct inline
// namespace per mode, so mixed translation units cannot collide. The Trace
// registry class itself is always real — telemetry consumers keep working.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace xh {

/// Monotonic event total.
struct TraceCounter {
  std::uint64_t value = 0;
};

/// Last-write-wins measurement (workload facts, derived ratios).
struct TraceGauge {
  double value = 0.0;
};

/// Power-of-two bucketed uint64 samples: bucket 0 counts zeros, bucket i>0
/// counts samples in [2^(i-1), 2^i).
struct TraceHistogram {
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v);

  /// Lower bound of bucket @p i (0, then 2^(i-1)).
  static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
};

/// Accumulated wall-clock time of one span path.
struct TraceTimer {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double max_ms() const { return static_cast<double>(max_ns) / 1e6; }
};

/// Named-instrument registry. Names are stable identifiers (the canonical
/// list lives in README "Telemetry"); registries are ordered maps so every
/// serialization of the same run is byte-identical.
class Trace {
 public:
  TraceCounter& counter(std::string_view name);
  TraceGauge& gauge(std::string_view name);
  TraceHistogram& histogram(std::string_view name);

  /// Span bookkeeping (normally driven by ScopedSpan, not called directly).
  /// Enter pushes "parent/child" onto the path stack; exit pops and folds
  /// the elapsed time into the timer registered under the joined path.
  void span_enter(std::string_view name);
  void span_exit(std::uint64_t elapsed_ns);
  std::size_t open_spans() const { return span_stack_.size(); }

  const std::map<std::string, TraceCounter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, TraceGauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, TraceHistogram, std::less<>>& histograms()
      const {
    return histograms_;
  }
  const std::map<std::string, TraceTimer, std::less<>>& timers() const {
    return timers_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timers_.empty();
  }
  void clear();

 private:
  std::map<std::string, TraceCounter, std::less<>> counters_;
  std::map<std::string, TraceGauge, std::less<>> gauges_;
  std::map<std::string, TraceHistogram, std::less<>> histograms_;
  std::map<std::string, TraceTimer, std::less<>> timers_;
  std::vector<std::string> span_stack_;
};

#ifndef XH_OBS_NOOP

/// Live instrumentation. A distinct inline namespace per mode keeps the
/// one-definition rule intact when some translation units build with
/// XH_OBS_NOOP and others do not.
inline namespace obs_live {

/// Pre-resolved counter handle for hot loops: one registry lookup up front,
/// then a null-checked increment per event.
using TraceCounterHandle = TraceCounter*;

inline TraceCounterHandle obs_counter(Trace* trace, std::string_view name) {
  return trace != nullptr ? &trace->counter(name) : nullptr;
}
inline void obs_add(TraceCounterHandle handle, std::uint64_t n = 1) {
  if (handle != nullptr) handle->value += n;
}

/// One-shot conveniences (cold paths; one registry lookup per call).
inline void obs_count(Trace* trace, std::string_view name,
                      std::uint64_t n = 1) {
  if (trace != nullptr) trace->counter(name).value += n;
}
inline void obs_gauge(Trace* trace, std::string_view name, double value) {
  if (trace != nullptr) trace->gauge(name).value = value;
}
inline void obs_record(Trace* trace, std::string_view name,
                       std::uint64_t sample) {
  if (trace != nullptr) trace->histogram(name).record(sample);
}

/// Scoped hierarchical timer. Construction enters a span; destruction exits
/// it and folds the elapsed steady-clock time into the joined-path timer.
/// With a null trace both ends are no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace obs_live

#else  // XH_OBS_NOOP

/// Compiled-out instrumentation: empty handles, empty bodies. Every helper
/// still type-checks against the live signatures, so instrumented code
/// builds unchanged; tests/obs/obs_noop_test.cpp asserts this surface stays
/// zero-state and zero-size.
inline namespace obs_noop {

struct TraceCounterHandle {};

inline TraceCounterHandle obs_counter(Trace*, std::string_view) {
  return {};
}
inline void obs_add(TraceCounterHandle, std::uint64_t = 1) {}
inline void obs_count(Trace*, std::string_view, std::uint64_t = 1) {}
inline void obs_gauge(Trace*, std::string_view, double) {}
inline void obs_record(Trace*, std::string_view, std::uint64_t) {}

class ScopedSpan {
 public:
  ScopedSpan(Trace*, std::string_view) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

}  // namespace obs_noop

#endif  // XH_OBS_NOOP

}  // namespace xh
