// Tests for the per-function CFG builder and dataflow framework behind the
// flow-sensitive lint tier (DESIGN.md §13). The table-driven cases pin the
// lowering of each control construct at the shape level (node kinds,
// connectivity, loop-head marking); the self-scan asserts the builder
// survives the real repository — every function in src/ must lower to a
// connected CFG, the invariant the XH-FLOW rules depend on.
#include "lint/cfg.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/dataflow.hpp"
#include "lint/lint_core.hpp"
#include "lint/text_scan.hpp"

namespace fs = std::filesystem;

namespace {

using xh::lint::CfgNode;
using xh::lint::FunctionCfg;

std::vector<FunctionCfg> cfgs_of(const std::string& source) {
  return xh::lint::build_cfgs(xh::lint::clean(source));
}

FunctionCfg only_cfg(const std::string& source) {
  const auto cfgs = cfgs_of(source);
  EXPECT_EQ(cfgs.size(), 1u) << "expected exactly one function";
  return cfgs.empty() ? FunctionCfg{} : cfgs.front();
}

std::size_t count_kind(const FunctionCfg& cfg, CfgNode::Kind kind) {
  std::size_t n = 0;
  for (const auto& node : cfg.nodes) {
    if (node.kind == kind) ++n;
  }
  return n;
}

std::size_t count_loop_heads(const FunctionCfg& cfg) {
  std::size_t n = 0;
  for (const auto& node : cfg.nodes) {
    if (node.is_loop_head) ++n;
  }
  return n;
}

// ---- table-driven construct coverage ------------------------------------

struct ShapeCase {
  const char* label;
  const char* source;
  std::size_t returns;    // expected kReturn node count
  std::size_t loop_heads; // expected loop-head kCondition count
  std::size_t cases;      // expected kCase node count
};

const ShapeCase kShapeCases[] = {
    {"early return",
     "int f(int a) {\n"
     "  if (a < 0) {\n"
     "    return -1;\n"
     "  }\n"
     "  return a * 2;\n"
     "}\n",
     2, 0, 0},
    {"nested loops",
     "int sum(int n) {\n"
     "  int total = 0;\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    int j = 0;\n"
     "    while (j < i) {\n"
     "      total += j;\n"
     "      ++j;\n"
     "    }\n"
     "  }\n"
     "  return total;\n"
     "}\n",
     1, 2, 0},
    {"switch fallthrough",
     "int pick(int k) {\n"
     "  int v = 0;\n"
     "  switch (k) {\n"
     "    case 0:\n"
     "      v = 1;\n"
     "      break;\n"
     "    case 1:\n"
     "    case 2:\n"
     "      v = 2;\n"
     "      break;\n"
     "    default:\n"
     "      v = 3;\n"
     "  }\n"
     "  return v;\n"
     "}\n",
     1, 0, 4},
    {"ternary stays one statement",
     "int clamp(int a, int lo) {\n"
     "  const int r = a < lo ? lo : a;\n"
     "  return r;\n"
     "}\n",
     1, 0, 0},
    {"exception path",
     "int parse(const char* s) {\n"
     "  try {\n"
     "    if (s == nullptr) {\n"
     "      throw bad_input{};\n"
     "    }\n"
     "    return decode(s);\n"
     "  } catch (const bad_input& e) {\n"
     "    return -1;\n"
     "  }\n"
     "}\n",
     2, 0, 0},
    {"do-while",
     "int drain(Queue& q) {\n"
     "  int n = 0;\n"
     "  do {\n"
     "    ++n;\n"
     "  } while (q.pop());\n"
     "  return n;\n"
     "}\n",
     1, 1, 0},
};

TEST(CfgShapes, EveryConstructLowersConnected) {
  for (const ShapeCase& c : kShapeCases) {
    const FunctionCfg cfg = only_cfg(c.source);
    ASSERT_GE(cfg.nodes.size(), 2u) << c.label;
    EXPECT_TRUE(xh::lint::cfg_connected(cfg))
        << c.label << ":\n" << xh::lint::to_string(cfg);
    EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kReturn), c.returns) << c.label;
    EXPECT_EQ(count_loop_heads(cfg), c.loop_heads) << c.label;
    EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kCase), c.cases) << c.label;
  }
}

TEST(CfgShapes, EarlyReturnSkipsTail) {
  const FunctionCfg cfg = only_cfg(
      "int f(int a) {\n"
      "  if (a < 0) {\n"
      "    return -1;\n"
      "  }\n"
      "  tail();\n"
      "  return 0;\n"
      "}\n");
  // The early return's only successor is the exit: the tail statement is
  // not on its path.
  for (const auto& node : cfg.nodes) {
    if (node.kind == CfgNode::Kind::kReturn) {
      ASSERT_EQ(node.succ.size(), 1u);
      EXPECT_EQ(node.succ.front(), FunctionCfg::kExit);
    }
  }
}

TEST(CfgShapes, SwitchFallthroughChainsCases) {
  const FunctionCfg cfg = only_cfg(
      "int pick(int k) {\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      first();\n"
      "    case 1:\n"
      "      second();\n"
      "      break;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  // `first()` falls through into `case 1`: some path visits both calls.
  std::size_t first_node = xh::lint::kCfgNone;
  std::size_t second_node = xh::lint::kCfgNone;
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (xh::lint::has_call(cfg.nodes[n].text, "first")) first_node = n;
    if (xh::lint::has_call(cfg.nodes[n].text, "second")) second_node = n;
  }
  ASSERT_NE(first_node, xh::lint::kCfgNone);
  ASSERT_NE(second_node, xh::lint::kCfgNone);
  const auto reach = xh::lint::reachable_from(cfg, first_node);
  EXPECT_TRUE(std::find(reach.begin(), reach.end(), second_node) !=
              reach.end())
      << xh::lint::to_string(cfg);
}

TEST(CfgShapes, UnboundedLoopIsMarked) {
  const FunctionCfg cfg = only_cfg(
      "void spin() {\n"
      "  for (;;) {\n"
      "    step();\n"
      "  }\n"
      "}\n");
  bool found = false;
  for (const auto& node : cfg.nodes) {
    if (node.is_loop_head) {
      EXPECT_TRUE(node.loop_unbounded);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfgShapes, RangeForHeaderIsLoopHead) {
  const FunctionCfg cfg = only_cfg(
      "int total(const std::vector<int>& v) {\n"
      "  int t = 0;\n"
      "  for (const int x : v) {\n"
      "    t += x;\n"
      "  }\n"
      "  return t;\n"
      "}\n");
  ASSERT_EQ(count_loop_heads(cfg), 1u);
  for (const auto& node : cfg.nodes) {
    if (node.is_loop_head) {
      EXPECT_FALSE(node.loop_unbounded);
      EXPECT_NE(xh::lint::find_range_colon(node.text, 0), std::string::npos);
    }
  }
}

// ---- dataflow over the CFG ----------------------------------------------

TEST(CfgDataflow, GuardStateTracksScopeAndManualLocks) {
  const FunctionCfg cfg = only_cfg(
      "void f() {\n"
      "  unguarded();\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    guarded();\n"
      "  }\n"
      "  after();\n"
      "}\n");
  const xh::lint::GuardAnalysis ga = xh::lint::analyze_guards(cfg);
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const std::string& text = cfg.nodes[n].text;
    if (xh::lint::has_call(text, "unguarded") ||
        xh::lint::has_call(text, "after")) {
      EXPECT_EQ(xh::lint::state_at(ga, cfg, n), xh::lint::GuardState::kUnlocked)
          << text;
    }
    if (xh::lint::has_call(text, "guarded")) {
      EXPECT_EQ(xh::lint::state_at(ga, cfg, n), xh::lint::GuardState::kLocked)
          << text;
    }
  }
}

TEST(CfgDataflow, CycleNodesEmptyOffLoop) {
  const FunctionCfg cfg = only_cfg(
      "int f(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    body(i);\n"
      "  }\n"
      "  return n;\n"
      "}\n");
  std::size_t head = xh::lint::kCfgNone;
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (cfg.nodes[n].is_loop_head) head = n;
  }
  ASSERT_NE(head, xh::lint::kCfgNone);
  const auto cyc = xh::lint::cycle_nodes(cfg, head);
  EXPECT_FALSE(cyc.empty());
  // The trailing return is NOT on the cycle.
  for (const std::size_t n : cyc) {
    EXPECT_NE(cfg.nodes[n].kind, CfgNode::Kind::kReturn);
  }
}

TEST(CfgDataflow, NodiscardAutoFiresThroughFlowContext) {
  // The auto+[[nodiscard]] half of XH-FLOW-001 needs the project model's
  // symbol index; scan_file alone can't see it. Drive flow_findings with an
  // explicit FlowContext the way analyze_tree does.
  const xh::lint::SourceFile file{
      "src/service/example.cpp",
      "void f() {\n"
      "  const auto outcome = submit(1);\n"
      "}\n"};
  xh::lint::FlowContext flow;
  flow.nodiscard_functions.push_back("submit");
  const auto findings =
      xh::lint::flow_findings(file, xh::lint::clean(file.content), flow);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "XH-FLOW-001");
}

// ---- deliberate approximations, pinned ----------------------------------
// These cases document the CFG builder's stated simplifications (see the
// cfg.hpp header comment). If one of these starts failing, the
// approximation changed — update the header contract and every rule that
// leans on it, not just the test.

TEST(CfgApproximations, GotoIsNotModeled) {
  // `goto` lowers to a plain statement node and the label line to another;
  // no edge is created between them. The function must still lower and
  // stay connected (the label's node is reached by fallthrough).
  const FunctionCfg cfg = only_cfg(
      "int f(int n) {\n"
      "  if (n < 0) {\n"
      "    goto done;\n"
      "  }\n"
      "  work(n);\n"
      "done:\n"
      "  return n;\n"
      "}\n");
  EXPECT_TRUE(xh::lint::cfg_connected(cfg)) << xh::lint::to_string(cfg);
  // No node carries a goto-shaped edge: the statement containing `goto`
  // has only its fallthrough successor(s).
  for (const auto& node : cfg.nodes) {
    if (node.text.find("goto") != std::string::npos) {
      EXPECT_EQ(node.kind, CfgNode::Kind::kStatement) << node.text;
    }
  }
}

TEST(CfgApproximations, LambdaBodyIsOneOpaqueStatement) {
  // Control flow inside a lambda is invisible: the unbounded loop in the
  // body must NOT mark any loop head on the enclosing function's CFG, but
  // the body text stays attached to the statement node.
  const FunctionCfg cfg = only_cfg(
      "void f() {\n"
      "  auto task = [&] { for (;;) { spin(); } };\n"
      "  use(task);\n"
      "}\n");
  EXPECT_EQ(count_loop_heads(cfg), 0u) << xh::lint::to_string(cfg);
  bool body_attached = false;
  for (const auto& node : cfg.nodes) {
    if (node.text.find("spin") != std::string::npos) body_attached = true;
  }
  EXPECT_TRUE(body_attached);
}

TEST(CfgApproximations, ThrowEdgesToExitEvenWithAHandler) {
  // A throw inside try edges to the function exit, never to the enclosing
  // catch; the handler is additionally reachable from the try block. Both
  // directions are over-approximations the rules treat as may-reach.
  const FunctionCfg cfg = only_cfg(
      "int f() {\n"
      "  try {\n"
      "    throw Boom{};\n"
      "  } catch (const Boom& b) {\n"
      "    handle(b);\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  std::size_t throw_node = xh::lint::kCfgNone;
  std::size_t handler = xh::lint::kCfgNone;
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (cfg.nodes[n].kind == CfgNode::Kind::kThrow) throw_node = n;
    if (cfg.nodes[n].text.find("handle") != std::string::npos) handler = n;
  }
  ASSERT_NE(throw_node, xh::lint::kCfgNone) << xh::lint::to_string(cfg);
  ASSERT_NE(handler, xh::lint::kCfgNone) << xh::lint::to_string(cfg);
  const auto& succ = cfg.nodes[throw_node].succ;
  EXPECT_NE(std::find(succ.begin(), succ.end(), FunctionCfg::kExit),
            succ.end())
      << xh::lint::to_string(cfg);
  EXPECT_EQ(std::find(succ.begin(), succ.end(), handler), succ.end())
      << "throw must NOT edge into its handler: "
      << xh::lint::to_string(cfg);
}

TEST(CfgHeads, ReturnTypeIsCaptured) {
  // The interprocedural tier keys status propagation off the recorded
  // last-word return type; pin the shapes it relies on.
  const auto cfgs = cfgs_of(
      "xh::Diagnostics Svc::check() { return {}; }\n"
      "StatusOr<int>& lookup() { return cache_; }\n"
      "auto Svc::relay() { return check(); }\n"
      "Svc::Svc() { init(); }\n");
  ASSERT_EQ(cfgs.size(), 4u);
  EXPECT_EQ(cfgs[0].return_type, "Diagnostics");
  EXPECT_EQ(cfgs[1].return_type, "StatusOr");
  EXPECT_EQ(cfgs[2].return_type, "auto");
  EXPECT_EQ(cfgs[3].return_type, "");  // constructors have none
}

// ---- self-scan over the real tree ---------------------------------------

TEST(CfgSelfScan, EverySrcFunctionLowersConnected) {
  const fs::path root = fs::path(XH_LINT_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::is_directory(root));
  std::size_t functions = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto cfgs = cfgs_of(ss.str());
    for (const FunctionCfg& cfg : cfgs) {
      ++functions;
      EXPECT_TRUE(xh::lint::cfg_connected(cfg))
          << entry.path() << " '" << cfg.name << "' (line " << cfg.line
          << "):\n"
          << xh::lint::to_string(cfg);
      EXPECT_GE(cfg.nodes.size(), 2u);
    }
  }
  // The tree has hundreds of functions; a collapse of the extractor to
  // near-zero would silently gut the flow tier, so pin a floor.
  EXPECT_GE(functions, 200u);
}

}  // namespace
