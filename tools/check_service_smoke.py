#!/usr/bin/env python3
"""CI gate for a queue-flood run of the partition service (stdlib only).

    check_service_smoke.py TELEMETRY MAX_QUEUE

TELEMETRY is an xh-telemetry/1 document produced by a flooded service run
(`bench_service --smoke --telemetry ...` or `xhybrid_cli serve --max-queue
Q --telemetry ...` over more jobs than Q admits). The gate asserts the
backpressure contract from DESIGN.md §11:

  * the flood actually overflowed — service.jobs_rejected_overload > 0
    (a gate that never rejects is not testing admission);
  * admission stayed bounded — service.queue_depth_peak <= MAX_QUEUE;
  * every admitted job reached a good terminal state — accepted ==
    completed + degraded, with zero failures;
  * the service drained — the final service.queue_depth gauge is 0.

Exit codes: 0 ok, 1 contract violation, 2 usage error.
"""
import json
import sys

SCHEMA = "xh-telemetry/1"


def fail(msg):
    print(f"check_service_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, cap_text = argv[1], argv[2]
    try:
        cap = int(cap_text)
    except ValueError:
        print(f"check_service_smoke: bad MAX_QUEUE {cap_text!r}",
              file=sys.stderr)
        return 2
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})

    def counter(name):
        value = counters.get(name)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: missing or malformed counter {name}")
        return value

    rejected = counter("service.jobs_rejected_overload")
    accepted = counter("service.jobs_accepted")
    completed = counter("service.jobs_completed")
    degraded = counter("service.jobs_degraded")
    failed = counter("service.jobs_failed")
    cancelled = counter("service.jobs_cancelled")
    peak = gauges.get("service.queue_depth_peak")
    depth = gauges.get("service.queue_depth")

    if rejected == 0:
        fail("flood never overflowed: service.jobs_rejected_overload is 0")
    if not isinstance(peak, (int, float)):
        fail("missing gauge service.queue_depth_peak")
    if peak > cap:
        fail(f"queue peak {peak} exceeds the admission cap {cap}")
    if failed != 0:
        fail(f"{failed} job(s) failed during the flood")
    if accepted != completed + degraded + cancelled:
        fail(f"ledger does not balance: accepted {accepted} != "
             f"completed {completed} + degraded {degraded} + "
             f"cancelled {cancelled}")
    if depth != 0:
        fail(f"service did not drain: final queue_depth is {depth}")

    print(f"check_service_smoke: OK: {path} (accepted {accepted}, "
          f"rejected {rejected}, peak {peak:g} <= cap {cap})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
