// End-to-end hybrid X-handling pipeline and paper-style comparison report.
//
// Analysis mode consumes only X locations (scales to the Table 1 workloads);
// simulation mode additionally applies the masks to a dense response, streams
// it through a real X-canceling MISR, and checks the method's invariants
// (no observable value masked; every extracted signature bit X-free).
//
// The validating simulation overload models the production situation where
// the X locations were *predicted* by simulation but the response came from
// silicon: the response is cross-checked against the declared XMatrix, every
// mismatch is classified into a structured diagnostic, and the pipeline
// degrades gracefully instead of emitting a signature that looks valid but
// is not (DESIGN.md §7).
#pragma once

#include "engine/partition_types.hpp"
#include "engine/pipeline_context.hpp"
#include "misr/x_cancel.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/diagnostics.hpp"

namespace xh {

/// Legacy configuration wrapper. New code should construct a
/// PipelineContext directly; the HybridConfig overloads below build one
/// internally and forward.
struct HybridConfig {
  PartitionerConfig partitioner;  // includes the MisrConfig
};

/// The three columns of Table 1 plus the test-time model, for one workload.
struct HybridReport {
  // Workload facts.
  std::size_t num_patterns = 0;
  std::size_t num_chains = 0;
  std::size_t chain_length = 0;
  std::uint64_t total_x = 0;
  double x_density = 0.0;

  PartitionResult partitioning;

  // Control-bit volumes.
  std::uint64_t masking_only_bits = 0;   // [5]
  double canceling_only_bits = 0.0;      // [12]
  double proposed_bits = 0.0;            // this paper
  double improvement_over_masking = 0.0;    // [5] / proposed
  double improvement_over_canceling = 0.0;  // [12] / proposed

  // Normalized test time (time-multiplexed X-canceling MISR [11]).
  double test_time_canceling_only = 0.0;
  double test_time_proposed = 0.0;
  double test_time_improvement = 0.0;
};

/// Analysis-only pipeline (closed-form accounting on X locations). The
/// context supplies configuration, diagnostics routing and the optional
/// thread pool the partition engine fans out on.
[[nodiscard]] HybridReport run_hybrid_analysis(const XMatrix& xm,
                                               PipelineContext& ctx);

/// Compatibility overload; builds a strict serial context from @p cfg.
[[nodiscard]] [[deprecated("construct a PipelineContext and call "
                           "run_hybrid_analysis(xm, ctx)")]]
HybridReport run_hybrid_analysis(const XMatrix& xm, const HybridConfig& cfg);

/// Classified cross-check of a captured response against declared X
/// locations. Every (pattern, cell) falls into exactly one bucket.
struct XValidation {
  std::uint64_t confirmed_x = 0;   // declared X, observed X
  std::uint64_t undeclared_x = 0;  // observed X the declaration misses
  std::uint64_t missing_x = 0;     // declared X observed deterministic
  std::uint64_t deterministic = 0;  // neither declared nor observed X

  bool clean() const { return undeclared_x == 0 && missing_x == 0; }
};

/// Compares @p response against @p declared cell by cell. Undeclared X's are
/// reported as errors (they corrupt any signature computed from the
/// declaration alone); missing X's as warnings (masks derived from the
/// declaration may hide observable values). Geometry and pattern counts must
/// match (caller misuse otherwise).
[[nodiscard]] XValidation validate_response(const ResponseMatrix& response,
                                            const XMatrix& declared,
                                            Diagnostics* diags = nullptr);

/// Full-simulation pipeline on a dense response.
struct HybridSimulation {
  HybridReport report;
  ResponseMatrix masked_response;    // after per-partition masking
  XCancelResult cancel;              // real MISR session on the masked data
  bool observability_preserved = false;
  std::uint64_t x_entering_misr = 0;  // post-spatial-compaction X count

  // Robustness extensions (meaningful for the validating overload; the
  // trusting overload always reports a clean validation).
  XValidation validation;
  std::uint64_t masked_observable = 0;  // mask-covered cells carrying values
  /// True when any recovery path engaged — mismatched X declarations,
  /// masks hiding observable values, starved or contaminated extractions.
  /// Details are in the Diagnostics collector.
  bool degraded = false;
};

/// Trusting pipeline: X locations are taken from the response itself, so the
/// declared and observed X sets agree by construction. Mask or accounting
/// violations indicate library bugs and throw (legacy fail-fast behavior).
[[nodiscard]] HybridSimulation run_hybrid_simulation(
    const ResponseMatrix& response, PipelineContext& ctx);
[[nodiscard]] [[deprecated("construct a PipelineContext and call "
                           "run_hybrid_simulation(response, ctx)")]]
HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const HybridConfig& cfg);

/// Validating pipeline: partitions and masks are derived from @p declared
/// (the pre-silicon prediction) and then exercised against @p response (what
/// silicon returned). Mismatches are classified into @p diags and recovered
/// from where semantically sound:
///   * undeclared X's flow into the X-canceling MISR, which tracks them
///     symbolically — more stops, but the signature stays X-free;
///   * declared X's that resolved deterministic make masks hide observable
///     values — reported per cell, never silently absorbed;
///   * starved or contaminated extractions retry at later stops.
/// A strict context (ctx.collector() == nullptr) throws on mismatch; a
/// lenient or adopting context degrades gracefully.
[[nodiscard]] HybridSimulation run_hybrid_simulation(
    const ResponseMatrix& response, const XMatrix& declared,
    PipelineContext& ctx);
/// Compatibility overload: @p diags == nullptr selects strict mode.
[[nodiscard]] [[deprecated(
    "construct a PipelineContext (adopt_collector(diags) for the "
    "lenient path) and call run_hybrid_simulation(response, "
    "declared, ctx)")]]
HybridSimulation run_hybrid_simulation(const ResponseMatrix& response,
                                       const XMatrix& declared,
                                       const HybridConfig& cfg,
                                       Diagnostics* diags);

}  // namespace xh
