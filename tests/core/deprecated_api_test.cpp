// Coverage for the deprecated HybridConfig compatibility overloads. The
// tree builds with deprecation-warnings-as-errors and no in-tree caller may
// use these overloads anymore; this file is the one sanctioned exception,
// keeping the compatibility shims exercised until their removal.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/paper_example.hpp"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace xh {
namespace {

HybridConfig paper_cfg() {
  HybridConfig cfg;
  cfg.partitioner.misr = {10, 2};
  return cfg;
}

/// Turns the first deterministic cell of pattern 0 into an X the
/// declaration does not predict.
void inject_undeclared_x(ResponseMatrix& response) {
  for (std::size_t c = 0; c < response.num_cells(); ++c) {
    if (response.get(0, c) != Lv::kX) {
      response.set(0, c, Lv::kX);
      return;
    }
  }
  FAIL() << "no deterministic cell to corrupt";
}

TEST(DeprecatedApi, AnalysisOverloadMatchesContextPath) {
  const XMatrix xm = paper_example_x_matrix();
  const HybridReport legacy = run_hybrid_analysis(xm, paper_cfg());

  PipelineContext ctx(paper_cfg().partitioner);
  const HybridReport modern = run_hybrid_analysis(xm, ctx);

  EXPECT_EQ(legacy.partitioning.partitions.size(),
            modern.partitioning.partitions.size());
  EXPECT_EQ(legacy.partitioning.masked_x, modern.partitioning.masked_x);
  EXPECT_EQ(legacy.partitioning.leaked_x, modern.partitioning.leaked_x);
  EXPECT_DOUBLE_EQ(legacy.proposed_bits, modern.proposed_bits);
}

TEST(DeprecatedApi, TrustingSimulationOverloadMatchesContextPath) {
  const ResponseMatrix response = paper_example_response(5);
  const HybridSimulation legacy = run_hybrid_simulation(response, paper_cfg());

  PipelineContext ctx(paper_cfg().partitioner);
  const HybridSimulation modern = run_hybrid_simulation(response, ctx);

  EXPECT_TRUE(legacy.observability_preserved);
  EXPECT_EQ(legacy.x_entering_misr, modern.x_entering_misr);
  EXPECT_EQ(legacy.cancel.stops, modern.cancel.stops);
  EXPECT_EQ(legacy.cancel.signature.size(), modern.cancel.signature.size());
}

TEST(DeprecatedApi, ValidatingOverloadRoutesDiagnosticsLikeAdoption) {
  ResponseMatrix response = paper_example_response(5);
  const XMatrix declared = XMatrix::from_response(response);
  inject_undeclared_x(response);

  Diagnostics legacy_diags;
  const HybridSimulation legacy =
      run_hybrid_simulation(response, declared, paper_cfg(), &legacy_diags);

  Diagnostics modern_diags;
  PipelineContext ctx(paper_cfg().partitioner);
  ctx.adopt_collector(&modern_diags);
  const HybridSimulation modern =
      run_hybrid_simulation(response, declared, ctx);

  EXPECT_TRUE(legacy.degraded);
  EXPECT_EQ(legacy.validation.undeclared_x, modern.validation.undeclared_x);
  EXPECT_EQ(legacy_diags.count(DiagKind::kUndeclaredX),
            modern_diags.count(DiagKind::kUndeclaredX));
}

TEST(DeprecatedApi, ValidatingOverloadNullDiagsIsStrict) {
  ResponseMatrix response = paper_example_response(5);
  const XMatrix declared = XMatrix::from_response(response);
  inject_undeclared_x(response);
  EXPECT_THROW(
      (void)run_hybrid_simulation(response, declared, paper_cfg(), nullptr),
      std::runtime_error);
}

}  // namespace
}  // namespace xh

#pragma GCC diagnostic pop
