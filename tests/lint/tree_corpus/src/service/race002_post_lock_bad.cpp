// Seeds XH-RACE-002 (b): kick() posts a callable while mu_ is must-held,
// and the deferred callee it resolves to (Gate::work) re-acquires the
// same mutex — the posted work serializes against its own posting scope.
#include <mutex>

#include "service/ipa_seam.hpp"

namespace fixture {

class Gate {
 public:
  void kick(WorkPool& pool);
  void work();

 private:
  std::mutex mu_;
  int pending_ = 0;
};

void Gate::work() {
  std::lock_guard<std::mutex> g(mu_);
  pending_ = pending_ + 1;
}

void Gate::kick(WorkPool& pool) {
  std::lock_guard<std::mutex> g(mu_);
  pool.post([this] { work(); });
}

}  // namespace fixture
