// corpus: a trailing allow() suppresses exactly that rule on that line.
#include <cstdlib>

int noise() {
  return std::rand();  // xh-lint: allow(XH-DET-001) corpus suppression demo
}
