// corpus: scan-clock methods share a name with libc wall-clock queries but
// must not fire — member calls, declarations, and out-of-line definitions.
class CombSim {
 public:
  void clock();
  long time(int frame);
};

void CombSim::clock() {}
long CombSim::time(int frame) { return frame; }

long drive(CombSim& sim) {
  sim.clock();
  CombSim* p = &sim;
  p->clock();
  return sim.time(2);
}
