// Plain-text serialization for response data, so X-location matrices and
// captured responses can move between tools (and into/out of the CLI).
//
// XMatrix format (sparse; one line per X-capturing cell, then a trailer that
// makes truncation detectable):
//   xmatrix v1 <num_chains> <chain_length> <num_patterns>
//   <cell> <pattern> <pattern> ...
//   ...
//   end <total_x>
//
// ResponseMatrix format (dense; one row string per pattern, chars 0/1/X):
//   response v1 <num_chains> <chain_length> <num_patterns>
//   01X10...
//   ...
//
// Readers are strict: duplicate cell records, rows after the last pattern,
// garbled fields and mid-file truncation all raise std::invalid_argument
// with distinct messages, and stream-level I/O failure (badbit) is
// distinguished from clean EOF. Passing a Diagnostics collector additionally
// records a machine-readable kind for every failure before it is thrown.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "util/diagnostics.hpp"

namespace xh {

void write_x_matrix(const XMatrix& xm, std::ostream& out);
/// The optional trace receives response_io.* counters (lines parsed, cell
/// records, X entries); nullptr means no instrumentation.
[[nodiscard]] XMatrix read_x_matrix(std::istream& in,
                                    Diagnostics* diags = nullptr,
                                    Trace* trace = nullptr);

void write_response(const ResponseMatrix& rm, std::ostream& out);
[[nodiscard]] ResponseMatrix read_response(std::istream& in,
                                           Diagnostics* diags = nullptr,
                                           Trace* trace = nullptr);

/// String conveniences (used by tests and the CLI).
[[nodiscard]] std::string x_matrix_to_string(const XMatrix& xm);
[[nodiscard]] XMatrix x_matrix_from_string(const std::string& text,
                                           Diagnostics* diags = nullptr,
                                           Trace* trace = nullptr);
[[nodiscard]] std::string response_to_string(const ResponseMatrix& rm);
[[nodiscard]] ResponseMatrix response_from_string(
    const std::string& text, Diagnostics* diags = nullptr,
    Trace* trace = nullptr);

}  // namespace xh
