#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"
#include "masking/mask.hpp"
#include "misr/accounting.hpp"
#include "util/rng.hpp"

namespace xh {
namespace {

XMatrix random_xm(std::uint64_t seed, std::size_t chains, std::size_t len,
                  std::size_t patterns, double density) {
  Rng rng(seed);
  XMatrix xm({chains, len}, patterns);
  const auto target = static_cast<std::size_t>(
      density * static_cast<double>(chains * len) *
      static_cast<double>(patterns));
  while (xm.total_x() < target) {
    xm.add_x(rng.below(chains * len), rng.below(patterns));
  }
  return xm;
}

TEST(Partitioner, NoXGivesSinglePartition) {
  const XMatrix xm({2, 4}, 10);
  PartitionerConfig cfg;
  const PartitionResult r = partition_patterns(xm, cfg);
  EXPECT_EQ(r.num_partitions(), 1u);
  EXPECT_EQ(r.masked_x, 0u);
  EXPECT_EQ(r.leaked_x, 0u);
  EXPECT_TRUE(r.partitions[0] == BitVec(10, true));
}

TEST(Partitioner, AccountingIdentityHolds) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const XMatrix xm = paper_example_x_matrix();
  const PartitionResult r = partition_patterns(xm, cfg);
  EXPECT_EQ(r.masked_x + r.leaked_x, xm.total_x());
  EXPECT_DOUBLE_EQ(r.total_bits, r.masking_bits + r.canceling_bits);
  EXPECT_DOUBLE_EQ(
      r.total_bits,
      hybrid_bits(xm.geometry(), r.num_partitions(), cfg.misr, r.leaked_x));
}

TEST(Partitioner, HistoryBitsStrictlyDecreaseOverAcceptedRounds) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    if (r.history[i].accepted) {
      EXPECT_LT(r.history[i].total_bits, r.history[i - 1].total_bits);
    }
  }
}

TEST(Partitioner, MasksAreSafeOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const XMatrix xm = random_xm(seed, 4, 8, 40, 0.05);
    PartitionerConfig cfg;
    cfg.misr = {16, 4};
    const PartitionResult r = partition_patterns(xm, cfg);
    // Every mask bit corresponds to a cell X in every pattern of its group.
    for (std::size_t i = 0; i < r.partitions.size(); ++i) {
      const std::size_t span = r.partitions[i].count();
      for (const std::size_t cell : r.masks[i].set_bits()) {
        EXPECT_EQ(xm.x_count_in(cell, r.partitions[i]), span);
      }
      EXPECT_TRUE(r.masks[i] == partition_mask(xm, r.partitions[i]));
    }
  }
}

TEST(Partitioner, PartitionsAlwaysDisjointCover) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    const XMatrix xm = random_xm(seed, 3, 5, 25, 0.12);
    PartitionerConfig cfg;
    cfg.misr = {12, 3};
    const PartitionResult r = partition_patterns(xm, cfg);
    BitVec seen(25);
    for (const auto& p : r.partitions) {
      EXPECT_TRUE(p.any());
      EXPECT_FALSE(seen.intersects(p));
      seen |= p;
    }
    EXPECT_EQ(seen.count(), 25u);
  }
}

TEST(Partitioner, ProposedNeverWorseThanNoSplit) {
  // With the cost-function stop, the result is at most the unsplit cost.
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    const XMatrix xm = random_xm(seed, 4, 6, 30, 0.08);
    PartitionerConfig cfg;
    cfg.misr = {16, 4};
    const PartitionResult r = partition_patterns(xm, cfg);
    EXPECT_LE(r.total_bits, r.history.front().total_bits + 1e-9);
  }
}

TEST(Partitioner, MaxRoundsCapsSplitCount) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  cfg.max_rounds = 1;
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  EXPECT_EQ(r.num_partitions(), 2u);
}

TEST(Partitioner, ExhaustiveModeIgnoresCost) {
  PartitionerConfig cfg;
  cfg.misr = {10, 1};  // cost rule would stop after round 1
  cfg.stop_on_cost_increase = false;
  const PartitionResult r =
      partition_patterns(paper_example_x_matrix(), cfg);
  EXPECT_GE(r.num_partitions(), 3u);
}

TEST(Partitioner, SingletonGroupsOptionSplitsFurther) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  cfg.stop_on_cost_increase = false;
  cfg.allow_singleton_groups = true;
  const PartitionResult strict = partition_patterns(
      paper_example_x_matrix(),
      [] {
        PartitionerConfig c;
        c.misr = {10, 2};
        c.stop_on_cost_increase = false;
        return c;
      }());
  const PartitionResult relaxed =
      partition_patterns(paper_example_x_matrix(), cfg);
  EXPECT_GT(relaxed.num_partitions(), strict.num_partitions());
  // Exhaustive singleton splitting masks every X eventually.
  EXPECT_EQ(relaxed.leaked_x, 0u);
}

TEST(Partitioner, RandomCellChoiceIsDeterministicInSeed) {
  PartitionerConfig cfg;
  cfg.misr = {10, 2};
  cfg.cell_choice = SplitCellChoice::kRandom;
  cfg.seed = 77;
  const PartitionResult a =
      partition_patterns(paper_example_x_matrix(), cfg);
  const PartitionResult b =
      partition_patterns(paper_example_x_matrix(), cfg);
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    EXPECT_TRUE(a.partitions[i] == b.partitions[i]);
  }
}

TEST(Partitioner, RandomChoiceWithinGroupStillFindsPaperPartitions) {
  // Any of the three 4-X cells splits identically (they share a pattern
  // set), so the final partitions must match the deterministic run.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PartitionerConfig cfg;
    cfg.misr = {10, 2};
    cfg.cell_choice = SplitCellChoice::kRandom;
    cfg.seed = seed;
    const PartitionResult r =
        partition_patterns(paper_example_x_matrix(), cfg);
    EXPECT_EQ(r.num_partitions(), 3u);
    EXPECT_EQ(r.masked_x, 23u);
  }
}

TEST(Partitioner, InvalidConfigRejected) {
  PartitionerConfig cfg;
  cfg.misr = {8, 8};
  EXPECT_THROW(partition_patterns(paper_example_x_matrix(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace xh
