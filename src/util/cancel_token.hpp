// Cooperative cancellation with optional deadline.
//
// A CancelToken is shared between a controller (service worker, CLI main)
// and the PartitionEngine it drives. The engine polls stop_requested() at
// partition-round boundaries only — never mid-round — so a stop always
// lands on a coverage-safe prefix of accepted rounds (DESIGN.md §5) and
// the best-so-far partition can be materialized immediately.
//
// Two stop sources compose:
//   * explicit request_cancel() from any thread (shutdown, chaos tests);
//   * a deadline against an injected ClockSource (0 = no deadline).
// The token never throws and never blocks; polling it is O(1).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/clock.hpp"

namespace xh {

class CancelToken {
 public:
  /// A token that never stops on its own (cancellable only explicitly).
  CancelToken() = default;

  /// Stops once @p clock reaches the absolute time @p deadline_ns.
  CancelToken(ClockSource& clock, std::uint64_t deadline_ns)
      : clock_(&clock), deadline_ns_(deadline_ns) {}

  /// Stops @p budget_ns from now on @p clock.
  static CancelToken after(ClockSource& clock, std::uint64_t budget_ns) {
    return CancelToken(clock, clock.now_ns() + budget_ns);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Thread-safe; sticky — a cancelled token never un-cancels.
  void request_cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool has_deadline() const { return clock_ != nullptr && deadline_ns_ != 0; }

  /// Absolute deadline in clock nanoseconds, 0 when none.
  std::uint64_t deadline_ns() const { return deadline_ns_; }

  bool deadline_exceeded() const {
    return has_deadline() && clock_->now_ns() >= deadline_ns_;
  }

  /// The one predicate cooperative workers poll.
  bool stop_requested() const { return cancelled() || deadline_exceeded(); }

 private:
  ClockSource* clock_ = nullptr;
  std::uint64_t deadline_ns_ = 0;
  std::atomic<bool> cancelled_{false};
};

}  // namespace xh
