#include "storage/store_factory.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "storage/backend_csr.hpp"
#include "storage/backend_mmap.hpp"
#include "storage/backend_tebm.hpp"

namespace xh {
namespace {

/// Unique-enough backing-file name without wall clock or randomness (both
/// banned in src/ by XH-DET-001): pid disambiguates processes, a process-
/// wide counter disambiguates stores within one.
std::string next_mmap_path(const StoreFactoryOptions& options) {
  static std::atomic<std::uint64_t> sequence{0};
  const std::string dir =
      options.mmap_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.mmap_dir;
  // `sequence` is a filename-uniqueness ticket, not probe accounting: only
  // the atomicity of fetch_add matters (distinct suffixes), no other memory
  // is published under its order. xh-lint: allow(XH-FLOW-003)
  return dir + "/xh_xm_" + std::to_string(::getpid()) + "_" +
         std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)) +
         ".xmm";
}

}  // namespace

const char* xm_backend_name(XmBackend backend) {
  switch (backend) {
    case XmBackend::kAuto: return "auto";
    case XmBackend::kCsr: return "csr";
    case XmBackend::kTebm: return "tebm";
    case XmBackend::kMmap: return "mmap";
  }
  return "unknown";
}

bool parse_xm_backend(std::string_view name, XmBackend* out) {
  if (name == "auto") {
    *out = XmBackend::kAuto;
  } else if (name == "csr") {
    *out = XmBackend::kCsr;
  } else if (name == "tebm") {
    *out = XmBackend::kTebm;
  } else if (name == "mmap") {
    *out = XmBackend::kMmap;
  } else {
    return false;
  }
  return true;
}

std::uint64_t estimate_csr_bytes(const XMatrix& xm) {
  const std::uint64_t rows = xm.x_cells().size();
  const std::uint64_t words_per_row = (xm.num_patterns() + 63) / 64;
  // Row payload + the two per-row metadata arrays (cell id, count).
  return rows * (words_per_row * sizeof(std::uint64_t) +
                 2 * sizeof(std::uint64_t));
}

XmBackend resolve_xm_backend(XmBackend requested, const XMatrix& xm,
                             const StoreFactoryOptions& options) {
  if (requested != XmBackend::kAuto) return requested;
  return estimate_csr_bytes(xm) > options.auto_mmap_threshold_bytes
             ? XmBackend::kMmap
             : XmBackend::kCsr;
}

std::unique_ptr<XMatrixStore> make_store(const XMatrix& xm, XmBackend backend,
                                         const StoreFactoryOptions& options) {
  switch (resolve_xm_backend(backend, xm, options)) {
    case XmBackend::kTebm:
      return std::make_unique<TebmStore>(xm);
    case XmBackend::kMmap: {
      MmapStoreOptions mo;
      mo.path = next_mmap_path(options);
      mo.keep_file = options.keep_mmap_file;
      return std::make_unique<MmapStore>(xm, mo);
    }
    case XmBackend::kAuto:  // resolved above; fall through to the default
    case XmBackend::kCsr:
      break;
  }
  return std::make_unique<CsrStore>(xm);
}

}  // namespace xh
