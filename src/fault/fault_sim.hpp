// Parallel-pattern single-fault stuck-at fault simulation with X-awareness.
//
// Detection rule: fault f is detected by pattern p iff some OBSERVABLE scan
// cell captures a definite (non-X) value in both the good and the faulty
// machine and the two values differ. An X in either machine never counts —
// this is precisely why X's destroy coverage in compacted test and why the
// paper's "never mask a non-X" rule keeps coverage intact.
//
// Observability is pluggable: full observation, or restricted by an
// X-handling scheme's per-pattern cell masks (used to VERIFY rather than
// assume the paper's zero-coverage-loss claim).
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_model.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_plan.hpp"
#include "scan/test_application.hpp"
#include "util/bitvec.hpp"

namespace xh {

/// Per-(pattern, cell) observability predicate.
using ObservationFilter =
    std::function<bool(std::size_t pattern, std::size_t cell)>;

/// Everything observable (ideal bit-level compare).
ObservationFilter observe_all();

/// Observable unless the cell is masked for the pattern's partition.
/// @p partitions / @p masks use the partitioner's conventions.
ObservationFilter observe_with_partition_masks(
    const std::vector<BitVec>& partitions, const std::vector<BitVec>& masks);

struct FaultSimResult {
  std::vector<StuckFault> faults;
  std::vector<bool> detected;
  /// First detecting pattern per fault (undefined when undetected).
  std::vector<std::size_t> first_pattern;
  std::size_t num_detected = 0;

  double coverage() const {
    return faults.empty() ? 0.0
                          : static_cast<double>(num_detected) /
                                static_cast<double>(faults.size());
  }
};

class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, const ScanPlan& plan);

  /// Simulates every fault against every pattern (serial fault, 64-way
  /// parallel patterns). @p observe filters which captures count.
  FaultSimResult run(const std::vector<TestPattern>& patterns,
                     const std::vector<StuckFault>& faults,
                     const ObservationFilter& observe = observe_all()) const;

  /// Pattern-major convenience: which faults does each pattern detect (used
  /// by ATPG's fault dropping). Same semantics as run().
  std::vector<bool> detects(const std::vector<TestPattern>& patterns,
                            const StuckFault& fault) const;

  const ScanPlan& plan() const { return *plan_; }

 private:
  const Netlist* nl_;
  const ScanPlan* plan_;
  TestApplicator applicator_;
};

}  // namespace xh
