// Symbolic MISR simulation (paper Figure 2).
//
// The MISR is a linear machine over GF(2); after any number of cycles each
// state bit equals the XOR of a fixed subset of everything ever shifted in.
// This class tracks that subset per state bit over a caller-defined symbol
// universe (one symbol per scan-cell capture). Feeding the real values of the
// deterministic symbols later evaluates any state bit or row combination —
// and restricting attention to the X symbols yields the dependency matrix
// that Gaussian elimination reduces (Figure 3).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "gf2/lfsr.hpp"
#include "gf2/matrix.hpp"
#include "util/bitvec.hpp"

namespace xh {

using SymbolId = std::size_t;

/// Linear-dependency simulation of an m-bit internal-XOR MISR.
class SymbolicMisr {
 public:
  /// @p num_symbols fixes the symbol universe width up front.
  SymbolicMisr(FeedbackPolynomial poly, std::size_t num_symbols);

  std::size_t size() const { return size_; }
  std::size_t num_symbols() const { return num_symbols_; }

  /// Clears the register to the zero state (no dependencies).
  void reset();

  /// One MISR clock. @p inputs[i] is the symbol injected into stage i this
  /// cycle (std::nullopt → that stage receives 0). A symbol may be injected
  /// at multiple stages or cycles; dependencies XOR-accumulate.
  void step(const std::vector<std::optional<SymbolId>>& inputs);

  /// Symbol dependency of state bit @p bit (BitVec over the symbol universe).
  const BitVec& dependency(std::size_t bit) const;

  /// Dependency of an arbitrary XOR of state bits; @p bit_selection has
  /// size() == size().
  BitVec combination_dependency(const BitVec& bit_selection) const;

  /// The m × |x_symbols| dependency matrix restricted to @p x_symbols
  /// (column order follows the argument order) — the Figure 3 input.
  Gf2Matrix x_dependency_matrix(const std::vector<SymbolId>& x_symbols) const;

  /// Evaluates the XOR of state bits selected by @p bit_selection given
  /// concrete symbol values. Throws if the combination depends on a symbol
  /// marked unknown (value not provided).
  ///
  /// @p values holds a value for every symbol; @p known flags which entries
  /// are valid (unknown symbols are X's).
  bool evaluate_combination(const BitVec& bit_selection,
                            const BitVec& values, const BitVec& known) const;

 private:
  std::size_t size_;
  std::size_t num_symbols_;
  FeedbackPolynomial poly_;
  std::vector<BitVec> dep_;  // per state bit
};

}  // namespace xh
