#include "workload/industrial.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "response/x_stats.hpp"

namespace xh {
namespace {

TEST(Workload, ProfilesMatchTable1Geometry) {
  EXPECT_EQ(ckt_a_profile().geometry.num_cells(), 505050u);
  EXPECT_EQ(ckt_b_profile().geometry.num_cells(), 36075u);
  EXPECT_EQ(ckt_c_profile().geometry.num_cells(), 97643u);
  EXPECT_EQ(ckt_a_profile().geometry.chain_length, 481u);
  EXPECT_EQ(ckt_b_profile().geometry.chain_length, 481u);
  EXPECT_EQ(ckt_c_profile().geometry.chain_length, 481u);
  EXPECT_EQ(ckt_b_profile().num_patterns, 3000u);
}

TEST(Workload, ScaledProfileShrinks) {
  const WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.1);
  EXPECT_LT(p.geometry.num_cells(), ckt_b_profile().geometry.num_cells());
  EXPECT_LT(p.num_patterns, ckt_b_profile().num_patterns);
  EXPECT_DOUBLE_EQ(p.x_density, ckt_b_profile().x_density);
  EXPECT_THROW(scaled_profile(ckt_b_profile(), 0.0), std::invalid_argument);
  EXPECT_THROW(scaled_profile(ckt_b_profile(), 2.0), std::invalid_argument);
}

class WorkloadGeneration : public ::testing::Test {
 protected:
  static const XMatrix& matrix() {
    static const XMatrix xm =
        generate_workload(scaled_profile(ckt_b_profile(), 0.12));
    return xm;
  }
};

TEST_F(WorkloadGeneration, HitsDensityTarget) {
  const WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.12);
  const double realized = matrix().x_density();
  EXPECT_NEAR(realized, p.x_density, p.x_density * 0.05);
}

TEST_F(WorkloadGeneration, DeterministicInSeed) {
  const WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.12);
  const XMatrix a = generate_workload(p);
  EXPECT_EQ(a.total_x(), matrix().total_x());
  for (const std::size_t cell : a.x_cells()) {
    EXPECT_TRUE(a.patterns_of(cell) == matrix().patterns_of(cell));
  }
}

TEST_F(WorkloadGeneration, SeedChangesDistribution) {
  WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.12);
  p.seed ^= 0xdeadbeef;
  const XMatrix b = generate_workload(p);
  // Same scale, different placement.
  EXPECT_NEAR(static_cast<double>(b.total_x()),
              static_cast<double>(matrix().total_x()),
              0.1 * static_cast<double>(matrix().total_x()));
  bool any_difference = false;
  for (const std::size_t cell : matrix().x_cells()) {
    if (!(b.patterns_of(cell) == matrix().patterns_of(cell))) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(WorkloadGeneration, ContainsRealClusters) {
  // The generator must produce groups of cells with identical pattern sets
  // (Section 3's inter-correlation), sized well above noise.
  const auto clusters = find_x_clusters(matrix());
  ASSERT_FALSE(clusters.empty());
  EXPECT_GE(clusters.front().cells.size(), 5u);
  EXPECT_GE(clusters.front().x_count(), 10u);
}

TEST_F(WorkloadGeneration, XsAreConcentrated) {
  // Section 3: 90 % of X's in a small fraction of cells. With the scatter
  // stripe + clusters, 90 % of X's should live in well under half the cells.
  const XStatistics s = compute_x_statistics(matrix());
  EXPECT_LT(s.cell_fraction_covering(0.9), 0.35);
}

TEST(Workload, BadProfileRejected) {
  WorkloadProfile p = ckt_b_profile();
  p.x_density = 0.0;
  EXPECT_THROW(generate_workload(p), std::invalid_argument);
  p = ckt_b_profile();
  p.clustered_fraction = 1.5;
  EXPECT_THROW(generate_workload(p), std::invalid_argument);
}

TEST(Workload, ZeroClusteredFractionStillHitsDensity) {
  WorkloadProfile p = scaled_profile(ckt_b_profile(), 0.1);
  p.clustered_fraction = 0.0;
  const XMatrix xm = generate_workload(p);
  EXPECT_NEAR(xm.x_density(), p.x_density, p.x_density * 0.05);
}

}  // namespace
}  // namespace xh
