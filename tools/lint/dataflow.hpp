// Small dataflow framework over FunctionCfg for the flow-sensitive lint
// tier (DESIGN.md §13). Three facilities, each exactly as strong as the
// XH-FLOW rules need and no stronger:
//
//   * guard-state lattice — a forward worklist analysis over
//     {bottom, unlocked, locked, both}. Lexical scope_locks from the CFG
//     give the base state; explicit `.lock()` / `.unlock()` member calls
//     transition it flow-sensitively, and a `unique_lock&` parameter makes
//     the function entry state locked (the lock-reference-parameter
//     convention: the caller passes the lock held). XH-FLOW-003 fires on
//     guarded-field touches whose state is unlocked or both.
//
//   * path predicates — exists_path (target before any blocked node) and
//     may_reach_exit, the reachability half of the reaching-definitions
//     queries XH-FLOW-001/004 ask ("can this def reach exit/redefinition
//     without passing a read?").
//
//   * cycle extraction — the nodes on some cycle through a loop head,
//     which is the path set XH-FLOW-002 must find a token consultation on.
//
// Plus the shared textual def/use classifiers the per-variable rules key
// off. They operate on the compact node text the CFG builder produced, at
// the same no-parse altitude as the rest of xh_lint.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "lint/cfg.hpp"

namespace xh::lint {

enum class GuardState {
  kBottom = 0,  // unreachable / not yet computed
  kUnlocked,
  kLocked,
  kBoth,  // locked on some incoming path, unlocked on another
};

GuardState join(GuardState a, GuardState b);

struct GuardAnalysis {
  /// True when the function receives the lock by reference
  /// (std::unique_lock& / lock_guard& parameter): entry state is locked.
  bool param_locked = false;
  std::vector<GuardState> in;
  std::vector<GuardState> out;
};

/// Forward worklist fixpoint of the guard-state lattice over @p cfg.
GuardAnalysis analyze_guards(const FunctionCfg& cfg);

/// Guard state governing the side effects of node @p n itself: the in
/// state, except that a node acquiring a lock (scope-guard declaration or
/// explicit .lock()) counts as locked for its own statement.
GuardState state_at(const GuardAnalysis& ga, const FunctionCfg& cfg,
                    std::size_t n);

/// Per-node predecessor lists (inverse of succ).
std::vector<std::vector<std::size_t>> predecessors(const FunctionCfg& cfg);

/// Nodes lying on at least one cycle through @p head, head included:
/// forward-reachable from head AND backward-reachable to head. Empty when
/// head is not on any cycle.
std::vector<std::size_t> cycle_nodes(const FunctionCfg& cfg,
                                     std::size_t head);

/// True when some path from a successor of @p from reaches a node where
/// @p is_target holds without first entering a node where @p is_blocked
/// holds. A node that is both target and blocked counts as a target.
bool exists_path(const FunctionCfg& cfg, std::size_t from,
                 const std::function<bool(std::size_t)>& is_target,
                 const std::function<bool(std::size_t)>& is_blocked);

/// exists_path specialization: can control leave @p from and reach the
/// function exit without passing through a node where @p blocked holds?
bool may_reach_exit(const FunctionCfg& cfg, std::size_t from,
                    const std::function<bool(std::size_t)>& blocked);

// ---- textual def/use classification ------------------------------------

/// True when the identifier at @p p in @p text is reached through member
/// access of ANOTHER object (`x.name`, `x->name`): such an occurrence is a
/// field of x that merely shares the local's name, not the local itself.
bool member_of_other(const std::string& text, std::size_t p);

/// True when @p text mentions @p name as a standalone identifier (member
/// fields of other objects that share the name do not count).
bool is_use(const std::string& text, const std::string& name);

/// True when @p text (re)defines @p name: a declaration (`Type name ...`,
/// `auto name = ...`) or a plain assignment (`name = ...`). Compound
/// assignments (`+=` etc.) read the old value and are NOT defs.
bool is_def(const std::string& text, const std::string& name);

/// True when @p text declares @p name (a def with a preceding type token,
/// as opposed to a plain reassignment).
bool is_decl(const std::string& text, const std::string& name);

/// True when @p text contains a member call `.name(` / `->name(` on any
/// object, e.g. has_member_call("token.stop_requested()", "stop_requested").
bool has_member_call(const std::string& text, const std::string& name);

// ---- shared semantic classifiers ----------------------------------------
// Used by both the flow tier (flow_rules.cpp) and the interprocedural tier
// (summaries.cpp / ipa_rules.cpp) so the two can never disagree on what
// counts as a status type, a blocking call, or a cancel token.

/// True when @p word is a status-bearing type name: xh::Diagnostics or the
/// *Status/*Outcome/*Result/*Errc naming convention.
bool status_type(const std::string& word);

/// True when @p text contains a blocking call identifier (sleep_ns,
/// sleep_for/until, wait/wait_for/wait_until, usleep, nanosleep).
bool blocking_text(const std::string& text);

/// CancelToken variable names in scope of @p cfg: parameters and locals of
/// (const) CancelToken(&/*) type, declaration order, deduplicated.
std::vector<std::string> token_names(const FunctionCfg& cfg);

/// The type token governing the identifier at @p p in compacted @p text:
/// the word reached by scanning back over `&`, `*`, spaces and one `<...>`
/// argument list, e.g. "Status" for `Status s`, `StatusOr<int>& s`. Empty
/// when none.
std::string type_word_before(const std::string& text, std::size_t p);

}  // namespace xh::lint
