// Superset X-canceling baseline (after Chung & Touba [18] / Yang & Touba
// [17]).
//
// Instead of per-pattern canceling control data, patterns are greedily
// grouped; each group shares one control-bit schedule computed for the
// UNION ("superset") of the group's X locations. Reuse shrinks control data,
// but every location in the superset is treated as X for every member
// pattern, so deterministic bits at those locations lose observability —
// which is exactly the drawback the paper's method avoids (and why [17,18]
// need iterative fault simulation).
//
// This is a faithful cost-model implementation of the published idea used as
// an ablation comparator; the original papers' fault-simulation-guided
// refinement loop is out of scope and noted in DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "misr/x_cancel.hpp"
#include "response/x_matrix.hpp"

namespace xh {

struct SupersetConfig {
  MisrConfig misr;
  /// A pattern joins a group only while the union grows by at most this
  /// factor of the pattern's own X count (controls merge aggressiveness).
  double max_growth = 0.5;
};

struct SupersetGroup {
  std::vector<std::size_t> patterns;
  std::uint64_t superset_x = 0;        // |union of X locations|
  std::uint64_t lost_observations = 0; // non-X bits treated as X
};

struct SupersetResult {
  std::vector<SupersetGroup> groups;
  /// One canceling schedule per group: m·q·|superset|/(m−q) bits.
  double control_bits = 0.0;
  std::uint64_t lost_observations = 0;
};

/// Greedy superset grouping over per-pattern X sets.
SupersetResult superset_x_canceling(const XMatrix& xm,
                                    const SupersetConfig& cfg);

}  // namespace xh
