// Resident partitioning service: a job runner in front of PartitionEngine.
//
// PartitionService turns the per-invocation engine into something that can
// sit behind a queue of tenants (DESIGN.md §11). Its behavior under stress
// is the contract:
//
//   * bounded admission — submit() rejects once queued + running jobs
//     reach max_queue_depth, with a typed kOverloaded diagnostic and a
//     service.jobs_rejected_overload counter, so a flood degrades into
//     rejections instead of unbounded memory;
//   * per-job deadlines — each job runs under a CancelToken the engine
//     polls at round boundaries; a timed-out job completes as kDegraded
//     with the best-so-far partition (a valid prefix, never garbage);
//   * retry with exponential backoff + jitter — transient failures
//     (TransientError, std::ios_base::failure, or a kStreamFailure
//     diagnostic from the .xm reader) are retried up to
//     RetryPolicy::max_attempts; parse/validation errors fail fast;
//   * crash-safe checkpointing — with a checkpoint_dir configured, the
//     engine snapshot is saved through service/checkpoint.hpp every
//     checkpoint_every_rounds accepted rounds (atomic rename), and a new
//     attempt resumes from it bit-identically to an uninterrupted run.
//
// Jobs execute on a util/thread_pool task queue; the engine itself runs
// serially inside each job (parallelism is across tenants, and the pool's
// fork-join path is not reentrant from a pool task). All shared state is
// guarded by one mutex; xh::Trace is NOT touched from workers — the
// watchdog and workers update internal stats, and export_telemetry()
// publishes them from the owner's thread into a Trace once at the end.
//
// The optional watchdog thread ticks every watchdog_period_ns: it bumps a
// heartbeat counter (liveness), samples queue depth, and counts running
// jobs whose last round boundary is older than stall_after_ns — the
// "liveness through xh::Trace" feed, surfaced via export_telemetry().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/partition_types.hpp"
#include "obs/trace.hpp"
#include "response/x_matrix.hpp"
#include "storage/store_factory.hpp"
#include "util/cancel_token.hpp"
#include "util/clock.hpp"
#include "util/diagnostics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace xh {

using JobId = std::uint64_t;

/// Failure a caller (or the chaos fault hook) marks as worth retrying.
/// The service also treats std::ios_base::failure and reader
/// kStreamFailure diagnostics as transient; everything else fails fast.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kCompleted,  // natural stop reached
  kDegraded,   // deadline/cancel: best-so-far prefix returned
  kFailed,     // permanent failure or retries exhausted
  kCancelled,  // cancelled before it ever ran
};

const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

struct RetryPolicy {
  std::size_t max_attempts = 3;  // total attempts, first try included
  std::uint64_t base_backoff_ns = 1'000'000;  // doubles per failed attempt
  std::uint64_t max_backoff_ns = 1'000'000'000;
  std::uint64_t jitter_seed = 0x5eedULL;  // full jitter: [backoff/2, backoff]
};

struct ServiceConfig {
  /// Concurrent job executors (>= 1). The pool gets workers + 1 lanes.
  std::size_t workers = 2;
  /// Admission cap on queued + running jobs; 0 means "reject everything".
  std::size_t max_queue_depth = 64;
  /// Partitioner configuration for directory-ingested jobs.
  PartitionerConfig partitioner;
  /// X-matrix storage backend for directory-ingested jobs (kAuto resolves
  /// per workload). The XH_XM_BACKEND environment variable, when set to a
  /// valid spelling, overrides this at service construction — the CI chaos
  /// legs use it to sweep the whole suite over one backend.
  XmBackend xm_backend = XmBackend::kAuto;
  /// Storage-factory knobs (mmap directory, auto-spill threshold).
  StoreFactoryOptions store_options;
  /// Deadline budget for jobs that do not set their own; 0 = none.
  std::uint64_t default_deadline_ns = 0;
  /// Accepted rounds between checkpoints; 0 disables checkpointing.
  std::size_t checkpoint_every_rounds = 0;
  /// Directory for <job>.ckpt files; empty disables checkpointing.
  std::string checkpoint_dir;
  RetryPolicy retry;
  /// Watchdog tick period; 0 disables the watchdog thread.
  std::uint64_t watchdog_period_ns = 0;
  /// Running job with no round boundary for this long counts as stalled
  /// (watchdog only); 0 picks 10 ticks.
  std::uint64_t stall_after_ns = 0;
  /// Time source for deadlines/backoff/heartbeats; nullptr = wall_clock().
  ClockSource* clock = nullptr;
};

struct JobSpec {
  std::string name;  // checkpoint identity; "" derives job-<id>
  /// Either an in-memory matrix...
  std::shared_ptr<const XMatrix> matrix;
  /// ...or a .xm file loaded on the worker, so open/read hiccups flow
  /// through the retry machinery instead of failing the submitter.
  std::string source_path;
  PartitionerConfig config;
  /// Storage backend for this job; kAuto resolves per workload. The
  /// resolved store's identity is recorded in the job's checkpoints, so
  /// changing it between incarnations restarts instead of resuming.
  XmBackend xm_backend = XmBackend::kAuto;
  /// Deadline budget from the job's first pick-up; 0 = service default.
  std::uint64_t deadline_ns = 0;
};

struct SubmitOutcome {
  bool accepted = false;
  JobId id = 0;  // meaningful only when accepted
};

/// Snapshot of one job, returned by poll()/wait().
struct JobResult {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  /// Valid for kCompleted and kDegraded (interrupted flag set for the
  /// latter).
  PartitionResult partition;
  std::size_t attempts = 0;
  std::size_t rounds = 0;  // accepted rounds in the final state
  bool resumed_from_checkpoint = false;
  std::string error;       // for kFailed
  Diagnostics diagnostics; // per-job collector (reader, checkpoint, engine)
};

/// Monotonic service counters/gauges; exported as service.* telemetry.
struct ServiceStats {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected_overload = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_degraded = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t job_retries = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_resumed = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t watchdog_stalls = 0;
  std::size_t queue_depth = 0;       // queued + running right now
  std::size_t queue_depth_peak = 0;  // high-water mark of the above
};

class PartitionService {
 public:
  explicit PartitionService(ServiceConfig config);
  /// Drains every accepted job, then stops the workers (shutdown()).
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Admits @p spec or rejects it under backpressure. A rejection is not
  /// an error of the service — check .accepted; the kOverloaded record
  /// lands in diagnostics() and the stats counter either way.
  [[nodiscard]] SubmitOutcome submit(JobSpec spec);

  /// Submits every *.xm file directly inside @p dir (sorted by name, so
  /// ingestion order is deterministic) using the service partitioner
  /// config. Files are read on the workers, not here. Returns one outcome
  /// per file, in sorted-path order.
  [[nodiscard]] std::vector<SubmitOutcome> ingest_directory(
      const std::string& dir);

  /// Current snapshot of a job; nullopt for an unknown id. The partition
  /// field is filled once the state is terminal.
  [[nodiscard]] std::optional<JobResult> poll(JobId id) const;

  /// Blocks until @p id is terminal and returns its snapshot. Throws
  /// std::invalid_argument for an unknown id.
  JobResult wait(JobId id);

  /// Blocks until every accepted job is terminal.
  void wait_all();

  /// Holds queued jobs back from the workers (running jobs continue).
  /// Lets tests and drain-style operators build a deterministic backlog.
  void pause();
  void resume();

  /// Marks every queued job kCancelled and fires the cancel token of
  /// every running job (they degrade at the next round boundary).
  void cancel_all();

  /// Drains all accepted work, then joins workers + watchdog. Idempotent;
  /// submit() after shutdown() rejects as overloaded.
  void shutdown();

  ServiceStats stats() const;
  std::size_t queue_depth() const;

  /// Service-level diagnostics: admission rejections, ingest problems.
  /// Per-job records live in the JobResult. Snapshot under the lock.
  Diagnostics diagnostics() const;

  /// Publishes stats() into @p trace as service.* counters and gauges.
  /// Call from one thread, once per Trace (counters add deltas).
  void export_telemetry(Trace* trace) const;

  /// Chaos hook, called at the start of every attempt on the worker. May
  /// throw (TransientError → retry path, anything else → fail-fast path).
  void set_fault_hook(std::function<void(JobId, std::size_t)> hook);

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::size_t attempts = 0;
    std::size_t rounds = 0;
    bool resumed_from_checkpoint = false;
    std::string error;
    Diagnostics diags;
    PartitionResult partition;
    std::unique_ptr<CancelToken> token;  // stable address for cancel_all()
    std::uint64_t last_progress_ns = 0;  // last round boundary (clock time)
    bool stall_reported = false;
  };

  /// Pool task body: picks the next queued job (honoring pause) and runs
  /// it through the attempt/retry loop. Never throws.
  void run_next();
  /// One attempt: load, maybe resume, step to a stop, checkpoint.
  /// Returns the terminal state for this attempt; throws on failures the
  /// caller classifies.
  JobState run_attempt(Job& job, CancelToken& token);
  void finish(std::unique_lock<std::mutex>& lock, Job& job, JobState state);
  std::string checkpoint_path_for(const Job& job) const;
  JobResult snapshot_job(const Job& job) const;
  void watchdog_loop();

  ServiceConfig config_;
  ClockSource* clock_;  // config_.clock or wall_clock(); never null

  mutable std::mutex mu_;
  std::condition_variable work_gate_;  // pause()/resume()/shutdown()
  std::condition_variable done_gate_;  // job became terminal
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::deque<JobId> queued_;
  JobId next_id_ = 1;
  std::size_t running_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  bool shut_down_ = false;
  ServiceStats stats_;
  Diagnostics service_diags_;
  Rng jitter_rng_;
  std::function<void(JobId, std::size_t)> fault_hook_;

  std::thread watchdog_;
  std::condition_variable watchdog_gate_;

  /// Last member: its workers touch everything above, so it must die
  /// first. Tasks run jobs; the engine inside each job stays serial.
  ThreadPool pool_;
};

}  // namespace xh
