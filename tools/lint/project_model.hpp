// Whole-tree project model for xh_lint (DESIGN.md §9).
//
// build_project_model() ingests every source file once and derives the
// structures the cross-TU rule families need:
//   * the include graph — quoted includes resolved against src/, tools/,
//     and the includer's directory — plus its transitive closure;
//   * a layer per file (src/<dir> → <dir>, tools/** → tools, …) checked
//     against the checked-in tools/lint/layers.txt spec;
//   * a lightweight symbol/declaration index: [[nodiscard]] function
//     names, [[deprecated]] declarations with their marker types, and
//     per-header provided-name sets for the IWYU-lite checks;
//   * the canonical telemetry name list, harvested from the
//     xh-telemetry-schema-begin/end markers in obs/telemetry_json.cpp;
//   * every suppression directive with its scope, for the tree-wide
//     stale-suppression audit.
//
// analyze_tree() then runs the per-file rule families (re-expressed as
// passes over the same model, so each file is lexed exactly once) plus the
// whole-tree families XH-INC-001/002/003, XH-API-001/002, XH-OBS-001 and
// XH-SUP-001, applies suppressions, and returns findings sorted by
// (path, line, rule).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/text_scan.hpp"

namespace xh::lint {

/// Architectural layering spec (tools/lint/layers.txt). Grammar, one entry
/// per line, '#' comments:
///   layer <name>                      a leaf: may include only itself
///   layer <name> -> <dep> [<dep>...]  may include itself and the deps
///   layer <name> -> *                 unconstrained (umbrella/tests)
///   private <prefix> -> <layer>...    headers whose repo-relative path
///                                     starts with <prefix> may only be
///                                     included from the named layers
struct LayerSpec {
  struct Layer {
    std::set<std::string> deps;
    bool allow_all = false;
  };
  /// Path-prefix visibility restriction layered ON TOP of the layer graph:
  /// an include of a matching header must come from one of the listed
  /// layers even when the edge is otherwise allowed. Used to keep concrete
  /// storage backends behind the factory (only engine/service consume them
  /// directly; everything else goes through storage/store_factory.hpp).
  struct PrivateRule {
    std::string prefix;            // repo-relative path prefix
    std::set<std::string> layers;  // layers allowed to include matches
  };
  std::map<std::string, Layer> layers;
  std::vector<PrivateRule> privates;

  bool known(const std::string& layer) const {
    return layers.count(layer) != 0;
  }
  /// True when @p from may include @p to (same layer is always allowed).
  bool allowed(const std::string& from, const std::string& to) const;
  /// The private rule restricting @p target_path, or nullptr when the path
  /// matches no `private` prefix.
  const PrivateRule* private_rule(const std::string& target_path) const;
};

/// Parses the layers.txt grammar. Returns false and sets @p error on a
/// malformed line; the spec is left partially filled in that case.
bool parse_layer_spec(const std::string& text, LayerSpec& spec,
                      std::string& error);

/// The layer a repo-relative path belongs to: "src/util/rng.hpp" → "util",
/// "src/xh.hpp" → "xh", "tools/lint/..." → "tools", "bench/..." → "bench",
/// "tests/..." → "tests".
std::string layer_of(const std::string& path);

/// One resolved project include.
struct IncludeEdge {
  std::string target;    // repo-relative path of the included file
  std::size_t line = 0;  // 1-based line of the #include
};

struct FileEntry {
  SourceFile source;
  Cleaned cleaned;
  std::string layer;
  bool is_header = false;
  bool umbrella = false;  // aggregation-only header (xh.hpp): ≥5 includes,
                          // ≤2 non-include code lines
  std::vector<IncludeEdge> includes;  // project includes, resolved
  /// Same-stem header next to a .cpp ("" when absent).
  std::string primary_header;
  /// Every identifier token in the cleaned text → first 1-based line.
  std::map<std::string, std::size_t> idents;
};

/// Deprecated declaration harvested from a header.
struct DeprecatedApi {
  std::string name;         // declared function name
  std::string declared_in;  // repo-relative header path
  bool has_live_overload = false;
  /// Parameter types declared in the same header that appear ONLY in
  /// deprecated overloads of this function — using such a type anywhere
  /// outside the exempt files means calling through the deprecated shim.
  std::set<std::string> marker_types;
};

struct SymbolIndex {
  /// [[nodiscard]] function name → declaring headers.
  std::map<std::string, std::set<std::string>> nodiscard;
  std::vector<DeprecatedApi> deprecated;
  /// Header → names it provides. `broad` over-approximates (types, enums,
  /// enumerators, macros, functions, initialized constants) and feeds the
  /// unused-include check; `exported` is the precise type/alias/macro set
  /// whose unique provider feeds the missing-direct-include check.
  std::map<std::string, std::set<std::string>> broad_names;
  std::map<std::string, std::set<std::string>> exported_names;
};

struct ProjectModel {
  std::map<std::string, FileEntry> files;  // keyed by repo-relative path
  LayerSpec spec;
  SymbolIndex symbols;
  /// Canonical telemetry names between the xh-telemetry-schema markers.
  std::set<std::string> telemetry_names;
  std::string telemetry_schema_file;  // "" when no marker block was found
  /// Transitive include closure per file (includes the file itself).
  std::map<std::string, std::set<std::string>> closure;
};

ProjectModel build_project_model(std::vector<SourceFile> files,
                                 LayerSpec spec);

struct AnalyzeOptions {
  bool per_file_rules = true;  // XH-DET/ERR/PARSE/HDR over src|tools|bench
  bool tree_rules = true;      // XH-INC/API/OBS/SUP over the whole model
  bool flow_rules = true;      // XH-FLOW-001..004 over per-function CFGs
  bool ipa_rules = true;       // XH-IPA/XH-RACE over the call graph
  /// When non-empty, only rules matching one of these patterns report
  /// (exact ID, or a trailing-'*' prefix glob like "XH-FLOW-*"). Families
  /// still RUN — XH-SUP-001 must audit against the full raw set — but the
  /// returned findings are filtered.
  std::vector<std::string> only;
};

/// True when @p rule matches @p pattern (exact, or trailing-'*' prefix).
bool rule_matches(const std::string& rule, const std::string& pattern);

/// Runs all enabled rule families over the model, applies suppressions,
/// audits them (XH-SUP-001), and returns findings sorted by
/// (path, line, rule).
std::vector<Finding> analyze_tree(const ProjectModel& model,
                                  const AnalyzeOptions& options = {});

/// Runs the interprocedural rule families XH-IPA-001/002 and
/// XH-RACE-001/002 over the model's call graph (tools/lint/callgraph.hpp)
/// and function summaries. Returns RAW findings (suppressions not
/// applied) so the XH-SUP-001 audit sees them.
std::vector<Finding> ipa_findings(const ProjectModel& model);

/// Walks @p inputs (files or directories, absolute or cwd-relative) and
/// loads every .cpp/.cc/.hpp/.h into SourceFiles whose paths are relative
/// to @p root (forward slashes). Paths whose repo-relative form starts
/// with an entry of @p excludes are skipped. Missing or unreadable inputs
/// append a message to @p errors instead of being silently dropped.
std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& inputs,
                                  const std::vector<std::string>& excludes,
                                  std::vector<std::string>& errors);

}  // namespace xh::lint
