// XH-RACE-001 non-firing fixture: same by-reference capture as the bad
// twin, but every path from the post crosses pool.drain() before the
// frame dies, so the callable cannot outlive what it borrowed.
#include "service/ipa_seam.hpp"

namespace fixture {

int gather_totals(WorkPool& pool) {
  int total = 0;
  pool.post([&total] { total = total + 1; });
  pool.drain();
  return total;
}

}  // namespace fixture
