// Packed bit vector used throughout the library for mask vectors, GF(2)
// matrix rows, pattern-membership sets and parallel-pattern simulation planes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xh {

/// Fixed-size packed vector of bits with word-level bulk operations.
///
/// Semantics follow a mathematical bit vector rather than std::vector<bool>:
/// out-of-range access is a checked error, and binary operations require equal
/// sizes. Bits beyond size() inside the last word are kept zero at all times
/// so popcount/scan operations never need masking on read.
class BitVec {
 public:
  BitVec() = default;

  /// Creates a vector of @p size bits, all cleared (or all set if @p value).
  explicit BitVec(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void clear(std::size_t i) { set(i, false); }
  void flip(std::size_t i);

  /// Sets every bit to @p value.
  void fill(bool value);

  /// Number of set bits.
  std::size_t count() const;

  bool any() const;
  bool none() const { return !any(); }

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const;

  /// Index of the first set bit at or after @p from, or size() if none.
  std::size_t find_next(std::size_t from) const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// In-place bulk logic; all require other.size() == size().
  BitVec& operator^=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);

  /// andnot: this &= ~other.
  BitVec& and_not(const BitVec& other);

  /// True when (*this & other) has at least one set bit.
  bool intersects(const BitVec& other) const;

  /// True when every set bit of *this is also set in @p other.
  bool is_subset_of(const BitVec& other) const;

  bool operator==(const BitVec& other) const;

  /// Grows or shrinks to @p size, clearing any newly exposed bits.
  void resize(std::size_t size);

  /// "0"/"1" string, index 0 first — handy for tests and dumps.
  std::string to_string() const;

  /// Parses a "01" string (whitespace ignored).
  static BitVec from_string(const std::string& bits);

  /// Direct word access for performance-sensitive consumers (simulation).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t value);

 private:
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Value-returning convenience operators.
BitVec operator^(BitVec lhs, const BitVec& rhs);
BitVec operator&(BitVec lhs, const BitVec& rhs);
BitVec operator|(BitVec lhs, const BitVec& rhs);

/// popcount(a & b) without materializing the intersection — the hot
/// primitive of X-correlation analysis (restricted X counts). Requires
/// a.size() == b.size().
std::size_t and_count(const BitVec& a, const BitVec& b);

/// popcount(a & ~b) without materializing the difference. Requires
/// a.size() == b.size().
std::size_t and_not_count(const BitVec& a, const BitVec& b);

}  // namespace xh
