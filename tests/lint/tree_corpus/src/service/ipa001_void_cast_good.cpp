// XH-IPA-001 non-firing fixtures: a (void) cast is a deliberate,
// acknowledged drop, and a bare call to a void-returning helper has no
// status to lose.
namespace fixture {

struct FetchResult {
  int total = 0;
};

FetchResult fetch_totals() {
  FetchResult r;
  r.total = 3;
  return r;
}

void log_rollover() {}

void quiet_tock() {
  (void)fetch_totals();
  log_rollover();
}

}  // namespace fixture
