// Seeds XH-IPA-001 through a free call: mend_index() returns a *Result
// type but the caller throws the outcome away as a bare statement. No
// [[nodiscard]] anywhere — only the callee's resolved signature says this
// is a status, which is exactly what the interprocedural tier adds.
namespace fixture {

struct MendResult {
  bool ok = false;
  int repaired = 0;
};

MendResult mend_index() {
  MendResult r;
  r.ok = true;
  return r;
}

void nightly_tick() {
  mend_index();
}

}  // namespace fixture
