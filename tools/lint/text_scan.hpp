// Shared lexical layer for xh_lint: comment/literal stripping, suppression
// directive harvesting, and identifier-level queries. Both the per-file
// rules (lint_core.cpp) and the whole-tree passes (tree_rules.cpp) consume
// one Cleaned per file, so the tree is lexed exactly once per analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xh::lint {

/// One suppression directive as written in a comment, with enough position
/// information for the tree-wide stale-suppression audit (XH-SUP-001).
struct Directive {
  std::size_t line = 0;        // 1-based line the directive starts on
  bool file_scope = false;     // allow-file(...) vs allow(...)
  std::size_t first_covered = 0;  // 1-based, inclusive (line scope only)
  std::size_t last_covered = 0;   // 1-based, inclusive (line scope only)
  std::vector<std::string> rules;
};

/// A string literal as it appeared in the original source (clean() blanks
/// it out of the code view). Tree rules use these to audit telemetry names.
struct StringLiteral {
  std::size_t line = 0;  // 1-based line the literal starts on
  std::size_t col = 0;   // 0-based column of the opening quote
  std::string text;      // contents without the quotes
};

/// Content with comments and string/char literals blanked to spaces
/// (positions and line structure preserved), plus the suppression
/// directives and string literals harvested while they were erased.
struct Cleaned {
  std::vector<std::string> lines;
  /// allow[i] holds rule IDs suppressed on 1-based line i+1.
  std::vector<std::vector<std::string>> allow;
  std::vector<std::string> allow_file;
  std::vector<Directive> directives;
  std::vector<StringLiteral> literals;
};

Cleaned clean(const std::string& text);

bool is_ident_char(char c);
bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

/// Finds the next standalone-identifier occurrence of @p name at or after
/// @p from; returns npos when absent.
std::size_t find_ident(const std::string& line, const std::string& name,
                       std::size_t from = 0);

bool has_ident(const std::string& line, const std::string& name);

/// True when @p name occurs as an identifier directly invoked: `name(` with
/// optional whitespace, excluding member calls and declarations (see
/// lint_core.cpp for the full disambiguation rationale).
bool has_call(const std::string& line, const std::string& name);

/// Finds the first single ':' (a range-for separator, not a '::' scope
/// qualifier) at or after @p from; npos when absent.
std::size_t find_range_colon(const std::string& line, std::size_t from);

/// Collects names of variables/members declared with an unordered container
/// type anywhere in the cleaned lines (declarations may span lines).
std::vector<std::string> harvest_unordered_names(
    const std::vector<std::string>& lines);

}  // namespace xh::lint
