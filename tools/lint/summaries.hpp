// Per-function summaries for the interprocedural lint tier
// (DESIGN.md §13): the facts the XH-IPA / XH-RACE rules consult about a
// CALLEE without re-walking its body at every call site.
//
// Summaries are computed bottom-up over the call graph's strongly
// connected components (callees first); within a recursive component a
// fixed-point iteration runs until nothing changes. Transitive facts
// (can_block, consults_token, locks_acquired, lock_pairs) propagate only
// across NON-deferred call edges — a call inside a lambda runs when the
// callable runs, not when the enclosing statement executes, so it must
// not leak its callee's blocking/locking behavior into the enclosing
// function's synchronous summary. The posted-callable rules consume the
// deferred edges directly.
//
// Lock identity is a qualified name: the acquiring function's class
// qualifier (else its file path) prefixes the mutex expression, so
// PartitionService::mu_ and ThreadPool::mu_ stay distinct even though
// both fields are spelled `mu_`.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/callgraph.hpp"

namespace xh::lint {

struct FunctionSummary {
  /// Declared (or, for auto, propagated through `return f(...)`) return
  /// type is status-bearing per status_type().
  bool returns_status = false;
  /// Consults a CancelToken (stop_requested()/expired() or a token-typed
  /// variable), directly or through a synchronous callee.
  bool consults_token = false;
  /// Can block: sleep/wait text or a textually unbounded loop, directly
  /// or through a synchronous callee.
  bool can_block = false;
  /// Hands a callable to the pool (`.post(` somewhere), directly or
  /// through a synchronous callee.
  bool escapes_callable_to_pool = false;
  /// Qualified mutexes this function (transitively) acquires via scope
  /// guards on some path.
  std::set<std::string> locks_acquired;
  /// Qualified mutexes still held when control reaches a return/exit
  /// (must-hold intersection at the exit node's predecessors). RAII
  /// guards release after the return statement runs, so a non-empty set
  /// means "the return executes under this lock", not a leak.
  std::set<std::string> locks_held_at_exit;
  /// Nested acquisition orders observed on some path, (outer, inner),
  /// including pairs formed by calling a locking function while holding.
  std::set<std::pair<std::string, std::string>> lock_pairs;
};

/// Where a lock_pairs entry was FORMED (the inner acquisition site),
/// for anchoring XH-RACE-002 findings.
struct LockPairWitness {
  std::string outer;
  std::string inner;
  std::string path;      // defining file of the acquiring function
  std::string function;  // display name of the acquiring function
  std::size_t line = 0;  // line of the inner acquisition / call
};

struct SummarySet {
  /// Parallel to CallGraph::functions.
  std::vector<FunctionSummary> summaries;
  /// Every locally-formed (outer, inner) pair with its source anchor,
  /// deduplicated, sorted by (outer, inner, path, line).
  std::vector<LockPairWitness> witnesses;
};

SummarySet compute_summaries(const CallGraph& cg);

/// Per-node MUST-hold qualified-mutex sets for @p fn: a forward analysis
/// over scope-guard declarations (lock_guard/scoped_lock/unique_lock of a
/// named mutex), explicit guard-variable .unlock()/.lock() transitions,
/// and lexical scope death via CfgNode::scope_locks; the join over paths
/// is intersection. Element [n] is the set held when node n EXECUTES
/// (before its own acquisitions).
std::vector<std::set<std::string>> must_hold(const CgFunction& fn);

/// The qualified name of mutex expression @p arg acquired inside @p fn:
/// "PartitionService::mu_" for a member, "src/foo.cpp::mu" for a free
/// function. Exposed for tests.
std::string qualify_mutex(const CgFunction& fn, const std::string& arg);

}  // namespace xh::lint
