// Project-specific determinism / hygiene lint for the xhybrid tree.
//
// xh_lint is a token-level scanner (no full C++ parse) that enforces the
// invariants the library relies on implicitly: bit-determinism of everything
// that feeds emitted output, mandatory xh::Diagnostics routing in the
// engine/core layers, strict numeric parsing, and header hygiene. Rules are
// deliberately syntactic — the point is that they run on every line of every
// file in milliseconds, complementing the sampled runtime tests.
//
// Four rule tiers share one lexing pass (text_scan.hpp):
//   * per-file rules (this header) see one translation unit at a time;
//   * whole-tree rules (project_model.hpp) see the include graph, the
//     symbol index and every suppression at once;
//   * flow-sensitive rules (flow_rules.cpp, DESIGN.md §13) see per-function
//     CFGs (cfg.hpp) and dataflow facts (dataflow.hpp) within each file;
//   * interprocedural rules (ipa_rules.cpp, DESIGN.md §13) see the
//     whole-model call graph (callgraph.hpp) and bottom-up function
//     summaries (summaries.hpp), crossing function and file boundaries.
//
// Per-file rules (see DESIGN.md §9 for the rationale table):
//   XH-DET-001   nondeterminism source (rand/random_device/time/chrono now)
//   XH-DET-002   iteration over an unordered container
//   XH-ERR-001   bare throw/abort/exit in src/core/ or src/engine/
//   XH-PARSE-001 raw numeric parsing instead of util/parse strict helpers
//   XH-HDR-001   header missing #pragma once before any code
//   XH-HDR-002   using namespace at header scope
//
// Whole-tree rules (tools/lint/tree_rules.cpp):
//   XH-INC-001   include cycle between project files
//   XH-INC-002   layering violation against tools/lint/layers.txt
//   XH-INC-003   unused direct include / missing direct include (IWYU-lite)
//   XH-API-001   discarded call to a [[nodiscard]] project function
//   XH-API-002   use of a [[deprecated]]-only API outside its exempt files
//   XH-OBS-001   telemetry name not in the canonical schema list
//   XH-SUP-001   stale xh-lint suppression (suppresses nothing, tree-wide)
//
// Flow-sensitive rules (tools/lint/flow_rules.cpp):
//   XH-FLOW-001  status-bearing value discarded/overwritten before checked
//   XH-FLOW-002  blocking loop path never consults its CancelToken
//   XH-FLOW-003  relaxed-atomic RMW outside the storage accounting seam /
//                mutex-guarded field touched on an unguarded path
//   XH-FLOW-004  use-after-move of a local or member handle
//
// Interprocedural rules (tools/lint/ipa_rules.cpp):
//   XH-IPA-001   status-bearing result discarded transitively (the type is
//                only visible in the callee's signature)
//   XH-IPA-002   blockable posted callable never consults a CancelToken
//   XH-RACE-001  posted callable captures a local by reference that can
//                die before any drain/join barrier
//   XH-RACE-002  lock-order inversion, or a post under a lock the posted
//                work re-acquires
//
// Suppression: an `allow(XH-DET-002)` directive inside an `xh-lint:`
// marker comment on the offending line or the line directly above it; the
// `allow-file` variant anywhere in a file suppresses the rule file-wide.
// Multiple rule IDs may be comma-separated inside one directive. XH-SUP-001
// audits every directive tree-wide and flags the ones that no longer
// suppress anything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/text_scan.hpp"

namespace xh::lint {

struct Finding {
  std::string path;     // repo-relative path, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;     // e.g. "XH-DET-001"
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Static description of every rule (per-file and whole-tree), for
/// --list-rules and docs.
const std::vector<RuleInfo>& rules();

/// A fingerprint of the rule registry ("xh-lint-registry/<count>/<hash>"):
/// changes whenever a rule is added, removed or re-described. Analysis
/// caches mix it into their keys so a registry change invalidates them
/// even when the scanned sources are untouched.
std::string registry_version();

/// One file to scan. `path` is the repo-relative path (forward slashes);
/// rule applicability keys off its leading directory (src/, tools/, bench/)
/// and extension (.hpp/.h vs .cpp/.cc).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Runs every per-file rule over an already-cleaned file and returns the
/// raw findings, suppressions NOT yet applied. @p extra_unordered_names
/// extends XH-DET-002 to containers declared in a sibling header.
std::vector<Finding> per_file_findings(
    const SourceFile& file, const Cleaned& cleaned,
    const std::vector<std::string>& extra_unordered_names = {});

/// Tree-level facts the flow rules can use when available; default-empty so
/// the per-file path (scan_file, the corpus) still runs every rule.
struct FlowContext {
  /// [[nodiscard]] project function names (XH-FLOW-001 tracks `auto`
  /// locals initialized from them).
  std::vector<std::string> nodiscard_functions;
};

/// Runs the flow-sensitive rule families XH-FLOW-001..004 over one file's
/// per-function CFGs. Returns RAW findings (suppressions not applied) so
/// the XH-SUP-001 audit sees them.
std::vector<Finding> flow_findings(const SourceFile& file,
                                   const Cleaned& cleaned,
                                   const FlowContext& flow = {});

/// Drops findings covered by the file's allow()/allow-file() directives and
/// sorts the survivors by (line, rule) so output is stable regardless of
/// rule execution order.
std::vector<Finding> apply_suppressions(const Cleaned& cleaned,
                                        std::vector<Finding> raw);

/// Scans one file end to end (clean + per-file rules + suppressions).
/// @p sibling_header, when non-null, is the content of the same-stem .hpp
/// next to a .cpp: unordered-container members declared there extend
/// XH-DET-002 detection to out-of-line member functions. Whole-tree rules
/// need the project model and do not run here — see analyze_tree().
std::vector<Finding> scan_file(const SourceFile& file,
                               const std::string* sibling_header = nullptr);

/// Formats a finding as "path:line: [RULE] message".
std::string to_string(const Finding& f);

/// Formats findings as the versioned "xh-lint-findings/1" JSON document.
std::string findings_to_json(const std::vector<Finding>& findings);

/// Formats findings as a SARIF 2.1.0 document (one run, tool "xh_lint",
/// every registry rule listed, one result per finding) for GitHub code
/// scanning upload. Deterministic: rules in registry order, results in
/// input order.
std::string findings_to_sarif(const std::vector<Finding>& findings);

}  // namespace xh::lint
