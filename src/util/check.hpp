// Lightweight precondition / invariant checking.
//
// XH_REQUIRE is for argument validation on public API boundaries: it is always
// on and throws std::invalid_argument so callers can test misuse.
// XH_ASSERT is for internal invariants: always on as well (the library is not
// performance-critical enough to justify silent corruption), but throws
// std::logic_error to distinguish library bugs from caller bugs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xh {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assertion(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace xh

#define XH_REQUIRE(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) ::xh::throw_requirement(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define XH_ASSERT(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) ::xh::throw_assertion(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
