// corpus: the observability spine's one sanctioned steady-clock read — a
// scoped-timer implementation whose value feeds only telemetry output —
// carries a line-scoped XH-DET-001 suppression and must stay clean.
#include <chrono>
#include <cstdint>

std::uint64_t span_elapsed_ns(std::uint64_t start_ns) {
  const auto now =
      std::chrono::steady_clock::now();  // xh-lint: allow(XH-DET-001) timer value feeds telemetry only, never computation
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      now.time_since_epoch())
                      .count();
  return static_cast<std::uint64_t>(ns) - start_ns;
}
