#include "misr/accounting.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xh {
namespace {

// Table 1 geometries (reverse-engineered: chain length 481 for all three).
const ScanGeometry kCktA{1050, 481};
const ScanGeometry kCktB{75, 481};
const ScanGeometry kCktC{203, 481};
const MisrConfig kPaperMisr{32, 7};

TEST(Accounting, XMaskingOnlyMatchesTable1) {
  // Column 2 of Table 1: L · C · P with P = 3000.
  EXPECT_EQ(x_masking_only_bits(kCktA, 3000), 1515150000u);  // 1515.15M
  EXPECT_EQ(x_masking_only_bits(kCktB, 3000), 108225000u);   // 108.23M
  EXPECT_EQ(x_masking_only_bits(kCktC, 3000), 292929000u);   // 292.93M
}

TEST(Accounting, GeometriesMatchPaperCellCounts) {
  EXPECT_EQ(kCktA.num_cells(), 505050u);
  EXPECT_EQ(kCktB.num_cells(), 36075u);
  EXPECT_EQ(kCktC.num_cells(), 97643u);
}

TEST(Accounting, XCancelingBitsFormula) {
  // m·q·X/(m−q) with m=32, q=7 → 8.96 bits per X.
  EXPECT_DOUBLE_EQ(x_canceling_only_bits(kPaperMisr, 100), 896.0);
  EXPECT_DOUBLE_EQ(x_canceling_only_bits(kPaperMisr, 0), 0.0);
}

TEST(Accounting, XCancelingBitsSection4Examples) {
  // Section 4 example: m=10, q=2, 12 leaked X's → 10*2*12/8 = 30 bits.
  const MisrConfig m10q2{10, 2};
  EXPECT_DOUBLE_EQ(x_canceling_only_bits(m10q2, 12), 30.0);
  // m=10, q=1, 12 X's → 120/9 = 13.33…
  const MisrConfig m10q1{10, 1};
  EXPECT_NEAR(x_canceling_only_bits(m10q1, 12), 13.333, 1e-3);
}

TEST(Accounting, HybridBitsSection4Examples) {
  const ScanGeometry geo{5, 3};  // Figure 4: 5 chains × 3 cells
  // Round 1: 2 partitions, 12 leaked, m=10 q=2 → 3*5*2 + 30 = 60.
  EXPECT_DOUBLE_EQ(hybrid_bits(geo, 2, {10, 2}, 12), 60.0);
  // Round 2: 3 partitions, 5 leaked → 45 + 12.5 = 57.5 → 58 rounded.
  EXPECT_DOUBLE_EQ(hybrid_bits(geo, 3, {10, 2}, 5), 57.5);
  EXPECT_EQ(round_bits(hybrid_bits(geo, 3, {10, 2}, 5)), 58u);
  // q=1 variants: 43.33… → 44 and 50.55… → 51.
  EXPECT_EQ(round_bits(hybrid_bits(geo, 2, {10, 1}, 12)), 44u);
  EXPECT_EQ(round_bits(hybrid_bits(geo, 3, {10, 1}, 5)), 51u);
}

TEST(Accounting, StopsFormula) {
  EXPECT_DOUBLE_EQ(x_canceling_stops(kPaperMisr, 250), 10.0);
  EXPECT_DOUBLE_EQ(x_canceling_stops({10, 2}, 28), 3.5);
}

TEST(Accounting, NormalizedTestTimeMatchesTable1) {
  // Column 7 of Table 1: 1 + n·x·q/(m−q).
  EXPECT_NEAR(normalized_test_time(1050, 0.0005, kPaperMisr), 1.14, 0.01);
  EXPECT_NEAR(normalized_test_time(75, 0.0275, kPaperMisr), 1.58, 0.01);
  EXPECT_NEAR(normalized_test_time(203, 0.0238, kPaperMisr), 2.35, 0.02);
}

TEST(Accounting, TestTimeMonotoneInDensityAndQ) {
  const double base = normalized_test_time(100, 0.01, {32, 7});
  EXPECT_GT(normalized_test_time(100, 0.02, {32, 7}), base);
  EXPECT_GT(normalized_test_time(100, 0.01, {32, 14}), base);
  EXPECT_DOUBLE_EQ(normalized_test_time(100, 0.0, {32, 7}), 1.0);
}

TEST(Accounting, ArgumentValidation) {
  EXPECT_THROW((void)x_masking_only_bits(kCktA, 0), std::invalid_argument);
  EXPECT_THROW((void)x_canceling_only_bits({32, 32}, 5),
               std::invalid_argument);
  EXPECT_THROW((void)hybrid_bits(kCktA, 0, kPaperMisr, 5),
               std::invalid_argument);
  EXPECT_THROW((void)normalized_test_time(10, 1.5, kPaperMisr),
               std::invalid_argument);
  EXPECT_THROW((void)round_bits(-1.0), std::invalid_argument);
}

TEST(Accounting, HybridBeatsCancelingWhenMaskingIsCheapEnough) {
  // If one extra partition (L·C bits) removes more than L·C/8.96 X's, the
  // hybrid wins — the paper's core trade-off, stated as an inequality.
  const ScanGeometry geo{10, 10};
  const std::uint64_t total_x = 1000;
  const double cancel_only = x_canceling_only_bits(kPaperMisr, total_x);
  const std::uint64_t removed = 500;  // one partition removing 500 X's
  const double hybrid = hybrid_bits(geo, 2, kPaperMisr, total_x - removed);
  EXPECT_LT(hybrid, cancel_only);
}

}  // namespace
}  // namespace xh
