#include "baseline/chain_masking.hpp"

#include <gtest/gtest.h>

#include "core/paper_example.hpp"

namespace xh {
namespace {

TEST(ChainMasking, CleanMatrixCostsControlOnly) {
  const XMatrix xm({4, 5}, 10);
  const ChainMaskingResult r = chain_masking(xm);
  EXPECT_EQ(r.control_bits, 40u);
  EXPECT_EQ(r.masked_chains, 0u);
  EXPECT_EQ(r.masked_x, 0u);
  EXPECT_EQ(r.lost_observations, 0u);
}

TEST(ChainMasking, SingleXMasksOneChainPattern) {
  XMatrix xm({4, 5}, 10);
  xm.add_x(7, 3);  // chain 1, position 2
  const ChainMaskingResult r = chain_masking(xm);
  EXPECT_EQ(r.masked_chains, 1u);
  EXPECT_EQ(r.masked_x, 1u);
  EXPECT_EQ(r.lost_observations, 4u) << "4 clean cells die with the chain";
}

TEST(ChainMasking, PaperExampleNumbers) {
  // Figure 4: 5 chains x 3 cells, 8 patterns, 28 X's.
  const XMatrix xm = paper_example_x_matrix();
  const ChainMaskingResult r = chain_masking(xm);
  EXPECT_EQ(r.control_bits, 5u * 8u);
  EXPECT_EQ(r.masked_x, 28u);
  // Chains with X's per pattern:
  //   SC1: cell0 X under 4 patterns -> 4 chain-masks, 2 clean cells each.
  //   SC2: cell0 {P1,P4,P5,P6} + cell2 {P1,P4} -> 4 masks, losses 4*3-6=6.
  //   SC3: like SC1 -> losses 8. SC1 -> 8.
  //   SC4: cell2 X under 7 patterns -> 7 masks, losses 7*3-7=14.
  //   SC5: cell1 6 pats + cell2 1 pat (disjoint) -> 7 masks, 7*3-7=14.
  EXPECT_EQ(r.masked_chains, 4u + 4u + 4u + 7u + 7u);
  EXPECT_EQ(r.lost_observations, 8u + 6u + 8u + 14u + 14u);
}

TEST(ChainMasking, ControlBitsBeatCellMaskingByChainLength) {
  const XMatrix xm({3, 100}, 50);
  const ChainMaskingResult r = chain_masking(xm);
  EXPECT_EQ(r.control_bits, 150u);  // vs 3*100*50 = 15000 for cell masking
}

TEST(ChainMasking, LossGrowsWithScatter) {
  // Same X count: concentrated in one chain vs spread over all chains.
  XMatrix concentrated({4, 8}, 4);
  for (std::size_t pos = 0; pos < 4; ++pos) concentrated.add_x(pos, 0);
  XMatrix scattered({4, 8}, 4);
  for (std::size_t chain = 0; chain < 4; ++chain) {
    scattered.add_x(chain * 8, 0);
  }
  const ChainMaskingResult c = chain_masking(concentrated);
  const ChainMaskingResult s = chain_masking(scattered);
  EXPECT_EQ(c.masked_x, s.masked_x);
  EXPECT_LT(c.lost_observations, s.lost_observations);
}

}  // namespace
}  // namespace xh
