// Ablation D — the full circuit-level flow the analytic workloads stand in
// for: synthesize a sequential circuit with real X-sources (unscanned flops,
// tri-state buses), run ATPG, capture responses through the scan plan, apply
// the pattern-partitioned hybrid, stream the masked response through a real
// X-canceling MISR, and verify the zero-coverage-loss guarantee by fault
// simulation under the hybrid's observation filter.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "atpg/test_generation.hpp"
#include "core/hybrid.hpp"
#include "fault/fault_sim.hpp"
#include "fault/transition.hpp"
#include "misr/accounting.hpp"
#include "netlist/generator.hpp"
#include "response/x_stats.hpp"
#include "scan/test_application.hpp"
#include "util/table.hpp"

namespace xh {
namespace {

GeneratorConfig circuit_cfg() {
  GeneratorConfig g;
  g.seed = 2016;
  g.num_inputs = 16;
  g.num_outputs = 16;
  g.num_gates = 600;
  g.num_dffs = 48;
  g.nonscan_fraction = 0.15;
  g.num_buses = 3;
  return g;
}

void print_flow() {
  const Netlist nl = generate_circuit(circuit_cfg());
  const NetlistStats ns = compute_stats(nl);
  std::printf("== Ablation D: end-to-end circuit flow ===================\n");
  std::printf(
      "circuit: %zu gates, %zu DFFs (%zu unscanned), %zu tri-state drivers "
      "on %zu buses, depth %zu\n",
      ns.gates, ns.dffs, ns.nonscan_dffs, ns.tristate_drivers, ns.buses,
      ns.depth);

  const ScanPlan plan = ScanPlan::build(nl, 6);
  AtpgConfig acfg;
  acfg.random_patterns = 96;
  acfg.seed = 42;
  const AtpgResult atpg = generate_test_set(nl, plan, acfg);
  std::printf(
      "ATPG: %zu patterns, %zu/%zu faults detected (%.1f%%), "
      "%zu untestable, %zu aborted\n",
      atpg.patterns.size(), atpg.num_detected, atpg.faults.size(),
      100.0 * atpg.coverage(), atpg.num_untestable, atpg.num_aborted);

  TestApplicator app(nl, plan);
  const ResponseMatrix response = app.capture(atpg.patterns);
  std::printf("capture: %zu patterns x %zu cells, %zu X's (density %.2f%%)\n",
              response.num_patterns(), response.num_cells(),
              response.total_x(), 100.0 * response.x_density());
  const IntraCorrelation ic =
      analyze_intra_correlation(XMatrix::from_response(response));
  std::printf(
      "intra-correlation: %zu X runs, mean length %.2f, longest %zu, "
      "adjacency %.0f%%\n",
      ic.total_runs, ic.mean_run_length, ic.longest_run,
      100.0 * ic.adjacency_fraction);

  PipelineContext ctx;
  ctx.partitioner.misr = {16, 4};
  const HybridSimulation sim = run_hybrid_simulation(response, ctx);
  const XCancelResult baseline = run_x_canceling(response, ctx.misr());

  TextTable t({"scheme", "control bits", "MISR stops", "X into MISR"});
  t.add_row({"X-canceling only [12]",
             TextTable::num(sim.report.canceling_only_bits, 0),
             std::to_string(baseline.stops),
             std::to_string(baseline.total_x_seen)});
  t.add_row({"proposed hybrid",
             TextTable::num(sim.report.proposed_bits, 0),
             std::to_string(sim.cancel.stops),
             std::to_string(sim.x_entering_misr)});
  std::printf("\n%s", t.render().c_str());
  // Test-time: measured halting of the real session vs the paper's closed
  // form, plus the shadow-register alternative's channel cost.
  const double measured_base =
      measured_normalized_test_time(baseline, ctx.misr());
  const double measured_hybrid =
      measured_normalized_test_time(sim.cancel, ctx.misr());
  std::printf(
      "measured test time (halt simulation): %.3f -> %.3f "
      "(closed form: %.3f -> %.3f)\n",
      measured_base, measured_hybrid, sim.report.test_time_canceling_only,
      sim.report.test_time_proposed);
  const ShadowRegisterCost shadow = shadow_register_cost(
      ctx.misr(), baseline.total_x_seen, baseline.shift_cycles);
  std::printf(
      "shadow-register variant [11]: time 1.000 but %.2f control bits/cycle "
      "(%zu extra tester channels) — why the paper excludes it\n",
      shadow.control_bits_per_cycle, shadow.extra_channels);
  std::printf("partitions: %zu, masked %llu / leaked %llu X's\n",
              sim.report.partitioning.num_partitions(),
              static_cast<unsigned long long>(sim.report.partitioning.masked_x),
              static_cast<unsigned long long>(
                  sim.report.partitioning.leaked_x));

  // Coverage preservation, verified (not assumed).
  FaultSimulator fsim(nl, plan);
  std::vector<StuckFault> sample;
  for (std::size_t i = 0; i < atpg.faults.size(); i += 3) {
    sample.push_back(atpg.faults[i]);
  }
  const FaultSimResult ideal =
      fsim.run(atpg.patterns, sample, observe_all());
  const FaultSimResult masked = fsim.run(
      atpg.patterns, sample,
      observe_with_partition_masks(sim.report.partitioning.partitions,
                                   sim.report.partitioning.masks));
  std::printf(
      "fault coverage: %.2f%% ideal vs %.2f%% under hybrid masks "
      "(%zu-fault sample) — %s\n",
      100.0 * ideal.coverage(), 100.0 * masked.coverage(), sample.size(),
      ideal.num_detected == masked.num_detected ? "PRESERVED" : "LOST");

  // Transition-delay faults under launch-on-capture with the same patterns.
  TransitionFaultSimulator tsim(nl, plan);
  std::vector<TransitionFault> tf_sample;
  for (std::size_t i = 0; i < atpg.faults.size(); i += 6) {
    tf_sample.push_back({atpg.faults[i].gate, !atpg.faults[i].stuck_at_one});
  }
  const TransitionSimResult tdf = tsim.run(atpg.patterns, tf_sample);
  const ResponseMatrix loc_frame = tsim.capture_frame_response(atpg.patterns);
  std::printf(
      "transition faults (LOC, %zu-fault sample): %.2f%% coverage, "
      "%zu never launched; LOC capture frame X-density %.2f%% "
      "(stuck-at frame: %.2f%%)\n\n",
      tf_sample.size(), 100.0 * tdf.coverage(), tdf.never_launched,
      100.0 * loc_frame.x_density(), 100.0 * response.x_density());
}

void BM_Atpg(benchmark::State& state) {
  GeneratorConfig g = circuit_cfg();
  g.num_gates = 150;
  g.num_dffs = 16;
  const Netlist nl = generate_circuit(g);
  const ScanPlan plan = ScanPlan::build(nl, 2);
  AtpgConfig acfg;
  acfg.random_patterns = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_test_set(nl, plan, acfg));
  }
}

void BM_Capture(benchmark::State& state) {
  const Netlist nl = generate_circuit(circuit_cfg());
  const ScanPlan plan = ScanPlan::build(nl, 6);
  TestApplicator app(nl, plan);
  Rng rng(3);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 256; ++i) patterns.push_back(random_pattern(nl, plan, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.capture(patterns));
  }
}

void BM_XCancelSession(benchmark::State& state) {
  const Netlist nl = generate_circuit(circuit_cfg());
  const ScanPlan plan = ScanPlan::build(nl, 6);
  TestApplicator app(nl, plan);
  Rng rng(3);
  std::vector<TestPattern> patterns;
  for (int i = 0; i < 128; ++i) patterns.push_back(random_pattern(nl, plan, rng));
  const ResponseMatrix response = app.capture(patterns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_x_canceling(response, {16, 4}));
  }
}

BENCHMARK(BM_Atpg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Capture)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XCancelSession)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xh

int main(int argc, char** argv) {
  xh::print_flow();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
