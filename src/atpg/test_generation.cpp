#include "atpg/test_generation.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xh {

AtpgResult generate_test_set(const Netlist& nl, const ScanPlan& plan,
                             const AtpgConfig& cfg) {
  AtpgResult result;
  result.faults = collapse_faults(nl, enumerate_faults(nl));
  result.detected.assign(result.faults.size(), false);

  FaultSimulator fsim(nl, plan);
  Rng rng(cfg.seed);

  // --- random phase --------------------------------------------------------
  if (cfg.random_patterns > 0 && cfg.fill_dont_cares) {
    std::vector<TestPattern> randoms;
    randoms.reserve(cfg.random_patterns);
    for (std::size_t i = 0; i < cfg.random_patterns; ++i) {
      randoms.push_back(random_pattern(nl, plan, rng));
    }
    const FaultSimResult rs = fsim.run(randoms, result.faults);

    if (cfg.compact_random_phase) {
      // Keep only patterns that are some fault's first detector.
      std::vector<bool> keep(randoms.size(), false);
      for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
        if (rs.detected[fi]) keep[rs.first_pattern[fi]] = true;
      }
      for (std::size_t i = 0; i < randoms.size(); ++i) {
        if (keep[i]) result.patterns.push_back(randoms[i]);
      }
    } else {
      result.patterns = randoms;
    }
    for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
      if (rs.detected[fi]) {
        result.detected[fi] = true;
        ++result.num_detected;
      }
    }
  }

  // --- deterministic phase -------------------------------------------------
  Podem podem(nl, plan);
  for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
    if (result.detected[fi]) continue;
    const auto pattern =
        podem.generate(result.faults[fi], cfg.backtrack_limit,
                       rng.next_u64(), cfg.fill_dont_cares);
    if (!pattern) {
      if (podem.stats().aborted) {
        ++result.num_aborted;
      } else {
        ++result.num_untestable;
      }
      continue;
    }
    result.patterns.push_back(*pattern);
    // Drop every remaining fault this new pattern detects (random fill may
    // catch more than the targeted fault).
    const std::vector<TestPattern> just_this = {*pattern};
    for (std::size_t fj = fi; fj < result.faults.size(); ++fj) {
      if (result.detected[fj]) continue;
      if (fsim.detects(just_this, result.faults[fj])[0]) {
        result.detected[fj] = true;
        ++result.num_detected;
      }
    }
    XH_ASSERT(result.detected[fi],
              "PODEM produced a pattern that does not detect its target");
  }
  return result;
}

}  // namespace xh
