#include "netlist/generator.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.hpp"

namespace xh {
namespace {

TEST(Generator, DefaultConfigProducesValidNetlist) {
  const Netlist nl = generate_circuit({});
  EXPECT_TRUE(nl.finalized());
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.inputs, 8u);
  EXPECT_EQ(s.outputs, 8u);
  EXPECT_EQ(s.dffs, 32u);
  EXPECT_GT(s.depth, 2u);
}

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  const Netlist a = generate_circuit(cfg);
  const Netlist b = generate_circuit(cfg);
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, SeedsProduceDifferentCircuits) {
  GeneratorConfig cfg;
  cfg.seed = 1;
  const Netlist a = generate_circuit(cfg);
  cfg.seed = 2;
  const Netlist b = generate_circuit(cfg);
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, HonorsNonscanFraction) {
  GeneratorConfig cfg;
  cfg.num_dffs = 40;
  cfg.nonscan_fraction = 0.25;
  const Netlist nl = generate_circuit(cfg);
  EXPECT_EQ(nl.nonscan_dffs().size(), 10u);
  EXPECT_EQ(nl.scan_dffs().size(), 30u);
}

TEST(Generator, HonorsBusConfig) {
  GeneratorConfig cfg;
  cfg.num_buses = 3;
  cfg.drivers_per_bus = 4;
  const Netlist nl = generate_circuit(cfg);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.buses, 3u);
  EXPECT_EQ(s.tristate_drivers, 12u);
}

TEST(Generator, ZeroBusesAndNoNonscan) {
  GeneratorConfig cfg;
  cfg.num_buses = 0;
  cfg.nonscan_fraction = 0.0;
  const Netlist nl = generate_circuit(cfg);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.buses, 0u);
  EXPECT_EQ(s.nonscan_dffs, 0u);
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.num_inputs = 1;
  EXPECT_THROW(generate_circuit(cfg), std::invalid_argument);
  cfg = {};
  cfg.nonscan_fraction = 1.5;
  EXPECT_THROW(generate_circuit(cfg), std::invalid_argument);
  cfg = {};
  cfg.num_outputs = 0;
  EXPECT_THROW(generate_circuit(cfg), std::invalid_argument);
}

TEST(Generator, GeneratedCircuitRoundTripsThroughBench) {
  GeneratorConfig cfg;
  cfg.num_gates = 60;
  cfg.num_buses = 2;
  cfg.nonscan_fraction = 0.2;
  cfg.seed = 7;
  const Netlist nl = generate_circuit(cfg);
  const Netlist rt = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(rt.gate_count(), nl.gate_count());
  EXPECT_EQ(rt.nonscan_dffs().size(), nl.nonscan_dffs().size());
}

TEST(Generator, ScalesToLargerCircuits) {
  GeneratorConfig cfg;
  cfg.num_gates = 5000;
  cfg.num_dffs = 400;
  cfg.num_inputs = 64;
  cfg.num_outputs = 64;
  const Netlist nl = generate_circuit(cfg);
  const NetlistStats s = compute_stats(nl);
  EXPECT_GE(s.gates, 5000u);
  EXPECT_EQ(s.dffs, 400u);
  EXPECT_EQ(s.outputs, 64u);
}

}  // namespace
}  // namespace xh
