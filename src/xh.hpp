// Umbrella header: the consolidated public API of the xhybrid library.
//
// One include gives an application everything the CLI, benches and examples
// use: the pipeline context, the hybrid analysis/simulation entry points,
// the partition engine, the lower-stage primitives they compose, the
// observability spine (xh::Trace + the xh-telemetry/1 serializer) and the
// structured diagnostics. Internal building blocks (netlist, ATPG, fault
// simulation, stimulus decompression) stay behind their own headers — they
// are library plumbing, not the paper-facing surface.
//
// Canonical usage (DESIGN.md §10):
//
//   xh::PipelineContext ctx(cfg);   // cfg is a PartitionerConfig
//   ctx.be_lenient();               // or ctx.adopt_collector(&diags)
//   ctx.set_trace(&trace);          // optional observability
//   auto report = xh::run_hybrid_analysis(xm, ctx);
//
// The HybridConfig overloads of run_hybrid_analysis/run_hybrid_simulation
// are deprecated; construct a PipelineContext instead.
#pragma once

// Shared utilities: bit vectors, diagnostics, RNG, thread pool.
#include "util/bitvec.hpp"
#include "util/diagnostics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// Observability: metrics/span registry and the canonical telemetry JSON.
#include "obs/telemetry_json.hpp"
#include "obs/trace.hpp"

// Response-side data model and serialization.
#include "response/io.hpp"
#include "response/response_matrix.hpp"
#include "response/x_matrix.hpp"
#include "response/x_stats.hpp"

// MISR: X-canceling session, accounting, spatial compaction.
#include "misr/accounting.hpp"
#include "misr/spatial_compactor.hpp"
#include "misr/x_cancel.hpp"

// X-masking.
#include "masking/mask.hpp"
#include "masking/mask_encoding.hpp"

// Storage: pluggable X-matrix stores behind one interface. Concrete
// backend headers stay private to engine/ and service/; everyone else
// names an XmBackend and calls make_store().
#include "storage/store_factory.hpp"
#include "storage/x_matrix_store.hpp"

// Engine: pipeline context, incremental partition engine, stage seams.
#include "engine/partition_engine.hpp"
#include "engine/partition_types.hpp"
#include "engine/pipeline.hpp"
#include "engine/pipeline_context.hpp"

// Service: resident job runner with admission control, deadlines, retry
// and crash-safe checkpointing.
#include "service/checkpoint.hpp"
#include "service/job_runner.hpp"

// Core: reference partitioner, hybrid pipeline, paper example, payload.
#include "core/hybrid.hpp"
#include "core/paper_example.hpp"
#include "core/partitioner.hpp"
#include "core/tester_payload.hpp"

// Baselines compared against in Table 1.
#include "baseline/chain_masking.hpp"
#include "baseline/superset.hpp"
