// XMatrixStore contract (DESIGN.md §12): every backend — CSR, TEBM, mmap —
// must present the frozen X matrix identically: same rows in ascending
// cell-id order, same counts, and count_in/hash_in/intersect_into agreeing
// bit for bit with the BitVec formulation the seed partitioner uses. The
// backend-specific sections pin what makes each representation worth
// having: CSR's raw word access, TEBM's compression on sparse rows, and
// the mmap store's file protocol and page accounting.
#include "storage/x_matrix_store.hpp"

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <ios>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "response/x_matrix.hpp"
#include "storage/backend_csr.hpp"
#include "storage/backend_mmap.hpp"
#include "storage/backend_tebm.hpp"
#include "storage/store_factory.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "workload/industrial.hpp"

namespace xh {
namespace {

namespace fs = std::filesystem;

constexpr XmBackend kAllBackends[] = {XmBackend::kCsr, XmBackend::kTebm,
                                      XmBackend::kMmap};

XMatrix random_matrix(std::uint64_t seed, std::size_t chains,
                      std::size_t length, std::size_t patterns,
                      double density) {
  WorkloadProfile profile;
  profile.name = "store-test";
  profile.geometry = {chains, length};
  profile.num_patterns = patterns;
  profile.x_density = density;
  profile.clustered_fraction = 0.5;
  profile.cluster_cells_mean = 4;
  profile.cluster_patterns_mean = 4;
  profile.seed = seed;
  return generate_workload(profile);
}

/// The seed partitioner's set_hash, restricted to (row & subset): the group
/// key every backend's hash_in must reproduce exactly — including the
/// multiply step on all-zero words.
std::uint64_t reference_hash(const BitVec& pats, const BitVec& subset) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t w = 0; w < subset.word_count(); ++w) {
    h ^= pats.word(w) & subset.word(w);
    h *= 0x100000001b3ULL;
  }
  return h;
}

TEST(StoreContract, SnapshotMatchesSourceMatrixOnEveryBackend) {
  const XMatrix xm = random_matrix(11, 6, 9, 70, 0.05);
  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    SCOPED_TRACE(store->backend_name());

    EXPECT_EQ(store->geometry(), xm.geometry());
    EXPECT_EQ(store->num_patterns(), xm.num_patterns());
    EXPECT_EQ(store->num_cells(), xm.num_cells());
    EXPECT_EQ(store->total_x(), xm.total_x());
    EXPECT_EQ(store->num_rows(), xm.x_cells().size());

    const auto cells = xm.x_cells();
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < store->num_rows(); ++r) {
      EXPECT_EQ(store->cell_id(r), cells[r]);
      EXPECT_EQ(store->x_count(r), xm.patterns_of(cells[r]).count());
      total += store->x_count(r);
    }
    EXPECT_EQ(total, store->total_x());
  }
}

TEST(StoreContract, ProbesAgreeWithBitVecFormulationOnEveryBackend) {
  const XMatrix xm = random_matrix(23, 4, 8, 130, 0.08);
  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    SCOPED_TRACE(store->backend_name());
    Rng rng(99);
    for (int iter = 0; iter < 20; ++iter) {
      BitVec subset(xm.num_patterns());
      for (std::size_t p = 0; p < subset.size(); ++p) {
        if (rng.chance(0.5)) subset.set(p);
      }
      for (std::size_t r = 0; r < store->num_rows(); ++r) {
        const BitVec& pats = xm.patterns_of(store->cell_id(r));
        EXPECT_EQ(store->count_in(r, subset), kernels::and_count(pats, subset));
        EXPECT_EQ(store->hash_in(r, subset), reference_hash(pats, subset));
        EXPECT_EQ(store->and_not_count(r, subset),
                  pats.count() - kernels::and_count(pats, subset));
        BitVec expect = pats & subset;
        BitVec got;
        store->intersect_into(r, subset, &got);
        EXPECT_TRUE(got == expect);
      }
    }
  }
}

TEST(StoreContract, SnapshotIsIndependentOfSourceMutation) {
  for (const XmBackend backend : kAllBackends) {
    XMatrix xm = random_matrix(5, 3, 5, 40, 0.1);
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    SCOPED_TRACE(store->backend_name());
    const std::uint64_t before = store->total_x();
    xm.add_x(0, 0);
    xm.add_x(1, 1);
    EXPECT_EQ(store->total_x(), before);
  }
}

TEST(StoreContract, EmptyMatrixHasNoRows) {
  const XMatrix xm({2, 4}, 10);
  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    SCOPED_TRACE(store->backend_name());
    EXPECT_EQ(store->num_rows(), 0u);
    EXPECT_EQ(store->total_x(), 0u);
    // Probes on an empty subset universe still behave.
    const StoreStats stats = store->stats();
    EXPECT_EQ(stats.rows_touched, 0u);
  }
}

TEST(StoreContract, ProbeAccountingIsExactAndMonotonic) {
  const XMatrix xm = random_matrix(31, 4, 8, 96, 0.06);
  for (const XmBackend backend : kAllBackends) {
    const std::unique_ptr<XMatrixStore> store = make_store(xm, backend);
    SCOPED_TRACE(store->backend_name());
    ASSERT_GT(store->num_rows(), 0u);

    BitVec subset(xm.num_patterns());
    subset.set(0);
    (void)store->count_in(0, subset);
    (void)store->count_in(0, subset);
    (void)store->hash_in(0, subset);
    BitVec out;
    store->intersect_into(0, subset, &out);

    const StoreStats stats = store->stats();
    EXPECT_EQ(stats.probe_count_in, 2u);
    EXPECT_EQ(stats.probe_hash_in, 1u);
    EXPECT_EQ(stats.probe_intersect, 1u);
    EXPECT_EQ(stats.rows_touched, 4u);
    EXPECT_GT(stats.resident_bytes, 0u);
  }
}

// and_not_count is fused from the precomputed row count, so it must not
// count as an extra probe beyond its count_in component.
TEST(StoreContract, AndNotCountReusesCountIn) {
  const XMatrix xm = random_matrix(37, 3, 6, 64, 0.1);
  const std::unique_ptr<XMatrixStore> store = make_store(xm, XmBackend::kCsr);
  ASSERT_GT(store->num_rows(), 0u);
  BitVec subset(xm.num_patterns());
  (void)store->and_not_count(0, subset);
  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.probe_count_in, 1u);
  EXPECT_EQ(stats.probe_hash_in, 0u);
}

// --- CSR specifics -------------------------------------------------------

TEST(CsrStore, RowWordsReproduceTheSourceBitForBit) {
  const XMatrix xm = random_matrix(41, 6, 9, 70, 0.05);
  const CsrStore store(xm);
  const auto cells = xm.x_cells();
  for (std::size_t r = 0; r < store.num_rows(); ++r) {
    const BitVec& pats = xm.patterns_of(cells[r]);
    for (std::size_t w = 0; w < store.words_per_row(); ++w) {
      EXPECT_EQ(store.row_words(r)[w], pats.word(w));
    }
  }
}

// --- TEBM specifics ------------------------------------------------------

TEST(TebmStore, CompressesSparseRowsBelowTheCsrPayload) {
  // 2% density: most 256-pattern chunks are all-zero and cost one tag byte.
  const XMatrix xm = random_matrix(43, 8, 16, 512, 0.02);
  const TebmStore store(xm);
  ASSERT_GT(store.num_rows(), 0u);
  EXPECT_LT(store.encoded_bytes(), store.csr_payload_bytes());
}

TEST(TebmStore, HandlesAllOnesRowsThroughTheOnesTag) {
  // One cell X-captures on every pattern: its chunks are all-ones ranges.
  XMatrix xm({2, 4}, 256);
  for (std::size_t p = 0; p < 256; ++p) xm.add_x(3, p);
  xm.add_x(7, 5);
  const TebmStore store(xm);
  ASSERT_EQ(store.num_rows(), 2u);
  EXPECT_EQ(store.x_count(0), 256u);

  BitVec subset(256);
  for (std::size_t p = 0; p < 256; p += 3) subset.set(p);
  EXPECT_EQ(store.count_in(0, subset), subset.count());
  EXPECT_EQ(store.hash_in(0, subset),
            reference_hash(xm.patterns_of(3), subset));
  BitVec out;
  store.intersect_into(0, subset, &out);
  EXPECT_TRUE(out == subset);
}

// --- mmap specifics ------------------------------------------------------

TEST(MmapStore, BuildsThePagedFileProtocol) {
  const XMatrix xm = random_matrix(47, 6, 9, 200, 0.05);
  const fs::path path = fs::path(::testing::TempDir()) / "xh_store_keep.xmm";
  fs::remove(path);
  MmapStoreOptions options;
  options.path = path.string();
  options.keep_file = true;
  const MmapStore store(xm, options);

  // keep_file leaves the named file; the tmp staging file must be gone.
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  EXPECT_EQ(store.file_bytes(), fs::file_size(path));
  // Header page + three page-aligned sections.
  EXPECT_GE(store.file_bytes(), 4 * MmapStore::kPageSize);
  EXPECT_EQ(store.file_bytes() % MmapStore::kPageSize, 0u);

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.mapped_bytes, store.file_bytes());
  // The payload lives in page cache; the object's own footprint is tiny.
  EXPECT_LT(stats.resident_bytes, MmapStore::kPageSize);
  fs::remove(path);
}

TEST(MmapStore, UnlinksTheBackingFileByDefault) {
  const XMatrix xm = random_matrix(53, 4, 8, 96, 0.05);
  const fs::path path = fs::path(::testing::TempDir()) / "xh_store_drop.xmm";
  fs::remove(path);
  MmapStoreOptions options;
  options.path = path.string();
  const MmapStore store(xm, options);
  EXPECT_FALSE(fs::exists(path)) << "default must unlink after mapping";
  // The mapping keeps the data alive regardless.
  ASSERT_GT(store.num_rows(), 0u);
  EXPECT_EQ(store.cell_id(0), xm.x_cells().front());
}

TEST(MmapStore, CountsPagesTouchedByRowProbes) {
  const XMatrix xm = random_matrix(59, 4, 8, 96, 0.08);
  const fs::path path = fs::path(::testing::TempDir()) / "xh_store_pages.xmm";
  fs::remove(path);
  MmapStoreOptions options;
  options.path = path.string();
  const MmapStore store(xm, options);
  ASSERT_GT(store.num_rows(), 0u);

  EXPECT_EQ(store.stats().pages_touched, 0u);
  BitVec subset(xm.num_patterns());
  subset.set(1);
  (void)store.count_in(0, subset);
  const std::uint64_t once = store.stats().pages_touched;
  EXPECT_GE(once, 1u);
  (void)store.count_in(0, subset);
  // Deterministic: the same probe touches the same pages again.
  EXPECT_EQ(store.stats().pages_touched, 2 * once);
}

TEST(MmapStore, RefusalToWriteThrowsIosFailure) {
  const XMatrix xm = random_matrix(61, 2, 4, 16, 0.1);
  MmapStoreOptions options;
  options.path = (fs::path(::testing::TempDir()) / "xh_no_such_dir" /
                  "deep" / "store.xmm")
                     .string();
  EXPECT_THROW(MmapStore(xm, options), std::ios_base::failure);
}

// --- factory -------------------------------------------------------------

TEST(StoreFactory, ParsesCanonicalSpellingsOnly) {
  XmBackend backend = XmBackend::kTebm;
  EXPECT_TRUE(parse_xm_backend("auto", &backend));
  EXPECT_EQ(backend, XmBackend::kAuto);
  EXPECT_TRUE(parse_xm_backend("csr", &backend));
  EXPECT_EQ(backend, XmBackend::kCsr);
  EXPECT_TRUE(parse_xm_backend("tebm", &backend));
  EXPECT_EQ(backend, XmBackend::kTebm);
  EXPECT_TRUE(parse_xm_backend("mmap", &backend));
  EXPECT_EQ(backend, XmBackend::kMmap);

  backend = XmBackend::kCsr;
  EXPECT_FALSE(parse_xm_backend("CSR", &backend));
  EXPECT_FALSE(parse_xm_backend("", &backend));
  EXPECT_FALSE(parse_xm_backend("mmapp", &backend));
  EXPECT_EQ(backend, XmBackend::kCsr) << "failed parse must not write";

  for (const XmBackend b : {XmBackend::kAuto, XmBackend::kCsr,
                            XmBackend::kTebm, XmBackend::kMmap}) {
    XmBackend round = XmBackend::kAuto;
    EXPECT_TRUE(parse_xm_backend(xm_backend_name(b), &round));
    EXPECT_EQ(round, b);
  }
}

TEST(StoreFactory, AutoSpillsToMmapPastTheThreshold) {
  const XMatrix xm = random_matrix(67, 4, 8, 96, 0.05);
  StoreFactoryOptions generous;  // default 1 GiB: stays in RAM
  EXPECT_EQ(resolve_xm_backend(XmBackend::kAuto, xm, generous),
            XmBackend::kCsr);

  StoreFactoryOptions tiny;
  tiny.auto_mmap_threshold_bytes = 1;
  EXPECT_EQ(resolve_xm_backend(XmBackend::kAuto, xm, tiny), XmBackend::kMmap);
  // Non-auto requests pass through untouched.
  EXPECT_EQ(resolve_xm_backend(XmBackend::kTebm, xm, tiny), XmBackend::kTebm);

  const std::unique_ptr<XMatrixStore> spilled =
      make_store(xm, XmBackend::kAuto, tiny);
  EXPECT_STREQ(spilled->backend_name(), "mmap");
  const std::unique_ptr<XMatrixStore> resident = make_store(xm);
  EXPECT_STREQ(resident->backend_name(), "csr");
}

TEST(StoreFactory, EstimateScalesWithRowsAndPatternWords) {
  const XMatrix small = random_matrix(71, 2, 4, 64, 0.1);
  const XMatrix wide = random_matrix(71, 2, 4, 6400, 0.1);
  EXPECT_GT(estimate_csr_bytes(wide), estimate_csr_bytes(small));
  const XMatrix empty({2, 4}, 64);
  EXPECT_EQ(estimate_csr_bytes(empty), 0u);
}

}  // namespace
}  // namespace xh
