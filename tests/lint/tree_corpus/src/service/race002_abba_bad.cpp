// Seeds XH-RACE-002 (a): credit() nests in_mu_ before out_mu_ while
// debit() nests them the other way around — the classic ABBA deadlock.
// Each direction is reported at its own witness, so this file carries two
// findings of the same family.
#include <mutex>

namespace fixture {

class Ledger {
 public:
  void credit();
  void debit();

 private:
  std::mutex in_mu_;
  std::mutex out_mu_;
  int balance_ = 0;
};

void Ledger::credit() {
  std::lock_guard<std::mutex> outer(in_mu_);
  std::lock_guard<std::mutex> inner(out_mu_);
  balance_ = balance_ + 1;
}

void Ledger::debit() {
  std::lock_guard<std::mutex> outer(out_mu_);
  std::lock_guard<std::mutex> inner(in_mu_);
  balance_ = balance_ - 1;
}

}  // namespace fixture
